#!/usr/bin/env sh
# Parallel-speedup gate: fails when the worker pool loses to serial.
#
# Runs the cheap `bench_snapshot --spmv-only` probe three times at 4
# worker threads (best-of-3 absorbs scheduler noise) and feeds the reps
# to `bench_gate --par-gate`, which checks the best `spmv_large_speedup`
# against a threshold: `STOCHCDR_PAR_GATE_MIN` when set, otherwise tiered
# by the machine's hardware threads (>=4 -> 2.0, 2-3 -> 1.2, 1 -> 0.9).
# The rendered report lands in target/PAR_GATE_REPORT.txt for CI upload.
set -eu

cd "$(dirname "$0")/.."
threads="${STOCHCDR_PAR_GATE_THREADS:-4}"
reps="${STOCHCDR_PAR_GATE_REPS:-3}"

cargo build --release --offline -p stochcdr-bench

i=1
snaps=""
while [ "$i" -le "$reps" ]; do
    snap="target/PAR_GATE_REP$i.json"
    STOCHCDR_THREADS="$threads" ./target/release/bench_snapshot --spmv-only --out "$snap"
    snaps="$snaps $snap"
    i=$((i + 1))
done

# shellcheck disable=SC2086  # word-splitting the rep list is intended
./target/release/bench_gate --par-gate $snaps --report target/PAR_GATE_REPORT.txt
