#!/usr/bin/env sh
# Writes a dated benchmark snapshot (BENCH_<YYYY-MM-DD>.json) capturing the
# repository's headline performance numbers: state count, TPM nonzeros,
# multigrid cycles, wall times, and BER, plus the worker-thread count and a
# 1-thread vs N-thread SpMV speedup row, plus the rendered stochcdr-obs
# summary. The pool size honors STOCHCDR_THREADS (default: all cores) and
# is part of the output filename (BENCH_<date>_T<threads>.json) so
# snapshots taken at different pool sizes never overwrite each other.
# Extra arguments are forwarded to the snapshot binary
# (e.g. --refinement 64 --symbols 1000000).
set -eu

cd "$(dirname "$0")/.."
threads="${STOCHCDR_THREADS:-auto}"
out="BENCH_$(date +%F)_T${threads}.json"
echo "snapshot threads: ${threads}"
cargo run --release --offline -p stochcdr-bench --bin bench_snapshot -- --out "$out" "$@"
