#!/usr/bin/env sh
# Writes a dated benchmark snapshot (BENCH_<YYYY-MM-DD>.json) capturing the
# repository's headline performance numbers: state count, TPM nonzeros,
# multigrid cycles, wall times, and BER, plus the worker-thread count and a
# 1-thread vs N-thread SpMV speedup row, plus the rendered stochcdr-obs
# summary. The pool size honors STOCHCDR_THREADS (default: all cores).
# Extra arguments are forwarded to the snapshot binary
# (e.g. --refinement 64 --symbols 1000000).
set -eu

cd "$(dirname "$0")/.."
out="BENCH_$(date +%F).json"
echo "snapshot threads: ${STOCHCDR_THREADS:-auto}"
cargo run --release --offline -p stochcdr-bench --bin bench_snapshot -- --out "$out" "$@"
