#!/usr/bin/env sh
# Profiler smoke check: runs one reference analyze with the wall-clock
# sampling profiler armed (--profile-folded) alongside a jsonl metrics
# stream, asserts the folded-stack file is non-empty, and validates it
# through `stochcdr report --check-folded`, which requires every frame
# of every sampled stack to resolve to a span name recorded in the
# artifact's span paths. The folded file is flamegraph.pl/speedscope
# input and is uploaded by the CI job for inspection.
#
# Sample *counts* are wall-clock dependent, so this check is advisory
# in CI (continue-on-error); the frame-name validation itself is
# deterministic given that any samples landed at all.
set -eu

cd "$(dirname "$0")/.."
folded="target/ci_profile.folded"
metrics="target/ci_profile_metrics.jsonl"

cargo build --release --offline -p stochcdr-cli
# A refinement-16 solve runs long enough (hundreds of ms) that 0.2 ms
# sampling lands hundreds of samples.
./target/release/stochcdr analyze --refinement 16 --threads 2 \
    --profile-folded "$folded" --profile-interval 0.2 \
    --metrics "$metrics" --metrics-format jsonl >/dev/null

echo "profile_smoke: checking $folded is non-empty"
test -s "$folded"
echo "profile_smoke: validating frames against $metrics"
./target/release/stochcdr report --in "$metrics" --check-folded "$folded" \
    | grep "folded profile ok"
echo "profile_smoke: PASS"
