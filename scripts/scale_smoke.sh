#!/usr/bin/env sh
# Scale smoke: proves the implicit Kronecker path completes a >=1e6-state
# product-form solve under a 2 GiB soft memory budget that the
# materialized path must refuse. The model is two replicated lanes of the
# phases-8 / refinement-8 / counter-5 reference chain (1270 states per
# lane, 1,612,900 joint states); materializing the joint TPM would cost
# ~2.7 GB, so `--path auto` must pick the matrix-free backend.
#
# Three checks:
#   1. a forced `--path materialized` run refuses with a nonzero exit
#      (the cost message names the byte figure),
#   2. `--path auto` selects the implicit backend and completes, writing
#      an instrumented metrics artifact (target/scale_metrics.jsonl,
#      uploaded by CI),
#   3. the artifact really carries the implicit-path telemetry: the
#      kron.apply spans, the core.product_path selection event, and the
#      mem.peak_rss gauge.
set -eu

cd "$(dirname "$0")/.."
model="--phases 8 --refinement 8 --counter 5 --lanes 2 --mem-budget 2G"

cargo build --release --offline -p stochcdr-cli

echo "scale smoke: forced materialized path must refuse under the budget"
if ./target/release/stochcdr scale $model --path materialized >/dev/null 2>&1; then
    echo "scale smoke: FAIL - materialized path did not refuse" >&2
    exit 1
fi

echo "scale smoke: auto path must pick the implicit backend and complete"
./target/release/stochcdr scale $model --tol 1e-8 \
    --metrics target/scale_metrics.jsonl --metrics-format jsonl \
    | tee target/scale_smoke.txt
grep -q 'path .*: implicit' target/scale_smoke.txt
grep -q 'kron.apply' target/scale_metrics.jsonl
grep -q 'core.product_path' target/scale_metrics.jsonl
grep -q 'mem.peak_rss' target/scale_metrics.jsonl
echo "scale smoke: PASS"
