#!/usr/bin/env sh
# Benchmark regression gate: takes a fresh bench_snapshot and compares it
# against the committed baseline (results/BENCH_AFTER_PR10_T4.json by
# default, override with $1). Deterministic metrics — states, nnz, solver cycles,
# residual, BER, Monte-Carlo results, pre-pass allocation counts — must
# be bit-identical; wall-clock and memory-size numbers are advisory (the
# gate prints fresh/baseline ratios but never fails on them). A second
# stage runs the same analyze twice with --metrics and feeds both
# artifacts to metrics_diff and the obs_diff regression report, gating on
# the instrumentation's own determinism contract; the rendered report
# lands in target/OBS_DIFF_REPORT.txt for CI to upload.
#
# BENCH_GATE_MODE selects a slice for CI job splitting:
#   deterministic — snapshot + bench_gate + metrics_diff only: everything
#                   that gates exactly, safe to make a *blocking* job.
#   advisory      — the analyze pair + obs_diff regression report only:
#                   timing-heavy, stays continue-on-error in CI.
#   (unset)       — the full sequence, for local runs.
#
# The worker pool is pinned to the baseline's recorded thread count so the
# advisory timing ratios are as comparable as an unpinned runner allows.
set -eu

cd "$(dirname "$0")/.."
baseline="${1:-results/BENCH_AFTER_PR10_T4.json}"
fresh="target/BENCH_GATE_FRESH.json"
mode="${BENCH_GATE_MODE:-full}"

# Pull the thread count and grid refinement the baseline was recorded at
# (bare integer fields in the snapshot JSON); fall back to 4 threads and
# the snapshot binary's default refinement of 16 if absent. The fresh
# snapshot must reproduce the baseline's configuration, or every
# "deterministic" metric would differ for config reasons, not drift.
threads=$(sed -n 's/^ *"threads": *\([0-9][0-9]*\),*$/\1/p' "$baseline")
threads="${threads:-4}"
refinement=$(sed -n 's/^ *"refinement": *\([0-9][0-9]*\),*$/\1/p' "$baseline")
refinement="${refinement:-16}"
echo "bench gate: mode $mode, pinning STOCHCDR_THREADS=$threads, refinement $refinement (baseline's config)"

cargo build --release --offline -p stochcdr-bench -p stochcdr-cli

if [ "$mode" = "deterministic" ] || [ "$mode" = "full" ]; then
    STOCHCDR_THREADS="$threads" ./target/release/bench_snapshot --out "$fresh" --refinement "$refinement"
    ./target/release/bench_gate "$baseline" "$fresh"

    # Determinism gate on the instrumentation itself: two analyze runs
    # with the same configuration and pinned thread count must produce
    # metrics artifacts whose counters, events, span counts, and
    # histogram observation counts are identical (timing payloads are
    # advisory).
    echo "bench gate: metrics_diff determinism check (2 identical analyze runs)"
    ./target/release/stochcdr analyze --refinement "$refinement" --threads "$threads" \
        --metrics target/BENCH_GATE_METRICS_A.jsonl --metrics-format jsonl >/dev/null
    ./target/release/stochcdr analyze --refinement "$refinement" --threads "$threads" \
        --metrics target/BENCH_GATE_METRICS_B.jsonl --metrics-format jsonl >/dev/null
    ./target/release/metrics_diff target/BENCH_GATE_METRICS_A.jsonl target/BENCH_GATE_METRICS_B.jsonl
fi

if [ "$mode" = "advisory" ] || [ "$mode" = "full" ]; then
    # Full regression report via the shared diff engine (counters/events/
    # span counts/histogram bins exact; timings, memory, gauges advisory).
    if [ ! -f target/BENCH_GATE_METRICS_A.jsonl ] || [ "$mode" = "advisory" ]; then
        ./target/release/stochcdr analyze --refinement "$refinement" --threads "$threads" \
            --metrics target/BENCH_GATE_METRICS_A.jsonl --metrics-format jsonl >/dev/null
        ./target/release/stochcdr analyze --refinement "$refinement" --threads "$threads" \
            --metrics target/BENCH_GATE_METRICS_B.jsonl --metrics-format jsonl >/dev/null
    fi
    echo "bench gate: obs_diff regression report"
    ./target/release/obs_diff target/BENCH_GATE_METRICS_A.jsonl target/BENCH_GATE_METRICS_B.jsonl \
        --out target/OBS_DIFF_REPORT.txt
fi
