#!/usr/bin/env sh
# Benchmark regression gate: takes a fresh bench_snapshot and compares it
# against the committed baseline (results/BENCH_AFTER_PR2.json by default,
# override with $1). Deterministic metrics — states, nnz, solver cycles,
# residual, BER, Monte-Carlo results — must be bit-identical; wall-clock
# numbers are advisory (the gate prints fresh/baseline ratios but never
# fails on them).
#
# The worker pool is pinned to the baseline's recorded thread count so the
# advisory timing ratios are as comparable as an unpinned runner allows.
set -eu

cd "$(dirname "$0")/.."
baseline="${1:-results/BENCH_AFTER_PR2.json}"
fresh="target/BENCH_GATE_FRESH.json"

# Pull the thread count and grid refinement the baseline was recorded at
# (bare integer fields in the snapshot JSON); fall back to 4 threads and
# the snapshot binary's default refinement of 16 if absent. The fresh
# snapshot must reproduce the baseline's configuration, or every
# "deterministic" metric would differ for config reasons, not drift.
threads=$(sed -n 's/^ *"threads": *\([0-9][0-9]*\),*$/\1/p' "$baseline")
threads="${threads:-4}"
refinement=$(sed -n 's/^ *"refinement": *\([0-9][0-9]*\),*$/\1/p' "$baseline")
refinement="${refinement:-16}"
echo "bench gate: pinning STOCHCDR_THREADS=$threads, refinement $refinement (baseline's config)"

cargo build --release --offline -p stochcdr-bench
STOCHCDR_THREADS="$threads" ./target/release/bench_snapshot --out "$fresh" --refinement "$refinement"
./target/release/bench_gate "$baseline" "$fresh"
