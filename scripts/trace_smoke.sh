#!/usr/bin/env sh
# Trace smoke check: runs one instrumented analyze with both `--trace`
# (Chrome Trace Event JSON) and `--metrics ... --metrics-format jsonl`
# (stochcdr-obs/4 record stream) active, then validates both artifacts
# through `stochcdr report`, which fails on malformed JSON/JSONL or on
# unbalanced span begin/end events.
#
# Artifacts land in target/ so the CI job can upload them for inspection
# in ui.perfetto.dev.
set -eu

cd "$(dirname "$0")/.."
trace="target/ci_trace.json"
metrics="target/ci_metrics.jsonl"

cargo build --release --offline -p stochcdr-cli
./target/release/stochcdr analyze --refinement 8 --threads 2 \
    --trace "$trace" --metrics "$metrics" --metrics-format jsonl >/dev/null

echo "trace_smoke: validating $trace"
./target/release/stochcdr report --in "$trace"
echo "trace_smoke: validating $metrics"
./target/release/stochcdr report --in "$metrics"
echo "trace_smoke: PASS"
