#!/usr/bin/env sh
# Memory smoke: proves the zero-allocation claims still hold under the
# accounting allocator, then takes two instrumented reference runs and
# renders their obs diff regression report (target/MEM_SMOKE_DIFF.txt,
# uploaded by CI).
#
# The allocation proofs are the workspace's allocator-assertion tests —
# each binary installs stochcdr_obs::mem::TrackingAlloc as its global
# allocator: warm multigrid cycles allocate zero times, disabled obs
# entry points allocate zero times, and the sweep engine's warm paths
# never allocate more than cold ones.
set -eu

cd "$(dirname "$0")/.."
STOCHCDR_THREADS=1 cargo test -q --offline -p stochcdr-multigrid --test no_alloc_cycle
STOCHCDR_THREADS=1 cargo test -q --offline -p stochcdr-obs --test no_alloc
STOCHCDR_THREADS=1 cargo test -q --offline -p stochcdr-sweep --test warm_alloc

# Reference solve under the tracking allocator, twice, with the metrics
# stream on; the diff gates on the deterministic records (counters,
# events, span counts, histogram bins) and reports memory advisories.
cargo build --release --offline -p stochcdr-cli -p stochcdr-bench
./target/release/stochcdr analyze --refinement 16 --threads 4 \
    --metrics target/MEM_SMOKE_A.jsonl --metrics-format jsonl >/dev/null
./target/release/stochcdr analyze --refinement 16 --threads 4 \
    --metrics target/MEM_SMOKE_B.jsonl --metrics-format jsonl >/dev/null
./target/release/obs_diff target/MEM_SMOKE_A.jsonl target/MEM_SMOKE_B.jsonl \
    --out target/MEM_SMOKE_DIFF.txt

# The artifacts must really carry stochcdr-obs/3 memory telemetry: span
# attribution from the tracking allocator and the process gauges.
grep -q '"alloc_bytes"' target/MEM_SMOKE_A.jsonl
grep -q 'mem.peak_rss' target/MEM_SMOKE_A.jsonl
echo "mem smoke: PASS"
