#!/usr/bin/env sh
# Tier-1 verification: formatting, release build, full test suite, and
# clippy with warnings denied. Everything runs offline — the workspace
# resolves its external dev-dependencies (rand/proptest/criterion) to
# local shims.
#
# The test suite runs twice, pinned to 1 and 4 worker threads, so the
# determinism contract of the parallel kernels (bit-identical results for
# every pool size) is exercised on every CI pass; the two suites most
# sensitive to partition boundaries (operator equivalence and multigrid
# invariance) additionally run at 2 and 8 threads. A final trace smoke
# (scripts/trace_smoke.sh) captures and validates one instrumented run's
# --trace and --metrics artifacts, the memory smoke
# (scripts/mem_smoke.sh) re-proves the zero-allocation claims under the
# tracking allocator and renders an obs diff regression report, and the
# profile smoke (scripts/profile_smoke.sh) validates a sampled folded-
# stack profile against the artifact's span registry.
set -eu

cd "$(dirname "$0")/.."
cargo fmt --all -- --check
cargo build --release --offline
STOCHCDR_THREADS=1 cargo test -q --offline
STOCHCDR_THREADS=4 cargo test -q --offline
# Determinism matrix beyond 1+4: the suites that would catch a
# thread-count-dependent partition boundary, at uneven pool sizes.
for t in 2 8; do
    echo "ci: determinism matrix at STOCHCDR_THREADS=$t"
    STOCHCDR_THREADS=$t cargo test -q --offline -p stochcdr-integration --test operator_equivalence
    STOCHCDR_THREADS=$t cargo test -q --offline -p stochcdr-bench --test mg_invariance
done
cargo clippy --offline --all-targets -- -D warnings
./scripts/trace_smoke.sh
./scripts/mem_smoke.sh
./scripts/profile_smoke.sh
