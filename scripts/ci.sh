#!/usr/bin/env sh
# Tier-1 verification: release build, full test suite, and clippy with
# warnings denied. Everything runs offline — the workspace resolves its
# external dev-dependencies (rand/proptest/criterion) to local shims.
set -eu

cd "$(dirname "$0")/.."
cargo build --release --offline
cargo test -q --offline
cargo clippy --offline --all-targets -- -D warnings
