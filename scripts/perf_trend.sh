#!/usr/bin/env sh
# Perf-trend ledger update: takes one fresh benchmark snapshot, appends
# its headline numbers to results/PERF_LEDGER.jsonl (the append-only
# perf history), and renders the trend verdict — the newest record of
# each (threads, hw_threads) group against the median of its preceding
# window (see `bench_trend`). Exit 1 means a wall-time metric regressed
# past the threshold; CI runs this advisory (wall clocks on shared
# runners are noisy), but the sparkline table makes slow drift visible
# PR over PR.
#
# The fresh snapshot itself is disposable (target/); only the one-line
# ledger record accumulates.
set -eu

cd "$(dirname "$0")/.."
ledger="${PERF_LEDGER:-results/PERF_LEDGER.jsonl}"
snap="target/PERF_TREND_SNAP.json"

cargo build --release --offline -p stochcdr-bench
./target/release/bench_snapshot --out "$snap" --ledger "$ledger"
./target/release/bench_trend --ledger "$ledger"
