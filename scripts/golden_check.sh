#!/usr/bin/env sh
# Golden-result gate: regenerates the committed figure/table artifacts and
# diffs them against results/*.txt. Numeric fields compare at rtol 1e-9;
# wall-clock timings are masked (see crates/bench/src/golden.rs). The
# gated outputs are fully deterministic (bit-identical for any thread
# count), so any drift is a real behavior change.
#
# fig4_noise is quick; the two tables redo real solver work — including
# the scaling table's million-state implicit Kronecker row, which is the
# long pole — so the full gate takes on the order of ten minutes in
# release mode. That cost is deliberate: the implicit rows' cycle counts
# and residuals are the regression gate on the matrix-free path.
set -eu

cd "$(dirname "$0")/.."
cargo build --release --offline -p stochcdr-bench

./target/release/fig4_noise --check
./target/release/tab_grid_convergence --check
./target/release/tab_solver_scaling --check

echo "golden gate: all artifacts match"
