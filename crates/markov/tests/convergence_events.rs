//! The stall detector fires on a constructed stalling model — a chain
//! whose subdominant eigenvalue sits at `1 − O(ε)`, so power iteration
//! contracts by `≈ 1 − ε` per step — and the stall is visible in the
//! recorded artifact, not just in the in-process summary.

use stochcdr_linalg::CooMatrix;
use stochcdr_markov::stationary::{PowerIteration, StationarySolver};
use stochcdr_markov::{MarkovError, StochasticMatrix};
use stochcdr_obs::artifact::Artifact;
use stochcdr_obs::{self as obs, JsonLinesSink};

#[test]
fn power_iteration_stall_fires_event_on_stiff_chain() {
    // Two-state chain with transition probabilities ε in both directions:
    // λ₂ = 1 − 2ε, so from a concentrated start every residual reduction
    // is ≈ 1 − 2ε ≥ the 0.99 stall threshold.
    let eps = 1e-7;
    let mut coo = CooMatrix::new(2, 2);
    coo.push(0, 0, 1.0 - eps);
    coo.push(0, 1, eps);
    coo.push(1, 0, eps);
    coo.push(1, 1, 1.0 - eps);
    let p = StochasticMatrix::new(coo.to_csr()).unwrap();

    let _ = obs::uninstall();
    let (sink, buf) = JsonLinesSink::to_shared_buffer();
    obs::install(Box::new(sink));
    // 100 iterations barely dent a 1 − 2e-7 contraction: the solve must
    // exhaust its budget, but the stall event fires long before that.
    let err = PowerIteration::new(1e-12, 100)
        .solve(&p, Some(&[1.0, 0.0]))
        .unwrap_err();
    obs::uninstall();
    assert!(matches!(err, MarkovError::NotConverged { .. }));

    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let artifact = Artifact::load_jsonl(&text).expect("artifact parses");
    let stalls = artifact
        .events
        .get("markov.power.stall")
        .copied()
        .unwrap_or(0);
    assert_eq!(
        stalls, 1,
        "stall event must fire exactly once on a stalling solve"
    );
}
