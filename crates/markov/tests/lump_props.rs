//! Property tests for the symbolic/numeric split of weighted lumping.
//!
//! The solver-facing contract is that a [`LumpPlan`] replay is not an
//! approximation of the from-scratch path but the *same arithmetic* in a
//! preallocated shell: for any chain, partition, and positive weight
//! vector, `lump_with_plan` must reproduce `lump_weighted` bit for bit —
//! pattern and values — at every thread count.

use proptest::prelude::*;
use stochcdr_linalg::{par, CooMatrix};
use stochcdr_markov::lumping::{lump_weighted, lump_with_plan, LumpPlan, LumpWorkspace, Partition};
use stochcdr_markov::StochasticMatrix;

const N: usize = 12;

/// Random row-stochastic matrix on `N` states: every row gets a self
/// loop plus a few weighted targets, then normalizes.
fn chain() -> impl Strategy<Value = StochasticMatrix> {
    prop::collection::vec(
        (
            prop::collection::vec((0..N, 0.05f64..1.0), 1..4),
            0.05f64..1.0,
        ),
        N,
    )
    .prop_map(|rows| {
        let mut coo = CooMatrix::new(N, N);
        for (i, (targets, self_w)) in rows.into_iter().enumerate() {
            let total: f64 = self_w + targets.iter().map(|&(_, v)| v).sum::<f64>();
            coo.push(i, i, self_w / total);
            for (j, v) in targets {
                coo.push(i, j, v / total);
            }
        }
        StochasticMatrix::new(coo.to_csr()).expect("rows normalized")
    })
}

/// Random partition of `N` states: raw labels compacted to
/// first-appearance order, as [`Partition::from_labels`] requires.
fn partition() -> impl Strategy<Value = Partition> {
    prop::collection::vec(0..N, N).prop_map(|raw| {
        let mut remap = [usize::MAX; N];
        let mut next = 0usize;
        let labels: Vec<usize> = raw
            .into_iter()
            .map(|l| {
                if remap[l] == usize::MAX {
                    remap[l] = next;
                    next += 1;
                }
                remap[l]
            })
            .collect();
        Partition::from_labels(labels).expect("labels are contiguous by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Plan-based lumping is bit-identical to the from-scratch path for
    /// arbitrary chains, partitions, and positive weights, at 1 and 4
    /// worker threads.
    #[test]
    fn plan_replay_matches_from_scratch_bitwise(
        p in chain(),
        part in partition(),
        w in prop::collection::vec(0.01f64..10.0, N),
    ) {
        let reference = lump_weighted(&p, &part, &w).expect("from-scratch lumping");
        let plan = LumpPlan::build(&p, &part).expect("plan");
        for threads in [1usize, 4] {
            par::set_threads(Some(threads));
            let mut ws = LumpWorkspace::for_plan(&plan);
            let replay = lump_with_plan(&p, &part, &w, &plan, &mut ws);
            par::set_threads(None);
            let replay = replay.expect("plan replay");
            prop_assert_eq!(
                reference.matrix().indptr(),
                replay.matrix().indptr(),
                "pattern (indptr) drifted at {} threads",
                threads
            );
            prop_assert_eq!(
                reference.matrix().indices(),
                replay.matrix().indices(),
                "pattern (indices) drifted at {} threads",
                threads
            );
            let ref_bits: Vec<u64> = reference.matrix().data().iter().map(|v| v.to_bits()).collect();
            let out_bits: Vec<u64> = replay.matrix().data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(ref_bits, out_bits, "values drifted at {} threads", threads);
        }
    }
}
