//! Validated transition probability matrices.

use stochcdr_linalg::{vecops, CsrMatrix, TransitionOp};
use stochcdr_obs as obs;

use crate::{MarkovError, Result};

/// Row-sum tolerance accepted at construction; rows are renormalized to sum
/// to exactly one afterwards so downstream analyses see a clean TPM.
pub(crate) const ROW_SUM_TOL: f64 = 1e-9;

/// A validated transition probability matrix of a discrete-time Markov
/// chain.
///
/// Invariants enforced at construction and preserved thereafter:
///
/// * the matrix is square,
/// * every stored entry is a finite probability in `[0, 1]` (up to
///   round-off),
/// * every row sums to one within [`f64`] round-off (rows are renormalized
///   exactly once at construction).
///
/// The paper calls this matrix `P`; its entries are
/// `p_ij = P(X_{k+1} = x_j | X_k = x_i)`.
///
/// # Example
///
/// ```
/// use stochcdr_linalg::CooMatrix;
/// use stochcdr_markov::StochasticMatrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 1, 1.0);
/// coo.push(1, 0, 1.0);
/// let p = StochasticMatrix::new(coo.to_csr())?;
/// assert_eq!(p.n(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticMatrix {
    p: CsrMatrix,
    /// Cached transpose, built lazily by solvers that sweep columns.
    /// Stored eagerly here to keep the type simple and shareable.
    pt: CsrMatrix,
}

impl StochasticMatrix {
    /// Validates and wraps a transition matrix.
    ///
    /// Rows whose sums deviate from one by at most `1e-9` are renormalized;
    /// larger deviations are rejected.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::NotSquare`] if the matrix is not square,
    /// * [`MarkovError::InvalidProbability`] for negative/non-finite entries,
    /// * [`MarkovError::RowSumNotOne`] if a row sum is off by more than the
    ///   tolerance (including empty rows).
    pub fn new(p: CsrMatrix) -> Result<Self> {
        Self::with_tolerance(p, ROW_SUM_TOL)
    }

    /// Like [`new`](Self::new) with a caller-chosen row-sum tolerance.
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn with_tolerance(p: CsrMatrix, tol: f64) -> Result<Self> {
        if p.rows() != p.cols() {
            return Err(MarkovError::NotSquare {
                rows: p.rows(),
                cols: p.cols(),
            });
        }
        for (r, c, v) in p.iter() {
            if !v.is_finite() || v < 0.0 || v > 1.0 + tol {
                return Err(MarkovError::InvalidProbability {
                    row: r,
                    col: c,
                    value: v,
                });
            }
        }
        let sums = p.row_sums();
        let mut factors = Vec::with_capacity(p.rows());
        for (r, &s) in sums.iter().enumerate() {
            if (s - 1.0).abs() > tol {
                return Err(MarkovError::RowSumNotOne { row: r, sum: s });
            }
            factors.push(1.0 / s);
        }
        let p = p.scale_rows(&factors);
        let pt = p.transpose();
        Ok(StochasticMatrix { p, pt })
    }

    /// Wraps pre-validated parts without re-checking the invariants.
    ///
    /// `pt` must be the exact transpose of `p` and the rows of `p` must
    /// satisfy the documented invariants (the numeric-refresh paths in
    /// [`crate::lumping`] maintain them by construction).
    pub(crate) fn from_parts_unchecked(p: CsrMatrix, pt: CsrMatrix) -> Self {
        debug_assert_eq!(p.rows(), p.cols());
        debug_assert_eq!(pt.rows(), p.cols());
        debug_assert_eq!(pt.nnz(), p.nnz());
        StochasticMatrix { p, pt }
    }

    /// Mutable access to the matrix and its cached transpose, for
    /// numeric-refresh paths that overwrite values in a fixed pattern.
    /// The caller must keep the two value arrays consistent.
    pub(crate) fn parts_mut(&mut self) -> (&mut CsrMatrix, &mut CsrMatrix) {
        (&mut self.p, &mut self.pt)
    }

    /// Number of states.
    pub fn n(&self) -> usize {
        self.p.rows()
    }

    /// The underlying CSR matrix `P`.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.p
    }

    /// The cached transpose `P^T` (rows of `pt` are columns of `P`).
    pub fn transposed(&self) -> &CsrMatrix {
        &self.pt
    }

    /// Number of stored transitions.
    pub fn nnz(&self) -> usize {
        self.p.nnz()
    }

    /// One step of the chain: `x P` for a distribution row-vector `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n()`.
    pub fn step(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n()];
        self.step_into(x, &mut out);
        out
    }

    /// In-place step: writes `x P` into `out`.
    ///
    /// Computed as the row-parallel product `P^T x` on the cached
    /// transpose, which is bit-identical to the serial scatter `x P` (per
    /// output element, contributions accumulate in the same ascending
    /// source-row order, and IEEE multiplication commutes) while giving
    /// each output element to exactly one worker.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from `n()`.
    pub fn step_into(&self, x: &[f64], out: &mut [f64]) {
        // Latency histogram only for operators large enough that the
        // clock reads are noise; coarse multigrid levels run sub-µs
        // SpMVs where the instrumentation would dominate the kernel.
        if obs::enabled() && x.len() >= 512 {
            let t0 = std::time::Instant::now();
            self.pt.mul_right_into(x, out);
            obs::histogram("markov.spmv.ns", t0.elapsed().as_nanos() as f64);
        } else {
            self.pt.mul_right_into(x, out);
        }
    }

    /// Residual `|| x P - x ||_1` of a candidate stationary vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n()`.
    pub fn stationary_residual(&self, x: &[f64]) -> f64 {
        let y = self.step(x);
        vecops::dist1(&y, x)
    }

    /// Allocation-free variant of
    /// [`stationary_residual`](Self::stationary_residual): `scratch`
    /// receives `x P`. Same bits as the allocating path.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from `n()`.
    pub fn stationary_residual_with(&self, x: &[f64], scratch: &mut [f64]) -> f64 {
        self.step_into(x, scratch);
        vecops::dist1(scratch, x)
    }

    /// The transition probability `P(i -> j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.p.get(i, j)
    }

    /// Consumes the wrapper and returns the underlying matrix.
    pub fn into_inner(self) -> CsrMatrix {
        self.p
    }
}

impl TransitionOp for StochasticMatrix {
    fn rows(&self) -> usize {
        self.n()
    }

    fn cols(&self) -> usize {
        self.n()
    }

    fn nnz(&self) -> usize {
        StochasticMatrix::nnz(self)
    }

    fn mul_left_into(&self, x: &[f64], y: &mut [f64]) {
        self.step_into(x, y);
    }

    fn mul_right_into(&self, x: &[f64], y: &mut [f64]) {
        self.p.mul_right_into(x, y);
    }

    fn for_each_in_row(&self, row: usize, f: &mut dyn FnMut(usize, f64)) {
        for (c, v) in self.p.row(row) {
            f(c, v);
        }
    }

    fn diagonal(&self) -> Vec<f64> {
        self.p.diagonal()
    }

    fn transpose_csr(&self) -> Option<&CsrMatrix> {
        Some(&self.pt)
    }

    fn materialize_csr(&self) -> CsrMatrix {
        self.p.clone()
    }

    fn materialize_dense(&self) -> stochcdr_linalg::DenseMatrix {
        self.p.to_dense()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochcdr_linalg::CooMatrix;

    fn two_state(a: f64, b: f64) -> StochasticMatrix {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0 - a);
        coo.push(0, 1, a);
        coo.push(1, 0, b);
        coo.push(1, 1, 1.0 - b);
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn valid_chain_accepted() {
        let p = two_state(0.3, 0.6);
        assert_eq!(p.n(), 2);
        assert_eq!(p.prob(0, 1), 0.3);
    }

    #[test]
    fn non_square_rejected() {
        let coo = CooMatrix::new(2, 3);
        assert!(matches!(
            StochasticMatrix::new(coo.to_csr()),
            Err(MarkovError::NotSquare { .. })
        ));
    }

    #[test]
    fn bad_row_sum_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 0.5);
        coo.push(1, 1, 1.0);
        assert!(matches!(
            StochasticMatrix::new(coo.to_csr()),
            Err(MarkovError::RowSumNotOne { row: 0, .. })
        ));
    }

    #[test]
    fn empty_row_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        // row 1 empty -> sums to 0
        assert!(matches!(
            StochasticMatrix::new(coo.to_csr()),
            Err(MarkovError::RowSumNotOne { row: 1, .. })
        ));
    }

    #[test]
    fn negative_probability_rejected() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, -0.5);
        // -0.5 is stored; matrix invalid
        assert!(matches!(
            StochasticMatrix::new(coo.to_csr()),
            Err(MarkovError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn near_one_row_sums_are_renormalized() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 1.0 + 1e-12);
        let p = StochasticMatrix::new(coo.to_csr()).unwrap();
        assert!((p.prob(0, 0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn step_propagates_distribution() {
        let p = two_state(1.0, 1.0); // deterministic toggle
        let x = p.step(&[1.0, 0.0]);
        assert_eq!(x, vec![0.0, 1.0]);
    }

    #[test]
    fn stationary_residual_zero_for_fixed_point() {
        let p = two_state(0.5, 0.5);
        assert!(p.stationary_residual(&[0.5, 0.5]) < 1e-15);
        assert!(p.stationary_residual(&[1.0, 0.0]) > 0.9);
    }

    #[test]
    fn transpose_is_cached_consistently() {
        let p = two_state(0.3, 0.6);
        assert_eq!(p.transposed().get(1, 0), 0.3);
        assert_eq!(p.transposed().get(0, 1), 0.6);
    }

    #[test]
    fn transposed_step_is_bit_identical_to_scatter() {
        // The parallel step computes P^T x on the cached transpose; it must
        // reproduce the serial scatter x P bit for bit (same per-element
        // accumulation order; multiplication commutes).
        let n = 40;
        let mut coo = CooMatrix::new(n, n);
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            let mut row: Vec<f64> = (0..5).map(|_| next() + 1e-3).collect();
            let s: f64 = row.iter().sum();
            for v in &mut row {
                *v /= s;
            }
            for (k, v) in row.into_iter().enumerate() {
                coo.push(i, (i * 7 + k * 11) % n, v);
            }
        }
        let p = StochasticMatrix::new(coo.to_csr()).unwrap();
        let x: Vec<f64> = (0..n)
            .map(|i| if i % 3 == 0 { 0.0 } else { next() })
            .collect();
        assert_eq!(p.step(&x), p.matrix().mul_left(&x));
    }
}
