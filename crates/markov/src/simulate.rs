//! Trajectory simulation of Markov chains.
//!
//! The paper's whole point is that simulation cannot certify rare events —
//! but simulation remains the universal *validator*: an empirical
//! occupancy histogram must converge to the stationary distribution, and
//! empirical hitting times to the first-passage solves. This module
//! provides the generic sampler used for such cross-checks (the CDR crate
//! has its own structure-aware simulator).

use rand::Rng;

use crate::{MarkovError, Result, StochasticMatrix};

/// A prepared sampler over a chain: per-row cumulative distributions for
/// `O(log fanout)` transitions.
#[derive(Debug, Clone)]
pub struct ChainSampler {
    /// Row start offsets into `targets`/`cdf`.
    offsets: Vec<usize>,
    targets: Vec<u32>,
    cdf: Vec<f64>,
}

impl ChainSampler {
    /// Prepares a sampler from a validated chain.
    pub fn new(p: &StochasticMatrix) -> Self {
        let m = p.matrix();
        let mut offsets = Vec::with_capacity(p.n() + 1);
        let mut targets = Vec::with_capacity(p.nnz());
        let mut cdf = Vec::with_capacity(p.nnz());
        offsets.push(0);
        for i in 0..p.n() {
            let mut acc = 0.0;
            for (j, v) in m.row(i) {
                acc += v;
                targets.push(j as u32);
                cdf.push(acc);
            }
            // Absorb round-off so sampling never falls off the row.
            if let Some(last) = cdf.last_mut() {
                *last = 1.0;
            }
            offsets.push(targets.len());
        }
        ChainSampler {
            offsets,
            targets,
            cdf,
        }
    }

    /// Number of states.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Draws the successor of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn step<R: Rng + ?Sized>(&self, state: usize, rng: &mut R) -> usize {
        let (lo, hi) = (self.offsets[state], self.offsets[state + 1]);
        assert!(hi > lo, "state {state} has no outgoing transitions");
        let u: f64 = rng.gen();
        let row = &self.cdf[lo..hi];
        let k = row.partition_point(|&c| c < u).min(row.len() - 1);
        self.targets[lo + k] as usize
    }

    /// Walks `steps` transitions from `start`, returning the visited-state
    /// occupancy counts (including the start state).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidArgument`] if `start` is out of range.
    pub fn occupancy<R: Rng + ?Sized>(
        &self,
        start: usize,
        steps: u64,
        rng: &mut R,
    ) -> Result<Vec<u64>> {
        if start >= self.n() {
            return Err(MarkovError::InvalidArgument(format!(
                "start state {start} out of range 0..{}",
                self.n()
            )));
        }
        let mut counts = vec![0u64; self.n()];
        let mut s = start;
        for _ in 0..steps {
            counts[s] += 1;
            s = self.step(s, rng);
        }
        counts[s] += 1;
        Ok(counts)
    }

    /// Empirical hitting time of `target` from `start`, capped at
    /// `max_steps` (returns `None` when the cap is reached first).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidArgument`] for out-of-range states.
    pub fn hitting_time<R: Rng + ?Sized>(
        &self,
        start: usize,
        target: &[usize],
        max_steps: u64,
        rng: &mut R,
    ) -> Result<Option<u64>> {
        if start >= self.n() {
            return Err(MarkovError::InvalidArgument("start out of range".into()));
        }
        let mut in_target = vec![false; self.n()];
        for &t in target {
            if t >= self.n() {
                return Err(MarkovError::InvalidArgument("target out of range".into()));
            }
            in_target[t] = true;
        }
        let mut s = start;
        for k in 0..max_steps {
            if in_target[s] {
                return Ok(Some(k));
            }
            s = self.step(s, rng);
        }
        Ok(None)
    }
}

/// Total-variation distance between an occupancy histogram and a reference
/// distribution.
///
/// # Panics
///
/// Panics if lengths differ or the histogram is empty.
pub fn occupancy_tv(counts: &[u64], reference: &[f64]) -> f64 {
    assert_eq!(counts.len(), reference.len(), "length mismatch");
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "empty histogram");
    0.5 * counts
        .iter()
        .zip(reference)
        .map(|(&c, &r)| (c as f64 / total as f64 - r).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passage::{mean_hitting_times, PassageOptions};
    use crate::stationary::{GthSolver, StationarySolver};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stochcdr_linalg::CooMatrix;

    fn chain(n: usize, edges: &[(usize, usize, f64)]) -> StochasticMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(r, c, v) in edges {
            coo.push(r, c, v);
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    fn ring(n: usize) -> StochasticMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 0.5);
            coo.push(i, (i + n - 1) % n, 0.3);
            coo.push(i, i, 0.2);
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn occupancy_converges_to_stationary() {
        let p = ring(12);
        let eta = GthSolver::new().solve(&p, None).unwrap().distribution;
        let sampler = ChainSampler::new(&p);
        let mut rng = StdRng::seed_from_u64(11);
        let counts = sampler.occupancy(0, 200_000, &mut rng).unwrap();
        let tv = occupancy_tv(&counts, &eta);
        assert!(tv < 0.01, "TV {tv}");
    }

    #[test]
    fn deterministic_chain_cycles() {
        let p = chain(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        let sampler = ChainSampler::new(&p);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sampler.step(0, &mut rng), 1);
        assert_eq!(sampler.step(1, &mut rng), 2);
        assert_eq!(sampler.step(2, &mut rng), 0);
    }

    #[test]
    fn empirical_hitting_time_matches_passage_solve() {
        // Reflecting fair walk to an absorbing end (from passage tests:
        // E[T | start 0] = 12).
        let p = chain(
            4,
            &[
                (0, 0, 0.5),
                (0, 1, 0.5),
                (1, 0, 0.5),
                (1, 2, 0.5),
                (2, 1, 0.5),
                (2, 3, 0.5),
                (3, 3, 1.0),
            ],
        );
        let exact = mean_hitting_times(&p, &[3], &PassageOptions::default()).unwrap()[0];
        let sampler = ChainSampler::new(&p);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut total = 0u64;
        for _ in 0..n {
            total += sampler
                .hitting_time(0, &[3], 100_000, &mut rng)
                .unwrap()
                .unwrap();
        }
        let mean = total as f64 / n as f64;
        assert!(
            (mean / exact - 1.0).abs() < 0.05,
            "empirical {mean} vs exact {exact}"
        );
    }

    #[test]
    fn cap_reports_none() {
        let p = chain(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let sampler = ChainSampler::new(&p);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sampler.hitting_time(0, &[1], 100, &mut rng).unwrap(), None);
    }

    #[test]
    fn argument_validation() {
        let p = ring(4);
        let sampler = ChainSampler::new(&p);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sampler.occupancy(9, 10, &mut rng).is_err());
        assert!(sampler.hitting_time(0, &[9], 10, &mut rng).is_err());
    }
}
