//! Structural classification of Markov chains.
//!
//! Stationary analysis (and the multigrid solver) presuppose an irreducible
//! chain; first-passage analysis needs to know which states are transient.
//! This module computes the communicating classes (strongly connected
//! components of the transition graph), identifies recurrent (closed)
//! classes, and measures the chain's period.

use stochcdr_linalg::CsrMatrix;

use crate::StochasticMatrix;

/// The communicating-class decomposition of a chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// `class_of[state]` — index of the communicating class of each state.
    pub class_of: Vec<usize>,
    /// States of each class, indexed by class id.
    pub classes: Vec<Vec<usize>>,
    /// `true` for each class that is closed (recurrent): no transition
    /// leaves it.
    pub closed: Vec<bool>,
}

impl Classification {
    /// Number of communicating classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// `true` if the chain has a single communicating class.
    pub fn is_irreducible(&self) -> bool {
        self.classes.len() == 1
    }

    /// Indices of the recurrent (closed) classes.
    pub fn recurrent_classes(&self) -> Vec<usize> {
        (0..self.classes.len())
            .filter(|&c| self.closed[c])
            .collect()
    }

    /// All transient states (members of non-closed classes), ascending.
    pub fn transient_states(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .class_of
            .iter()
            .enumerate()
            .filter(|&(_, &c)| !self.closed[c])
            .map(|(s, _)| s)
            .collect();
        v.sort_unstable();
        v
    }
}

/// Computes the communicating classes of a chain.
///
/// Runs an iterative (explicit-stack) Tarjan SCC over the transition graph,
/// so chains with millions of states do not overflow the call stack.
///
/// # Example
///
/// ```
/// use stochcdr_linalg::CooMatrix;
/// use stochcdr_markov::{classify::classify, StochasticMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 0 <-> 1 communicate; 2 is absorbing.
/// let mut coo = CooMatrix::new(3, 3);
/// coo.push(0, 1, 1.0);
/// coo.push(1, 0, 0.5);
/// coo.push(1, 2, 0.5);
/// coo.push(2, 2, 1.0);
/// let cls = classify(&StochasticMatrix::new(coo.to_csr())?);
/// assert_eq!(cls.class_count(), 2);
/// assert_eq!(cls.transient_states(), vec![0, 1]);
/// # Ok(())
/// # }
/// ```
pub fn classify(p: &StochasticMatrix) -> Classification {
    classify_graph(p.matrix())
}

/// [`classify`] on a raw sparse adjacency/weight matrix.
///
/// Edges are the structurally nonzero entries; weights are ignored.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn classify_graph(a: &CsrMatrix) -> Classification {
    assert_eq!(
        a.rows(),
        a.cols(),
        "classification requires a square matrix"
    );
    let n = a.rows();
    // Iterative Tarjan.
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut class_of = vec![UNSET; n];
    let mut classes: Vec<Vec<usize>> = Vec::new();

    // Work stack entries: (node, edge cursor into the node's row).
    let mut work: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        work.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
            let (lo, hi) = (a.indptr()[v], a.indptr()[v + 1]);
            if *cursor < hi - lo {
                let w = a.indices()[lo + *cursor] as usize;
                *cursor += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    work.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    // v is the root of an SCC.
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w] = false;
                        class_of[w] = classes.len();
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    members.sort_unstable();
                    classes.push(members);
                }
            }
        }
    }

    // A class is closed iff no edge leaves it.
    let mut closed = vec![true; classes.len()];
    for r in 0..n {
        for (c, _) in a.row(r) {
            if class_of[r] != class_of[c] {
                closed[class_of[r]] = false;
            }
        }
    }
    Classification {
        class_of,
        classes,
        closed,
    }
}

/// Computes the period of an irreducible chain: the gcd of all cycle
/// lengths through state 0.
///
/// A period of 1 means the chain is aperiodic and power iteration converges.
/// Uses the BFS-level gcd algorithm: for every edge `(u, v)`,
/// `gcd(level(u) + 1 − level(v))` over all edges divides the period.
///
/// # Panics
///
/// Panics if the chain is empty.
pub fn period(p: &StochasticMatrix) -> usize {
    let a = p.matrix();
    let n = a.rows();
    assert!(n > 0, "period of an empty chain is undefined");
    let mut level = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    level[0] = 0;
    queue.push_back(0usize);
    let mut g: usize = 0;
    while let Some(u) = queue.pop_front() {
        for (v, _) in a.row(u) {
            if level[v] == usize::MAX {
                level[v] = level[u] + 1;
                queue.push_back(v);
            } else {
                // The period divides level(u) + 1 − level(v) for every edge;
                // tree-consistent edges (difference 0) contribute nothing.
                let diff = (level[u] + 1).abs_diff(level[v]);
                if diff > 0 {
                    g = gcd(g, diff);
                }
            }
            if g == 1 {
                return 1;
            }
        }
    }
    if g == 0 {
        // No cycles found from state 0 (cannot happen in a stochastic,
        // irreducible chain, but keep a defined answer).
        1
    } else {
        g
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if a == 0 {
        b
    } else {
        gcd(b % a, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochcdr_linalg::CooMatrix;

    fn chain(n: usize, edges: &[(usize, usize, f64)]) -> StochasticMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(r, c, v) in edges {
            coo.push(r, c, v);
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn irreducible_cycle() {
        let p = chain(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        let cls = classify(&p);
        assert!(cls.is_irreducible());
        assert_eq!(cls.classes[0], vec![0, 1, 2]);
        assert!(cls.closed[0]);
        assert_eq!(period(&p), 3);
    }

    #[test]
    fn absorbing_structure() {
        // 0 -> {0,1}; 1 absorbing.
        let p = chain(2, &[(0, 0, 0.5), (0, 1, 0.5), (1, 1, 1.0)]);
        let cls = classify(&p);
        assert_eq!(cls.class_count(), 2);
        assert!(!cls.is_irreducible());
        assert_eq!(cls.transient_states(), vec![0]);
        let rec = cls.recurrent_classes();
        assert_eq!(rec.len(), 1);
        assert_eq!(cls.classes[rec[0]], vec![1]);
    }

    #[test]
    fn two_closed_classes() {
        let p = chain(4, &[(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)]);
        let cls = classify(&p);
        assert_eq!(cls.class_count(), 2);
        assert_eq!(cls.recurrent_classes().len(), 2);
        assert!(cls.transient_states().is_empty());
    }

    #[test]
    fn aperiodic_when_self_loop_exists() {
        let p = chain(3, &[(0, 1, 0.5), (0, 0, 0.5), (1, 2, 1.0), (2, 0, 1.0)]);
        assert_eq!(period(&p), 1);
    }

    #[test]
    fn period_two_walk() {
        // Bipartite 4-cycle.
        let p = chain(
            4,
            &[
                (0, 1, 0.5),
                (0, 3, 0.5),
                (1, 0, 0.5),
                (1, 2, 0.5),
                (2, 1, 0.5),
                (2, 3, 0.5),
                (3, 2, 0.5),
                (3, 0, 0.5),
            ],
        );
        assert_eq!(period(&p), 2);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // A long path with a closing edge: one big SCC of 100k states.
        let n = 100_000;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, 1.0);
        }
        coo.push(n - 1, 0, 1.0);
        let p = StochasticMatrix::new(coo.to_csr()).unwrap();
        let cls = classify(&p);
        assert!(cls.is_irreducible());
    }

    #[test]
    fn class_of_is_consistent_with_classes() {
        let p = chain(2, &[(0, 0, 0.5), (0, 1, 0.5), (1, 1, 1.0)]);
        let cls = classify(&p);
        for (cid, members) in cls.classes.iter().enumerate() {
            for &s in members {
                assert_eq!(cls.class_of[s], cid);
            }
        }
    }
}
