//! The Poisson equation and asymptotic variance of time averages.
//!
//! The paper's infeasibility argument — simulation needs astronomically
//! many symbols — is quantified by the Markov-chain central limit theorem:
//! the time average `S_n = (1/n) Σ f(X_k)` satisfies
//! `√n (S_n − π f) → N(0, σ²)` with the *asymptotic variance*
//!
//! ```text
//! σ² = 2 π(f̄ h) − π(f̄²),    (I − P) h = f̄,    f̄ = f − π(f) 1,
//! ```
//!
//! where `h` solves the chain's **Poisson equation**. Because successive
//! symbols are correlated through the loop, σ² can exceed the i.i.d.
//! variance by the integrated autocorrelation factor — Monte-Carlo BER
//! estimates need *more* samples than the binomial formula suggests.

use stochcdr_linalg::{vecops, CooMatrix, DenseMatrix, GmresOptions};

use crate::{MarkovError, Result, StochasticMatrix};

/// State-count threshold below which the Poisson equation is solved with a
/// dense bordered system instead of GMRES.
pub const DENSE_POISSON_CAP: usize = 1500;

/// Solves the Poisson equation `(I − P) h = f − π(f) 1` with the
/// normalization `π h = 0`.
///
/// For chains up to [`DENSE_POISSON_CAP`] states the singular system is
/// solved exactly via the bordered dense matrix
/// `[[I − P, 1], [π, 0]]`; larger chains use restarted GMRES on the
/// (consistent) singular sparse system followed by re-normalization.
///
/// # Errors
///
/// * [`MarkovError::InvalidArgument`] for length mismatches or a
///   non-distribution `eta`,
/// * solver errors from the dense or GMRES paths.
pub fn poisson_solve(p: &StochasticMatrix, eta: &[f64], f: &[f64]) -> Result<Vec<f64>> {
    let n = p.n();
    if eta.len() != n || f.len() != n {
        return Err(MarkovError::InvalidArgument("length mismatch".into()));
    }
    if !vecops::is_nonnegative(eta) || (vecops::sum(eta) - 1.0).abs() > 1e-6 {
        return Err(MarkovError::InvalidArgument(
            "eta must be the stationary distribution".into(),
        ));
    }
    let mean: f64 = eta.iter().zip(f).map(|(e, v)| e * v).sum();
    let fbar: Vec<f64> = f.iter().map(|v| v - mean).collect();

    let mut h = if n <= DENSE_POISSON_CAP {
        // Bordered system: (I - P) h + c 1 = fbar, pi . h = 0.
        let mut a = DenseMatrix::zeros(n + 1, n + 1);
        for i in 0..n {
            a[(i, i)] = 1.0;
        }
        for (r, c, v) in p.matrix().iter() {
            a[(r, c)] -= v;
        }
        for i in 0..n {
            a[(i, n)] = 1.0;
            a[(n, i)] = eta[i];
        }
        let mut rhs = fbar.clone();
        rhs.push(0.0);
        let sol = a.solve(&rhs)?;
        sol[..n].to_vec()
    } else {
        // GMRES on the consistent singular system; the Krylov space stays
        // in the range of (I - P), so the iteration converges to *a*
        // solution, which the normalization below pins down.
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
        }
        for (r, c, v) in p.matrix().iter() {
            coo.push(r, c, -v);
        }
        let a = coo.to_csr();
        let opts = GmresOptions {
            restart: 80,
            tol: 1e-10,
            max_iters: 200_000,
        };
        stochcdr_linalg::gmres(&a, &fbar, None, &opts)?.x
    };
    // Normalize: pi . h = 0.
    let bias: f64 = eta.iter().zip(&h).map(|(e, v)| e * v).sum();
    for v in h.iter_mut() {
        *v -= bias;
    }
    Ok(h)
}

/// Asymptotic variance `σ²` of the time average of `f` under stationarity
/// (the Markov-chain CLT variance).
///
/// `σ² / n` is the variance of an `n`-symbol Monte-Carlo estimate of
/// `π(f)`; the ratio `σ² / Var_π(f)` is the *integrated autocorrelation
/// factor* by which correlated sampling inflates the required run length.
///
/// # Errors
///
/// Propagates [`poisson_solve`] errors.
pub fn asymptotic_variance(p: &StochasticMatrix, eta: &[f64], f: &[f64]) -> Result<f64> {
    let h = poisson_solve(p, eta, f)?;
    let mean: f64 = eta.iter().zip(f).map(|(e, v)| e * v).sum();
    let mut two_fh = 0.0;
    let mut f2 = 0.0;
    for i in 0..p.n() {
        let fb = f[i] - mean;
        two_fh += 2.0 * eta[i] * fb * h[i];
        f2 += eta[i] * fb * fb;
    }
    Ok((two_fh - f2).max(0.0))
}

/// Symbols required for a Monte-Carlo estimate of `π(f)` with 95 %
/// confidence half-width `half_width`, accounting for chain correlation.
///
/// # Errors
///
/// Propagates [`asymptotic_variance`] errors; returns
/// [`MarkovError::InvalidArgument`] if `half_width <= 0`.
pub fn required_samples(
    p: &StochasticMatrix,
    eta: &[f64],
    f: &[f64],
    half_width: f64,
) -> Result<f64> {
    if half_width <= 0.0 {
        return Err(MarkovError::InvalidArgument(
            "half width must be positive".into(),
        ));
    }
    let sigma2 = asymptotic_variance(p, eta, f)?;
    Ok((1.96 / half_width).powi(2) * sigma2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::autocovariance;
    use crate::stationary::{GthSolver, StationarySolver};
    use stochcdr_linalg::CooMatrix;

    fn two_state(a: f64, b: f64) -> StochasticMatrix {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0 - a);
        coo.push(0, 1, a);
        coo.push(1, 0, b);
        coo.push(1, 1, 1.0 - b);
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn poisson_equation_residual_is_zero() {
        let p = two_state(0.3, 0.5);
        let eta = GthSolver::new().solve(&p, None).unwrap().distribution;
        let f = [1.0, 4.0];
        let h = poisson_solve(&p, &eta, &f).unwrap();
        // (I - P) h must equal f - pi(f).
        let mean: f64 = eta.iter().zip(&f).map(|(e, v)| e * v).sum();
        let ph = p.matrix().mul_right(&h);
        for i in 0..2 {
            assert!((h[i] - ph[i] - (f[i] - mean)).abs() < 1e-10);
        }
        // Normalization.
        let bias: f64 = eta.iter().zip(&h).map(|(e, v)| e * v).sum();
        assert!(bias.abs() < 1e-12);
    }

    #[test]
    fn two_state_closed_form_variance() {
        // For f = indicator(state 1): sigma^2 = pi0 pi1 (1 + rho)/(1 - rho)
        // with rho = 1 - a - b.
        let (a, b) = (0.2, 0.3);
        let p = two_state(a, b);
        let eta = GthSolver::new().solve(&p, None).unwrap().distribution;
        let f = [0.0, 1.0];
        let rho: f64 = 1.0 - a - b;
        let expect = eta[0] * eta[1] * (1.0 + rho) / (1.0 - rho);
        let got = asymptotic_variance(&p, &eta, &f).unwrap();
        assert!((got - expect).abs() < 1e-10, "{got} vs {expect}");
    }

    #[test]
    fn iid_chain_reduces_to_plain_variance() {
        // Rows identical -> consecutive samples independent.
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, 0, 0.5);
            coo.push(i, 1, 0.3);
            coo.push(i, 2, 0.2);
        }
        let p = StochasticMatrix::new(coo.to_csr()).unwrap();
        let eta = vec![0.5, 0.3, 0.2];
        let f = [1.0, 2.0, 7.0];
        let sigma2 = asymptotic_variance(&p, &eta, &f).unwrap();
        let plain = crate::functional::variance(&eta, &f).unwrap();
        assert!((sigma2 - plain).abs() < 1e-9, "{sigma2} vs {plain}");
    }

    #[test]
    fn matches_autocovariance_series() {
        // sigma^2 = C(0) + 2 sum_{k>=1} C(k).
        let p = two_state(0.15, 0.25);
        let eta = GthSolver::new().solve(&p, None).unwrap().distribution;
        let f = [2.0, -1.0];
        let c = autocovariance(&p, &eta, &f, 400).unwrap();
        let series: f64 = c[0] + 2.0 * c[1..].iter().sum::<f64>();
        let sigma2 = asymptotic_variance(&p, &eta, &f).unwrap();
        assert!((sigma2 - series).abs() < 1e-8, "{sigma2} vs {series}");
    }

    #[test]
    fn positively_correlated_chains_need_more_samples() {
        // Sticky chain (rho > 0) inflates the requirement vs a fast chain.
        let sticky = two_state(0.05, 0.05);
        let fast = two_state(0.5, 0.5);
        let f = [0.0, 1.0];
        let eta = [0.5, 0.5];
        let ns = required_samples(&sticky, &eta, &f, 0.01).unwrap();
        let nf = required_samples(&fast, &eta, &f, 0.01).unwrap();
        assert!(ns > nf * 5.0, "sticky {ns:.0} vs fast {nf:.0}");
        assert!(required_samples(&fast, &eta, &f, 0.0).is_err());
    }

    #[test]
    fn argument_validation() {
        let p = two_state(0.3, 0.3);
        assert!(poisson_solve(&p, &[1.0], &[0.0, 1.0]).is_err());
        assert!(poisson_solve(&p, &[0.9, 0.3], &[0.0, 1.0]).is_err());
    }
}
