//! Censored chains (stochastic complements).
//!
//! The chain *watched only while it is inside a subset `A`* is again a
//! Markov chain, with transition matrix
//!
//! ```text
//! S = P_AA + P_AB (I − P_BB)^{-1} P_BA
//! ```
//!
//! — the *stochastic complement* of `A`. Censoring is the exact form of
//! the state elimination that GTH performs one state at a time, and the
//! exact counterpart of the lossy aggregation step in multigrid; it also
//! underlies the paper's lumpability discussion (a weakly lumped chain is
//! a censored-and-aggregated one). The key identity, used as a test
//! oracle throughout the workspace: the stationary distribution of `S` is
//! the stationary distribution of `P` restricted to `A` and renormalized.

use stochcdr_linalg::{CooMatrix, DenseMatrix};

use crate::{MarkovError, Result, StochasticMatrix};

/// Computes the stochastic complement of the chain on the subset `keep`
/// (in the order given): the censored chain observed only on those states.
///
/// Solves the `(I − P_BB)` system densely, so the *eliminated* set should
/// be at most a few thousand states.
///
/// # Example
///
/// ```
/// use stochcdr_linalg::CooMatrix;
/// use stochcdr_markov::{censored::censor, StochasticMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Deterministic 3-cycle watched on {0, 2} becomes a 2-cycle.
/// let mut coo = CooMatrix::new(3, 3);
/// coo.push(0, 1, 1.0);
/// coo.push(1, 2, 1.0);
/// coo.push(2, 0, 1.0);
/// let p = StochasticMatrix::new(coo.to_csr())?;
/// let s = censor(&p, &[0, 2])?;
/// assert_eq!(s.prob(0, 1), 1.0);
/// assert_eq!(s.prob(1, 0), 1.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`MarkovError::InvalidArgument`] if `keep` is empty, has duplicates,
///   or indexes out of range,
/// * [`MarkovError::Linalg`] if `(I − P_BB)` is singular (the eliminated
///   set contains a closed subchain, so the walk may never return).
pub fn censor(p: &StochasticMatrix, keep: &[usize]) -> Result<StochasticMatrix> {
    let n = p.n();
    if keep.is_empty() {
        return Err(MarkovError::InvalidArgument("keep set is empty".into()));
    }
    let mut in_keep = vec![false; n];
    let mut keep_index = vec![usize::MAX; n];
    for (k, &s) in keep.iter().enumerate() {
        if s >= n {
            return Err(MarkovError::InvalidArgument(format!(
                "state {s} out of range 0..{n}"
            )));
        }
        if in_keep[s] {
            return Err(MarkovError::InvalidArgument(format!(
                "state {s} listed twice"
            )));
        }
        in_keep[s] = true;
        keep_index[s] = k;
    }
    let eliminated: Vec<usize> = (0..n).filter(|&s| !in_keep[s]).collect();
    let mut elim_index = vec![usize::MAX; n];
    for (k, &s) in eliminated.iter().enumerate() {
        elim_index[s] = k;
    }
    let (na, nb) = (keep.len(), eliminated.len());

    if nb == 0 {
        // Nothing to eliminate: permuted original chain.
        let mut coo = CooMatrix::new(na, na);
        for (k, &s) in keep.iter().enumerate() {
            for (j, v) in p.matrix().row(s) {
                coo.push(k, keep_index[j], v);
            }
        }
        return StochasticMatrix::with_tolerance(coo.to_csr(), 1e-9);
    }

    // Blocks: paa (sparse accumulation), pab (na x nb), pba (nb x na),
    // pbb (nb x nb, dense).
    let mut i_minus_pbb = DenseMatrix::identity(nb);
    let mut pba = DenseMatrix::zeros(nb, na);
    for (k, &s) in eliminated.iter().enumerate() {
        for (j, v) in p.matrix().row(s) {
            if in_keep[j] {
                pba[(k, keep_index[j])] += v;
            } else {
                i_minus_pbb[(k, elim_index[j])] -= v;
            }
        }
    }
    // F = (I − P_BB)^{-1} P_BA, solved column by column.
    let lu = i_minus_pbb.lu().map_err(|e| match e {
        stochcdr_linalg::LinalgError::SingularMatrix { .. } => MarkovError::Reducible(
            "eliminated set contains a closed subchain; censoring undefined".into(),
        ),
        other => MarkovError::Linalg(other),
    })?;
    let mut f = DenseMatrix::zeros(nb, na);
    let mut col = vec![0.0f64; nb];
    for j in 0..na {
        for (k, c) in col.iter_mut().enumerate() {
            *c = pba[(k, j)];
        }
        let x = lu.solve(&col)?;
        for (k, &v) in x.iter().enumerate() {
            // F is a probability (the chance of re-entering the kept set at
            // column j); LU round-off can leave -1e-18-scale negatives.
            if v < -1e-9 {
                return Err(MarkovError::Linalg(
                    stochcdr_linalg::LinalgError::NonFiniteValue {
                        row: k,
                        col: j,
                        value: v,
                    },
                ));
            }
            f[(k, j)] = v.max(0.0);
        }
    }

    // S = P_AA + P_AB F.
    let mut coo = CooMatrix::new(na, na);
    for (k, &s) in keep.iter().enumerate() {
        for (j, v) in p.matrix().row(s) {
            if in_keep[j] {
                coo.push(k, keep_index[j], v);
            } else {
                let b = elim_index[j];
                for jj in 0..na {
                    let fv = f[(b, jj)];
                    if fv != 0.0 {
                        coo.push(k, jj, v * fv);
                    }
                }
            }
        }
    }
    StochasticMatrix::with_tolerance(coo.to_csr(), 1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary::{GthSolver, StationarySolver};
    use stochcdr_linalg::vecops;

    fn chain(n: usize, edges: &[(usize, usize, f64)]) -> StochasticMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(r, c, v) in edges {
            coo.push(r, c, v);
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    fn ring(n: usize) -> StochasticMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 0.6);
            coo.push(i, (i + n - 1) % n, 0.3);
            coo.push(i, i, 0.1);
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn censored_chain_is_stochastic() {
        let p = ring(8);
        let s = censor(&p, &[0, 2, 4, 6]).unwrap();
        assert_eq!(s.n(), 4);
        for sum in s.matrix().row_sums() {
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stationary_restriction_identity() {
        // eta_S  ==  eta_P restricted to A, renormalized — for any A.
        let p = ring(10);
        let eta = GthSolver::new().solve(&p, None).unwrap().distribution;
        for keep in [vec![0, 1, 2], vec![1, 4, 7, 9], vec![5]] {
            let s = censor(&p, &keep).unwrap();
            let eta_s = if s.n() == 1 {
                vec![1.0]
            } else {
                GthSolver::new().solve(&s, None).unwrap().distribution
            };
            let mut restricted: Vec<f64> = keep.iter().map(|&i| eta[i]).collect();
            vecops::normalize_l1(&mut restricted);
            assert!(
                vecops::dist1(&eta_s, &restricted) < 1e-10,
                "identity fails for keep = {keep:?}"
            );
        }
    }

    #[test]
    fn keep_everything_is_identity_permutation() {
        let p = ring(5);
        let keep = [3, 1, 4, 0, 2];
        let s = censor(&p, &keep).unwrap();
        for (new_i, &old_i) in keep.iter().enumerate() {
            for (new_j, &old_j) in keep.iter().enumerate() {
                assert!((s.prob(new_i, new_j) - p.prob(old_i, old_j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn two_state_complement_closed_form() {
        // Censor state 1 out of a 3-cycle with known dynamics:
        // 0 -> 1 -> 2 -> 0 deterministically; watching {0, 2} gives the
        // deterministic 2-cycle.
        let p = chain(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        let s = censor(&p, &[0, 2]).unwrap();
        assert!((s.prob(0, 1) - 1.0).abs() < 1e-12);
        assert!((s.prob(1, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn closed_eliminated_set_rejected() {
        // State 2 is absorbing: eliminating it leaves a walk that may never
        // return to the kept set.
        let p = chain(3, &[(0, 1, 0.5), (0, 2, 0.5), (1, 0, 1.0), (2, 2, 1.0)]);
        assert!(matches!(
            censor(&p, &[0, 1]),
            Err(MarkovError::Reducible(_))
        ));
    }

    #[test]
    fn argument_validation() {
        let p = ring(4);
        assert!(censor(&p, &[]).is_err());
        assert!(censor(&p, &[0, 0]).is_err());
        assert!(censor(&p, &[9]).is_err());
    }
}
