//! Matrix-free stationary analysis helpers.
//!
//! The paper's outlook for "more complex models" is to avoid explicit
//! sparse storage entirely, using "hierarchical generalized
//! Kronecker-algebra and/or probability decision diagram representations".
//! The workspace-wide interface for that is
//! [`TransitionOp`](stochcdr_linalg::TransitionOp), which every
//! [`StationarySolver`](crate::stationary::StationarySolver) consumes via
//! `solve_op`. This module keeps two conveniences on top of it:
//!
//! * [`FnOp`] — wraps a closure as a left-apply-only operator (tests and
//!   ad-hoc compositions),
//! * [`stationary_power`] — a thin functional wrapper over
//!   [`PowerIteration::solve_op`](crate::stationary::PowerIteration).

use stochcdr_linalg::TransitionOp;

use crate::stationary::{PowerIteration, SolveOptions, StationaryResult, StationarySolver};
use crate::Result;

/// Wraps a closure as a left-apply-only [`TransitionOp`] (useful for tests
/// and ad-hoc compositions).
///
/// Only `x·A` products are supported; `mul_right_into` and row traversal
/// panic. That restricts `FnOp` to solvers that are fully matrix-free in
/// the left product — power iteration — which is exactly the set of
/// methods a black-box operator can drive.
pub struct FnOp<F> {
    n: usize,
    f: F,
}

impl<F: Fn(&[f64], &mut [f64]) + Sync> FnOp<F> {
    /// Creates an operator of dimension `n` from `f(x, out)` computing
    /// `out = x P`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, f: F) -> Self {
        assert!(n > 0, "operator dimension must be positive");
        FnOp { n, f }
    }
}

impl<F: Fn(&[f64], &mut [f64]) + Sync> TransitionOp for FnOp<F> {
    fn rows(&self) -> usize {
        self.n
    }

    fn cols(&self) -> usize {
        self.n
    }

    fn nnz(&self) -> usize {
        0 // unknown for a black-box closure
    }

    fn mul_left_into(&self, x: &[f64], y: &mut [f64]) {
        (self.f)(x, y)
    }

    fn mul_right_into(&self, _x: &[f64], _y: &mut [f64]) {
        panic!("FnOp exposes only the left product x·A");
    }

    fn for_each_in_row(&self, _row: usize, _f: &mut dyn FnMut(usize, f64)) {
        panic!("FnOp has no row access; use a materialized backend");
    }
}

impl std::fmt::Debug for FnOp<fn(&[f64], &mut [f64])> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnOp").field("n", &self.n).finish()
    }
}

/// Power iteration on a matrix-free operator: `x_{k+1} = x_k P`,
/// renormalized, until the L1 change drops below `tol`.
///
/// Equivalent to `PowerIteration::new(tol, max_iters).solve_op(op, init)`;
/// kept as a function for call sites that do not want to name the solver.
///
/// # Errors
///
/// * [`crate::MarkovError::InvalidArgument`] for a malformed initial
///   vector,
/// * [`crate::MarkovError::NotConverged`] when the budget is exhausted.
///
/// # Panics
///
/// Panics if `tol <= 0` or `max_iters == 0`.
pub fn stationary_power(
    op: &dyn TransitionOp,
    init: Option<&[f64]>,
    tol: f64,
    max_iters: usize,
) -> Result<StationaryResult> {
    PowerIteration::with_options(SolveOptions::new(tol, max_iters)).solve_op(op, init)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MarkovError, StochasticMatrix};
    use stochcdr_linalg::CooMatrix;

    fn two_state(a: f64, b: f64) -> StochasticMatrix {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0 - a);
        coo.push(0, 1, a);
        coo.push(1, 0, b);
        coo.push(1, 1, 1.0 - b);
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn matrix_operator_matches_power_iteration() {
        let p = two_state(0.3, 0.6);
        let r = stationary_power(&p, None, 1e-12, 100_000).unwrap();
        assert!((r.distribution[0] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn closure_operator_works() {
        // Hand-rolled toggle-with-leak operator.
        let op = FnOp::new(2, |x: &[f64], out: &mut [f64]| {
            out[0] = 0.9 * x[1] + 0.1 * x[0];
            out[1] = 0.9 * x[0] + 0.1 * x[1];
        });
        let r = stationary_power(&op, None, 1e-12, 10_000).unwrap();
        assert!((r.distribution[0] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn invalid_init_rejected() {
        let p = two_state(0.5, 0.5);
        assert!(stationary_power(&p, Some(&[1.0]), 1e-9, 10).is_err());
        assert!(stationary_power(&p, Some(&[-1.0, 2.0]), 1e-9, 10).is_err());
    }

    #[test]
    fn budget_exhaustion_errors() {
        let p = two_state(1.0, 1.0); // periodic
        let err = stationary_power(&p, Some(&[1.0, 0.0]), 1e-12, 7).unwrap_err();
        assert!(matches!(
            err,
            MarkovError::NotConverged { iterations: 7, .. }
        ));
    }
}
