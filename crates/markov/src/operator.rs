//! Matrix-free stationary analysis.
//!
//! The paper's outlook for "more complex models" is to avoid explicit
//! sparse storage entirely, using "hierarchical generalized
//! Kronecker-algebra and/or probability decision diagram representations".
//! Any such representation only needs to expose one operation — applying
//! the transition operator to a distribution — which this module captures
//! as [`StochasticOp`], together with a power-iteration solver that works
//! directly on the operator.

use stochcdr_linalg::vecops;

use crate::stationary::StationaryResult;
use crate::{MarkovError, Result, StochasticMatrix};

/// A (row-)stochastic linear operator applied from the left:
/// `out = x P` for a distribution row-vector `x`.
///
/// Implementations must preserve non-negativity and total mass (up to
/// round-off). Implemented for [`StochasticMatrix`] and intended for
/// compact product-form representations (e.g. Kronecker operators) that
/// never materialize `P`.
pub trait StochasticOp {
    /// Number of states.
    fn n(&self) -> usize;

    /// Applies one step: writes `x P` into `out`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len() != n()` or
    /// `out.len() != n()`.
    fn apply_left(&self, x: &[f64], out: &mut [f64]);
}

impl StochasticOp for StochasticMatrix {
    fn n(&self) -> usize {
        StochasticMatrix::n(self)
    }

    fn apply_left(&self, x: &[f64], out: &mut [f64]) {
        self.step_into(x, out);
    }
}

/// Wraps a closure as a [`StochasticOp`] (useful for tests and ad-hoc
/// compositions).
pub struct FnOp<F> {
    n: usize,
    f: F,
}

impl<F: Fn(&[f64], &mut [f64])> FnOp<F> {
    /// Creates an operator of dimension `n` from `f(x, out)` computing
    /// `out = x P`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, f: F) -> Self {
        assert!(n > 0, "operator dimension must be positive");
        FnOp { n, f }
    }
}

impl<F: Fn(&[f64], &mut [f64])> StochasticOp for FnOp<F> {
    fn n(&self) -> usize {
        self.n
    }

    fn apply_left(&self, x: &[f64], out: &mut [f64]) {
        (self.f)(x, out)
    }
}

impl std::fmt::Debug for FnOp<fn(&[f64], &mut [f64])> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnOp").field("n", &self.n).finish()
    }
}

/// Power iteration on a matrix-free operator: `x_{k+1} = x_k P`,
/// renormalized, until the L1 change drops below `tol`.
///
/// # Errors
///
/// * [`MarkovError::InvalidArgument`] for a malformed initial vector,
/// * [`MarkovError::NotConverged`] when the budget is exhausted.
pub fn stationary_power(
    op: &dyn StochasticOp,
    init: Option<&[f64]>,
    tol: f64,
    max_iters: usize,
) -> Result<StationaryResult> {
    assert!(tol > 0.0, "tolerance must be positive");
    let n = op.n();
    let mut x = match init {
        None => vecops::uniform(n),
        Some(v) => {
            let mut x = v.to_vec();
            if x.len() != n || !vecops::is_nonnegative(&x) || !vecops::normalize_l1(&mut x) {
                return Err(MarkovError::InvalidArgument(
                    "initial vector must be a non-negative distribution of matching length"
                        .into(),
                ));
            }
            x
        }
    };
    let mut y = vec![0.0; n];
    let mut res = f64::INFINITY;
    for it in 1..=max_iters {
        op.apply_left(&x, &mut y);
        vecops::normalize_l1(&mut y);
        res = vecops::dist1(&x, &y);
        std::mem::swap(&mut x, &mut y);
        if res <= tol {
            vecops::clamp_roundoff(&mut x, 1e-12);
            return Ok(StationaryResult { distribution: x, iterations: it, residual: res });
        }
    }
    Err(MarkovError::NotConverged { iterations: max_iters, residual: res })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochcdr_linalg::CooMatrix;

    fn two_state(a: f64, b: f64) -> StochasticMatrix {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0 - a);
        coo.push(0, 1, a);
        coo.push(1, 0, b);
        coo.push(1, 1, 1.0 - b);
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn matrix_operator_matches_power_iteration() {
        let p = two_state(0.3, 0.6);
        let r = stationary_power(&p, None, 1e-12, 100_000).unwrap();
        assert!((r.distribution[0] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn closure_operator_works() {
        // Hand-rolled toggle-with-leak operator.
        let op = FnOp::new(2, |x: &[f64], out: &mut [f64]| {
            out[0] = 0.9 * x[1] + 0.1 * x[0];
            out[1] = 0.9 * x[0] + 0.1 * x[1];
        });
        let r = stationary_power(&op, None, 1e-12, 10_000).unwrap();
        assert!((r.distribution[0] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn invalid_init_rejected() {
        let p = two_state(0.5, 0.5);
        assert!(stationary_power(&p, Some(&[1.0]), 1e-9, 10).is_err());
        assert!(stationary_power(&p, Some(&[-1.0, 2.0]), 1e-9, 10).is_err());
    }

    #[test]
    fn budget_exhaustion_errors() {
        let p = two_state(1.0, 1.0); // periodic
        let err = stationary_power(&p, Some(&[1.0, 0.0]), 1e-12, 7).unwrap_err();
        assert!(matches!(err, MarkovError::NotConverged { iterations: 7, .. }));
    }
}
