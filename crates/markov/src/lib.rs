//! Discrete-time Markov-chain analysis for the `stochcdr` workspace.
//!
//! This crate supplies the "standard Markov chain analysis" machinery the
//! paper (Demir & Feldmann, DATE 2000) relies on:
//!
//! * [`StochasticMatrix`] — a validated transition probability matrix (TPM),
//! * [`stationary`] — solvers for the stationary distribution `η P = η`:
//!   power iteration, (damped) Jacobi, Gauss–Seidel, and the direct GTH
//!   algorithm used at the coarsest multigrid level,
//! * [`passage`] — mean first-passage / absorption analysis (the paper's
//!   "mean time between cycle slips ... involves solving a linear system
//!   with the (modified) TPM"),
//! * [`classify`] — communicating classes, irreducibility and periodicity,
//! * [`lumping`] — exact and weighted (weak) lumping of chains, the building
//!   block of aggregation/disaggregation multigrid,
//! * [`transient`] — finite-horizon distribution evolution,
//! * [`functional`] — expectations, tails and autocorrelations of functions
//!   defined on the chain's state space.
//!
//! # Example
//!
//! ```
//! use stochcdr_linalg::CooMatrix;
//! use stochcdr_markov::{StochasticMatrix, stationary::{PowerIteration, StationarySolver}};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut coo = CooMatrix::new(2, 2);
//! coo.push(0, 0, 0.9);
//! coo.push(0, 1, 0.1);
//! coo.push(1, 0, 0.2);
//! coo.push(1, 1, 0.8);
//! let p = StochasticMatrix::new(coo.to_csr())?;
//! let eta = PowerIteration::default().solve(&p, None)?;
//! assert!((eta.distribution[0] - 2.0 / 3.0).abs() < 1e-8);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod censored;
pub mod classify;
mod error;
pub mod functional;
pub mod implicit;
pub mod lumping;
pub mod operator;
pub mod passage;
pub mod poisson;
pub mod simulate;
pub mod stationary;
mod stochastic;
pub mod transient;

pub use error::{MarkovError, Result};
pub use implicit::ImplicitStochastic;
pub use stochastic::StochasticMatrix;
