//! Exact and weighted (weak) lumping of Markov chains.
//!
//! The paper builds its multigrid solver on lumpability: "we partition these
//! N states into n disjoint sets ... and form a new stochastic process by
//! defining new states corresponding to the n sets". The lumped process is
//! Markov for *any* initial distribution only if the partition is *exactly
//! (strongly) lumpable*; otherwise one obtains a useful approximation by
//! lumping with respect to a particular distribution — *weak lumping* — which
//! is precisely the aggregation step of aggregation/disaggregation methods.
//!
//! * [`Partition`] — a validated partition of the state space,
//! * [`is_exactly_lumpable`] — Kemeny–Snell strong-lumpability test,
//! * [`lump_exact`] — the lumped TPM of an exactly lumpable partition,
//! * [`lump_weighted`] — the aggregated TPM with respect to a weight vector
//!   (rows of each block averaged with the block-conditional weights).
//!
//! # Symbolic/numeric split
//!
//! The sparsity pattern of the weighted-lumped matrix depends only on the
//! fine pattern and the partition — the weights touch the *values* alone.
//! Solvers that re-aggregate every iteration (aggregation/disaggregation
//! multigrid rebuilds the coarse chain from the current iterate each
//! cycle) therefore split the work:
//!
//! * [`LumpPlan`] — one-time **symbolic** setup: the coarse CSR pattern, a
//!   fine-entry → coarse-slot gather map replaying the from-scratch
//!   assembly order exactly, and the transpose permutation,
//! * [`LumpWorkspace`] — preallocated per-level numeric buffers,
//! * [`lump_weighted_into`] — the **numeric** refresh: recomputes values
//!   into an existing matrix with zero heap allocations, bit-identical to
//!   [`lump_weighted`] for strictly positive weights (see the invalidation
//!   and precision notes on [`LumpPlan`]).

use stochcdr_linalg::{par, CooMatrix, CsrMatrix, TransitionOp};

use crate::{MarkovError, Result, StochasticMatrix};

/// Fixed row-chunk size for the parallel aggregation kernels. A pure
/// constant (never derived from the thread count) so the order in which
/// per-chunk results are concatenated/combined — and hence every
/// floating-point sum — is identical for every thread count.
const LUMP_CHUNK: usize = 4096;

/// A partition of `0..n` into disjoint, exhaustive blocks.
///
/// # Example
///
/// ```
/// use stochcdr_markov::lumping::Partition;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let part = Partition::from_labels(vec![0, 0, 1, 1])?;
/// assert_eq!(part.block_count(), 2);
/// assert_eq!(part.members()[1], vec![2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `block_of[state]` — the block index of each state.
    block_of: Vec<usize>,
    /// Number of blocks.
    blocks: usize,
    /// CSR-style member index: block `b`'s members (ascending) are
    /// `member_idx[member_ptr[b]..member_ptr[b + 1]]`. Precomputed so the
    /// aggregation kernels can *gather* per block — each block summed by
    /// one worker in ascending member order, which reproduces the serial
    /// scatter bit for bit at any thread count.
    member_ptr: Vec<usize>,
    /// Members of all blocks, grouped by block, ascending within a block.
    member_idx: Vec<usize>,
}

impl Partition {
    /// Builds a partition from per-state block labels.
    ///
    /// Labels must form a contiguous range `0..blocks` (every block
    /// non-empty).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidArgument`] if labels are empty or some
    /// block in the range is unused.
    pub fn from_labels(block_of: Vec<usize>) -> Result<Self> {
        if block_of.is_empty() {
            return Err(MarkovError::InvalidArgument("empty partition".into()));
        }
        let blocks = block_of.iter().copied().max().unwrap() + 1;
        let mut seen = vec![false; blocks];
        for &b in &block_of {
            seen[b] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(MarkovError::InvalidArgument(format!(
                "block {missing} has no members"
            )));
        }
        Ok(Partition::build(block_of, blocks))
    }

    /// The trivial partition with every state in its own block.
    pub fn discrete(n: usize) -> Self {
        Partition::build((0..n).collect(), n)
    }

    /// Assembles the CSR-style member index (counting sort by block).
    fn build(block_of: Vec<usize>, blocks: usize) -> Self {
        let mut member_ptr = vec![0usize; blocks + 1];
        for &b in &block_of {
            member_ptr[b + 1] += 1;
        }
        for b in 0..blocks {
            member_ptr[b + 1] += member_ptr[b];
        }
        let mut member_idx = vec![0usize; block_of.len()];
        let mut next = member_ptr.clone();
        for (s, &b) in block_of.iter().enumerate() {
            member_idx[next[b]] = s;
            next[b] += 1;
        }
        Partition {
            block_of,
            blocks,
            member_ptr,
            member_idx,
        }
    }

    /// Number of states partitioned.
    pub fn n(&self) -> usize {
        self.block_of.len()
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks
    }

    /// Block index of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state >= n()`.
    pub fn block_of(&self, state: usize) -> usize {
        self.block_of[state]
    }

    /// Per-state labels.
    pub fn labels(&self) -> &[usize] {
        &self.block_of
    }

    /// Collects the members of each block.
    pub fn members(&self) -> Vec<Vec<usize>> {
        (0..self.blocks)
            .map(|b| self.block_members(b).to_vec())
            .collect()
    }

    /// The members of one block, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `block >= block_count()`.
    pub fn block_members(&self, block: usize) -> &[usize] {
        &self.member_idx[self.member_ptr[block]..self.member_ptr[block + 1]]
    }
}

/// Per-block weight totals and sizes, gathered in ascending member order
/// (bit-identical to the serial state-order scatter, parallelizable).
fn block_weights(partition: &Partition, w: &[f64]) -> (Vec<f64>, Vec<usize>) {
    let nb = partition.block_count();
    let mut weight = vec![0.0f64; nb];
    par::for_each_chunk_mut(&mut weight, |b0, chunk| {
        for (k, acc) in chunk.iter_mut().enumerate() {
            *acc = 0.0;
            for &i in partition.block_members(b0 + k) {
                *acc += w[i];
            }
        }
    });
    let size = (0..nb).map(|b| partition.block_members(b).len()).collect();
    (weight, size)
}

/// Tests Kemeny–Snell strong lumpability: the partition is exactly lumpable
/// iff for every pair of states in the same block, the total transition
/// probability into *each* block agrees (within `tol`).
///
/// # Panics
///
/// Panics if `partition.n() != p.n()`.
pub fn is_exactly_lumpable(p: &StochasticMatrix, partition: &Partition, tol: f64) -> bool {
    assert_eq!(partition.n(), p.n(), "partition must cover the state space");
    let nb = partition.block_count();
    let mut reference: Vec<Option<Vec<f64>>> = vec![None; nb];
    let mut row_mass = vec![0.0f64; nb];
    for i in 0..p.n() {
        row_mass.fill(0.0);
        for (j, v) in p.matrix().row(i) {
            row_mass[partition.block_of(j)] += v;
        }
        let b = partition.block_of(i);
        match &reference[b] {
            None => reference[b] = Some(row_mass.clone()),
            Some(r) => {
                for (a, b) in r.iter().zip(&row_mass) {
                    if (a - b).abs() > tol {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Lumps an exactly lumpable chain.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidArgument`] if the partition fails the
/// strong-lumpability test at tolerance `tol`.
pub fn lump_exact(
    p: &StochasticMatrix,
    partition: &Partition,
    tol: f64,
) -> Result<StochasticMatrix> {
    if !is_exactly_lumpable(p, partition, tol) {
        return Err(MarkovError::InvalidArgument(
            "partition is not exactly lumpable; use lump_weighted".into(),
        ));
    }
    // Any member row represents its block; use uniform weights.
    let w = vec![1.0; p.n()];
    lump_weighted(p, partition, &w)
}

/// Aggregates the chain with respect to non-negative weights `w` (typically
/// the current iterate of the stationary vector):
///
/// ```text
/// P_c(A, B) = Σ_{i∈A} (w_i / W_A) Σ_{j∈B} P(i, j),   W_A = Σ_{i∈A} w_i.
/// ```
///
/// Blocks with zero total weight fall back to uniform weights within the
/// block, so the aggregated matrix is always a valid TPM.
///
/// This is the restriction operator of aggregation/disaggregation multigrid
/// and the TPM of the weakly lumped chain when `w` is the initial
/// distribution.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidArgument`] if `w` has negative entries or
/// wrong length.
pub fn lump_weighted(
    p: &StochasticMatrix,
    partition: &Partition,
    w: &[f64],
) -> Result<StochasticMatrix> {
    let n = p.n();
    if partition.n() != n {
        return Err(MarkovError::InvalidArgument(
            "partition size does not match state count".into(),
        ));
    }
    if w.len() != n {
        return Err(MarkovError::InvalidArgument(
            "weight vector length mismatch".into(),
        ));
    }
    if w.iter().any(|&x| x < 0.0 || !x.is_finite()) {
        return Err(MarkovError::InvalidArgument(
            "weights must be non-negative".into(),
        ));
    }
    let nb = partition.block_count();
    let (block_weight, block_size) = block_weights(partition, w);
    // Triplet generation parallelizes over fixed-size row chunks; the
    // chunks are then pushed in ascending order, so the duplicate-summing
    // in `to_csr` sees exactly the serial (state-ascending) sequence.
    let chunks = par::map_chunks(n, LUMP_CHUNK, |range| {
        let mut tri: Vec<(usize, usize, f64)> = Vec::new();
        for i in range {
            let bi = partition.block_of(i);
            let wi = if block_weight[bi] > 0.0 {
                w[i] / block_weight[bi]
            } else {
                1.0 / block_size[bi] as f64
            };
            if wi == 0.0 {
                continue;
            }
            for (j, v) in p.matrix().row(i) {
                tri.push((bi, partition.block_of(j), wi * v));
            }
        }
        tri
    });
    let mut coo = CooMatrix::with_capacity(nb, nb, p.nnz().min(nb * nb));
    for tri in chunks {
        for (r, c, v) in tri {
            coo.push(r, c, v);
        }
    }
    let csr = fix_row_sums(coo.to_csr());
    StochasticMatrix::with_tolerance(csr, 1e-6)
}

/// Clamps accumulated round-off so row sums are exactly one before the
/// stochastic-matrix validation (aggregation of ~1e6 entries can drift a
/// few ulps beyond the default tolerance).
fn fix_row_sums(m: CsrMatrix) -> CsrMatrix {
    let sums = m.row_sums();
    let factors: Vec<f64> = sums
        .iter()
        .map(|&s| if s > 0.0 { 1.0 / s } else { 1.0 })
        .collect();
    m.scale_rows(&factors)
}

/// One-time symbolic setup for repeated weighted lumping over a fixed
/// fine pattern and partition.
///
/// The plan precomputes everything [`lump_weighted`] derives from the
/// sparsity structure alone:
///
/// * the coarse CSR pattern (`indptr`/`indices`),
/// * per coarse slot, the list of fine entries that sum into it — in
///   **exactly** the order the from-scratch COO assembly visits them
///   (fine rows ascending, entries in column order, then the same
///   unstable sort by coarse column the COO→CSR merge performs), so the
///   refreshed values are bit-identical to a fresh [`lump_weighted`],
/// * the transpose permutation feeding the cached `P^T`.
///
/// # Invalidation
///
/// A plan is valid for exactly one (fine pattern, partition) pair: any
/// change to the fine matrix's `indptr`/`indices` or to the partition
/// labels requires a rebuild. Value-only changes never invalidate it.
///
/// # Precision
///
/// For strictly positive weights the refresh reproduces the from-scratch
/// result bit for bit. When a state has weight exactly `0.0` (while its
/// block has positive total weight), the from-scratch path *drops* that
/// state's entries before the unstable duplicate-merge sort, which may
/// permute equal-column entries differently; the refresh instead keeps
/// the full gather order, so results can differ by the usual summation
/// round-off. Both are valid aggregations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LumpPlan {
    fine_n: usize,
    fine_nnz: usize,
    nb: usize,
    /// Coarse CSR pattern.
    indptr: Vec<usize>,
    indices: Vec<u32>,
    /// Per-slot gather extents into `gather_src`/`gather_row`
    /// (length `nnz() + 1`); doubles as the weight prefix for
    /// nnz-balanced parallel refresh. Empty (length 1) for
    /// operator-built plans ([`from_op`](Self::from_op)), which gather
    /// at refresh time instead.
    gather_ptr: Vec<usize>,
    /// Fine entry index of each gather term, in from-scratch summation
    /// order.
    gather_src: Vec<u32>,
    /// Fine row of each gather term (the weight-share lookup).
    gather_row: Vec<u32>,
    /// Transpose pattern and permutation: `pt.data[m] = data[t_from[m]]`.
    t_indptr: Vec<usize>,
    t_indices: Vec<u32>,
    t_from: Vec<u32>,
    /// Cumulative fine entries per coarse row (length `nb + 1`) — the
    /// work prefix the group-aligned parallel refresh balances on.
    row_cost: Vec<usize>,
    /// Largest fine-entry count of any coarse row; sizes the per-worker
    /// sort scratch of the operator refresh path.
    max_row_entries: usize,
    /// Precomputed nnz-balanced blocking of the slot-gather refresh
    /// (weights = gather-list lengths from `gather_ptr`). Built once at
    /// plan time so every numeric refresh dispatches over fixed, L2-sized
    /// blocks with no per-call binary searches; trivial (one empty block)
    /// for operator plans, which balance per coarse row instead. Cached
    /// with the plan — the sweep engine's `FactorCache` keeps plan stacks
    /// behind `Arc`s, so the blocking is shared across sweep points.
    gather_part: par::RowPartition,
}

impl LumpPlan {
    /// Builds the symbolic plan for lumping `p` with `partition`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidArgument`] if the partition does not
    /// cover `p`'s state space.
    pub fn build(p: &StochasticMatrix, partition: &Partition) -> Result<LumpPlan> {
        LumpPlan::from_pattern(p.n(), p.matrix().indptr(), p.matrix().indices(), partition)
    }

    /// Builds the symbolic plan from a raw fine CSR pattern.
    ///
    /// This is what lets a whole multigrid plan *stack* be built without
    /// any intermediate numeric matrices: level `k + 1` plans from level
    /// `k`'s [`coarse pattern`](Self::pattern).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidArgument`] on a size mismatch.
    pub fn from_pattern(
        n: usize,
        indptr: &[usize],
        indices: &[u32],
        partition: &Partition,
    ) -> Result<LumpPlan> {
        if partition.n() != n || indptr.len() != n + 1 {
            return Err(MarkovError::InvalidArgument(
                "partition size does not match state count".into(),
            ));
        }
        let nnz = indptr[n];
        let nb = partition.block_count();
        // Replay of the from-scratch assembly, applied to entry *indices*
        // instead of values. Step 1: counting sort of the (coarse row,
        // coarse col, fine entry) triplets by coarse row — stable by fine
        // insertion order, exactly like `CooMatrix::to_csr`.
        let mut row_counts = vec![0usize; nb + 1];
        for i in 0..n {
            row_counts[partition.block_of(i) + 1] += indptr[i + 1] - indptr[i];
        }
        for b in 0..nb {
            row_counts[b + 1] += row_counts[b];
        }
        let mut next = row_counts.clone();
        let mut cols_buf = vec![0u32; nnz];
        let mut ent_buf = vec![0u32; nnz];
        for i in 0..n {
            let bi = partition.block_of(i);
            for (k, &j) in indices
                .iter()
                .enumerate()
                .take(indptr[i + 1])
                .skip(indptr[i])
            {
                let slot = next[bi];
                cols_buf[slot] = partition.block_of(j as usize) as u32;
                ent_buf[slot] = k as u32;
                next[bi] += 1;
            }
        }
        // Step 2: per coarse row, the same `sort_unstable_by_key` the
        // COO→CSR merge runs. The scratch element type is deliberately
        // `(u32, f64)` — identical to the value path — because the
        // unstable sort's permutation of equal keys can depend on the
        // element type; the fine entry index rides in the f64 payload
        // (entry counts are far below 2^53, so the round trip is exact).
        let mut c_indptr = Vec::with_capacity(nb + 1);
        c_indptr.push(0usize);
        let mut c_indices: Vec<u32> = Vec::new();
        let mut gather_ptr = vec![0usize];
        let mut gather_src: Vec<u32> = Vec::new();
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for b in 0..nb {
            let (lo, hi) = (row_counts[b], row_counts[b + 1]);
            scratch.clear();
            scratch.extend(
                cols_buf[lo..hi]
                    .iter()
                    .copied()
                    .zip(ent_buf[lo..hi].iter().map(|&k| k as f64)),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                while i < scratch.len() && scratch[i].0 == c {
                    gather_src.push(scratch[i].1 as u32);
                    i += 1;
                }
                c_indices.push(c);
                gather_ptr.push(gather_src.len());
            }
            c_indptr.push(c_indices.len());
        }
        let gather_row: Vec<u32> = gather_src
            .iter()
            .map(|&k| {
                // Fine row of entry k: the partition of indptr is
                // monotone, so a binary search recovers the row.
                (indptr.partition_point(|&p| p <= k as usize) - 1) as u32
            })
            .collect();
        // Step 3: transpose placement.
        let (t_indptr, t_indices, t_from) = transpose_placement(nb, &c_indptr, &c_indices);
        let max_row_entries = row_counts
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0);
        let gather_part = par::RowPartition::from_weight_prefix(&gather_ptr);
        Ok(LumpPlan {
            fine_n: n,
            fine_nnz: nnz,
            nb,
            indptr: c_indptr,
            indices: c_indices,
            gather_ptr,
            gather_src,
            gather_row,
            t_indptr,
            t_indices,
            t_from,
            row_cost: row_counts,
            max_row_entries,
            gather_part,
        })
    }

    /// Builds the symbolic plan for lumping a [`TransitionOp`] with
    /// `partition`, traversing rows instead of a materialized pattern —
    /// the finest-level setup of the implicit Kronecker path.
    ///
    /// The resulting plan carries the coarse pattern and transpose
    /// permutation but **no** fine-entry gather map (there are no fine
    /// entry indices without a materialized matrix); numeric refreshes go
    /// through [`lump_op_weighted_into`], which re-traverses the operator
    /// and reproduces the recorded assembly order — and therefore the
    /// exact bits — of the materialized path, provided the operator
    /// serves the same entries (column set and values) as the
    /// materialized fine matrix would.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidArgument`] if the operator is not
    /// square or the partition does not cover its state space.
    pub fn from_op(op: &dyn TransitionOp, partition: &Partition) -> Result<LumpPlan> {
        let n = op.rows();
        if op.cols() != n {
            return Err(MarkovError::InvalidArgument(
                "operator must be square".into(),
            ));
        }
        if partition.n() != n {
            return Err(MarkovError::InvalidArgument(
                "partition size does not match state count".into(),
            ));
        }
        let nb = partition.block_count();
        let mut c_indptr = vec![0usize];
        let mut c_indices: Vec<u32> = Vec::new();
        let mut row_cost = vec![0usize; nb + 1];
        let mut max_row_entries = 0usize;
        let mut scratch: Vec<u32> = Vec::new();
        for b in 0..nb {
            scratch.clear();
            for &i in partition.block_members(b) {
                op.for_each_in_row(i, &mut |j, _| {
                    scratch.push(partition.block_of(j) as u32);
                });
            }
            row_cost[b + 1] = row_cost[b] + scratch.len();
            max_row_entries = max_row_entries.max(scratch.len());
            scratch.sort_unstable();
            scratch.dedup();
            c_indices.extend_from_slice(&scratch);
            c_indptr.push(c_indices.len());
        }
        let (t_indptr, t_indices, t_from) = transpose_placement(nb, &c_indptr, &c_indices);
        Ok(LumpPlan {
            fine_n: n,
            fine_nnz: row_cost[nb],
            nb,
            indptr: c_indptr,
            indices: c_indices,
            gather_ptr: vec![0],
            gather_src: Vec::new(),
            gather_row: Vec::new(),
            t_indptr,
            t_indices,
            t_from,
            row_cost,
            max_row_entries,
            gather_part: par::RowPartition::from_weight_prefix(&[0]),
        })
    }

    /// Whether this plan was built from an operator traversal
    /// ([`from_op`](Self::from_op)) and must refresh through
    /// [`lump_op_weighted_into`] rather than the gather-map path.
    pub fn is_operator_plan(&self) -> bool {
        self.gather_ptr.len() != self.nnz() + 1
    }

    /// Builds the plan stack for a whole coarsening hierarchy: plan `k`
    /// lumps level `k`'s pattern with `partitions[k]`, and level `k + 1`
    /// plans from plan `k`'s coarse pattern — no numeric matrices needed.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidArgument`] if any partition does not
    /// chain (`partitions[k].n()` must equal the previous block count).
    pub fn build_stack(p: &StochasticMatrix, partitions: &[Partition]) -> Result<Vec<LumpPlan>> {
        let mut plans: Vec<LumpPlan> = Vec::with_capacity(partitions.len());
        for part in partitions {
            let plan = match plans.last() {
                None => LumpPlan::build(p, part)?,
                Some(prev) => LumpPlan::from_pattern(prev.nb, &prev.indptr, &prev.indices, part)?,
            };
            plans.push(plan);
        }
        Ok(plans)
    }

    /// Fine state count the plan was built for.
    pub fn fine_n(&self) -> usize {
        self.fine_n
    }

    /// Fine stored-entry count the plan was built for.
    pub fn fine_nnz(&self) -> usize {
        self.fine_nnz
    }

    /// Number of coarse blocks.
    pub fn block_count(&self) -> usize {
        self.nb
    }

    /// Stored entries in the coarse pattern.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The coarse CSR pattern `(indptr, indices)`.
    pub fn pattern(&self) -> (&[usize], &[u32]) {
        (&self.indptr, &self.indices)
    }
}

/// Transpose placement for a coarse CSR pattern — counting sort by
/// coarse column, rows ascending, mirroring `CsrMatrix::transpose`.
/// Returns `(t_indptr, t_indices, t_from)` with
/// `pt.data[m] = data[t_from[m]]`.
fn transpose_placement(
    nb: usize,
    c_indptr: &[usize],
    c_indices: &[u32],
) -> (Vec<usize>, Vec<u32>, Vec<u32>) {
    let nnz_c = c_indices.len();
    let mut t_counts = vec![0usize; nb + 1];
    for &c in c_indices {
        t_counts[c as usize + 1] += 1;
    }
    for b in 0..nb {
        t_counts[b + 1] += t_counts[b];
    }
    let t_indptr = t_counts.clone();
    let mut t_indices = vec![0u32; nnz_c];
    let mut t_from = vec![0u32; nnz_c];
    let mut t_next = t_counts;
    for r in 0..nb {
        for (k, &c) in c_indices
            .iter()
            .enumerate()
            .take(c_indptr[r + 1])
            .skip(c_indptr[r])
        {
            let slot = t_next[c as usize];
            t_indices[slot] = r as u32;
            t_from[slot] = k as u32;
            t_next[c as usize] += 1;
        }
    }
    (t_indptr, t_indices, t_from)
}

/// Preallocated numeric buffers for [`lump_weighted_into`].
///
/// After a refresh with weights `w`, the buffers double as the
/// aggregation/disaggregation operators for the *same* `w`:
/// [`block_weight`](Self::block_weight) holds the per-block weight totals
/// (`aggregate(partition, w)` unnormalized) and
/// [`wscale`](Self::wscale) the per-state shares
/// (`w[i] / W_block`, uniform for zero-weight blocks) — exactly the
/// factors [`disaggregate`] recomputes from scratch.
#[derive(Debug, Clone)]
pub struct LumpWorkspace {
    block_weight: Vec<f64>,
    wscale: Vec<f64>,
    /// Per-worker sort buffers for the operator refresh path
    /// ([`lump_op_weighted_into`]); empty for gather-map plans. Each
    /// slot is preallocated to the plan's largest coarse row, so the
    /// refresh never grows them.
    row_scratch: Vec<Vec<(u32, f64)>>,
}

impl LumpWorkspace {
    /// Allocates buffers sized for `plan`. Operator-built plans
    /// ([`LumpPlan::from_op`]) additionally get one sort buffer per
    /// worker thread for the traversal refresh.
    pub fn for_plan(plan: &LumpPlan) -> Self {
        let row_scratch = if plan.is_operator_plan() {
            (0..par::threads().max(1))
                .map(|_| Vec::with_capacity(plan.max_row_entries))
                .collect()
        } else {
            Vec::new()
        };
        LumpWorkspace {
            block_weight: vec![0.0; plan.nb],
            wscale: vec![0.0; plan.fine_n],
            row_scratch,
        }
    }

    /// Per-block weight totals from the last refresh.
    pub fn block_weight(&self) -> &[f64] {
        &self.block_weight
    }

    /// Per-state weight shares from the last refresh.
    pub fn wscale(&self) -> &[f64] {
        &self.wscale
    }
}

/// Shared weight validation of the numeric-refresh entry points.
fn validate_weights(n: usize, w: &[f64]) -> Result<()> {
    if w.len() != n {
        return Err(MarkovError::InvalidArgument(
            "weight vector length mismatch".into(),
        ));
    }
    if w.iter().any(|&x| x < 0.0 || !x.is_finite()) {
        return Err(MarkovError::InvalidArgument(
            "weights must be non-negative".into(),
        ));
    }
    Ok(())
}

/// Phases 1–2 of every numeric refresh: per-block weight totals
/// (gathered in ascending member order, same as [`block_weights`]) and
/// per-state shares (zero-weight blocks fall back to uniform).
fn refresh_shares(partition: &Partition, w: &[f64], ws: &mut LumpWorkspace) {
    par::for_each_chunk_mut(&mut ws.block_weight, |b0, chunk| {
        for (k, acc) in chunk.iter_mut().enumerate() {
            let mut s = 0.0;
            for &i in partition.block_members(b0 + k) {
                s += w[i];
            }
            *acc = s;
        }
    });
    let bw = &ws.block_weight;
    par::for_each_chunk_mut(&mut ws.wscale, |i0, chunk| {
        for (k, o) in chunk.iter_mut().enumerate() {
            let i = i0 + k;
            let b = partition.block_of(i);
            *o = if bw[b] > 0.0 {
                w[i] / bw[b]
            } else {
                1.0 / partition.block_members(b).len() as f64
            };
        }
    });
}

/// Numeric-only refresh of a weighted lumping: recomputes the values of
/// `out` (pattern fixed by `plan`) from the fine matrix `p` and weights
/// `w`, with **zero heap allocations**.
///
/// Bit-identical to a from-scratch [`lump_weighted`] for strictly
/// positive weights (see [`LumpPlan`] for the zero-weight caveat); the
/// parallel slot gather is nnz-balanced and, per the determinism
/// contract, produces the same bits at any thread count.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidArgument`] for the same malformed-weight
/// conditions as [`lump_weighted`], or if `out`/`plan`/`p` shapes are
/// inconsistent.
pub fn lump_weighted_into(
    p: &StochasticMatrix,
    partition: &Partition,
    w: &[f64],
    plan: &LumpPlan,
    ws: &mut LumpWorkspace,
    out: &mut StochasticMatrix,
) -> Result<()> {
    let n = p.n();
    if partition.n() != n || plan.fine_n != n || plan.fine_nnz != p.nnz() {
        return Err(MarkovError::InvalidArgument(
            "lump plan does not match the fine matrix/partition".into(),
        ));
    }
    if plan.is_operator_plan() {
        return Err(MarkovError::InvalidArgument(
            "plan was built from an operator; refresh with lump_op_weighted_into".into(),
        ));
    }
    validate_weights(n, w)?;
    if out.n() != plan.nb || out.nnz() != plan.nnz() {
        return Err(MarkovError::InvalidArgument(
            "output matrix does not match the plan's coarse pattern".into(),
        ));
    }
    debug_assert_eq!(ws.block_weight.len(), plan.nb);
    debug_assert_eq!(ws.wscale.len(), n);
    refresh_shares(partition, w, ws);
    // Phase 3: slot gather — each coarse value is the sum of its fine
    // entries in the recorded from-scratch order. Parallel over the
    // plan's precomputed gather blocking (weights = gather-list
    // lengths); each slot is summed wholly by one worker inside a fixed
    // block, so the refresh is bit-identical at any thread count.
    let fine = p.matrix().data();
    let (pm, ptm) = out.parts_mut();
    let data = pm.data_mut();
    {
        let wscale = &ws.wscale;
        par::for_each_partition_mut(data, &plan.gather_part, |start, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                let s = start + k;
                let mut sum = 0.0;
                for m in plan.gather_ptr[s]..plan.gather_ptr[s + 1] {
                    sum += wscale[plan.gather_row[m] as usize] * fine[plan.gather_src[m] as usize];
                }
                *slot = sum;
            }
        });
    }
    renorm_and_refresh_transpose(plan, pm, ptm);
    Ok(())
}

/// Phases 4–5 of every numeric refresh. Phase 4: the two row-scaling
/// passes of the from-scratch path, in order — `fix_row_sums` (guarded
/// inverse) then the unconditional renormalization
/// `StochasticMatrix::with_tolerance` performs; serial, O(coarse nnz).
/// Phase 5: refresh the cached transpose through the precomputed
/// permutation.
fn renorm_and_refresh_transpose(plan: &LumpPlan, pm: &mut CsrMatrix, ptm: &mut CsrMatrix) {
    let data = pm.data_mut();
    for b in 0..plan.nb {
        let row = &mut data[plan.indptr[b]..plan.indptr[b + 1]];
        let s: f64 = row.iter().sum();
        let f = if s > 0.0 { 1.0 / s } else { 1.0 };
        for v in row.iter_mut() {
            *v *= f;
        }
        let row = &mut data[plan.indptr[b]..plan.indptr[b + 1]];
        let s2: f64 = row.iter().sum();
        let f2 = 1.0 / s2;
        for v in row.iter_mut() {
            *v *= f2;
        }
    }
    let data = pm.data();
    let t_data = ptm.data_mut();
    par::for_each_chunk_mut(t_data, |start, chunk| {
        for (k, o) in chunk.iter_mut().enumerate() {
            *o = data[plan.t_from[start + k] as usize];
        }
    });
}

/// Numeric refresh of a weighted lumping straight from a
/// [`TransitionOp`] — the implicit-path twin of [`lump_weighted_into`]
/// for plans built with [`LumpPlan::from_op`], with **zero heap
/// allocations** per call.
///
/// Each coarse row is rebuilt by re-traversing its member rows
/// (ascending members, entries in column order), pushing
/// `(coarse column, wscale_i · value)` pairs into a preallocated
/// per-worker buffer, sorting with the same unstable key sort the
/// from-scratch COO assembly runs, and summing runs in place. Because
/// the sort's permutation depends only on the key sequence (and the
/// element type matches the recorded-gather path deliberately), the
/// summation order — and therefore every bit of the result — equals
/// what [`lump_weighted_into`] produces on the materialized fine matrix
/// whose entries the operator serves. Parallel chunking is group-aligned
/// per coarse row, so results are bit-identical at any thread count.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidArgument`] for the same malformed-weight
/// conditions as [`lump_weighted`], a non-operator plan, shape
/// mismatches, or a workspace without per-worker scratch.
pub fn lump_op_weighted_into(
    op: &dyn TransitionOp,
    partition: &Partition,
    w: &[f64],
    plan: &LumpPlan,
    ws: &mut LumpWorkspace,
    out: &mut StochasticMatrix,
) -> Result<()> {
    let n = op.rows();
    if op.cols() != n || partition.n() != n || plan.fine_n != n {
        return Err(MarkovError::InvalidArgument(
            "lump plan does not match the operator/partition".into(),
        ));
    }
    if !plan.is_operator_plan() {
        return Err(MarkovError::InvalidArgument(
            "plan carries a gather map; refresh with lump_weighted_into".into(),
        ));
    }
    validate_weights(n, w)?;
    if out.n() != plan.nb || out.nnz() != plan.nnz() {
        return Err(MarkovError::InvalidArgument(
            "output matrix does not match the plan's coarse pattern".into(),
        ));
    }
    if ws.row_scratch.is_empty() {
        return Err(MarkovError::InvalidArgument(
            "workspace lacks row scratch; build it with LumpWorkspace::for_plan".into(),
        ));
    }
    debug_assert_eq!(ws.block_weight.len(), plan.nb);
    debug_assert_eq!(ws.wscale.len(), n);
    refresh_shares(partition, w, ws);
    // Phase 3: per-coarse-row traversal, sort, and run-length sum. Group
    // boundaries are coarse rows; the per-group cost prefix is the fine
    // entry count recorded at plan time.
    let (pm, ptm) = out.parts_mut();
    {
        let data = pm.data_mut();
        let wscale = &ws.wscale;
        par::for_each_grouped_chunk_mut(
            data,
            &plan.indptr,
            &plan.row_cost,
            &mut ws.row_scratch,
            |rows, chunk, scratch| {
                let base = plan.indptr[rows.start];
                for b in rows {
                    scratch.clear();
                    for &i in partition.block_members(b) {
                        let wi = wscale[i];
                        op.for_each_in_row(i, &mut |j, v| {
                            scratch.push((partition.block_of(j) as u32, wi * v));
                        });
                    }
                    scratch.sort_unstable_by_key(|&(c, _)| c);
                    let row_out = &mut chunk[plan.indptr[b] - base..plan.indptr[b + 1] - base];
                    let mut s = 0usize;
                    for slot in row_out.iter_mut() {
                        let c = scratch[s].0;
                        let mut sum = 0.0;
                        while s < scratch.len() && scratch[s].0 == c {
                            sum += scratch[s].1;
                            s += 1;
                        }
                        *slot = sum;
                    }
                    debug_assert_eq!(s, scratch.len(), "coarse row {b} out of sync");
                }
            },
        );
    }
    renorm_and_refresh_transpose(plan, pm, ptm);
    Ok(())
}

/// Allocates a coarse matrix from an operator plan's pattern and
/// refreshes it via [`lump_op_weighted_into`] — the allocating entry
/// point of the implicit path (hierarchy setup).
///
/// # Errors
///
/// Same as [`lump_op_weighted_into`].
pub fn lump_op_with_plan(
    op: &dyn TransitionOp,
    partition: &Partition,
    w: &[f64],
    plan: &LumpPlan,
    ws: &mut LumpWorkspace,
) -> Result<StochasticMatrix> {
    let csr = CsrMatrix::from_sorted_parts(
        plan.nb,
        plan.nb,
        plan.indptr.clone(),
        plan.indices.clone(),
        vec![0.0; plan.nnz()],
    )
    .map_err(|e| MarkovError::InvalidArgument(format!("corrupt lump plan: {e}")))?;
    let pt = csr.transpose();
    let mut out = StochasticMatrix::from_parts_unchecked(csr, pt);
    lump_op_weighted_into(op, partition, w, plan, ws, &mut out)?;
    Ok(out)
}

/// Allocates a coarse matrix from the plan's pattern and refreshes it via
/// [`lump_weighted_into`] — the allocating entry point for callers that
/// hold a plan but no matrix yet (hierarchy setup, FMG chains).
///
/// # Errors
///
/// Same as [`lump_weighted_into`].
pub fn lump_with_plan(
    p: &StochasticMatrix,
    partition: &Partition,
    w: &[f64],
    plan: &LumpPlan,
    ws: &mut LumpWorkspace,
) -> Result<StochasticMatrix> {
    let csr = CsrMatrix::from_sorted_parts(
        plan.nb,
        plan.nb,
        plan.indptr.clone(),
        plan.indices.clone(),
        vec![0.0; plan.nnz()],
    )
    .map_err(|e| MarkovError::InvalidArgument(format!("corrupt lump plan: {e}")))?;
    let pt = csr.transpose();
    let mut out = StochasticMatrix::from_parts_unchecked(csr, pt);
    lump_weighted_into(p, partition, w, plan, ws, &mut out)?;
    Ok(out)
}

/// In-place disaggregation with precomputed shares:
/// `out[i] = coarse[block(i)] * share[i]`.
///
/// With `share` = [`LumpWorkspace::wscale`] from a refresh over weights
/// `w`, this equals [`disaggregate`]`(partition, coarse, w)` bit for bit
/// — without recomputing the block weights or allocating.
///
/// # Panics
///
/// Panics if the lengths are inconsistent.
pub fn disaggregate_scaled(partition: &Partition, coarse: &[f64], share: &[f64], out: &mut [f64]) {
    assert_eq!(
        coarse.len(),
        partition.block_count(),
        "coarse vector per block"
    );
    assert_eq!(share.len(), partition.n(), "share per fine state");
    assert_eq!(out.len(), partition.n(), "output per fine state");
    par::for_each_chunk_mut(out, |i0, chunk| {
        for (k, o) in chunk.iter_mut().enumerate() {
            let i = i0 + k;
            *o = coarse[partition.block_of(i)] * share[i];
        }
    });
}

/// Prolongs a coarse (block) vector back to the fine state space,
/// distributing each block's value according to the fine weights `w`
/// (the disaggregation step of aggregation/disaggregation):
///
/// ```text
/// x_i = X_{block(i)} · w_i / W_{block(i)}
/// ```
///
/// Zero-weight blocks distribute uniformly over their members.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn disaggregate(partition: &Partition, coarse: &[f64], w: &[f64]) -> Vec<f64> {
    assert_eq!(
        coarse.len(),
        partition.block_count(),
        "coarse vector per block"
    );
    assert_eq!(w.len(), partition.n(), "weights per fine state");
    let (block_weight, block_size) = block_weights(partition, w);
    let mut out = vec![0.0; partition.n()];
    // Pure per-state map: parallel over disjoint output chunks.
    par::for_each_chunk_mut(&mut out, |i0, chunk| {
        for (k, o) in chunk.iter_mut().enumerate() {
            let i = i0 + k;
            let b = partition.block_of(i);
            let share = if block_weight[b] > 0.0 {
                w[i] / block_weight[b]
            } else {
                1.0 / block_size[b] as f64
            };
            *o = coarse[b] * share;
        }
    });
    out
}

/// Aggregates a fine vector to blocks: `X_A = Σ_{i∈A} x_i`.
///
/// # Panics
///
/// Panics if `x.len() != partition.n()`.
pub fn aggregate(partition: &Partition, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), partition.n(), "vector length must match partition");
    let mut out = vec![0.0; partition.block_count()];
    // Gather per block: each block is summed by one worker over its
    // members in ascending order — the same additions, in the same order,
    // as the serial state-order scatter, at any thread count.
    par::for_each_chunk_mut(&mut out, |b0, chunk| {
        for (k, o) in chunk.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &i in partition.block_members(b0 + k) {
                acc += x[i];
            }
            *o = acc;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary::{GthSolver, StationarySolver};
    use stochcdr_linalg::vecops;

    fn chain(n: usize, edges: &[(usize, usize, f64)]) -> StochasticMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(r, c, v) in edges {
            coo.push(r, c, v);
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    /// A 4-state chain exactly lumpable to {0,1} vs {2,3}.
    fn lumpable_chain() -> StochasticMatrix {
        chain(
            4,
            &[
                (0, 1, 0.6),
                (0, 2, 0.2),
                (0, 3, 0.2),
                (1, 0, 0.6),
                (1, 2, 0.3),
                (1, 3, 0.1),
                (2, 3, 0.5),
                (2, 0, 0.25),
                (2, 1, 0.25),
                (3, 2, 0.5),
                (3, 0, 0.1),
                (3, 1, 0.4),
            ],
        )
    }

    #[test]
    fn partition_validation() {
        assert!(Partition::from_labels(vec![]).is_err());
        assert!(Partition::from_labels(vec![0, 2]).is_err()); // block 1 missing
        let p = Partition::from_labels(vec![0, 0, 1]).unwrap();
        assert_eq!(p.block_count(), 2);
        assert_eq!(p.members(), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn exact_lumpability_detected() {
        let p = lumpable_chain();
        let part = Partition::from_labels(vec![0, 0, 1, 1]).unwrap();
        assert!(is_exactly_lumpable(&p, &part, 1e-12));
        // A partition that mixes the blocks is not lumpable.
        let bad = Partition::from_labels(vec![0, 1, 0, 1]).unwrap();
        assert!(!is_exactly_lumpable(&p, &bad, 1e-12));
    }

    #[test]
    fn lump_exact_produces_correct_tpm() {
        let p = lumpable_chain();
        let part = Partition::from_labels(vec![0, 0, 1, 1]).unwrap();
        let l = lump_exact(&p, &part, 1e-12).unwrap();
        assert_eq!(l.n(), 2);
        assert!((l.prob(0, 0) - 0.6).abs() < 1e-12);
        assert!((l.prob(0, 1) - 0.4).abs() < 1e-12);
        assert!((l.prob(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lump_exact_rejects_non_lumpable() {
        let p = lumpable_chain();
        let bad = Partition::from_labels(vec![0, 1, 0, 1]).unwrap();
        assert!(lump_exact(&p, &bad, 1e-12).is_err());
    }

    #[test]
    fn lumped_stationary_matches_aggregated_fine_stationary() {
        // For an exactly lumpable partition, aggregate(η_fine) = η_lumped.
        let p = lumpable_chain();
        let part = Partition::from_labels(vec![0, 0, 1, 1]).unwrap();
        let l = lump_exact(&p, &part, 1e-12).unwrap();
        let ef = GthSolver::new().solve(&p, None).unwrap().distribution;
        let el = GthSolver::new().solve(&l, None).unwrap().distribution;
        let agg = aggregate(&part, &ef);
        assert!(vecops::dist1(&agg, &el) < 1e-10);
    }

    #[test]
    fn weighted_lumping_with_exact_stationary_is_consistent() {
        // Aggregation with the exact stationary weights reproduces the
        // aggregated stationary as the coarse stationary, for ANY partition
        // (this is the fixed-point property of aggregation/disaggregation).
        let p = lumpable_chain();
        let part = Partition::from_labels(vec![0, 1, 1, 0]).unwrap(); // arbitrary
        let ef = GthSolver::new().solve(&p, None).unwrap().distribution;
        let lc = lump_weighted(&p, &part, &ef).unwrap();
        let el = GthSolver::new().solve(&lc, None).unwrap().distribution;
        let agg = aggregate(&part, &ef);
        assert!(
            vecops::dist1(&agg, &el) < 1e-9,
            "agg {agg:?} vs coarse {el:?}"
        );
    }

    #[test]
    fn aggregate_disaggregate_round_trip() {
        let part = Partition::from_labels(vec![0, 0, 1]).unwrap();
        let w = [0.2, 0.6, 0.7];
        let x = [0.1, 0.3, 0.6];
        let coarse = aggregate(&part, &x);
        assert_eq!(coarse, vec![0.4, 0.6]);
        // Disaggregating with weights proportional to x reproduces x.
        let back = disaggregate(&part, &coarse, &x);
        assert!(vecops::dist1(&back, &x) < 1e-15);
        // Mass is preserved regardless of weights.
        let back2 = disaggregate(&part, &coarse, &w);
        assert!((vecops::sum(&back2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_block_falls_back_to_uniform() {
        let part = Partition::from_labels(vec![0, 0, 1]).unwrap();
        let w = [0.0, 0.0, 1.0];
        let back = disaggregate(&part, &[0.5, 0.5], &w);
        assert_eq!(back, vec![0.25, 0.25, 0.5]);
        // lump_weighted also survives zero-weight blocks.
        let p = lumpable_chain();
        let part4 = Partition::from_labels(vec![0, 0, 1, 1]).unwrap();
        let l = lump_weighted(&p, &part4, &[0.0, 0.0, 0.5, 0.5]).unwrap();
        assert_eq!(l.n(), 2);
    }

    /// Deterministic pseudo-random chain for plan tests.
    fn random_chain(n: usize, seed: u64) -> StochasticMatrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let deg = 2 + (i % 5);
            let mut row: Vec<f64> = (0..deg).map(|_| next() + 1e-3).collect();
            let s: f64 = row.iter().sum();
            for v in &mut row {
                *v /= s;
            }
            for (k, v) in row.into_iter().enumerate() {
                coo.push(i, (i * 7 + k * 13 + 1) % n, v);
            }
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn plan_refresh_is_bit_identical_to_from_scratch() {
        for seed in [1u64, 7, 42] {
            let n = 60;
            let p = random_chain(n, seed);
            let part =
                Partition::from_labels((0..n).map(|i| (i * 11 + seed as usize) % 9).collect())
                    .unwrap();
            let plan = LumpPlan::build(&p, &part).unwrap();
            let mut ws = LumpWorkspace::for_plan(&plan);
            // Strictly positive weights: the bit-identity regime.
            let w: Vec<f64> = (0..n).map(|i| 0.01 + (i as f64 * 0.37).fract()).collect();
            let fresh = lump_weighted(&p, &part, &w).unwrap();
            let planned = lump_with_plan(&p, &part, &w, &plan, &mut ws).unwrap();
            assert_eq!(planned.matrix().indptr(), fresh.matrix().indptr());
            assert_eq!(planned.matrix().indices(), fresh.matrix().indices());
            assert!(
                planned
                    .matrix()
                    .data()
                    .iter()
                    .zip(fresh.matrix().data())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "values diverge for seed {seed}"
            );
            assert!(
                planned
                    .transposed()
                    .data()
                    .iter()
                    .zip(fresh.transposed().data())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "transpose values diverge for seed {seed}"
            );
        }
    }

    #[test]
    fn plan_refresh_tracks_changing_weights() {
        let n = 40;
        let p = random_chain(n, 5);
        let part = Partition::from_labels((0..n).map(|i| i / 8).collect()).unwrap();
        let plan = LumpPlan::build(&p, &part).unwrap();
        let mut ws = LumpWorkspace::for_plan(&plan);
        let w1: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut out = lump_with_plan(&p, &part, &w1, &plan, &mut ws).unwrap();
        // Refresh the same matrix with different weights: must equal a
        // fresh lump with those weights.
        let w2: Vec<f64> = (0..n).map(|i| 2.0 + ((i * 31) % 7) as f64).collect();
        lump_weighted_into(&p, &part, &w2, &plan, &mut ws, &mut out).unwrap();
        let fresh = lump_weighted(&p, &part, &w2).unwrap();
        assert!(out
            .matrix()
            .data()
            .iter()
            .zip(fresh.matrix().data())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        // The workspace doubles as the aggregation operators for w2.
        let bw = aggregate(&part, &w2);
        assert!(ws
            .block_weight()
            .iter()
            .zip(&bw)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        let coarse: Vec<f64> = (0..part.block_count()).map(|b| (b + 1) as f64).collect();
        let mut dis = vec![0.0; n];
        disaggregate_scaled(&part, &coarse, ws.wscale(), &mut dis);
        let fresh_dis = disaggregate(&part, &coarse, &w2);
        assert!(dis
            .iter()
            .zip(&fresh_dis)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn plan_stack_chains_through_coarse_patterns() {
        let n = 64;
        let p = random_chain(n, 9);
        let part0 = Partition::from_labels((0..n).map(|i| i / 2).collect()).unwrap();
        let part1 = Partition::from_labels((0..n / 2).map(|i| i / 4).collect()).unwrap();
        let plans = LumpPlan::build_stack(&p, &[part0.clone(), part1.clone()]).unwrap();
        assert_eq!(plans.len(), 2);
        let mut ws0 = LumpWorkspace::for_plan(&plans[0]);
        let w = vec![1.0; n];
        let c0 = lump_with_plan(&p, &part0, &w, &plans[0], &mut ws0).unwrap();
        // Plan 1 was built from plan 0's pattern; it must match the
        // numeric coarse matrix's pattern.
        assert_eq!(plans[1].fine_n(), c0.n());
        assert_eq!(plans[1].fine_nnz(), c0.nnz());
        let mut ws1 = LumpWorkspace::for_plan(&plans[1]);
        let w1 = vec![1.0; c0.n()];
        let c1 = lump_with_plan(&c0, &part1, &w1, &plans[1], &mut ws1).unwrap();
        let fresh = lump_weighted(&c0, &part1, &w1).unwrap();
        assert!(c1
            .matrix()
            .data()
            .iter()
            .zip(fresh.matrix().data())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn plan_rejects_mismatched_inputs() {
        let p = lumpable_chain();
        let part = Partition::from_labels(vec![0, 0, 1, 1]).unwrap();
        let plan = LumpPlan::build(&p, &part).unwrap();
        let mut ws = LumpWorkspace::for_plan(&plan);
        // Wrong weight length.
        let mut out = lump_with_plan(&p, &part, &[1.0; 4], &plan, &mut ws).unwrap();
        assert!(lump_weighted_into(&p, &part, &[1.0; 3], &plan, &mut ws, &mut out).is_err());
        // Negative weights.
        assert!(
            lump_weighted_into(&p, &part, &[1.0, -1.0, 1.0, 1.0], &plan, &mut ws, &mut out)
                .is_err()
        );
        // Plan built for a different partition size.
        let small = Partition::from_labels(vec![0, 1]).unwrap();
        assert!(LumpPlan::from_pattern(4, &[0, 1, 2], &[0, 1], &small).is_err());
    }

    /// Serializes tests that override the global worker-thread count.
    static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn operator_plan_matches_gather_plan_bitwise() {
        let _g = THREADS_LOCK.lock().unwrap();
        let n = 60;
        let p = random_chain(n, 11);
        let part = Partition::from_labels((0..n).map(|i| (i * 13 + 4) % 7).collect()).unwrap();
        let gplan = LumpPlan::build(&p, &part).unwrap();
        // The chain itself is the operator: same pattern, same values.
        let oplan = LumpPlan::from_op(&p, &part).unwrap();
        assert!(!gplan.is_operator_plan());
        assert!(oplan.is_operator_plan());
        assert_eq!(gplan.pattern(), oplan.pattern());
        assert_eq!(gplan.fine_nnz(), oplan.fine_nnz());
        let mut gws = LumpWorkspace::for_plan(&gplan);
        let mut ows = LumpWorkspace::for_plan(&oplan);
        let w: Vec<f64> = (0..n).map(|i| 0.05 + (i as f64 * 0.61).fract()).collect();
        let reference = lump_with_plan(&p, &part, &w, &gplan, &mut gws).unwrap();
        for t in [1usize, 4] {
            par::set_threads(Some(t));
            let got = lump_op_with_plan(&p, &part, &w, &oplan, &mut ows).unwrap();
            par::set_threads(None);
            assert!(
                got.matrix()
                    .data()
                    .iter()
                    .zip(reference.matrix().data())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "values diverge at {t} threads"
            );
            assert!(
                got.transposed()
                    .data()
                    .iter()
                    .zip(reference.transposed().data())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "transpose values diverge at {t} threads"
            );
        }
    }

    #[test]
    fn plan_kinds_reject_the_wrong_refresh() {
        let p = lumpable_chain();
        let part = Partition::from_labels(vec![0, 0, 1, 1]).unwrap();
        let gplan = LumpPlan::build(&p, &part).unwrap();
        let oplan = LumpPlan::from_op(&p, &part).unwrap();
        let mut gws = LumpWorkspace::for_plan(&gplan);
        let mut ows = LumpWorkspace::for_plan(&oplan);
        let w = [1.0; 4];
        let mut out = lump_with_plan(&p, &part, &w, &gplan, &mut gws).unwrap();
        // Gather plan through the operator entry point and vice versa.
        assert!(lump_op_weighted_into(&p, &part, &w, &gplan, &mut ows, &mut out).is_err());
        assert!(lump_weighted_into(&p, &part, &w, &oplan, &mut gws, &mut out).is_err());
        // Workspace built for the gather plan lacks operator scratch.
        assert!(lump_op_weighted_into(&p, &part, &w, &oplan, &mut gws, &mut out).is_err());
        // The proper pairing works.
        assert!(lump_op_weighted_into(&p, &part, &w, &oplan, &mut ows, &mut out).is_ok());
    }

    #[test]
    fn discrete_partition_lumps_to_self() {
        let p = lumpable_chain();
        let part = Partition::discrete(4);
        let l = lump_weighted(&p, &part, &[1.0; 4]).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!((l.prob(i, j) - p.prob(i, j)).abs() < 1e-12);
            }
        }
    }
}
