//! Exact and weighted (weak) lumping of Markov chains.
//!
//! The paper builds its multigrid solver on lumpability: "we partition these
//! N states into n disjoint sets ... and form a new stochastic process by
//! defining new states corresponding to the n sets". The lumped process is
//! Markov for *any* initial distribution only if the partition is *exactly
//! (strongly) lumpable*; otherwise one obtains a useful approximation by
//! lumping with respect to a particular distribution — *weak lumping* — which
//! is precisely the aggregation step of aggregation/disaggregation methods.
//!
//! * [`Partition`] — a validated partition of the state space,
//! * [`is_exactly_lumpable`] — Kemeny–Snell strong-lumpability test,
//! * [`lump_exact`] — the lumped TPM of an exactly lumpable partition,
//! * [`lump_weighted`] — the aggregated TPM with respect to a weight vector
//!   (rows of each block averaged with the block-conditional weights).

use stochcdr_linalg::{par, CooMatrix, CsrMatrix};

use crate::{MarkovError, Result, StochasticMatrix};

/// Fixed row-chunk size for the parallel aggregation kernels. A pure
/// constant (never derived from the thread count) so the order in which
/// per-chunk results are concatenated/combined — and hence every
/// floating-point sum — is identical for every thread count.
const LUMP_CHUNK: usize = 4096;

/// A partition of `0..n` into disjoint, exhaustive blocks.
///
/// # Example
///
/// ```
/// use stochcdr_markov::lumping::Partition;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let part = Partition::from_labels(vec![0, 0, 1, 1])?;
/// assert_eq!(part.block_count(), 2);
/// assert_eq!(part.members()[1], vec![2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `block_of[state]` — the block index of each state.
    block_of: Vec<usize>,
    /// Number of blocks.
    blocks: usize,
    /// CSR-style member index: block `b`'s members (ascending) are
    /// `member_idx[member_ptr[b]..member_ptr[b + 1]]`. Precomputed so the
    /// aggregation kernels can *gather* per block — each block summed by
    /// one worker in ascending member order, which reproduces the serial
    /// scatter bit for bit at any thread count.
    member_ptr: Vec<usize>,
    /// Members of all blocks, grouped by block, ascending within a block.
    member_idx: Vec<usize>,
}

impl Partition {
    /// Builds a partition from per-state block labels.
    ///
    /// Labels must form a contiguous range `0..blocks` (every block
    /// non-empty).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidArgument`] if labels are empty or some
    /// block in the range is unused.
    pub fn from_labels(block_of: Vec<usize>) -> Result<Self> {
        if block_of.is_empty() {
            return Err(MarkovError::InvalidArgument("empty partition".into()));
        }
        let blocks = block_of.iter().copied().max().unwrap() + 1;
        let mut seen = vec![false; blocks];
        for &b in &block_of {
            seen[b] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(MarkovError::InvalidArgument(format!(
                "block {missing} has no members"
            )));
        }
        Ok(Partition::build(block_of, blocks))
    }

    /// The trivial partition with every state in its own block.
    pub fn discrete(n: usize) -> Self {
        Partition::build((0..n).collect(), n)
    }

    /// Assembles the CSR-style member index (counting sort by block).
    fn build(block_of: Vec<usize>, blocks: usize) -> Self {
        let mut member_ptr = vec![0usize; blocks + 1];
        for &b in &block_of {
            member_ptr[b + 1] += 1;
        }
        for b in 0..blocks {
            member_ptr[b + 1] += member_ptr[b];
        }
        let mut member_idx = vec![0usize; block_of.len()];
        let mut next = member_ptr.clone();
        for (s, &b) in block_of.iter().enumerate() {
            member_idx[next[b]] = s;
            next[b] += 1;
        }
        Partition {
            block_of,
            blocks,
            member_ptr,
            member_idx,
        }
    }

    /// Number of states partitioned.
    pub fn n(&self) -> usize {
        self.block_of.len()
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks
    }

    /// Block index of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state >= n()`.
    pub fn block_of(&self, state: usize) -> usize {
        self.block_of[state]
    }

    /// Per-state labels.
    pub fn labels(&self) -> &[usize] {
        &self.block_of
    }

    /// Collects the members of each block.
    pub fn members(&self) -> Vec<Vec<usize>> {
        (0..self.blocks)
            .map(|b| self.block_members(b).to_vec())
            .collect()
    }

    /// The members of one block, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `block >= block_count()`.
    pub fn block_members(&self, block: usize) -> &[usize] {
        &self.member_idx[self.member_ptr[block]..self.member_ptr[block + 1]]
    }
}

/// Per-block weight totals and sizes, gathered in ascending member order
/// (bit-identical to the serial state-order scatter, parallelizable).
fn block_weights(partition: &Partition, w: &[f64]) -> (Vec<f64>, Vec<usize>) {
    let nb = partition.block_count();
    let mut weight = vec![0.0f64; nb];
    par::for_each_chunk_mut(&mut weight, |b0, chunk| {
        for (k, acc) in chunk.iter_mut().enumerate() {
            *acc = 0.0;
            for &i in partition.block_members(b0 + k) {
                *acc += w[i];
            }
        }
    });
    let size = (0..nb).map(|b| partition.block_members(b).len()).collect();
    (weight, size)
}

/// Tests Kemeny–Snell strong lumpability: the partition is exactly lumpable
/// iff for every pair of states in the same block, the total transition
/// probability into *each* block agrees (within `tol`).
///
/// # Panics
///
/// Panics if `partition.n() != p.n()`.
pub fn is_exactly_lumpable(p: &StochasticMatrix, partition: &Partition, tol: f64) -> bool {
    assert_eq!(partition.n(), p.n(), "partition must cover the state space");
    let nb = partition.block_count();
    let mut reference: Vec<Option<Vec<f64>>> = vec![None; nb];
    let mut row_mass = vec![0.0f64; nb];
    for i in 0..p.n() {
        row_mass.fill(0.0);
        for (j, v) in p.matrix().row(i) {
            row_mass[partition.block_of(j)] += v;
        }
        let b = partition.block_of(i);
        match &reference[b] {
            None => reference[b] = Some(row_mass.clone()),
            Some(r) => {
                for (a, b) in r.iter().zip(&row_mass) {
                    if (a - b).abs() > tol {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Lumps an exactly lumpable chain.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidArgument`] if the partition fails the
/// strong-lumpability test at tolerance `tol`.
pub fn lump_exact(
    p: &StochasticMatrix,
    partition: &Partition,
    tol: f64,
) -> Result<StochasticMatrix> {
    if !is_exactly_lumpable(p, partition, tol) {
        return Err(MarkovError::InvalidArgument(
            "partition is not exactly lumpable; use lump_weighted".into(),
        ));
    }
    // Any member row represents its block; use uniform weights.
    let w = vec![1.0; p.n()];
    lump_weighted(p, partition, &w)
}

/// Aggregates the chain with respect to non-negative weights `w` (typically
/// the current iterate of the stationary vector):
///
/// ```text
/// P_c(A, B) = Σ_{i∈A} (w_i / W_A) Σ_{j∈B} P(i, j),   W_A = Σ_{i∈A} w_i.
/// ```
///
/// Blocks with zero total weight fall back to uniform weights within the
/// block, so the aggregated matrix is always a valid TPM.
///
/// This is the restriction operator of aggregation/disaggregation multigrid
/// and the TPM of the weakly lumped chain when `w` is the initial
/// distribution.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidArgument`] if `w` has negative entries or
/// wrong length.
pub fn lump_weighted(
    p: &StochasticMatrix,
    partition: &Partition,
    w: &[f64],
) -> Result<StochasticMatrix> {
    let n = p.n();
    if partition.n() != n {
        return Err(MarkovError::InvalidArgument(
            "partition size does not match state count".into(),
        ));
    }
    if w.len() != n {
        return Err(MarkovError::InvalidArgument(
            "weight vector length mismatch".into(),
        ));
    }
    if w.iter().any(|&x| x < 0.0 || !x.is_finite()) {
        return Err(MarkovError::InvalidArgument(
            "weights must be non-negative".into(),
        ));
    }
    let nb = partition.block_count();
    let (block_weight, block_size) = block_weights(partition, w);
    // Triplet generation parallelizes over fixed-size row chunks; the
    // chunks are then pushed in ascending order, so the duplicate-summing
    // in `to_csr` sees exactly the serial (state-ascending) sequence.
    let chunks = par::map_chunks(n, LUMP_CHUNK, |range| {
        let mut tri: Vec<(usize, usize, f64)> = Vec::new();
        for i in range {
            let bi = partition.block_of(i);
            let wi = if block_weight[bi] > 0.0 {
                w[i] / block_weight[bi]
            } else {
                1.0 / block_size[bi] as f64
            };
            if wi == 0.0 {
                continue;
            }
            for (j, v) in p.matrix().row(i) {
                tri.push((bi, partition.block_of(j), wi * v));
            }
        }
        tri
    });
    let mut coo = CooMatrix::with_capacity(nb, nb, p.nnz().min(nb * nb));
    for tri in chunks {
        for (r, c, v) in tri {
            coo.push(r, c, v);
        }
    }
    let csr = fix_row_sums(coo.to_csr());
    StochasticMatrix::with_tolerance(csr, 1e-6)
}

/// Clamps accumulated round-off so row sums are exactly one before the
/// stochastic-matrix validation (aggregation of ~1e6 entries can drift a
/// few ulps beyond the default tolerance).
fn fix_row_sums(m: CsrMatrix) -> CsrMatrix {
    let sums = m.row_sums();
    let factors: Vec<f64> = sums
        .iter()
        .map(|&s| if s > 0.0 { 1.0 / s } else { 1.0 })
        .collect();
    m.scale_rows(&factors)
}

/// Prolongs a coarse (block) vector back to the fine state space,
/// distributing each block's value according to the fine weights `w`
/// (the disaggregation step of aggregation/disaggregation):
///
/// ```text
/// x_i = X_{block(i)} · w_i / W_{block(i)}
/// ```
///
/// Zero-weight blocks distribute uniformly over their members.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn disaggregate(partition: &Partition, coarse: &[f64], w: &[f64]) -> Vec<f64> {
    assert_eq!(
        coarse.len(),
        partition.block_count(),
        "coarse vector per block"
    );
    assert_eq!(w.len(), partition.n(), "weights per fine state");
    let (block_weight, block_size) = block_weights(partition, w);
    let mut out = vec![0.0; partition.n()];
    // Pure per-state map: parallel over disjoint output chunks.
    par::for_each_chunk_mut(&mut out, |i0, chunk| {
        for (k, o) in chunk.iter_mut().enumerate() {
            let i = i0 + k;
            let b = partition.block_of(i);
            let share = if block_weight[b] > 0.0 {
                w[i] / block_weight[b]
            } else {
                1.0 / block_size[b] as f64
            };
            *o = coarse[b] * share;
        }
    });
    out
}

/// Aggregates a fine vector to blocks: `X_A = Σ_{i∈A} x_i`.
///
/// # Panics
///
/// Panics if `x.len() != partition.n()`.
pub fn aggregate(partition: &Partition, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), partition.n(), "vector length must match partition");
    let mut out = vec![0.0; partition.block_count()];
    // Gather per block: each block is summed by one worker over its
    // members in ascending order — the same additions, in the same order,
    // as the serial state-order scatter, at any thread count.
    par::for_each_chunk_mut(&mut out, |b0, chunk| {
        for (k, o) in chunk.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &i in partition.block_members(b0 + k) {
                acc += x[i];
            }
            *o = acc;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary::{GthSolver, StationarySolver};
    use stochcdr_linalg::vecops;

    fn chain(n: usize, edges: &[(usize, usize, f64)]) -> StochasticMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(r, c, v) in edges {
            coo.push(r, c, v);
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    /// A 4-state chain exactly lumpable to {0,1} vs {2,3}.
    fn lumpable_chain() -> StochasticMatrix {
        chain(
            4,
            &[
                (0, 1, 0.6),
                (0, 2, 0.2),
                (0, 3, 0.2),
                (1, 0, 0.6),
                (1, 2, 0.3),
                (1, 3, 0.1),
                (2, 3, 0.5),
                (2, 0, 0.25),
                (2, 1, 0.25),
                (3, 2, 0.5),
                (3, 0, 0.1),
                (3, 1, 0.4),
            ],
        )
    }

    #[test]
    fn partition_validation() {
        assert!(Partition::from_labels(vec![]).is_err());
        assert!(Partition::from_labels(vec![0, 2]).is_err()); // block 1 missing
        let p = Partition::from_labels(vec![0, 0, 1]).unwrap();
        assert_eq!(p.block_count(), 2);
        assert_eq!(p.members(), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn exact_lumpability_detected() {
        let p = lumpable_chain();
        let part = Partition::from_labels(vec![0, 0, 1, 1]).unwrap();
        assert!(is_exactly_lumpable(&p, &part, 1e-12));
        // A partition that mixes the blocks is not lumpable.
        let bad = Partition::from_labels(vec![0, 1, 0, 1]).unwrap();
        assert!(!is_exactly_lumpable(&p, &bad, 1e-12));
    }

    #[test]
    fn lump_exact_produces_correct_tpm() {
        let p = lumpable_chain();
        let part = Partition::from_labels(vec![0, 0, 1, 1]).unwrap();
        let l = lump_exact(&p, &part, 1e-12).unwrap();
        assert_eq!(l.n(), 2);
        assert!((l.prob(0, 0) - 0.6).abs() < 1e-12);
        assert!((l.prob(0, 1) - 0.4).abs() < 1e-12);
        assert!((l.prob(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lump_exact_rejects_non_lumpable() {
        let p = lumpable_chain();
        let bad = Partition::from_labels(vec![0, 1, 0, 1]).unwrap();
        assert!(lump_exact(&p, &bad, 1e-12).is_err());
    }

    #[test]
    fn lumped_stationary_matches_aggregated_fine_stationary() {
        // For an exactly lumpable partition, aggregate(η_fine) = η_lumped.
        let p = lumpable_chain();
        let part = Partition::from_labels(vec![0, 0, 1, 1]).unwrap();
        let l = lump_exact(&p, &part, 1e-12).unwrap();
        let ef = GthSolver::new().solve(&p, None).unwrap().distribution;
        let el = GthSolver::new().solve(&l, None).unwrap().distribution;
        let agg = aggregate(&part, &ef);
        assert!(vecops::dist1(&agg, &el) < 1e-10);
    }

    #[test]
    fn weighted_lumping_with_exact_stationary_is_consistent() {
        // Aggregation with the exact stationary weights reproduces the
        // aggregated stationary as the coarse stationary, for ANY partition
        // (this is the fixed-point property of aggregation/disaggregation).
        let p = lumpable_chain();
        let part = Partition::from_labels(vec![0, 1, 1, 0]).unwrap(); // arbitrary
        let ef = GthSolver::new().solve(&p, None).unwrap().distribution;
        let lc = lump_weighted(&p, &part, &ef).unwrap();
        let el = GthSolver::new().solve(&lc, None).unwrap().distribution;
        let agg = aggregate(&part, &ef);
        assert!(
            vecops::dist1(&agg, &el) < 1e-9,
            "agg {agg:?} vs coarse {el:?}"
        );
    }

    #[test]
    fn aggregate_disaggregate_round_trip() {
        let part = Partition::from_labels(vec![0, 0, 1]).unwrap();
        let w = [0.2, 0.6, 0.7];
        let x = [0.1, 0.3, 0.6];
        let coarse = aggregate(&part, &x);
        assert_eq!(coarse, vec![0.4, 0.6]);
        // Disaggregating with weights proportional to x reproduces x.
        let back = disaggregate(&part, &coarse, &x);
        assert!(vecops::dist1(&back, &x) < 1e-15);
        // Mass is preserved regardless of weights.
        let back2 = disaggregate(&part, &coarse, &w);
        assert!((vecops::sum(&back2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_block_falls_back_to_uniform() {
        let part = Partition::from_labels(vec![0, 0, 1]).unwrap();
        let w = [0.0, 0.0, 1.0];
        let back = disaggregate(&part, &[0.5, 0.5], &w);
        assert_eq!(back, vec![0.25, 0.25, 0.5]);
        // lump_weighted also survives zero-weight blocks.
        let p = lumpable_chain();
        let part4 = Partition::from_labels(vec![0, 0, 1, 1]).unwrap();
        let l = lump_weighted(&p, &part4, &[0.0, 0.0, 0.5, 0.5]).unwrap();
        assert_eq!(l.n(), 2);
    }

    #[test]
    fn discrete_partition_lumps_to_self() {
        let p = lumpable_chain();
        let part = Partition::discrete(4);
        let l = lump_weighted(&p, &part, &[1.0; 4]).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!((l.prob(i, j) - p.prob(i, j)).abs() < 1e-12);
            }
        }
    }
}
