//! Power iteration for the stationary distribution.

use stochcdr_linalg::{vecops, TransitionOp};
use stochcdr_obs as obs;

use crate::{MarkovError, Result};

use super::{
    finalize, square_dim, ConvergenceTrace, SolveOptions, StationaryResult, StationarySolver,
};

/// Power iteration: `η_{k+1} = η_k P`, renormalized in L1.
///
/// Converges for any aperiodic chain at rate `|λ₂|` (the subdominant
/// eigenvalue magnitude). For the stiff, nearly-decomposable chains produced
/// by CDR models `|λ₂|` is extremely close to one — this is precisely why
/// the paper develops a multigrid solver. Power iteration remains the
/// baseline every other solver is validated against.
///
/// Fully matrix-free: only `x·A` products are taken, so structured
/// backends such as the Kronecker product-form operator never materialize.
///
/// # Example
///
/// ```
/// use stochcdr_linalg::CooMatrix;
/// use stochcdr_markov::{StochasticMatrix, stationary::{PowerIteration, StationarySolver}};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 0.5); coo.push(0, 1, 0.5);
/// coo.push(1, 0, 0.5); coo.push(1, 1, 0.5);
/// let p = StochasticMatrix::new(coo.to_csr())?;
/// let r = PowerIteration::new(1e-12, 100).solve(&p, None)?;
/// assert_eq!(r.distribution, vec![0.5, 0.5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerIteration {
    opts: SolveOptions,
}

impl PowerIteration {
    /// Creates a solver with the given L1 residual tolerance and iteration
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0` or `max_iters == 0`.
    pub fn new(tol: f64, max_iters: usize) -> Self {
        PowerIteration::with_options(SolveOptions::new(tol, max_iters))
    }

    /// Creates a solver from shared [`SolveOptions`].
    pub fn with_options(opts: SolveOptions) -> Self {
        PowerIteration { opts }
    }

    /// Residual tolerance.
    pub fn tol(&self) -> f64 {
        self.opts.tol
    }

    /// Iteration budget.
    pub fn max_iters(&self) -> usize {
        self.opts.max_iters
    }

    /// The full iteration controls.
    pub fn options(&self) -> &SolveOptions {
        &self.opts
    }
}

impl Default for PowerIteration {
    /// Tolerance `1e-12`, budget `100_000` iterations.
    fn default() -> Self {
        PowerIteration::with_options(SolveOptions::default())
    }
}

impl StationarySolver for PowerIteration {
    fn solve_op(&self, op: &dyn TransitionOp, init: Option<&[f64]>) -> Result<StationaryResult> {
        let n = square_dim(op)?;
        let mut x = self.opts.starting_vector(n, init)?;
        let mut y = vec![0.0; n];
        let mut history = Vec::new();
        let mut trace = ConvergenceTrace::new("markov.power.stall");
        let heartbeat = obs::Heartbeat::new("power");
        for it in 1..=self.opts.max_iters {
            op.mul_left_into(&x, &mut y);
            // P is row-stochastic so ||y||_1 == ||x||_1 == 1 exactly up to
            // round-off; renormalize anyway to stop drift over many iters.
            vecops::normalize_l1(&mut y);
            let res = vecops::dist1(&x, &y);
            std::mem::swap(&mut x, &mut y);
            trace.observe(res);
            if heartbeat.active() {
                heartbeat.tick_solve(
                    it as u64,
                    res,
                    trace.summary().ewma_reduction,
                    self.opts.tol,
                );
            }
            if self.opts.record_history {
                history.push(res);
            }
            if res <= self.opts.tol {
                obs::event(
                    "markov.power",
                    &[("iterations", it.into()), ("residual", res.into())],
                );
                return Ok(finalize(op, x, it, history, trace.summary()));
            }
        }
        let res = {
            let y = op.mul_left(&x);
            vecops::dist1(&y, &x)
        };
        Err(MarkovError::NotConverged {
            iterations: self.opts.max_iters,
            residual: res,
        })
    }

    fn name(&self) -> &'static str {
        "power"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_chains::{birth_death, pseudo_random, two_state};
    use super::*;

    #[test]
    fn two_state_exact() {
        let (p, pi) = two_state(0.3, 0.7);
        let r = PowerIteration::default().solve(&p, None).unwrap();
        assert!(vecops::dist1(&r.distribution, &pi) < 1e-10);
    }

    #[test]
    fn birth_death_matches_geometric() {
        let (p, pi) = birth_death(20, 0.4);
        let r = PowerIteration::default().solve(&p, None).unwrap();
        // Periodic interior structure, but reflecting self-loops at the ends
        // break periodicity.
        assert!(
            vecops::dist1(&r.distribution, &pi) < 1e-8,
            "dist {}",
            vecops::dist1(&r.distribution, &pi)
        );
    }

    #[test]
    fn random_chain_converges_and_is_stationary() {
        let p = pseudo_random(30, 42);
        let r = PowerIteration::default().solve(&p, None).unwrap();
        assert!(p.stationary_residual(&r.distribution) < 1e-10);
        assert!((vecops::sum(&r.distribution) - 1.0).abs() < 1e-12);
        assert!(vecops::is_nonnegative(&r.distribution));
    }

    #[test]
    fn budget_exhaustion_reports_not_converged() {
        // A strictly periodic chain never converges pointwise from a
        // non-stationary start.
        let (p, _) = two_state(1.0, 1.0);
        let err = PowerIteration::new(1e-12, 50)
            .solve(&p, Some(&[1.0, 0.0]))
            .unwrap_err();
        assert!(matches!(
            err,
            MarkovError::NotConverged { iterations: 50, .. }
        ));
    }

    #[test]
    fn periodic_chain_from_stationary_start_is_fixed() {
        let (p, _) = two_state(1.0, 1.0);
        let r = PowerIteration::default()
            .solve(&p, Some(&[0.5, 0.5]))
            .unwrap();
        assert_eq!(r.distribution, vec![0.5, 0.5]);
        assert_eq!(r.iterations(), 1);
    }

    #[test]
    fn respects_initial_guess_validation() {
        let (p, _) = two_state(0.5, 0.5);
        assert!(PowerIteration::default().solve(&p, Some(&[1.0])).is_err());
    }

    #[test]
    fn reported_residual_is_post_clamp() {
        let p = pseudo_random(12, 7);
        let r = PowerIteration::default().solve(&p, None).unwrap();
        // The report must describe the returned (clamped) vector exactly.
        assert_eq!(r.residual(), p.stationary_residual(&r.distribution));
    }

    #[test]
    fn history_records_when_requested() {
        let (p, _) = two_state(0.3, 0.7);
        let solver = PowerIteration::with_options(SolveOptions::new(1e-12, 1000).with_history());
        let r = solver.solve(&p, None).unwrap();
        assert_eq!(r.report.residual_history.len(), r.iterations());
        assert_eq!(*r.report.residual_history.last().unwrap(), r.residual());
    }

    #[test]
    fn dense_backend_is_bit_identical_to_csr() {
        let p = pseudo_random(16, 3);
        let dense = p.matrix().to_dense();
        let solver = PowerIteration::default();
        let a = solver.solve(&p, None).unwrap();
        let b = solver.solve_op(&dense, None).unwrap();
        assert_eq!(a.distribution, b.distribution);
        assert_eq!(a.report, b.report);
    }
}
