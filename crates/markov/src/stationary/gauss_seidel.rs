//! Gauss–Seidel iteration for the stationary distribution.

use stochcdr_linalg::{vecops, CsrMatrix, TransitionOp};
use stochcdr_obs as obs;

use crate::{MarkovError, Result, StochasticMatrix};

use super::{
    finalize, square_dim, ConvergenceTrace, SolveOptions, StationaryResult, StationarySolver,
};

/// Gauss–Seidel iteration on the stationarity equations.
///
/// Like [`JacobiSolver`](super::JacobiSolver) but each state immediately uses
/// the freshest values of previously-updated states within a sweep:
///
/// ```text
/// for i in 0..n:  η_i ← (Σ_{j≠i} η_j^{latest} p_ji) / (1 − p_ii)
/// ```
///
/// Sweeps run over the rows of `P^T` (the in-neighbors of each state), which
/// the [`StochasticMatrix`] caches. Typically converges in roughly half the
/// iterations of Jacobi on these chains and is the classical accelerated
/// baseline the paper's aggregation/disaggregation methods are built on.
///
/// For backends that do not cache a transpose
/// ([`TransitionOp::transpose_csr`] returns `None`, e.g. the Kronecker
/// product-form operator), `solve_op` materializes the operator and
/// transposes it once — an O(nnz) cost paid up front.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussSeidelSolver {
    opts: SolveOptions,
}

impl GaussSeidelSolver {
    /// Creates a solver with the given L1 change tolerance and budget.
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0` or `max_iters == 0`.
    pub fn new(tol: f64, max_iters: usize) -> Self {
        GaussSeidelSolver::with_options(SolveOptions::new(tol, max_iters))
    }

    /// Creates a solver from shared [`SolveOptions`].
    pub fn with_options(opts: SolveOptions) -> Self {
        GaussSeidelSolver { opts }
    }

    /// The full iteration controls.
    pub fn options(&self) -> &SolveOptions {
        &self.opts
    }

    /// Performs one forward sweep in place; returns the L1 change.
    ///
    /// Absorbing states (`p_ii = 1`) keep their value, as in Jacobi.
    ///
    /// A sweep can annihilate a vector whose support lies "behind" the
    /// sweep order (e.g. a delta at state 0 whose mass is overwritten
    /// before it propagates); the vector is then left at exactly zero and
    /// the caller must re-seed. [`solve`](StationarySolver::solve) handles
    /// this automatically.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != p.n()`.
    pub fn sweep_once(&self, p: &StochasticMatrix, x: &mut [f64]) -> f64 {
        assert_eq!(x.len(), p.n(), "vector length must match state count");
        sweep_transposed(p.transposed(), x)
    }

    /// One forward sweep over the rows of a transposed [`TransitionOp`]
    /// (e.g. [`crate::ImplicitStochastic::transposed_view`]) — the
    /// implicit-path twin of [`sweep_once`](Self::sweep_once), with
    /// identical arithmetic per state.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != pt.rows()`.
    pub fn sweep_transposed_op(pt: &dyn TransitionOp, x: &mut [f64]) -> f64 {
        assert_eq!(x.len(), pt.rows(), "vector length must match state count");
        let mut change = 0.0;
        for i in 0..x.len() {
            let mut acc = 0.0;
            let mut pii = 0.0;
            {
                let xr: &[f64] = x;
                pt.for_each_in_row(i, &mut |j, v| {
                    if j == i {
                        pii = v;
                    } else {
                        acc += v * xr[j];
                    }
                });
            }
            let denom = 1.0 - pii;
            if denom > f64::EPSILON {
                let new = (acc / denom).max(0.0);
                change += (new - x[i]).abs();
                x[i] = new;
            }
        }
        vecops::normalize_l1(x);
        change
    }
}

/// One forward Gauss–Seidel sweep over the rows of `P^T`.
///
/// Inherently sequential: each state's update reads the freshest values of
/// the states swept before it, so this kernel does not parallelize.
pub(crate) fn sweep_transposed(pt: &CsrMatrix, x: &mut [f64]) -> f64 {
    let mut change = 0.0;
    for i in 0..x.len() {
        let mut acc = 0.0;
        let mut pii = 0.0;
        for (j, v) in pt.row(i) {
            if j == i {
                pii = v;
            } else {
                acc += v * x[j];
            }
        }
        let denom = 1.0 - pii;
        if denom > f64::EPSILON {
            let new = (acc / denom).max(0.0);
            change += (new - x[i]).abs();
            x[i] = new;
        }
    }
    vecops::normalize_l1(x);
    change
}

impl Default for GaussSeidelSolver {
    /// Tolerance `1e-12`, budget `100_000`.
    fn default() -> Self {
        GaussSeidelSolver::with_options(SolveOptions::default())
    }
}

impl StationarySolver for GaussSeidelSolver {
    fn solve_op(&self, op: &dyn TransitionOp, init: Option<&[f64]>) -> Result<StationaryResult> {
        let n = square_dim(op)?;
        let mut x = self.opts.starting_vector(n, init)?;
        // Sweeps need P^T rows: prefer the cached CSR transpose, then a
        // matrix-free transposed operator, and only materialize as the
        // last resort.
        enum Pt<'a> {
            Csr(&'a CsrMatrix),
            Op(&'a dyn TransitionOp),
        }
        let pt_owned;
        let pt = match (op.transpose_csr(), op.transpose_op()) {
            (Some(t), _) => Pt::Csr(t),
            (None, Some(t)) => Pt::Op(t),
            (None, None) => {
                pt_owned = op.materialize_csr().transpose();
                Pt::Csr(&pt_owned)
            }
        };
        let mut history = Vec::new();
        let mut trace = ConvergenceTrace::new("markov.gauss_seidel.stall");
        let heartbeat = obs::Heartbeat::new("gauss-seidel");
        for it in 1..=self.opts.max_iters {
            let change = match &pt {
                Pt::Csr(m) => sweep_transposed(m, &mut x),
                Pt::Op(t) => GaussSeidelSolver::sweep_transposed_op(*t, &mut x),
            };
            if vecops::sum(&x) == 0.0 {
                // The sweep annihilated the iterate (possible for
                // concentrated starts); re-seed with the uniform vector.
                x = vecops::uniform(n);
                continue;
            }
            trace.observe(change);
            if heartbeat.active() {
                heartbeat.tick_solve(
                    it as u64,
                    change,
                    trace.summary().ewma_reduction,
                    self.opts.tol,
                );
            }
            if self.opts.record_history {
                history.push(change);
            }
            if change <= self.opts.tol {
                obs::event(
                    "markov.gauss_seidel",
                    &[("iterations", it.into()), ("change", change.into())],
                );
                return Ok(finalize(op, x, it, history, trace.summary()));
            }
        }
        let residual = {
            let y = op.mul_left(&x);
            vecops::dist1(&y, &x)
        };
        Err(MarkovError::NotConverged {
            iterations: self.opts.max_iters,
            residual,
        })
    }

    fn name(&self) -> &'static str {
        "gauss-seidel"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_chains::{birth_death, pseudo_random, two_state};
    use super::super::{JacobiSolver, PowerIteration};
    use super::*;

    #[test]
    fn two_state_exact() {
        let (p, pi) = two_state(0.25, 0.75);
        let r = GaussSeidelSolver::default().solve(&p, None).unwrap();
        assert!(vecops::dist1(&r.distribution, &pi) < 1e-9);
    }

    #[test]
    fn agrees_with_other_solvers() {
        let p = pseudo_random(25, 99);
        let gs = GaussSeidelSolver::default().solve(&p, None).unwrap();
        let pw = PowerIteration::default().solve(&p, None).unwrap();
        let jc = JacobiSolver::default().solve(&p, None).unwrap();
        assert!(vecops::dist1(&gs.distribution, &pw.distribution) < 1e-8);
        assert!(vecops::dist1(&gs.distribution, &jc.distribution) < 1e-8);
    }

    #[test]
    fn faster_than_jacobi_on_birth_death() {
        let (p, _) = birth_death(30, 0.48);
        let gs = GaussSeidelSolver::new(1e-10, 200_000)
            .solve(&p, None)
            .unwrap();
        // Undamped Jacobi oscillates on this near-bipartite chain; use the
        // damped variant for a fair iteration-count comparison.
        let jc = JacobiSolver::new(1e-10, 200_000, 0.7)
            .solve(&p, None)
            .unwrap();
        assert!(
            gs.iterations() < jc.iterations(),
            "GS {} iters vs Jacobi {}",
            gs.iterations(),
            jc.iterations()
        );
    }

    #[test]
    fn delta_start_does_not_collapse_to_zero() {
        // A delta at state 0 is annihilated by one forward sweep (its mass
        // is overwritten before propagating); the solver must recover
        // rather than report the zero vector as converged.
        let (p, pi) = two_state(0.3, 0.6);
        let r = GaussSeidelSolver::default()
            .solve(&p, Some(&[1.0, 0.0]))
            .unwrap();
        assert!((vecops::sum(&r.distribution) - 1.0).abs() < 1e-12);
        assert!(vecops::dist1(&r.distribution, &pi) < 1e-9);
    }

    #[test]
    fn result_is_stationary() {
        let (p, _) = birth_death(12, 0.3);
        let r = GaussSeidelSolver::default().solve(&p, None).unwrap();
        assert!(p.stationary_residual(&r.distribution) < 1e-9);
        assert!(vecops::is_nonnegative(&r.distribution));
    }

    #[test]
    fn reported_residual_is_post_clamp() {
        let p = pseudo_random(18, 5);
        let r = GaussSeidelSolver::default().solve(&p, None).unwrap();
        assert_eq!(r.residual(), p.stationary_residual(&r.distribution));
    }

    #[test]
    fn uncached_transpose_backend_agrees() {
        // Solving through the bare CSR backend (no cached transpose) must
        // give exactly the cached-transpose result.
        let p = pseudo_random(15, 21);
        let solver = GaussSeidelSolver::default();
        let a = solver.solve(&p, None).unwrap();
        let b = solver.solve_op(p.matrix(), None).unwrap();
        assert_eq!(a.distribution, b.distribution);
    }
}
