//! Gauss–Seidel iteration for the stationary distribution.

use stochcdr_linalg::vecops;
use stochcdr_obs as obs;

use crate::{MarkovError, Result, StochasticMatrix};

use super::{initial_vector, StationaryResult, StationarySolver};

/// Gauss–Seidel iteration on the stationarity equations.
///
/// Like [`JacobiSolver`](super::JacobiSolver) but each state immediately uses
/// the freshest values of previously-updated states within a sweep:
///
/// ```text
/// for i in 0..n:  η_i ← (Σ_{j≠i} η_j^{latest} p_ji) / (1 − p_ii)
/// ```
///
/// Sweeps run over the rows of `P^T` (the in-neighbors of each state), which
/// the [`StochasticMatrix`] caches. Typically converges in roughly half the
/// iterations of Jacobi on these chains and is the classical accelerated
/// baseline the paper's aggregation/disaggregation methods are built on.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussSeidelSolver {
    tol: f64,
    max_iters: usize,
}

impl GaussSeidelSolver {
    /// Creates a solver with the given L1 change tolerance and budget.
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0` or `max_iters == 0`.
    pub fn new(tol: f64, max_iters: usize) -> Self {
        assert!(tol > 0.0, "tolerance must be positive");
        assert!(max_iters > 0, "iteration budget must be positive");
        GaussSeidelSolver { tol, max_iters }
    }

    /// Performs one forward sweep in place; returns the L1 change.
    ///
    /// Absorbing states (`p_ii = 1`) keep their value, as in Jacobi.
    ///
    /// A sweep can annihilate a vector whose support lies "behind" the
    /// sweep order (e.g. a delta at state 0 whose mass is overwritten
    /// before it propagates); the vector is then left at exactly zero and
    /// the caller must re-seed. [`solve`](StationarySolver::solve) handles
    /// this automatically.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != p.n()`.
    pub fn sweep_once(&self, p: &StochasticMatrix, x: &mut [f64]) -> f64 {
        assert_eq!(x.len(), p.n(), "vector length must match state count");
        let pt = p.transposed();
        let mut change = 0.0;
        for i in 0..p.n() {
            let mut acc = 0.0;
            let mut pii = 0.0;
            for (j, v) in pt.row(i) {
                if j == i {
                    pii = v;
                } else {
                    acc += v * x[j];
                }
            }
            let denom = 1.0 - pii;
            if denom > f64::EPSILON {
                let new = (acc / denom).max(0.0);
                change += (new - x[i]).abs();
                x[i] = new;
            }
        }
        vecops::normalize_l1(x);
        change
    }
}

impl Default for GaussSeidelSolver {
    /// Tolerance `1e-12`, budget `100_000`.
    fn default() -> Self {
        GaussSeidelSolver::new(1e-12, 100_000)
    }
}

impl StationarySolver for GaussSeidelSolver {
    fn solve(&self, p: &StochasticMatrix, init: Option<&[f64]>) -> Result<StationaryResult> {
        let mut x = initial_vector(p.n(), init)?;
        for it in 1..=self.max_iters {
            let change = self.sweep_once(p, &mut x);
            if vecops::sum(&x) == 0.0 {
                // The sweep annihilated the iterate (possible for
                // concentrated starts); re-seed with the uniform vector.
                x = vecops::uniform(p.n());
                continue;
            }
            if change <= self.tol {
                let residual = p.stationary_residual(&x);
                vecops::clamp_roundoff(&mut x, 1e-12);
                obs::event(
                    "markov.gauss_seidel",
                    &[("iterations", it.into()), ("residual", residual.into())],
                );
                return Ok(StationaryResult { distribution: x, iterations: it, residual });
            }
        }
        let residual = p.stationary_residual(&x);
        Err(MarkovError::NotConverged { iterations: self.max_iters, residual })
    }

    fn name(&self) -> &'static str {
        "gauss-seidel"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_chains::{birth_death, pseudo_random, two_state};
    use super::super::{JacobiSolver, PowerIteration};
    use super::*;

    #[test]
    fn two_state_exact() {
        let (p, pi) = two_state(0.25, 0.75);
        let r = GaussSeidelSolver::default().solve(&p, None).unwrap();
        assert!(vecops::dist1(&r.distribution, &pi) < 1e-9);
    }

    #[test]
    fn agrees_with_other_solvers() {
        let p = pseudo_random(25, 99);
        let gs = GaussSeidelSolver::default().solve(&p, None).unwrap();
        let pw = PowerIteration::default().solve(&p, None).unwrap();
        let jc = JacobiSolver::default().solve(&p, None).unwrap();
        assert!(vecops::dist1(&gs.distribution, &pw.distribution) < 1e-8);
        assert!(vecops::dist1(&gs.distribution, &jc.distribution) < 1e-8);
    }

    #[test]
    fn faster_than_jacobi_on_birth_death() {
        let (p, _) = birth_death(30, 0.48);
        let gs = GaussSeidelSolver::new(1e-10, 200_000).solve(&p, None).unwrap();
        // Undamped Jacobi oscillates on this near-bipartite chain; use the
        // damped variant for a fair iteration-count comparison.
        let jc = JacobiSolver::new(1e-10, 200_000, 0.7).solve(&p, None).unwrap();
        assert!(
            gs.iterations < jc.iterations,
            "GS {} iters vs Jacobi {}",
            gs.iterations,
            jc.iterations
        );
    }

    #[test]
    fn delta_start_does_not_collapse_to_zero() {
        // A delta at state 0 is annihilated by one forward sweep (its mass
        // is overwritten before propagating); the solver must recover
        // rather than report the zero vector as converged.
        let (p, pi) = two_state(0.3, 0.6);
        let r = GaussSeidelSolver::default().solve(&p, Some(&[1.0, 0.0])).unwrap();
        assert!((vecops::sum(&r.distribution) - 1.0).abs() < 1e-12);
        assert!(vecops::dist1(&r.distribution, &pi) < 1e-9);
    }

    #[test]
    fn result_is_stationary() {
        let (p, _) = birth_death(12, 0.3);
        let r = GaussSeidelSolver::default().solve(&p, None).unwrap();
        assert!(p.stationary_residual(&r.distribution) < 1e-9);
        assert!(vecops::is_nonnegative(&r.distribution));
    }
}
