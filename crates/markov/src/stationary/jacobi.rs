//! Damped Jacobi iteration for the stationary distribution.

use stochcdr_linalg::{vecops, TransitionOp};
use stochcdr_obs as obs;

use crate::{MarkovError, Result, StochasticMatrix};

use super::{
    finalize, square_dim, ConvergenceTrace, SolveOptions, StationaryResult, StationarySolver,
};

/// Damped (weighted) Jacobi iteration on the stationarity equations.
///
/// From `η = η P`, each component satisfies
/// `η_i = (Σ_{j≠i} η_j p_ji) / (1 − p_ii)`, which is the Jacobi update for
/// the singular system `(P^T − I) η = 0`. A damping factor `ω ∈ (0, 1]`
/// blends the update with the previous iterate:
///
/// ```text
/// η_i ← (1 − ω) η_i + ω (Σ_{j≠i} η_j p_ji) / (1 − p_ii)
/// ```
///
/// Damped Jacobi is also the *smoother* used between grid transfers in the
/// paper's multigrid method ("the lumping and expanding steps are
/// interleaved with simple Gauss–Jacobi iterations"); the `sweep_once`
/// entry point exists for that use.
///
/// Matrix-free: a sweep needs only the `x·A` product and the diagonal, so
/// structured backends such as the Kronecker product-form operator never
/// materialize. The dominant SpMV runs on the parallel kernel layer.
#[derive(Debug, Clone, PartialEq)]
pub struct JacobiSolver {
    opts: SolveOptions,
    omega: f64,
}

impl JacobiSolver {
    /// Creates a solver with tolerance, iteration budget and damping `ω`.
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0`, `max_iters == 0`, or `ω ∉ (0, 1]`.
    pub fn new(tol: f64, max_iters: usize, omega: f64) -> Self {
        JacobiSolver::with_options(SolveOptions::new(tol, max_iters), omega)
    }

    /// Creates a solver from shared [`SolveOptions`] and damping `ω`.
    ///
    /// # Panics
    ///
    /// Panics if `ω ∉ (0, 1]`.
    pub fn with_options(opts: SolveOptions, omega: f64) -> Self {
        assert!(omega > 0.0 && omega <= 1.0, "damping must be in (0, 1]");
        JacobiSolver { opts, omega }
    }

    /// Damping factor `ω`.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// The full iteration controls.
    pub fn options(&self) -> &SolveOptions {
        &self.opts
    }

    /// Performs one damped Jacobi sweep in place and returns the L1 change.
    ///
    /// `x` must be a probability vector; it remains one afterwards. States
    /// with `p_ii = 1` (absorbing) keep their current value: the update is
    /// undefined there and any mass they hold is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != p.n()`.
    pub fn sweep_once(&self, p: &StochasticMatrix, x: &mut [f64]) -> f64 {
        assert_eq!(x.len(), p.n(), "vector length must match state count");
        let diag = p.matrix().diagonal();
        self.sweep_op(p, &diag, x)
    }

    /// One damped Jacobi sweep against any operator; `diag` must be the
    /// operator's main diagonal (hoisted by callers that sweep repeatedly).
    pub(crate) fn sweep_op(&self, op: &dyn TransitionOp, diag: &[f64], x: &mut [f64]) -> f64 {
        let mut y = vec![0.0; x.len()];
        self.sweep_op_into(op, diag, x, &mut y)
    }

    /// Allocation-free sweep with caller-provided diagonal and scratch.
    ///
    /// `diag` must be `p`'s main diagonal and `y` a scratch vector of the
    /// same length as `x`. Same bits as [`sweep_once`](Self::sweep_once);
    /// multigrid smoothing hoists both buffers out of the cycle loop.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths are inconsistent.
    pub fn sweep_with_scratch(
        &self,
        p: &StochasticMatrix,
        diag: &[f64],
        x: &mut [f64],
        y: &mut [f64],
    ) -> f64 {
        assert_eq!(x.len(), p.n(), "vector length must match state count");
        assert_eq!(diag.len(), p.n(), "diagonal length must match state count");
        self.sweep_op_into(p, diag, x, y)
    }

    /// Allocation-free sweep against any operator: like
    /// [`sweep_with_scratch`](Self::sweep_with_scratch) but on a
    /// [`TransitionOp`] (the implicit Kronecker path). `diag` must be the
    /// operator's main diagonal; same bits as the materialized sweep when
    /// the operator serves the materialized chain's values.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths are inconsistent with the operator.
    pub fn sweep_op_with_scratch(
        &self,
        op: &dyn TransitionOp,
        diag: &[f64],
        x: &mut [f64],
        y: &mut [f64],
    ) -> f64 {
        assert_eq!(x.len(), op.rows(), "vector length must match state count");
        assert_eq!(
            diag.len(),
            op.rows(),
            "diagonal length must match state count"
        );
        self.sweep_op_into(op, diag, x, y)
    }

    fn sweep_op_into(
        &self,
        op: &dyn TransitionOp,
        diag: &[f64],
        x: &mut [f64],
        y: &mut [f64],
    ) -> f64 {
        let n = x.len();
        assert_eq!(y.len(), n, "scratch length must match vector length");
        // y_i = Σ_j x_j p_ji = (x P)_i.
        op.mul_left_into(x, y);
        let mut change = 0.0;
        for i in 0..n {
            let pii = diag[i];
            let denom = 1.0 - pii;
            let new = if denom > f64::EPSILON {
                // Remove the diagonal term included in y_i.
                ((y[i] - pii * x[i]) / denom).max(0.0)
            } else {
                x[i]
            };
            let blended = (1.0 - self.omega) * x[i] + self.omega * new;
            change += (blended - x[i]).abs();
            y[i] = blended;
        }
        x.copy_from_slice(y);
        vecops::normalize_l1(x);
        change
    }
}

impl Default for JacobiSolver {
    /// Tolerance `1e-12`, budget `100_000`, damping `0.8`.
    fn default() -> Self {
        JacobiSolver::with_options(SolveOptions::default(), 0.8)
    }
}

impl StationarySolver for JacobiSolver {
    fn solve_op(&self, op: &dyn TransitionOp, init: Option<&[f64]>) -> Result<StationaryResult> {
        let n = square_dim(op)?;
        let mut x = self.opts.starting_vector(n, init)?;
        let diag = op.diagonal();
        let mut history = Vec::new();
        let mut trace = ConvergenceTrace::new("markov.jacobi.stall");
        let heartbeat = obs::Heartbeat::new("jacobi");
        for it in 1..=self.opts.max_iters {
            let change = self.sweep_op(op, &diag, &mut x);
            if vecops::sum(&x) == 0.0 {
                // Degenerate iterate (possible for adversarial starts on
                // structured chains); re-seed with the uniform vector.
                x = vecops::uniform(n);
                continue;
            }
            trace.observe(change);
            if heartbeat.active() {
                heartbeat.tick_solve(
                    it as u64,
                    change,
                    trace.summary().ewma_reduction,
                    self.opts.tol,
                );
            }
            if self.opts.record_history {
                history.push(change);
            }
            if change <= self.opts.tol {
                obs::event(
                    "markov.jacobi",
                    &[("iterations", it.into()), ("change", change.into())],
                );
                return Ok(finalize(op, x, it, history, trace.summary()));
            }
        }
        let residual = {
            let y = op.mul_left(&x);
            vecops::dist1(&y, &x)
        };
        Err(MarkovError::NotConverged {
            iterations: self.opts.max_iters,
            residual,
        })
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_chains::{birth_death, pseudo_random, two_state};
    use super::*;

    #[test]
    fn two_state_exact() {
        let (p, pi) = two_state(0.2, 0.5);
        let r = JacobiSolver::default().solve(&p, None).unwrap();
        assert!(vecops::dist1(&r.distribution, &pi) < 1e-9);
    }

    #[test]
    fn birth_death_converges() {
        let (p, pi) = birth_death(15, 0.45);
        let r = JacobiSolver::default().solve(&p, None).unwrap();
        assert!(vecops::dist1(&r.distribution, &pi) < 1e-8);
    }

    #[test]
    fn agrees_with_power_on_random_chain() {
        use super::super::PowerIteration;
        let p = pseudo_random(25, 7);
        let a = JacobiSolver::default().solve(&p, None).unwrap();
        let b = PowerIteration::default().solve(&p, None).unwrap();
        assert!(vecops::dist1(&a.distribution, &b.distribution) < 1e-8);
    }

    #[test]
    fn sweep_reduces_residual() {
        let p = pseudo_random(20, 3);
        let mut x = vecops::uniform(20);
        let r0 = p.stationary_residual(&x);
        let solver = JacobiSolver::default();
        for _ in 0..20 {
            solver.sweep_once(&p, &mut x);
        }
        assert!(p.stationary_residual(&x) < r0 * 0.5);
    }

    #[test]
    fn absorbing_state_mass_preserved() {
        // State 1 absorbing; all mass should end up there.
        let mut coo = stochcdr_linalg::CooMatrix::new(2, 2);
        coo.push(0, 0, 0.5);
        coo.push(0, 1, 0.5);
        coo.push(1, 1, 1.0);
        let p = StochasticMatrix::new(coo.to_csr()).unwrap();
        let r = JacobiSolver::default().solve(&p, None).unwrap();
        assert!(r.distribution[1] > 0.999999);
    }

    #[test]
    fn invalid_damping_panics() {
        let result = std::panic::catch_unwind(|| JacobiSolver::new(1e-9, 10, 1.5));
        assert!(result.is_err());
    }

    #[test]
    fn reported_residual_is_post_clamp() {
        let p = pseudo_random(18, 11);
        let r = JacobiSolver::default().solve(&p, None).unwrap();
        assert_eq!(r.residual(), p.stationary_residual(&r.distribution));
    }
}
