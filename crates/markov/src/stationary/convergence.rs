//! Convergence telemetry: per-cycle reduction factors, EWMA, and a
//! stall detector shared by every iterative solver.
//!
//! A [`ConvergenceTrace`] is fed the solver's per-iteration convergence
//! metric (the L1 residual for power/multigrid, the sweep change for
//! Jacobi/Gauss–Seidel) and derives the *reduction factor* between
//! consecutive observations — the quantity the paper's convergence claims
//! are about. It maintains an exponentially-weighted moving average of the
//! reduction and a stall detector that fires once when `window` consecutive
//! reductions sit at or above `threshold` (the iteration is barely
//! contracting, e.g. power iteration on a nearly-completely-decomposable
//! chain whose subdominant eigenvalue is `1 − O(ε)`).
//!
//! The trace is **observation-only**: it is a pure function of the metric
//! sequence, never feeds back into the iteration, and therefore cannot
//! perturb bit-exact solver results. Its [`ConvergenceSummary`] is attached
//! to [`super::SolveReport`] (and `MultigridStats` in the multigrid crate),
//! and the stall fires an `obs` event so artifacts record *when* a solve
//! went flat, not just that it eventually did or did not converge.

use stochcdr_obs as obs;

/// Default EWMA smoothing factor for the reduction average.
pub const DEFAULT_EWMA_ALPHA: f64 = 0.25;
/// Default reduction threshold at/above which a cycle counts as "slow".
pub const DEFAULT_STALL_THRESHOLD: f64 = 0.99;
/// Default number of consecutive slow cycles that constitutes a stall.
pub const DEFAULT_STALL_WINDOW: usize = 10;

/// Streaming recorder for a solver's convergence trajectory.
///
/// Feed it the per-iteration metric with [`observe`](Self::observe); read
/// the result with [`summary`](Self::summary). See the module docs for
/// the semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceTrace {
    stall_event: &'static str,
    alpha: f64,
    threshold: f64,
    window: usize,
    observations: usize,
    reductions: usize,
    prev_metric: Option<f64>,
    last_reduction: Option<f64>,
    ewma: Option<f64>,
    best_reduction: Option<f64>,
    worst_reduction: Option<f64>,
    slow_streak: usize,
    stalled_at: Option<usize>,
}

impl ConvergenceTrace {
    /// Creates a trace with default EWMA/stall parameters. `stall_event`
    /// is the `obs` event name fired (once) when the stall detector trips,
    /// e.g. `"markov.power.stall"`.
    pub fn new(stall_event: &'static str) -> Self {
        ConvergenceTrace {
            stall_event,
            alpha: DEFAULT_EWMA_ALPHA,
            threshold: DEFAULT_STALL_THRESHOLD,
            window: DEFAULT_STALL_WINDOW,
            observations: 0,
            reductions: 0,
            prev_metric: None,
            last_reduction: None,
            ewma: None,
            best_reduction: None,
            worst_reduction: None,
            slow_streak: 0,
            stalled_at: None,
        }
    }

    /// Sets the EWMA smoothing factor `α ∈ (0, 1]` (weight of the newest
    /// reduction).
    ///
    /// # Panics
    ///
    /// Panics if `alpha ∉ (0, 1]` or is not finite.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1]"
        );
        self.alpha = alpha;
        self
    }

    /// Sets the stall detector: `window` consecutive reductions at or
    /// above `threshold` trip it.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive/finite or `window` is zero.
    #[must_use]
    pub fn with_stall(mut self, threshold: f64, window: usize) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "stall threshold must be positive and finite"
        );
        assert!(window > 0, "stall window must be positive");
        self.threshold = threshold;
        self.window = window;
        self
    }

    /// Records one per-iteration convergence metric and returns the
    /// reduction factor relative to the previous observation (`None` for
    /// the first observation or a non-positive/non-finite predecessor).
    ///
    /// Fires the stall event the first time `window` consecutive
    /// reductions are at or above the threshold.
    pub fn observe(&mut self, metric: f64) -> Option<f64> {
        self.observations += 1;
        let reduction = match self.prev_metric {
            Some(prev) if prev > 0.0 && metric.is_finite() && metric >= 0.0 => Some(metric / prev),
            _ => None,
        };
        self.prev_metric = Some(metric);
        let red = reduction?;
        self.reductions += 1;
        self.last_reduction = Some(red);
        self.ewma = Some(match self.ewma {
            Some(e) => self.alpha * red + (1.0 - self.alpha) * e,
            None => red,
        });
        self.best_reduction = Some(self.best_reduction.map_or(red, |b| b.min(red)));
        self.worst_reduction = Some(self.worst_reduction.map_or(red, |w| w.max(red)));
        if red >= self.threshold {
            self.slow_streak += 1;
            if self.slow_streak >= self.window && self.stalled_at.is_none() {
                self.stalled_at = Some(self.observations);
                obs::event(
                    self.stall_event,
                    &[
                        ("iteration", self.observations.into()),
                        ("reduction_ewma", self.ewma.unwrap_or(red).into()),
                        ("threshold", self.threshold.into()),
                        ("window", self.window.into()),
                    ],
                );
            }
        } else {
            self.slow_streak = 0;
        }
        Some(red)
    }

    /// Whether the stall detector has tripped.
    pub fn stalled(&self) -> bool {
        self.stalled_at.is_some()
    }

    /// Snapshot of the trajectory so far.
    pub fn summary(&self) -> ConvergenceSummary {
        ConvergenceSummary {
            reductions: self.reductions,
            ewma_reduction: self.ewma,
            last_reduction: self.last_reduction,
            best_reduction: self.best_reduction,
            worst_reduction: self.worst_reduction,
            stalled: self.stalled_at.is_some(),
            stalled_at: self.stalled_at,
        }
    }
}

/// Condensed convergence trajectory attached to solve reports.
///
/// All fields are pure functions of the observed metric sequence, so the
/// summary is bit-identical across thread counts whenever the trajectory
/// is. A summary from a direct solver (or a solve with fewer than two
/// observations) is [`Default::default`]: zero reductions, every optional
/// field `None`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConvergenceSummary {
    /// Number of consecutive-iteration reduction factors observed.
    pub reductions: usize,
    /// Exponentially-weighted moving average of the reduction factor.
    pub ewma_reduction: Option<f64>,
    /// Reduction factor of the final iteration.
    pub last_reduction: Option<f64>,
    /// Smallest (fastest) reduction factor seen.
    pub best_reduction: Option<f64>,
    /// Largest (slowest) reduction factor seen.
    pub worst_reduction: Option<f64>,
    /// Whether the stall detector tripped at any point.
    pub stalled: bool,
    /// 1-based observation index at which the stall detector tripped.
    pub stalled_at: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_detector_fires_on_stalling_sequence() {
        // A constructed stalling model: residuals contracting at 0.999 per
        // cycle — above the 0.99 threshold every single cycle.
        let mut trace = ConvergenceTrace::new("test.stall").with_stall(0.99, 5);
        let mut res = 1.0;
        for _ in 0..8 {
            trace.observe(res);
            res *= 0.999;
        }
        let s = trace.summary();
        assert!(s.stalled, "stall detector must fire on 0.999 reductions");
        // First observation yields no reduction; the 5-slow-cycle window
        // completes on the 6th observation.
        assert_eq!(s.stalled_at, Some(6));
        assert_eq!(s.reductions, 7);
        // Constant reduction: EWMA equals it bit-exactly (α·r + (1−α)·r).
        assert_eq!(s.ewma_reduction, Some(0.999));
        assert_eq!(s.best_reduction, Some(0.999));
        assert_eq!(s.worst_reduction, Some(0.999));
    }

    #[test]
    fn fast_convergence_never_stalls() {
        let mut trace = ConvergenceTrace::new("test.stall");
        let mut res = 1.0;
        for _ in 0..50 {
            trace.observe(res);
            res *= 0.1;
        }
        let s = trace.summary();
        assert!(!s.stalled);
        assert_eq!(s.stalled_at, None);
        assert!(s.ewma_reduction.unwrap() < 0.2);
    }

    #[test]
    fn recovery_resets_the_slow_streak() {
        let mut trace = ConvergenceTrace::new("test.stall").with_stall(0.9, 3);
        // Two slow cycles, one fast, two slow, one fast, ... never 3 in a
        // row.
        let factors = [0.95, 0.95, 0.1, 0.95, 0.95, 0.1, 0.95, 0.95];
        let mut res = 1.0;
        trace.observe(res);
        for f in factors {
            res *= f;
            trace.observe(res);
        }
        assert!(!trace.stalled());
        // One more slow cycle after a 2-streak completes the window.
        trace.observe(res * 0.95);
        trace.observe(res * 0.95 * 0.95);
        assert!(trace.stalled());
    }

    #[test]
    fn degenerate_metrics_produce_no_reductions() {
        let mut trace = ConvergenceTrace::new("test.stall");
        assert_eq!(trace.observe(1.0), None); // first observation
        assert_eq!(trace.observe(f64::NAN), None); // non-finite metric
        assert_eq!(trace.observe(0.5), None); // NaN predecessor
        trace.observe(0.0);
        assert_eq!(trace.observe(0.3), None); // zero predecessor
        let s = trace.summary();
        assert_eq!(s.reductions, 1); // only 0.5 → 0.0
        assert!(!s.stalled);
    }

    #[test]
    fn default_summary_is_empty() {
        let s = ConvergenceSummary::default();
        assert_eq!(s, ConvergenceTrace::new("test.stall").summary());
        assert_eq!(s.reductions, 0);
        assert!(!s.stalled);
    }
}
