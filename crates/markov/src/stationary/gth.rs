//! Direct GTH (Grassmann–Taksar–Heyman) stationary solver.

use stochcdr_linalg::{vecops, DenseMatrix, TransitionOp};
use stochcdr_obs as obs;

use crate::{MarkovError, Result};

use super::{StationaryResult, StationarySolver};

/// Direct stationary solver using Grassmann–Taksar–Heyman state elimination.
///
/// GTH is the numerically preferred direct method for stationary
/// distributions: it performs no subtractions, so it cannot suffer the
/// catastrophic cancellation Gaussian elimination exhibits on singular
/// `I − P` systems. Cost is `O(n^3)` time and `O(n^2)` space — exactly right
/// for the *coarsest* level of the multigrid hierarchy ("the coarsest
/// problem is solved exactly with a direct method" in the paper) and for
/// reference solutions in tests.
///
/// The derivation is censoring: eliminating state `k` replaces the chain by
/// the chain *watched only on states `< k`*, with transitions
/// `p'_ij = p_ij + p_ik · p_kj / s_k` where `s_k = Σ_{j<k} p_kj` is the
/// probability of leaving `k` downward. Back-substitution then rebuilds the
/// full stationary vector from `π_0 = 1`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GthSolver {
    _private: (),
}

impl GthSolver {
    /// Creates a GTH solver.
    pub fn new() -> Self {
        GthSolver::default()
    }

    /// Runs GTH elimination on an explicit dense matrix.
    ///
    /// Exposed separately so the multigrid coarse solver can reuse a dense
    /// scratch matrix without round-tripping through sparse storage.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Reducible`] when some state cannot reach the
    /// states below it (elimination breaks down), and
    /// [`MarkovError::NotSquare`] for non-square input.
    pub fn solve_dense(&self, a: &DenseMatrix) -> Result<Vec<f64>> {
        let mut p = a.clone();
        let mut pi = vec![0.0; a.rows()];
        self.solve_dense_in_place(&mut p, &mut pi)?;
        Ok(pi)
    }

    /// Allocation-free variant of [`solve_dense`](Self::solve_dense): the
    /// elimination destroys `p` (which must hold the transition matrix on
    /// entry) and the stationary vector lands in `pi`. Same arithmetic,
    /// same bits as the allocating path; the multigrid coarse solver
    /// reuses one dense scratch across all cycles this way.
    ///
    /// # Errors
    ///
    /// Same as [`solve_dense`](Self::solve_dense).
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != p.rows()`.
    pub fn solve_dense_in_place(&self, p: &mut DenseMatrix, pi: &mut [f64]) -> Result<()> {
        if p.rows() != p.cols() {
            return Err(MarkovError::NotSquare {
                rows: p.rows(),
                cols: p.cols(),
            });
        }
        let n = p.rows();
        assert_eq!(pi.len(), n, "stationary vector length must match");
        if n == 0 {
            return Err(MarkovError::InvalidArgument("empty chain".into()));
        }
        if n == 1 {
            pi[0] = 1.0;
            return Ok(());
        }
        // Elimination phase: remove states n-1, n-2, ..., 1.
        for k in (1..n).rev() {
            let s: f64 = (0..k).map(|j| p[(k, j)]).sum();
            if s <= 0.0 {
                return Err(MarkovError::Reducible(format!(
                    "state {k} has no transitions into states 0..{k}"
                )));
            }
            for j in 0..k {
                p[(k, j)] /= s;
            }
            for i in 0..k {
                let pik = p[(i, k)];
                if pik == 0.0 {
                    continue;
                }
                for j in 0..k {
                    let pkj = p[(k, j)];
                    if pkj != 0.0 {
                        p[(i, j)] += pik * pkj;
                    }
                }
            }
            // Record the normalizer in the (k,k) slot for back-substitution.
            p[(k, k)] = s;
        }
        // Back-substitution phase.
        pi.fill(0.0);
        pi[0] = 1.0;
        for k in 1..n {
            let mut acc = 0.0;
            for i in 0..k {
                acc += pi[i] * p[(i, k)];
            }
            pi[k] = acc / p[(k, k)];
        }
        vecops::normalize_l1(pi);
        Ok(())
    }
}

impl StationarySolver for GthSolver {
    /// Materializes the operator as a dense matrix (O(n²) space) and runs
    /// the elimination. No roundoff clamp is applied: GTH is
    /// subtraction-free, so the result is non-negative by construction and
    /// tiny true stationary masses are preserved exactly. The reported
    /// residual is measured on the returned vector.
    fn solve_op(&self, op: &dyn TransitionOp, _init: Option<&[f64]>) -> Result<StationaryResult> {
        let _span = obs::span("markov.gth");
        let dense = op.materialize_dense();
        let pi = self.solve_dense(&dense)?;
        let residual = {
            let y = op.mul_left(&pi);
            vecops::dist1(&y, &pi)
        };
        obs::event(
            "markov.gth",
            &[("states", op.rows().into()), ("residual", residual.into())],
        );
        Ok(StationaryResult {
            distribution: pi,
            report: super::SolveReport {
                iterations: 1,
                residual,
                residual_history: vec![residual],
                convergence: super::ConvergenceSummary::default(),
            },
        })
    }

    fn name(&self) -> &'static str {
        "gth"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_chains::{birth_death, pseudo_random, two_state};
    use super::super::PowerIteration;
    use super::*;
    use crate::StochasticMatrix;

    #[test]
    fn two_state_closed_form() {
        let (p, pi) = two_state(0.3, 0.7);
        let r = GthSolver::new().solve(&p, None).unwrap();
        assert!(vecops::dist1(&r.distribution, &pi) < 1e-14);
        assert!(r.residual() < 1e-14);
    }

    #[test]
    fn periodic_chain_handled_exactly() {
        // Power iteration cannot solve the deterministic toggle; GTH can.
        let (p, pi) = two_state(1.0, 1.0);
        let r = GthSolver::new().solve(&p, None).unwrap();
        assert!(vecops::dist1(&r.distribution, &pi) < 1e-14);
    }

    #[test]
    fn birth_death_matches_geometric() {
        let (p, pi) = birth_death(25, 0.35);
        let r = GthSolver::new().solve(&p, None).unwrap();
        assert!(vecops::dist1(&r.distribution, &pi) < 1e-12);
    }

    #[test]
    fn agrees_with_power_iteration() {
        let p = pseudo_random(40, 5);
        let a = GthSolver::new().solve(&p, None).unwrap();
        let b = PowerIteration::default().solve(&p, None).unwrap();
        assert!(vecops::dist1(&a.distribution, &b.distribution) < 1e-9);
    }

    #[test]
    fn reducible_chain_rejected() {
        // Two absorbing states: no unique stationary distribution.
        let mut coo = stochcdr_linalg::CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let p = StochasticMatrix::new(coo.to_csr()).unwrap();
        assert!(matches!(
            GthSolver::new().solve(&p, None),
            Err(MarkovError::Reducible(_))
        ));
    }

    #[test]
    fn singleton_chain() {
        let mut coo = stochcdr_linalg::CooMatrix::new(1, 1);
        coo.push(0, 0, 1.0);
        let p = StochasticMatrix::new(coo.to_csr()).unwrap();
        let r = GthSolver::new().solve(&p, None).unwrap();
        assert_eq!(r.distribution, vec![1.0]);
    }

    #[test]
    fn stiff_chain_retains_accuracy() {
        // Nearly-decomposable chain: two tight clusters with epsilon
        // coupling — the classic case where naive elimination loses digits.
        let eps = 1e-12;
        let mut coo = stochcdr_linalg::CooMatrix::new(4, 4);
        // Cluster {0,1}.
        coo.push(0, 0, 0.5 - eps / 2.0);
        coo.push(0, 1, 0.5 - eps / 2.0);
        coo.push(0, 2, eps);
        coo.push(1, 0, 0.5);
        coo.push(1, 1, 0.5);
        // Cluster {2,3}.
        coo.push(2, 2, 0.5 - eps / 2.0);
        coo.push(2, 3, 0.5 - eps / 2.0);
        coo.push(2, 0, eps);
        coo.push(3, 2, 0.5);
        coo.push(3, 3, 0.5);
        let p = StochasticMatrix::new(coo.to_csr()).unwrap();
        let r = GthSolver::new().solve(&p, None).unwrap();
        // By symmetry both clusters carry mass 1/2, split evenly inside.
        for &v in &r.distribution {
            assert!((v - 0.25).abs() < 1e-9, "got {:?}", r.distribution);
        }
    }
}
