//! GMRES on the rank-one-shifted stationarity system.
//!
//! The homogeneous system `(I − Pᵀ) η = 0` with `Σ η = 1` is singular,
//! so Krylov methods cannot attack it directly. The classical remedy is
//! the rank-one shift
//!
//! ```text
//! B = (I − Pᵀ) + α · 1 1ᵀ,          α = 1/n,
//! ```
//!
//! which is nonsingular for an irreducible chain and satisfies
//! `B η = α · 1` exactly at the stationary distribution: the
//! normalization constraint is folded into the operator, and solving
//! `B x = α · 1` with [`stochcdr_linalg::gmres`] recovers `η` including
//! its scale. Every `B·x` product is one deterministic `x·P` kernel
//! (the cached-transpose SpMV all other solvers share) plus a serial
//! sum, so results are bit-identical at any worker thread count.

use stochcdr_linalg::{gmres, vecops, GmresOptions, LinalgError, TransitionOp};
use stochcdr_obs as obs;

use crate::{MarkovError, Result, StochasticMatrix};

use super::{ConvergenceTrace, SolveOptions, StationaryResult, StationarySolver};

/// Largest restart length accepted by [`GmresStationary::with_restart`].
pub const MAX_GMRES_RESTART: usize = 1024;

/// The shifted operator `B = (I − Pᵀ) + α·1 1ᵀ` as a [`TransitionOp`].
///
/// `B` is structurally dense (the rank-one term touches every entry), so
/// row traversal merges the identity and `Pᵀ` entries into a full-length
/// scan; the matvecs used by GMRES stay sparse.
struct ShiftedStationaryOp<'a> {
    p: &'a StochasticMatrix,
    alpha: f64,
}

impl TransitionOp for ShiftedStationaryOp<'_> {
    fn rows(&self) -> usize {
        self.p.n()
    }

    fn cols(&self) -> usize {
        self.p.n()
    }

    fn nnz(&self) -> usize {
        // Dense by virtue of the rank-one shift.
        self.p.n() * self.p.n()
    }

    /// `y = B x = x − xP + α (Σx) 1` — `Pᵀx` and `xP` are the same
    /// vector, served by the chain's deterministic step kernel.
    fn mul_right_into(&self, x: &[f64], y: &mut [f64]) {
        self.p.step_into(x, y);
        let shift = self.alpha * vecops::sum(x);
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = xi - *yi + shift;
        }
    }

    /// `y = xᵀB = x − Px + α (Σx) 1` (the mirror image of
    /// [`mul_right_into`](TransitionOp::mul_right_into)).
    fn mul_left_into(&self, x: &[f64], y: &mut [f64]) {
        self.p.matrix().mul_right_into(x, y);
        let shift = self.alpha * vecops::sum(x);
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = xi - *yi + shift;
        }
    }

    /// Row `r` of `B`: `α` everywhere, plus `1` on the diagonal, minus
    /// column `r` of `P` (= row `r` of the cached transpose).
    fn for_each_in_row(&self, row: usize, f: &mut dyn FnMut(usize, f64)) {
        let pt = self.p.transposed();
        let mut entries = pt.row(row).peekable();
        for c in 0..self.p.n() {
            let mut v = self.alpha;
            if c == row {
                v += 1.0;
            }
            if let Some(&(ec, ev)) = entries.peek() {
                if ec == c {
                    v -= ev;
                    entries.next();
                }
            }
            f(c, v);
        }
    }
}

/// Standalone GMRES stationary solver.
///
/// Solves the rank-one-shifted system `B x = α·1` (see the module docs)
/// with restarted GMRES, then clamps round-off noise and renormalizes.
/// No preconditioner: this is the baseline Krylov solver the registry
/// exposes as `gmres`; the multigrid-preconditioned variant lives in the
/// multigrid solver's acceleration path.
///
/// [`StationarySolver::solve_op`] materializes the operator first, like
/// the multigrid solver: the shifted matvec needs the chain's cached
/// transpose.
#[derive(Debug, Clone, PartialEq)]
pub struct GmresStationary {
    opts: SolveOptions,
    restart: usize,
}

impl GmresStationary {
    /// Creates a solver with the given relative residual tolerance and
    /// total inner-iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0` or `max_iters == 0`.
    pub fn new(tol: f64, max_iters: usize) -> Self {
        GmresStationary::with_options(SolveOptions::new(tol, max_iters))
    }

    /// Creates a solver from shared [`SolveOptions`].
    pub fn with_options(opts: SolveOptions) -> Self {
        GmresStationary { opts, restart: 50 }
    }

    /// Restart length (default 50): Arnoldi basis vectors kept before the
    /// iteration restarts from the current residual.
    ///
    /// # Panics
    ///
    /// Panics unless `restart` is in `1..=1024`.
    pub fn with_restart(mut self, restart: usize) -> Self {
        assert!(
            (1..=MAX_GMRES_RESTART).contains(&restart),
            "GMRES restart length must be in 1..={MAX_GMRES_RESTART}"
        );
        self.restart = restart;
        self
    }

    /// Restart length.
    pub fn restart(&self) -> usize {
        self.restart
    }
}

impl Default for GmresStationary {
    /// Tolerance `1e-12`, budget `100_000` inner iterations, restart 50.
    fn default() -> Self {
        GmresStationary::with_options(SolveOptions::default())
    }
}

impl StationarySolver for GmresStationary {
    /// Materializes the operator as a validated [`StochasticMatrix`] and
    /// solves on it: the shifted matvec is one `x·P` step, served by the
    /// chain's cached transpose.
    fn solve_op(&self, op: &dyn TransitionOp, init: Option<&[f64]>) -> Result<StationaryResult> {
        let p = StochasticMatrix::with_tolerance(op.materialize_csr(), 1e-6)?;
        self.solve(&p, init)
    }

    fn solve(&self, p: &StochasticMatrix, init: Option<&[f64]>) -> Result<StationaryResult> {
        let n = p.n();
        let x0 = self.opts.starting_vector(n, init)?;
        let alpha = 1.0 / n as f64;
        let b = vec![alpha; n];
        let shifted = ShiftedStationaryOp { p, alpha };
        // ‖b‖₂ = 1/√n, so a relative 2-norm residual of `tol` bounds the
        // L1 stationarity residual by `√n·‖Bx − b‖₂ = tol` (up to the
        // iterate's Σx drift, which the system itself drives to 1).
        let gopts = GmresOptions {
            restart: self.restart,
            tol: self.opts.tol,
            max_iters: self.opts.max_iters,
        };
        let run = gmres(&shifted, &b, Some(&x0), &gopts).map_err(|e| match e {
            LinalgError::SingularMatrix { step, .. } => MarkovError::NotConverged {
                iterations: step,
                residual: f64::NAN,
            },
            other => MarkovError::from(other),
        })?;
        let mut x = run.x;
        // GMRES knows nothing about non-negativity; the converged iterate
        // can undershoot zero by round-off on near-transient states.
        for v in &mut x {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        if !vecops::normalize_l1(&mut x) {
            return Err(MarkovError::NotConverged {
                iterations: run.iterations,
                residual: f64::NAN,
            });
        }
        // The per-restart trajectory lives inside `linalg::gmres`; the
        // report carries the final state only.
        let mut trace = ConvergenceTrace::new("markov.gmres.stall");
        trace.observe(run.rel_residual);
        let result = super::finalize(p, x, run.iterations, Vec::new(), trace.summary());
        obs::event(
            "markov.gmres",
            &[
                ("iterations", run.iterations.into()),
                ("restart", self.restart.into()),
                ("residual", result.report.residual.into()),
                ("rel_residual", run.rel_residual.into()),
            ],
        );
        Ok(result)
    }

    fn name(&self) -> &'static str {
        "gmres"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary::GthSolver;
    use stochcdr_linalg::CooMatrix;

    /// Birth–death chain of `n` states with up-probability `up`.
    fn birth_death(n: usize, up: f64) -> StochasticMatrix {
        let down = 1.0 - up;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            if i == 0 {
                coo.push(0, 0, down);
            } else {
                coo.push(i, i - 1, down);
            }
            if i == n - 1 {
                coo.push(i, i, up);
            } else {
                coo.push(i, i + 1, up);
            }
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn matches_direct_solve() {
        let p = birth_death(64, 0.45);
        let g = GmresStationary::new(1e-12, 100_000)
            .solve(&p, None)
            .unwrap();
        let d = GthSolver::new().solve(&p, None).unwrap();
        assert!(vecops::dist1(&g.distribution, &d.distribution) < 1e-9);
        assert!(g.residual() < 1e-10);
        assert!(g.iterations() > 0);
    }

    #[test]
    fn shifted_row_traversal_matches_matvec() {
        let p = birth_death(8, 0.4);
        let op = ShiftedStationaryOp { p: &p, alpha: 1.0 / 8.0 };
        // Rebuild B column-action from rows and compare against
        // mul_right_into on a ramp vector.
        let x: Vec<f64> = (0..8).map(|i| (i + 1) as f64).collect();
        let mut y = vec![0.0; 8];
        op.mul_right_into(&x, &mut y);
        let mut y_rows = vec![0.0; 8];
        for r in 0..8 {
            let mut acc = 0.0;
            op.for_each_in_row(r, &mut |c, v| acc += v * x[c]);
            y_rows[r] = acc;
        }
        for (a, b) in y.iter().zip(&y_rows) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn restart_knob_validated() {
        let s = GmresStationary::default().with_restart(20);
        assert_eq!(s.restart(), 20);
        assert_eq!(s.name(), "gmres");
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let p = birth_death(128, 0.48);
        let solver = GmresStationary::new(1e-12, 100_000);
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            stochcdr_linalg::par::set_threads(Some(threads));
            runs.push(solver.solve(&p, None).unwrap());
            stochcdr_linalg::par::set_threads(None);
        }
        assert_eq!(runs[0].distribution, runs[1].distribution);
        assert_eq!(runs[0].iterations(), runs[1].iterations());
    }
}
