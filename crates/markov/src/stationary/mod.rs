//! Solvers for the stationary distribution `η P = η`, `η 1 = 1`.
//!
//! The paper frames this as "the most basic analysis for MCs": computing the
//! left eigenvector of the stochastic matrix `P` for eigenvalue 1, posed
//! either as an eigenvalue problem or as the homogeneous linear system
//! `(P^T − I) η^T = 0` with the normalization `η ξ = 1`.
//!
//! Four solvers are provided:
//!
//! * [`PowerIteration`] — `η_{k+1} = η_k P`; robust, slow for stiff chains,
//! * [`JacobiSolver`] — damped Jacobi on the stationarity equations; also
//!   the smoother inside the multigrid solver ("Gauss–Jacobi" in the paper),
//! * [`GaussSeidelSolver`] — forward sweeps using the transposed matrix,
//! * [`GthSolver`] — direct Grassmann–Taksar–Heyman elimination
//!   (subtraction-free, numerically exact up to round-off); `O(n^3)`, used
//!   for small chains and the coarsest multigrid level,
//! * [`GmresStationary`] — restarted GMRES on the rank-one-shifted
//!   nonsingular system `((I − Pᵀ) + (1/n)·1 1ᵀ) x = (1/n)·1`, whose unique
//!   solution is `η`; the registry's baseline Krylov solver.
//!
//! The multigrid method of the paper lives in the `stochcdr-multigrid`
//! crate and implements the same [`StationarySolver`] trait.

mod convergence;
mod gauss_seidel;
mod gth;
mod jacobi;
mod krylov;
mod power;

pub use convergence::{ConvergenceSummary, ConvergenceTrace};
pub use gauss_seidel::GaussSeidelSolver;
pub use gth::GthSolver;
pub use jacobi::JacobiSolver;
pub use krylov::{GmresStationary, MAX_GMRES_RESTART};
pub use power::PowerIteration;

use stochcdr_linalg::{vecops, TransitionOp};
use stochcdr_obs as obs;

use crate::{Result, StochasticMatrix};

/// Shared iteration controls for every [`StationarySolver`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOptions {
    /// Convergence tolerance on the solver's per-iteration change metric.
    pub tol: f64,
    /// Iteration budget before giving up with `NotConverged`.
    pub max_iters: usize,
    /// Record the per-iteration convergence metric in
    /// [`SolveReport::residual_history`] (off by default: long power-method
    /// runs would otherwise allocate megabytes of history).
    pub record_history: bool,
    /// Warm-start vector for iterative methods: when set (and no explicit
    /// `init` argument is passed to the solve call, which takes
    /// precedence), iterations start from this distribution instead of
    /// uniform. Parameter sweeps seed each point from a neighbor's η this
    /// way. Validated and L1-normalized like an explicit `init`; direct
    /// methods ignore it.
    pub init: Option<Vec<f64>>,
}

impl Default for SolveOptions {
    /// Tolerance `1e-12`, budget `100_000` iterations, no history.
    fn default() -> Self {
        SolveOptions {
            tol: 1e-12,
            max_iters: 100_000,
            record_history: false,
            init: None,
        }
    }
}

impl SolveOptions {
    /// Creates options with the given tolerance and iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not positive/finite or `max_iters` is zero.
    pub fn new(tol: f64, max_iters: usize) -> Self {
        assert!(
            tol.is_finite() && tol > 0.0,
            "tolerance must be positive and finite"
        );
        assert!(max_iters > 0, "iteration budget must be positive");
        SolveOptions {
            tol,
            max_iters,
            record_history: false,
            init: None,
        }
    }

    /// Enables residual-history recording.
    #[must_use]
    pub fn with_history(mut self) -> Self {
        self.record_history = true;
        self
    }

    /// Sets the warm-start vector (see [`SolveOptions::init`]).
    #[must_use]
    pub fn with_init(mut self, init: Vec<f64>) -> Self {
        self.init = Some(init);
        self
    }

    /// Resolves the starting vector for an iterative solve: the explicit
    /// `init` argument wins, then [`SolveOptions::init`], then uniform.
    ///
    /// # Errors
    ///
    /// [`crate::MarkovError::InvalidArgument`] for a malformed vector
    /// (wrong length, negative entries, zero mass).
    pub fn starting_vector(&self, n: usize, init: Option<&[f64]>) -> Result<Vec<f64>> {
        initial_vector(n, init.or(self.init.as_deref()))
    }
}

/// What a solve did: iteration count, final residual, optional history.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolveReport {
    /// Iterations performed (1 for direct solvers).
    pub iterations: usize,
    /// Final residual `||η P − η||_1`, measured *after* the roundoff clamp
    /// so it reports exactly the distribution handed back.
    pub residual: f64,
    /// Per-iteration convergence metric (solver-specific: the residual for
    /// power/multigrid, the sweep change for Jacobi/Gauss–Seidel), with
    /// the last entry synced to the final post-clamp residual. Empty
    /// unless [`SolveOptions::record_history`] is set — except for
    /// multigrid, which always records its (short) cycle history.
    pub residual_history: Vec<f64>,
    /// Condensed convergence trajectory: reduction-factor EWMA and the
    /// stall detector's verdict (see [`ConvergenceTrace`]). Default-empty
    /// for direct solvers.
    pub convergence: ConvergenceSummary,
}

/// Outcome of a stationary-distribution solve.
#[derive(Debug, Clone, PartialEq)]
pub struct StationaryResult {
    /// The stationary distribution `η` (non-negative, sums to one).
    pub distribution: Vec<f64>,
    /// Iteration/residual telemetry for the solve.
    pub report: SolveReport,
}

impl StationaryResult {
    /// Iterations performed (1 for direct solvers).
    pub fn iterations(&self) -> usize {
        self.report.iterations
    }

    /// Final residual `||η P − η||_1` (post-clamp).
    pub fn residual(&self) -> f64 {
        self.report.residual
    }
}

/// A solver computing the stationary distribution of a Markov chain.
///
/// Implementations must return a non-negative vector summing to one whose
/// residual `||η P − η||_1` meets the solver's own tolerance, or an error.
/// Every solver consumes the matrix-free [`TransitionOp`] interface;
/// [`StationarySolver::solve`] is a convenience wrapper for concrete
/// [`StochasticMatrix`] chains.
pub trait StationarySolver {
    /// Computes the stationary distribution of a transition operator.
    ///
    /// `init` optionally seeds iterative methods; direct methods ignore it.
    /// When `None`, the uniform distribution is used. Matrix-free backends
    /// (e.g. the Kronecker product-form operator) work without
    /// materialization for solvers that only need `x·A` products (power
    /// iteration, weighted Jacobi); solvers that need a transpose or dense
    /// elimination materialize and document the cost.
    ///
    /// # Errors
    ///
    /// * [`crate::MarkovError::NotConverged`] when the iteration budget is
    ///   exhausted,
    /// * [`crate::MarkovError::Reducible`] when the method requires an
    ///   irreducible chain and the structure makes the solve impossible,
    /// * [`crate::MarkovError::InvalidArgument`] for malformed `init` or a
    ///   non-square operator.
    fn solve_op(&self, op: &dyn TransitionOp, init: Option<&[f64]>) -> Result<StationaryResult>;

    /// Computes the stationary distribution of a validated stochastic
    /// matrix (see [`StationarySolver::solve_op`] for the contract).
    ///
    /// # Errors
    ///
    /// Same as [`StationarySolver::solve_op`].
    fn solve(&self, p: &StochasticMatrix, init: Option<&[f64]>) -> Result<StationaryResult> {
        self.solve_op(p, init)
    }

    /// Short human-readable name used in reports and benchmarks.
    fn name(&self) -> &'static str;
}

/// Rejects non-square operators; returns the dimension.
pub(crate) fn square_dim(op: &dyn TransitionOp) -> Result<usize> {
    if op.rows() != op.cols() {
        return Err(crate::MarkovError::InvalidArgument(format!(
            "stationary solve needs a square operator, got {}x{}",
            op.rows(),
            op.cols()
        )));
    }
    Ok(op.rows())
}

/// Shared convergence epilogue: clamp roundoff noise out of the iterate,
/// recompute the residual on the *clamped* vector so the report describes
/// exactly what is returned, sync the history tail, and emit the common
/// iteration telemetry.
pub(crate) fn finalize(
    op: &dyn TransitionOp,
    mut x: Vec<f64>,
    iterations: usize,
    mut residual_history: Vec<f64>,
    convergence: ConvergenceSummary,
) -> StationaryResult {
    vecops::clamp_roundoff(&mut x, 1e-12);
    let residual = {
        let y = op.mul_left(&x);
        vecops::dist1(&y, &x)
    };
    if let Some(last) = residual_history.last_mut() {
        *last = residual;
    }
    if obs::enabled() {
        obs::counter("markov.solve.iterations", iterations as u64);
        obs::gauge("markov.solve.residual", residual);
        if let Some(ewma) = convergence.ewma_reduction {
            obs::gauge("markov.solve.reduction_ewma", ewma);
        }
    }
    StationaryResult {
        distribution: x,
        report: SolveReport {
            iterations,
            residual,
            residual_history,
            convergence,
        },
    }
}

/// Validates/creates the starting vector shared by the iterative solvers.
pub(crate) fn initial_vector(n: usize, init: Option<&[f64]>) -> Result<Vec<f64>> {
    use crate::MarkovError;
    match init {
        None => Ok(stochcdr_linalg::vecops::uniform(n)),
        Some(x) => {
            if x.len() != n {
                return Err(MarkovError::InvalidArgument(format!(
                    "initial vector length {} != state count {n}",
                    x.len()
                )));
            }
            if !stochcdr_linalg::vecops::is_nonnegative(x) {
                return Err(MarkovError::InvalidArgument(
                    "initial vector must be non-negative and finite".into(),
                ));
            }
            let mut x = x.to_vec();
            if !stochcdr_linalg::vecops::normalize_l1(&mut x) {
                return Err(MarkovError::InvalidArgument(
                    "initial vector must have positive mass".into(),
                ));
            }
            Ok(x)
        }
    }
}

#[cfg(test)]
pub(crate) mod test_chains {
    //! Chains with known stationary distributions, shared by solver tests.

    use stochcdr_linalg::CooMatrix;

    use crate::StochasticMatrix;

    /// Two-state chain with stationary distribution `(b, a) / (a + b)`.
    pub fn two_state(a: f64, b: f64) -> (StochasticMatrix, Vec<f64>) {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0 - a);
        coo.push(0, 1, a);
        coo.push(1, 0, b);
        coo.push(1, 1, 1.0 - b);
        let pi = vec![b / (a + b), a / (a + b)];
        (StochasticMatrix::new(coo.to_csr()).unwrap(), pi)
    }

    /// Birth–death random walk on `0..n` with up-probability `p`,
    /// down-probability `q = 1 - p`, reflecting at the ends.
    /// Stationary distribution is geometric with ratio `p/q`.
    pub fn birth_death(n: usize, p: f64) -> (StochasticMatrix, Vec<f64>) {
        let q = 1.0 - p;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            if i == 0 {
                coo.push(0, 1, p);
                coo.push(0, 0, q);
            } else if i == n - 1 {
                coo.push(i, i - 1, q);
                coo.push(i, i, p);
            } else {
                coo.push(i, i + 1, p);
                coo.push(i, i - 1, q);
            }
        }
        // Detailed balance: pi[i+1]/pi[i] = p/q.
        let r = p / q;
        let mut pi = Vec::with_capacity(n);
        let mut v = 1.0;
        for _ in 0..n {
            pi.push(v);
            v *= r;
        }
        let s: f64 = pi.iter().sum();
        for v in &mut pi {
            *v /= s;
        }
        (StochasticMatrix::new(coo.to_csr()).unwrap(), pi)
    }

    /// Random dense-ish stochastic matrix with a deterministic seed
    /// (reproducible across runs without pulling in `rand`).
    pub fn pseudo_random(n: usize, seed: u64) -> StochasticMatrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let mut row: Vec<f64> = (0..n).map(|_| next() + 1e-3).collect();
            let s: f64 = row.iter().sum();
            for v in &mut row {
                *v /= s;
            }
            for (j, v) in row.into_iter().enumerate() {
                coo.push(i, j, v);
            }
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_vector_defaults_to_uniform() {
        let x = initial_vector(4, None).unwrap();
        assert_eq!(x, vec![0.25; 4]);
    }

    #[test]
    fn initial_vector_normalizes() {
        let x = initial_vector(2, Some(&[1.0, 3.0])).unwrap();
        assert_eq!(x, vec![0.25, 0.75]);
    }

    #[test]
    fn options_init_warm_starts_and_explicit_arg_wins() {
        let (p, pi) = test_chains::two_state(0.3, 0.2);
        let warm = PowerIteration::with_options(SolveOptions::new(1e-13, 10_000).with_init(pi));
        let seeded = warm.solve(&p, None).unwrap();
        let cold = PowerIteration::new(1e-13, 10_000).solve(&p, None).unwrap();
        assert!(
            seeded.iterations() < cold.iterations(),
            "seeding at the answer must converge faster ({} vs {})",
            seeded.iterations(),
            cold.iterations()
        );
        // An explicit init argument overrides the options seed.
        let explicit = warm.solve(&p, Some(&[0.5, 0.5])).unwrap();
        assert_eq!(explicit.iterations(), cold.iterations());
        // A malformed options seed is rejected like a malformed argument.
        let bad =
            PowerIteration::with_options(SolveOptions::new(1e-13, 10_000).with_init(vec![1.0]));
        assert!(bad.solve(&p, None).is_err());
    }

    #[test]
    fn initial_vector_rejects_bad_input() {
        assert!(initial_vector(2, Some(&[1.0])).is_err());
        assert!(initial_vector(2, Some(&[-1.0, 2.0])).is_err());
        assert!(initial_vector(2, Some(&[0.0, 0.0])).is_err());
    }
}
