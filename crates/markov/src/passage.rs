//! First-passage and absorption analysis.
//!
//! The paper's second performance measure — "the average time between cycle
//! slips ... translates into the computation of mean transition times
//! between certain sets of MC states, which is another standard computation
//! in MC analysis. It involves solving a linear system with the (modified)
//! TPM." This module provides that computation:
//!
//! * [`mean_hitting_times`] — expected steps until a target set is first
//!   entered, from every state (`(I − Q) t = 1` on the complement),
//! * [`hitting_probabilities`] — probability of reaching set `A` before
//!   set `B`,
//! * [`expected_visits_before_hit`] — expected number of visits to each
//!   state before absorption, from a given start distribution.
//!
//! All entry points take the operator abstraction
//! [`TransitionOp`](stochcdr_linalg::TransitionOp), so they work with any
//! backend — [`StochasticMatrix`](crate::StochasticMatrix) (which coerces at
//! the call site), bare CSR, dense, or product-form operators with row
//! access. Backends without a cached transpose are materialized once for the
//! backward-reachability check.

use stochcdr_linalg::{vecops, CsrMatrix, TransitionOp};
use stochcdr_obs as obs;

use crate::stationary::square_dim;
use crate::{MarkovError, Result};

/// Iterative-solve configuration shared by the passage computations.
///
/// The linear systems have the substochastic matrix `Q` (transitions that
/// stay outside the target set); they are solved by Gauss–Seidel sweeps,
/// which converge whenever every non-target state can reach the target.
#[derive(Debug, Clone, PartialEq)]
pub struct PassageOptions {
    /// Max-norm change tolerance for the sweeps.
    pub tol: f64,
    /// Iteration budget.
    pub max_iters: usize,
}

impl Default for PassageOptions {
    /// Tolerance `1e-10`, budget `1_000_000` sweeps.
    fn default() -> Self {
        PassageOptions {
            tol: 1e-10,
            max_iters: 1_000_000,
        }
    }
}

/// Expected number of steps to first hit `target`, from every state.
///
/// Entries for states inside `target` are zero. Solves
/// `t = 1 + Q t` by Gauss–Seidel, where `Q` is `P` restricted to the
/// complement of `target`.
///
/// # Example
///
/// ```
/// use stochcdr_linalg::CooMatrix;
/// use stochcdr_markov::{passage::{mean_hitting_times, PassageOptions}, StochasticMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Fair coin flips until the first head (state 1): E[T] = 2.
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 0.5);
/// coo.push(0, 1, 0.5);
/// coo.push(1, 1, 1.0);
/// let p = StochasticMatrix::new(coo.to_csr())?;
/// let t = mean_hitting_times(&p, &[1], &PassageOptions::default())?;
/// assert!((t[0] - 2.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`MarkovError::InvalidArgument`] if `target` is empty or out of range,
/// * [`MarkovError::Reducible`] if some state cannot reach the target (its
///   hitting time is infinite),
/// * [`MarkovError::NotConverged`] if the budget is exhausted.
pub fn mean_hitting_times(
    p: &dyn TransitionOp,
    target: &[usize],
    opts: &PassageOptions,
) -> Result<Vec<f64>> {
    let n = square_dim(p)?;
    let in_target = membership(n, target)?;
    check_reachable(p, &in_target)?;

    let mut t = vec![0.0f64; n];
    for it in 0..opts.max_iters {
        let mut change = 0.0f64;
        for i in 0..n {
            if in_target[i] {
                continue;
            }
            let mut acc = 1.0;
            let mut pii = 0.0;
            p.for_each_in_row(i, &mut |j, v| {
                if j == i {
                    pii = v;
                } else if !in_target[j] {
                    acc += v * t[j];
                }
            });
            let denom = 1.0 - pii;
            debug_assert!(
                denom > 0.0,
                "reachability check should exclude absorbing non-targets"
            );
            let new = acc / denom;
            change = change.max((new - t[i]).abs());
            t[i] = new;
        }
        if change <= opts.tol * (1.0 + vecops::norm_inf(&t)) {
            obs::event(
                "markov.passage",
                &[("iterations", (it + 1).into()), ("states", n.into())],
            );
            return Ok(t);
        }
        let _ = it;
    }
    Err(MarkovError::NotConverged {
        iterations: opts.max_iters,
        residual: f64::NAN,
    })
}

/// Mean time between visits to `target` under stationary operation.
///
/// By the renewal-reward/Kac formula the mean return time to a set `A`
/// under stationarity is `1 / Pr_η(A enters)`, but the quantity the paper
/// reports (mean time *between cycle slips*) is the expected hitting time
/// of the slip boundary starting from the stationary distribution
/// conditioned outside the boundary. This helper computes exactly that:
/// `Σ_i η̃_i t_i` where `η̃` is `eta` restricted and renormalized outside
/// `target`.
///
/// # Errors
///
/// Propagates [`mean_hitting_times`] errors, and returns
/// [`MarkovError::InvalidArgument`] if `eta` has the wrong length or no mass
/// outside the target.
pub fn mean_time_between(
    p: &dyn TransitionOp,
    eta: &[f64],
    target: &[usize],
    opts: &PassageOptions,
) -> Result<f64> {
    let n = square_dim(p)?;
    if eta.len() != n {
        return Err(MarkovError::InvalidArgument(format!(
            "stationary vector length {} != state count {n}",
            eta.len()
        )));
    }
    let in_target = membership(n, target)?;
    let t = mean_hitting_times(p, target, opts)?;
    let mut mass = 0.0;
    let mut acc = 0.0;
    for i in 0..n {
        if !in_target[i] {
            mass += eta[i];
            acc += eta[i] * t[i];
        }
    }
    if mass <= 0.0 {
        return Err(MarkovError::InvalidArgument(
            "stationary distribution has no mass outside the target".into(),
        ));
    }
    Ok(acc / mass)
}

/// Expected number of steps to first hit `target`, solved **directly**:
/// forms the dense `(I − Q)` system over the non-target states and LU-
/// factorizes it.
///
/// The iterative [`mean_hitting_times`] converges at rate `ρ(Q)`, which for
/// *rare* targets (cycle slips at low noise) is `1 − 1/E[T]` — hopeless
/// when `E[T] ~ 1e12`. The direct solve costs `O(n³)` but is exact for any
/// target rarity; use it when the transient set is small (≲ 2000 states).
///
/// # Errors
///
/// * [`MarkovError::InvalidArgument`] if `target` is empty or out of range,
/// * [`MarkovError::Reducible`] if some state cannot reach the target,
/// * [`MarkovError::Linalg`] if the dense solve fails.
pub fn mean_hitting_times_direct(p: &dyn TransitionOp, target: &[usize]) -> Result<Vec<f64>> {
    let n = square_dim(p)?;
    let in_target = membership(n, target)?;
    check_reachable(p, &in_target)?;
    let transient: Vec<usize> = (0..n).filter(|&i| !in_target[i]).collect();
    let mut index_of = vec![usize::MAX; n];
    for (k, &s) in transient.iter().enumerate() {
        index_of[s] = k;
    }
    let nt = transient.len();
    let mut a = stochcdr_linalg::DenseMatrix::identity(nt);
    for (k, &s) in transient.iter().enumerate() {
        p.for_each_in_row(s, &mut |j, v| {
            if !in_target[j] {
                a[(k, index_of[j])] -= v;
            }
        });
    }
    let sol = a.solve(&vec![1.0; nt])?;
    let mut t = vec![0.0; n];
    for (k, &s) in transient.iter().enumerate() {
        t[s] = sol[k];
    }
    Ok(t)
}

/// Expected number of steps to first hit `target`, solved with restarted
/// **GMRES** on the sparse `(I − Q) t = 1` system.
///
/// Sits between the Gauss–Seidel sweeps of [`mean_hitting_times`] (cheap,
/// but convergence degrades as hitting times grow) and the dense
/// [`mean_hitting_times_direct`] (exact, but `O(n³)`): Krylov iterations
/// handle moderately rare targets on chains far too large for the dense
/// path. The paper's numerical-methods section lists Krylov subspace
/// methods among the accelerable baselines.
///
/// # Errors
///
/// * [`MarkovError::InvalidArgument`] if `target` is empty or out of range,
/// * [`MarkovError::Reducible`] if some state cannot reach the target,
/// * [`MarkovError::Linalg`] if GMRES stagnates within its budget.
pub fn mean_hitting_times_gmres(
    p: &dyn TransitionOp,
    target: &[usize],
    opts: &stochcdr_linalg::GmresOptions,
) -> Result<Vec<f64>> {
    let n = square_dim(p)?;
    let in_target = membership(n, target)?;
    check_reachable(p, &in_target)?;
    let transient: Vec<usize> = (0..n).filter(|&i| !in_target[i]).collect();
    let mut index_of = vec![usize::MAX; n];
    for (k, &s) in transient.iter().enumerate() {
        index_of[s] = k;
    }
    // Assemble I − Q over the transient states, sparsely.
    let nt = transient.len();
    let mut coo = stochcdr_linalg::CooMatrix::new(nt, nt);
    for (k, &s) in transient.iter().enumerate() {
        coo.push(k, k, 1.0);
        p.for_each_in_row(s, &mut |j, v| {
            if !in_target[j] {
                coo.push(k, index_of[j], -v);
            }
        });
    }
    let a = coo.to_csr();
    let rhs = vec![1.0; nt];
    let sol = stochcdr_linalg::gmres(&a, &rhs, None, opts)?;
    let mut t = vec![0.0; n];
    for (k, &s) in transient.iter().enumerate() {
        t[s] = sol.x[k];
    }
    Ok(t)
}

/// Probability of hitting set `a` before set `b`, from every state.
///
/// States in `a` have probability one, states in `b` probability zero.
/// Solves `h = P_{·,a} 1 + Q h` by Gauss–Seidel.
///
/// # Errors
///
/// * [`MarkovError::InvalidArgument`] if the sets are empty, overlap, or
///   contain out-of-range states,
/// * [`MarkovError::NotConverged`] if the budget is exhausted.
///
/// States that can reach neither set retain probability zero (they never
/// hit `a`), matching the probabilistic definition.
pub fn hitting_probabilities(
    p: &dyn TransitionOp,
    a: &[usize],
    b: &[usize],
    opts: &PassageOptions,
) -> Result<Vec<f64>> {
    let n = square_dim(p)?;
    let in_a = membership(n, a)?;
    let in_b = membership(n, b)?;
    if (0..n).any(|i| in_a[i] && in_b[i]) {
        return Err(MarkovError::InvalidArgument("target sets overlap".into()));
    }
    let mut h = vec![0.0f64; n];
    for i in 0..n {
        if in_a[i] {
            h[i] = 1.0;
        }
    }
    for _ in 0..opts.max_iters {
        let mut change = 0.0f64;
        for i in 0..n {
            if in_a[i] || in_b[i] {
                continue;
            }
            let mut acc = 0.0;
            let mut pii = 0.0;
            p.for_each_in_row(i, &mut |j, v| {
                if j == i {
                    pii = v;
                } else {
                    acc += v * h[j];
                }
            });
            let denom = 1.0 - pii;
            if denom <= 0.0 {
                continue; // absorbing non-target state: never hits `a`
            }
            let new = acc / denom;
            change = change.max((new - h[i]).abs());
            h[i] = new;
        }
        if change <= opts.tol {
            return Ok(h);
        }
    }
    Err(MarkovError::NotConverged {
        iterations: opts.max_iters,
        residual: f64::NAN,
    })
}

/// Expected number of visits to each non-target state before hitting
/// `target`, starting from distribution `start`.
///
/// This is the row `start^T N` of the fundamental matrix
/// `N = (I − Q)^{-1}`, computed without forming `N`: solve
/// `v = start + v Q` by forward iteration.
///
/// # Errors
///
/// Same conditions as [`mean_hitting_times`].
pub fn expected_visits_before_hit(
    p: &dyn TransitionOp,
    start: &[f64],
    target: &[usize],
    opts: &PassageOptions,
) -> Result<Vec<f64>> {
    let n = square_dim(p)?;
    if start.len() != n {
        return Err(MarkovError::InvalidArgument(format!(
            "start vector length {} != state count {n}",
            start.len()
        )));
    }
    let in_target = membership(n, target)?;
    check_reachable(p, &in_target)?;
    // v_{k+1} = start + v_k Q, Q = P restricted outside target.
    let mut v: Vec<f64> = start
        .iter()
        .enumerate()
        .map(|(i, &s)| if in_target[i] { 0.0 } else { s })
        .collect();
    let mut next = vec![0.0f64; n];
    for _ in 0..opts.max_iters {
        // next = start + v Q  (start restricted outside target).
        for x in next.iter_mut() {
            *x = 0.0;
        }
        for i in 0..n {
            if in_target[i] {
                continue;
            }
            next[i] += start[i];
        }
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 || in_target[i] {
                continue;
            }
            p.for_each_in_row(i, &mut |j, pv| {
                if !in_target[j] {
                    next[j] += vi * pv;
                }
            });
        }
        let change = vecops::dist_inf(&v, &next);
        std::mem::swap(&mut v, &mut next);
        if change <= opts.tol {
            return Ok(v);
        }
    }
    Err(MarkovError::NotConverged {
        iterations: opts.max_iters,
        residual: f64::NAN,
    })
}

/// Builds a membership mask, validating the index set.
fn membership(n: usize, set: &[usize]) -> Result<Vec<bool>> {
    if set.is_empty() {
        return Err(MarkovError::InvalidArgument("target set is empty".into()));
    }
    let mut mask = vec![false; n];
    for &s in set {
        if s >= n {
            return Err(MarkovError::InvalidArgument(format!(
                "target state {s} out of range 0..{n}"
            )));
        }
        mask[s] = true;
    }
    Ok(mask)
}

/// Fails with [`MarkovError::Reducible`] unless every state can reach the
/// target set. Uses the backend's cached transpose when available;
/// otherwise materializes and transposes once.
fn check_reachable(p: &dyn TransitionOp, in_target: &[bool]) -> Result<()> {
    let pt_owned;
    let pt: &CsrMatrix = match p.transpose_csr() {
        Some(t) => t,
        None => {
            pt_owned = p.materialize_csr().transpose();
            &pt_owned
        }
    };
    let reachable = backward_reachable(pt, in_target);
    if let Some(bad) = reachable.iter().position(|&r| !r) {
        return Err(MarkovError::Reducible(format!(
            "state {bad} cannot reach the target set; its hitting time is infinite"
        )));
    }
    Ok(())
}

/// BFS along reversed edges from the target: which states can reach it?
fn backward_reachable(pt: &CsrMatrix, in_target: &[bool]) -> Vec<bool> {
    let n = in_target.len();
    let mut seen: Vec<bool> = in_target.to_vec();
    let mut queue: std::collections::VecDeque<usize> = (0..n).filter(|&i| in_target[i]).collect();
    while let Some(v) = queue.pop_front() {
        // Rows of pt are in-edges of v in the original graph.
        for (u, _) in pt.row(v) {
            if !seen[u] {
                seen[u] = true;
                queue.push_back(u);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StochasticMatrix;
    use stochcdr_linalg::CooMatrix;

    fn chain(n: usize, edges: &[(usize, usize, f64)]) -> StochasticMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(r, c, v) in edges {
            coo.push(r, c, v);
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    /// Gambler's-ruin style walk on 0..=3, absorbing at 3; fair coin.
    fn walk() -> StochasticMatrix {
        chain(
            4,
            &[
                (0, 0, 0.5),
                (0, 1, 0.5),
                (1, 0, 0.5),
                (1, 2, 0.5),
                (2, 1, 0.5),
                (2, 3, 0.5),
                (3, 3, 1.0),
            ],
        )
    }

    #[test]
    fn hitting_times_of_reflecting_walk() {
        // For the reflecting fair walk, E[T_3 | start=i] follows from
        // t_i = 1 + 0.5 t_{i-1} + 0.5 t_{i+1} with reflection at 0;
        // solving: t_2 = 10? Let's derive: t3=0.
        // t0 = 1 + .5 t0 + .5 t1 -> .5 t0 = 1 + .5 t1 -> t0 = 2 + t1
        // t1 = 1 + .5 t0 + .5 t2
        // t2 = 1 + .5 t1
        // Substitute: t1 = 1 + .5(2 + t1) + .5(1 + .5 t1) -> t1 = 2.5 + .75 t1
        // -> t1 = 10, t0 = 12, t2 = 6.
        let p = walk();
        let t = mean_hitting_times(&p, &[3], &PassageOptions::default()).unwrap();
        assert!((t[0] - 12.0).abs() < 1e-7, "{t:?}");
        assert!((t[1] - 10.0).abs() < 1e-7);
        assert!((t[2] - 6.0).abs() < 1e-7);
        assert_eq!(t[3], 0.0);
    }

    #[test]
    fn direct_matches_iterative() {
        let p = walk();
        let ti = mean_hitting_times(&p, &[3], &PassageOptions::default()).unwrap();
        let td = mean_hitting_times_direct(&p, &[3]).unwrap();
        for (a, b) in ti.iter().zip(&td) {
            assert!((a - b).abs() < 1e-6, "{ti:?} vs {td:?}");
        }
    }

    #[test]
    fn csr_backend_is_bit_identical() {
        // The port to TransitionOp must not change the arithmetic: running
        // the solve through the bare CSR backend (no cached transpose)
        // reproduces the StochasticMatrix path bit for bit.
        let p = walk();
        let a = mean_hitting_times(&p, &[3], &PassageOptions::default()).unwrap();
        let b = mean_hitting_times(p.matrix(), &[3], &PassageOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn direct_handles_rare_targets() {
        // A nearly-absorbing loop: expected hitting time ~ 1/eps, far
        // beyond iterative reach at eps = 1e-12.
        let eps = 1e-12;
        let p = chain(2, &[(0, 0, 1.0 - eps), (0, 1, eps), (1, 1, 1.0)]);
        let t = mean_hitting_times_direct(&p, &[1]).unwrap();
        assert!((t[0] * eps - 1.0).abs() < 1e-3, "t0 = {}", t[0]);
    }

    #[test]
    fn gmres_matches_direct() {
        let p = walk();
        let tg =
            mean_hitting_times_gmres(&p, &[3], &stochcdr_linalg::GmresOptions::default()).unwrap();
        let td = mean_hitting_times_direct(&p, &[3]).unwrap();
        for (a, b) in tg.iter().zip(&td) {
            assert!((a - b).abs() < 1e-6, "{tg:?} vs {td:?}");
        }
    }

    #[test]
    fn gmres_rejects_unreachable() {
        let p = walk();
        assert!(matches!(
            mean_hitting_times_gmres(&p, &[0], &stochcdr_linalg::GmresOptions::default()),
            Err(MarkovError::Reducible(_))
        ));
    }

    #[test]
    fn direct_rejects_unreachable() {
        let p = walk();
        assert!(matches!(
            mean_hitting_times_direct(&p, &[0]),
            Err(MarkovError::Reducible(_))
        ));
    }

    #[test]
    fn unreachable_target_is_an_error() {
        // Target 0 unreachable from absorbing state 3.
        let p = walk();
        assert!(matches!(
            mean_hitting_times(&p, &[0], &PassageOptions::default()),
            Err(MarkovError::Reducible(_))
        ));
    }

    #[test]
    fn empty_or_invalid_target_rejected() {
        let p = walk();
        assert!(mean_hitting_times(&p, &[], &PassageOptions::default()).is_err());
        assert!(mean_hitting_times(&p, &[9], &PassageOptions::default()).is_err());
    }

    #[test]
    fn gambler_ruin_probabilities() {
        // Fair walk on 0..=4 absorbing at both ends: P(hit 4 before 0 | i) = i/4.
        let p = chain(
            5,
            &[
                (0, 0, 1.0),
                (1, 0, 0.5),
                (1, 2, 0.5),
                (2, 1, 0.5),
                (2, 3, 0.5),
                (3, 2, 0.5),
                (3, 4, 0.5),
                (4, 4, 1.0),
            ],
        );
        let h = hitting_probabilities(&p, &[4], &[0], &PassageOptions::default()).unwrap();
        for i in 0..5 {
            assert!((h[i] - i as f64 / 4.0).abs() < 1e-8, "{h:?}");
        }
    }

    #[test]
    fn overlapping_sets_rejected() {
        let p = walk();
        assert!(hitting_probabilities(&p, &[1, 2], &[2], &PassageOptions::default()).is_err());
    }

    #[test]
    fn expected_visits_sum_to_hitting_time() {
        // Σ_j E[visits to j before T] = E[T] when starting deterministically.
        let p = walk();
        let mut start = vec![0.0; 4];
        start[0] = 1.0;
        let v = expected_visits_before_hit(&p, &start, &[3], &PassageOptions::default()).unwrap();
        let t = mean_hitting_times(&p, &[3], &PassageOptions::default()).unwrap();
        let total: f64 = v.iter().sum();
        assert!(
            (total - t[0]).abs() < 1e-6,
            "visits {total} vs time {}",
            t[0]
        );
    }

    #[test]
    fn mean_time_between_weights_by_stationary() {
        // Uniform "stationary" over transient states of the walk: the mean
        // must be the average of t over states 0..=2.
        let p = walk();
        let eta = vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0, 0.0];
        let m = mean_time_between(&p, &eta, &[3], &PassageOptions::default()).unwrap();
        assert!((m - (12.0 + 10.0 + 6.0) / 3.0).abs() < 1e-6);
    }
}
