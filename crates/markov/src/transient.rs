//! Finite-horizon (transient) distribution evolution.

use stochcdr_linalg::vecops;

use crate::{MarkovError, Result, StochasticMatrix};

/// Evolves a distribution `k` steps: returns `x P^k`.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidArgument`] if `x` has the wrong length or
/// is not a (non-negative, positive-mass) distribution.
pub fn evolve(p: &StochasticMatrix, x: &[f64], k: usize) -> Result<Vec<f64>> {
    if x.len() != p.n() {
        return Err(MarkovError::InvalidArgument(format!(
            "vector length {} != state count {}",
            x.len(),
            p.n()
        )));
    }
    if !vecops::is_nonnegative(x) {
        return Err(MarkovError::InvalidArgument(
            "distribution must be non-negative".into(),
        ));
    }
    let mut cur = x.to_vec();
    if !vecops::normalize_l1(&mut cur) {
        return Err(MarkovError::InvalidArgument(
            "distribution must have positive mass".into(),
        ));
    }
    let mut next = vec![0.0; p.n()];
    for _ in 0..k {
        p.step_into(&cur, &mut next);
        std::mem::swap(&mut cur, &mut next);
    }
    Ok(cur)
}

/// The distribution after `k` steps started deterministically from `state`.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidArgument`] if `state` is out of range.
pub fn k_step_from(p: &StochasticMatrix, state: usize, k: usize) -> Result<Vec<f64>> {
    if state >= p.n() {
        return Err(MarkovError::InvalidArgument(format!(
            "state {state} out of range 0..{}",
            p.n()
        )));
    }
    let mut x = vec![0.0; p.n()];
    x[state] = 1.0;
    evolve(p, &x, k)
}

/// Total-variation distance between two distributions:
/// `½ Σ_i |x_i − y_i|`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn total_variation(x: &[f64], y: &[f64]) -> f64 {
    0.5 * vecops::dist1(x, y)
}

/// Estimates the mixing time: the smallest `k ≤ max_steps` such that the
/// total-variation distance between `x P^k` and `stationary` drops below
/// `eps`. Returns `None` if not reached within the horizon.
///
/// # Errors
///
/// Propagates [`evolve`] validation errors.
pub fn mixing_time(
    p: &StochasticMatrix,
    x: &[f64],
    stationary: &[f64],
    eps: f64,
    max_steps: usize,
) -> Result<Option<usize>> {
    if stationary.len() != p.n() {
        return Err(MarkovError::InvalidArgument(
            "stationary vector length mismatch".into(),
        ));
    }
    let mut cur = evolve(p, x, 0)?; // validates and normalizes
    let mut next = vec![0.0; p.n()];
    for k in 0..=max_steps {
        if total_variation(&cur, stationary) < eps {
            return Ok(Some(k));
        }
        p.step_into(&cur, &mut next);
        std::mem::swap(&mut cur, &mut next);
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochcdr_linalg::CooMatrix;

    fn two_state(a: f64, b: f64) -> StochasticMatrix {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0 - a);
        coo.push(0, 1, a);
        coo.push(1, 0, b);
        coo.push(1, 1, 1.0 - b);
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn zero_steps_is_identity() {
        let p = two_state(0.3, 0.4);
        let x = evolve(&p, &[0.25, 0.75], 0).unwrap();
        assert_eq!(x, vec![0.25, 0.75]);
    }

    #[test]
    fn one_step_matches_matrix() {
        let p = two_state(0.3, 0.4);
        let x = evolve(&p, &[1.0, 0.0], 1).unwrap();
        assert!((x[0] - 0.7).abs() < 1e-15);
        assert!((x[1] - 0.3).abs() < 1e-15);
    }

    #[test]
    fn k_step_from_state() {
        let p = two_state(1.0, 1.0); // toggle
        assert_eq!(k_step_from(&p, 0, 3).unwrap(), vec![0.0, 1.0]);
        assert_eq!(k_step_from(&p, 0, 4).unwrap(), vec![1.0, 0.0]);
        assert!(k_step_from(&p, 7, 1).is_err());
    }

    #[test]
    fn distribution_validation() {
        let p = two_state(0.5, 0.5);
        assert!(evolve(&p, &[1.0], 1).is_err());
        assert!(evolve(&p, &[-1.0, 2.0], 1).is_err());
        assert!(evolve(&p, &[0.0, 0.0], 1).is_err());
    }

    #[test]
    fn mixing_approaches_stationary() {
        let p = two_state(0.3, 0.6);
        let pi = [2.0 / 3.0, 1.0 / 3.0];
        let k = mixing_time(&p, &[1.0, 0.0], &pi, 1e-9, 10_000).unwrap();
        assert!(k.is_some());
        let k = k.unwrap();
        // Verify: after k steps TV < eps, after k-1 steps TV >= eps.
        let xk = evolve(&p, &[1.0, 0.0], k).unwrap();
        assert!(total_variation(&xk, &pi) < 1e-9);
        if k > 0 {
            let xp = evolve(&p, &[1.0, 0.0], k - 1).unwrap();
            assert!(total_variation(&xp, &pi) >= 1e-9);
        }
    }

    #[test]
    fn periodic_chain_never_mixes() {
        let p = two_state(1.0, 1.0);
        let pi = [0.5, 0.5];
        let k = mixing_time(&p, &[1.0, 0.0], &pi, 1e-3, 100).unwrap();
        assert_eq!(k, None);
    }

    #[test]
    fn total_variation_bounds() {
        assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
    }
}
