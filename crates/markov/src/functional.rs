//! Functionals of functions defined on the chain's state space.
//!
//! The paper's performance measures are all functionals of the stationary
//! distribution: BER is a tail probability of `Φ + n_w`, the plotted curves
//! are marginal densities of functions of the state, and "computation of η
//! is the prerequisite for computing other performance quantities such as
//! the autocorrelation of a function defined on the states of the MC".

use std::collections::BTreeMap;

use crate::{MarkovError, Result, StochasticMatrix};

/// Stationary expectation `E[f(X)] = Σ_i η_i f_i`.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidArgument`] on length mismatch.
pub fn expectation(eta: &[f64], f: &[f64]) -> Result<f64> {
    check_len(eta, f)?;
    Ok(eta.iter().zip(f).map(|(e, v)| e * v).sum())
}

/// Stationary variance `Var[f(X)]`.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidArgument`] on length mismatch.
pub fn variance(eta: &[f64], f: &[f64]) -> Result<f64> {
    let m = expectation(eta, f)?;
    let m2: f64 = eta.iter().zip(f).map(|(e, v)| e * v * v).sum();
    Ok((m2 - m * m).max(0.0))
}

/// Stationary probability of the event `{i : predicate(i)}`.
///
/// # Panics
///
/// The predicate is consulted for every state index `0..eta.len()`.
pub fn event_probability(eta: &[f64], predicate: impl Fn(usize) -> bool) -> f64 {
    eta.iter()
        .enumerate()
        .filter(|&(i, _)| predicate(i))
        .map(|(_, &e)| e)
        .sum()
}

/// Marginal distribution of a state labeling: sums `η` over states with the
/// same label and returns `(label, probability)` in ascending label order.
///
/// This is how the phase-error density plots of the paper are produced: the
/// label is the discretized phase-error bin of each joint state.
pub fn marginal<L: Ord + Copy>(eta: &[f64], label: impl Fn(usize) -> L) -> Vec<(L, f64)> {
    let mut acc: BTreeMap<L, f64> = BTreeMap::new();
    for (i, &e) in eta.iter().enumerate() {
        *acc.entry(label(i)).or_insert(0.0) += e;
    }
    acc.into_iter().collect()
}

/// Stationary autocovariance sequence of `f` on the chain:
///
/// ```text
/// C(k) = E[f(X_0) f(X_k)] − E[f]²
///      = Σ_i η_i f_i (P^k f)_i − (Σ_i η_i f_i)²
/// ```
///
/// Returns `C(0), C(1), ..., C(max_lag)`. Cost: `max_lag` sparse
/// matrix-vector products.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidArgument`] on length mismatches.
pub fn autocovariance(
    p: &StochasticMatrix,
    eta: &[f64],
    f: &[f64],
    max_lag: usize,
) -> Result<Vec<f64>> {
    if eta.len() != p.n() {
        return Err(MarkovError::InvalidArgument("eta length mismatch".into()));
    }
    check_len(eta, f)?;
    let mean = expectation(eta, f)?;
    let mut out = Vec::with_capacity(max_lag + 1);
    // g = P^k f, updated in place.
    let mut g = f.to_vec();
    let mut next = vec![0.0; p.n()];
    for _lag in 0..=max_lag {
        let moment: f64 = eta
            .iter()
            .zip(f)
            .zip(&g)
            .map(|((&e, &fi), &gi)| e * fi * gi)
            .sum();
        out.push(moment - mean * mean);
        p.matrix().mul_right_into(&g, &mut next);
        std::mem::swap(&mut g, &mut next);
    }
    Ok(out)
}

/// Normalized autocorrelation `ρ(k) = C(k) / C(0)`.
///
/// Returns all-zero (after lag 0) when `C(0) = 0` (constant function).
///
/// # Errors
///
/// Propagates [`autocovariance`] errors.
pub fn autocorrelation(
    p: &StochasticMatrix,
    eta: &[f64],
    f: &[f64],
    max_lag: usize,
) -> Result<Vec<f64>> {
    let c = autocovariance(p, eta, f, max_lag)?;
    let c0 = c[0];
    if c0 <= 0.0 {
        let mut out = vec![0.0; c.len()];
        out[0] = 1.0;
        return Ok(out);
    }
    Ok(c.into_iter().map(|v| v / c0).collect())
}

fn check_len(a: &[f64], b: &[f64]) -> Result<()> {
    if a.len() != b.len() {
        return Err(MarkovError::InvalidArgument(format!(
            "length mismatch: {} vs {}",
            a.len(),
            b.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary::{GthSolver, StationarySolver};
    use stochcdr_linalg::CooMatrix;

    fn two_state(a: f64, b: f64) -> StochasticMatrix {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0 - a);
        coo.push(0, 1, a);
        coo.push(1, 0, b);
        coo.push(1, 1, 1.0 - b);
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn expectation_and_variance() {
        let eta = [0.25, 0.75];
        let f = [0.0, 4.0];
        assert_eq!(expectation(&eta, &f).unwrap(), 3.0);
        // E[f^2] = 12, Var = 12 - 9 = 3.
        assert!((variance(&eta, &f).unwrap() - 3.0).abs() < 1e-12);
        assert!(expectation(&eta, &[1.0]).is_err());
    }

    #[test]
    fn event_probability_sums_mass() {
        let eta = [0.1, 0.2, 0.7];
        assert!((event_probability(&eta, |i| i >= 1) - 0.9).abs() < 1e-15);
    }

    #[test]
    fn marginal_groups_labels() {
        let eta = [0.1, 0.2, 0.3, 0.4];
        let m = marginal(&eta, |i| i % 2);
        assert_eq!(m.len(), 2);
        assert!((m[0].1 - 0.4).abs() < 1e-15);
        assert!((m[1].1 - 0.6).abs() < 1e-15);
    }

    #[test]
    fn autocovariance_of_two_state_chain() {
        // For the symmetric two-state chain with flip prob a, the
        // autocorrelation of f = (0, 1) is (1-2a)^k.
        let a = 0.3;
        let p = two_state(a, a);
        let eta = GthSolver::new().solve(&p, None).unwrap().distribution;
        let f = [0.0, 1.0];
        let rho = autocorrelation(&p, &eta, &f, 5).unwrap();
        for (k, &r) in rho.iter().enumerate() {
            let expect = (1.0 - 2.0 * a).powi(k as i32);
            assert!((r - expect).abs() < 1e-10, "lag {k}: {r} vs {expect}");
        }
    }

    #[test]
    fn constant_function_has_unit_rho0() {
        let p = two_state(0.5, 0.5);
        let eta = [0.5, 0.5];
        let rho = autocorrelation(&p, &eta, &[3.0, 3.0], 3).unwrap();
        assert_eq!(rho, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn autocovariance_lag0_is_variance() {
        let p = two_state(0.2, 0.4);
        let eta = GthSolver::new().solve(&p, None).unwrap().distribution;
        let f = [1.0, 5.0];
        let c = autocovariance(&p, &eta, &f, 0).unwrap();
        assert!((c[0] - variance(&eta, &f).unwrap()).abs() < 1e-12);
    }
}
