//! Error type for Markov-chain operations.

use std::fmt;

use stochcdr_linalg::LinalgError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, MarkovError>;

/// Error raised during Markov-chain construction or analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// The candidate transition matrix was not square.
    NotSquare {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// A row sum deviated from one by more than the tolerance.
    RowSumNotOne {
        /// Offending row (state) index.
        row: usize,
        /// The actual row sum.
        sum: f64,
    },
    /// A transition probability was negative or non-finite.
    InvalidProbability {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// An iterative solver exhausted its iteration budget.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// An analysis required an irreducible chain but the chain is not.
    Reducible(String),
    /// A state index, partition, or argument was structurally invalid.
    InvalidArgument(String),
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::NotSquare { rows, cols } => {
                write!(f, "transition matrix must be square, got {rows}x{cols}")
            }
            MarkovError::RowSumNotOne { row, sum } => {
                write!(f, "row {row} sums to {sum}, expected 1")
            }
            MarkovError::InvalidProbability { row, col, value } => {
                write!(f, "invalid probability {value} at ({row}, {col})")
            }
            MarkovError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations (residual {residual:e})"
            ),
            MarkovError::Reducible(msg) => write!(f, "chain is reducible: {msg}"),
            MarkovError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            MarkovError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for MarkovError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MarkovError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for MarkovError {
    fn from(e: LinalgError) -> Self {
        MarkovError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        let e = MarkovError::RowSumNotOne { row: 3, sum: 0.5 };
        assert!(e.to_string().contains("row 3"));
        let e = MarkovError::NotConverged {
            iterations: 10,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn linalg_errors_convert() {
        let le = LinalgError::ShapeMismatch("x".into());
        let me: MarkovError = le.clone().into();
        assert_eq!(me, MarkovError::Linalg(le));
    }
}
