//! Implicit (matrix-free) validated transition operators.
//!
//! [`StochasticMatrix`](crate::StochasticMatrix) validates a materialized
//! CSR and renormalizes every row once at construction. For product-form
//! chains whose joint TPM never fits in memory (the Kronecker operator
//! path), [`ImplicitStochastic`] provides the same contract without
//! materializing anything: it wraps a forward operator and its transposed
//! twin, validates rows by traversal, and stores only the per-row
//! renormalization factors.
//!
//! # Bit-parity with the materialized chain
//!
//! Every product the wrapper serves multiplies exactly the same scalars
//! in exactly the same order as the materialized
//! `StochasticMatrix` built from the same operator would:
//!
//! * the materialized path computes each stored value once as
//!   `raw · (1/rowsum)` (`scale_rows`) and then accumulates
//!   `value · x[j]` in ascending stored order; the implicit path computes
//!   `(raw · scale[row]) · x[j]` over the same traversal — identical
//!   operand bits, identical order, identical results;
//! * row sums are accumulated in ascending entry order starting from
//!   zero, matching `CsrMatrix::row_sums`;
//! * the transposed product gathers over the transposed operator's rows
//!   in ascending source order, matching the cached-`P^T` kernel.
//!
//! Combined with the workspace determinism contract (every output
//! element produced wholly by one worker in serial order), the implicit
//! solve path is bit-identical to the materialized one at any thread
//! count.

use stochcdr_linalg::{par, vecops, TransitionOp};
use stochcdr_obs as obs;

use crate::{MarkovError, Result};

/// A validated stochastic operator that never materializes its matrix.
///
/// Wraps a forward [`TransitionOp`] (rows = source states) and its
/// transposed twin (e.g. [`TransitionOp::transpose_op`] of a Kronecker
/// operator), plus the per-row renormalization factors computed at
/// validation time. All products serve `raw · scale[row]` values — the
/// exact bits a materialized [`StochasticMatrix`](crate::StochasticMatrix)
/// of the same operator stores.
pub struct ImplicitStochastic<'a> {
    fwd: &'a dyn TransitionOp,
    tr: &'a dyn TransitionOp,
    /// `scale[r] = 1 / Σ_j raw(r, j)` — the row-renormalization factor
    /// `StochasticMatrix::with_tolerance` bakes into the stored values.
    scale: Vec<f64>,
    /// Evenly-cut row blocking for the gather kernels, built once at
    /// validation. Product-form rows cost the same regardless of the
    /// compact factor nnz (which for a Kronecker operator says nothing
    /// about per-product-row work — it is thousands of entries for a
    /// million-state product), so the blocking is uniform over states
    /// and the parallel gate rides on the state count.
    part: par::RowPartition,
}

impl std::fmt::Debug for ImplicitStochastic<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImplicitStochastic")
            .field("n", &self.scale.len())
            .field("nnz", &self.fwd.nnz())
            .finish_non_exhaustive()
    }
}

impl<'a> ImplicitStochastic<'a> {
    /// Validates the operator as a transition matrix and computes the
    /// row-renormalization factors, mirroring
    /// [`StochasticMatrix::with_tolerance`](crate::StochasticMatrix::with_tolerance):
    /// entries must be finite probabilities in `[0, 1 + tol]` and every
    /// row sum must be within `tol` of one.
    ///
    /// `tr` must be the exact transpose of `fwd` (same stored values,
    /// permuted); callers obtain it from
    /// [`TransitionOp::transpose_op`] or construct it structurally (a
    /// Kronecker operator over transposed factors). This is not
    /// re-verified — an inconsistent pair produces wrong products.
    ///
    /// # Errors
    ///
    /// Same conditions as `StochasticMatrix::with_tolerance`:
    /// [`MarkovError::NotSquare`], [`MarkovError::InvalidProbability`],
    /// [`MarkovError::RowSumNotOne`]. Also rejects a `tr` whose shape
    /// disagrees with `fwd`.
    pub fn with_tolerance(
        fwd: &'a dyn TransitionOp,
        tr: &'a dyn TransitionOp,
        tol: f64,
    ) -> Result<ImplicitStochastic<'a>> {
        let n = fwd.rows();
        if fwd.cols() != n {
            return Err(MarkovError::NotSquare {
                rows: fwd.rows(),
                cols: fwd.cols(),
            });
        }
        if tr.rows() != n || tr.cols() != n {
            return Err(MarkovError::InvalidArgument(
                "transposed operator shape disagrees with the forward operator".into(),
            ));
        }
        // Row sums, accumulated per row in ascending entry order (the
        // same fold `CsrMatrix::row_sums` runs); a NaN marks a row with
        // an invalid entry for the serial pass below.
        let mut scale = vec![0.0f64; n];
        par::for_each_chunk_mut(&mut scale, |r0, chunk| {
            for (k, out) in chunk.iter_mut().enumerate() {
                let mut s = 0.0f64;
                let mut ok = true;
                fwd.for_each_in_row(r0 + k, &mut |_, v| {
                    if !v.is_finite() || v < 0.0 || v > 1.0 + tol {
                        ok = false;
                    }
                    s += v;
                });
                *out = if ok { s } else { f64::NAN };
            }
        });
        for (r, s) in scale.iter_mut().enumerate() {
            if s.is_nan() {
                // Re-scan serially to recover the offending entry.
                let mut bad = None;
                fwd.for_each_in_row(r, &mut |c, v| {
                    if bad.is_none() && (!v.is_finite() || v < 0.0 || v > 1.0 + tol) {
                        bad = Some((c, v));
                    }
                });
                let (col, value) = bad.expect("NaN row sum implies an invalid entry");
                return Err(MarkovError::InvalidProbability { row: r, col, value });
            }
            if (*s - 1.0).abs() > tol {
                return Err(MarkovError::RowSumNotOne { row: r, sum: *s });
            }
            *s = 1.0 / *s;
        }
        let part = par::RowPartition::uniform(n, n.max(fwd.nnz()));
        Ok(ImplicitStochastic {
            fwd,
            tr,
            scale,
            part,
        })
    }

    /// Number of states.
    pub fn n(&self) -> usize {
        self.scale.len()
    }

    /// Stored entries of the forward operator (compact size for
    /// product-form backends).
    pub fn nnz(&self) -> usize {
        self.fwd.nnz()
    }

    /// The wrapped forward operator (raw, unscaled values).
    pub fn forward_op(&self) -> &'a dyn TransitionOp {
        self.fwd
    }

    /// The per-row renormalization factors.
    pub fn scale(&self) -> &[f64] {
        &self.scale
    }

    /// A [`TransitionOp`] view of this chain's transpose `P^T`, serving
    /// scaled values (row `j` yields `(i, raw(i, j) · scale[i])`). Used
    /// by transpose-sweeping smoothers (Gauss–Seidel).
    pub fn transposed_view(&self) -> ImplicitTransposed<'_> {
        ImplicitTransposed { inner: self }
    }

    /// One step of the chain: writes `x P` into `out`.
    ///
    /// Computed as the row-parallel gather `P^T x` over the transposed
    /// operator — per output element, contributions accumulate in the
    /// same ascending source order as the materialized cached-transpose
    /// kernel, so the result is bit-identical to
    /// [`StochasticMatrix::step_into`](crate::StochasticMatrix::step_into)
    /// on the materialized chain, at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from `n()`.
    pub fn step_into(&self, x: &[f64], out: &mut [f64]) {
        if obs::enabled() && x.len() >= 512 {
            let t0 = std::time::Instant::now();
            self.gather_transposed(x, out);
            obs::histogram("markov.spmv.ns", t0.elapsed().as_nanos() as f64);
        } else {
            self.gather_transposed(x, out);
        }
    }

    fn gather_transposed(&self, x: &[f64], out: &mut [f64]) {
        // This gather *is* the implicit path's operator application (the
        // wrapped operator is a Kronecker product in every product-form
        // solve), so it carries the `kron.apply` span — the per-row
        // factor traversals underneath are far too hot to instrument.
        let _span = obs::enabled().then(|| obs::span("kron.apply"));
        let n = self.n();
        assert_eq!(x.len(), n, "vector length must match state count");
        assert_eq!(out.len(), n, "output length must match state count");
        let scale = &self.scale;
        let tr = self.tr;
        par::for_each_partition_mut(out, &self.part, |j0, chunk| {
            for (k, o) in chunk.iter_mut().enumerate() {
                let mut acc = 0.0;
                tr.for_each_in_row(j0 + k, &mut |i, v| {
                    acc += (v * scale[i]) * x[i];
                });
                *o = acc;
            }
        });
    }

    /// Residual `|| x P - x ||_1` of a candidate stationary vector;
    /// `scratch` receives `x P`. Same bits as the materialized
    /// `stationary_residual_with`.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from `n()`.
    pub fn stationary_residual_with(&self, x: &[f64], scratch: &mut [f64]) -> f64 {
        self.step_into(x, scratch);
        vecops::dist1(scratch, x)
    }
}

impl TransitionOp for ImplicitStochastic<'_> {
    fn rows(&self) -> usize {
        self.n()
    }

    fn cols(&self) -> usize {
        self.n()
    }

    fn nnz(&self) -> usize {
        ImplicitStochastic::nnz(self)
    }

    fn apply_cost(&self) -> usize {
        // The wrapped operator's real apply work plus the per-row
        // renormalization scaling.
        self.fwd.apply_cost() + self.n()
    }

    fn mul_left_into(&self, x: &[f64], y: &mut [f64]) {
        self.step_into(x, y);
    }

    fn mul_right_into(&self, x: &[f64], y: &mut [f64]) {
        let _span = obs::enabled().then(|| obs::span("kron.apply"));
        let n = self.n();
        assert_eq!(x.len(), n, "vector length must match state count");
        assert_eq!(y.len(), n, "output length must match state count");
        let scale = &self.scale;
        let fwd = self.fwd;
        par::for_each_partition_mut(y, &self.part, |i0, chunk| {
            for (k, o) in chunk.iter_mut().enumerate() {
                let i = i0 + k;
                let si = scale[i];
                let mut acc = 0.0;
                fwd.for_each_in_row(i, &mut |j, v| {
                    acc += (v * si) * x[j];
                });
                *o = acc;
            }
        });
    }

    fn for_each_in_row(&self, row: usize, f: &mut dyn FnMut(usize, f64)) {
        let si = self.scale[row];
        self.fwd.for_each_in_row(row, &mut |j, v| f(j, v * si));
    }

    fn diagonal_into(&self, out: &mut [f64]) {
        self.fwd.diagonal_into(out);
        let scale = &self.scale;
        par::for_each_chunk_mut(out, |i0, chunk| {
            for (k, o) in chunk.iter_mut().enumerate() {
                *o *= scale[i0 + k];
            }
        });
    }
}

/// The transpose `P^T` of an [`ImplicitStochastic`] chain as a
/// [`TransitionOp`]: row `j` traverses the in-neighbors of state `j`
/// with the scaled transition values.
#[derive(Debug, Clone, Copy)]
pub struct ImplicitTransposed<'a> {
    inner: &'a ImplicitStochastic<'a>,
}

impl TransitionOp for ImplicitTransposed<'_> {
    fn rows(&self) -> usize {
        self.inner.n()
    }

    fn cols(&self) -> usize {
        self.inner.n()
    }

    fn nnz(&self) -> usize {
        self.inner.nnz()
    }

    fn mul_left_into(&self, x: &[f64], y: &mut [f64]) {
        // (P^T)^T x-product = x P^T = P x gathered over forward rows.
        self.inner.mul_right_into(x, y);
    }

    fn mul_right_into(&self, x: &[f64], y: &mut [f64]) {
        // P^T x — exactly the chain's step kernel.
        self.inner.gather_transposed(x, y);
    }

    fn for_each_in_row(&self, row: usize, f: &mut dyn FnMut(usize, f64)) {
        let scale = &self.inner.scale;
        self.inner.tr.for_each_in_row(row, &mut |i, v| {
            f(i, v * scale[i]);
        });
    }

    fn diagonal_into(&self, out: &mut [f64]) {
        // The diagonal is transpose-invariant.
        self.inner.diagonal_into(out);
    }

    fn transpose_op(&self) -> Option<&dyn TransitionOp> {
        Some(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StochasticMatrix;
    use stochcdr_linalg::{CooMatrix, CsrMatrix};

    /// Deterministic pseudo-random raw (CSR) transition matrix whose rows
    /// sum to one only approximately — exercising the renormalization.
    fn raw_chain(n: usize, seed: u64) -> CsrMatrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let deg = 2 + (i % 4);
            let mut row: Vec<f64> = (0..deg).map(|_| next() + 1e-3).collect();
            let s: f64 = row.iter().sum();
            for v in &mut row {
                // Leave a small deliberate row-sum error inside the 1e-6
                // tolerance used below.
                *v *= (1.0 + 3e-7) / s;
            }
            for (k, v) in row.into_iter().enumerate() {
                coo.push(i, (i * 5 + k * 11 + 1) % n, v);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn products_are_bitwise_the_materialized_chain() {
        let raw = raw_chain(48, 3);
        let chain = StochasticMatrix::with_tolerance(raw.clone(), 1e-6).unwrap();
        let rawt = raw.transpose();
        let imp = ImplicitStochastic::with_tolerance(&raw, &rawt, 1e-6).unwrap();
        let x: Vec<f64> = (0..48).map(|i| ((i * 29 + 3) % 31) as f64 / 31.0).collect();
        let mut a = vec![0.0; 48];
        let mut b = vec![0.0; 48];
        chain.step_into(&x, &mut a);
        imp.step_into(&x, &mut b);
        assert_eq!(a, b, "step diverges");
        TransitionOp::mul_right_into(&chain, &x, &mut a);
        imp.mul_right_into(&x, &mut b);
        assert_eq!(a, b, "right product diverges");
        chain.diagonal_into(&mut a);
        imp.diagonal_into(&mut b);
        assert_eq!(a, b, "diagonal diverges");
        // Row traversal serves the renormalized values.
        for r in 0..48 {
            let mut got: Vec<(usize, f64)> = Vec::new();
            imp.for_each_in_row(r, &mut |c, v| got.push((c, v)));
            let want: Vec<(usize, f64)> = chain.matrix().row(r).collect();
            assert_eq!(got, want, "row {r}");
        }
        // Residual matches too.
        let mut s1 = vec![0.0; 48];
        let mut s2 = vec![0.0; 48];
        let r1 = chain.stationary_residual_with(&x, &mut s1);
        let r2 = imp.stationary_residual_with(&x, &mut s2);
        assert_eq!(r1.to_bits(), r2.to_bits());
    }

    #[test]
    fn transposed_view_serves_pt_rows() {
        let raw = raw_chain(24, 9);
        let chain = StochasticMatrix::with_tolerance(raw.clone(), 1e-6).unwrap();
        let rawt = raw.transpose();
        let imp = ImplicitStochastic::with_tolerance(&raw, &rawt, 1e-6).unwrap();
        let view = imp.transposed_view();
        for r in 0..24 {
            let mut got: Vec<(usize, f64)> = Vec::new();
            view.for_each_in_row(r, &mut |c, v| got.push((c, v)));
            let want: Vec<(usize, f64)> = chain.transposed().row(r).collect();
            assert_eq!(got, want, "transposed row {r}");
        }
        assert!(view.transpose_op().is_some());
    }

    #[test]
    fn validation_mirrors_the_materialized_errors() {
        // Row sum far from one.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 0.4);
        coo.push(1, 1, 1.0);
        let m = coo.to_csr();
        let t = m.transpose();
        assert!(matches!(
            ImplicitStochastic::with_tolerance(&m, &t, 1e-9),
            Err(MarkovError::RowSumNotOne { row: 0, .. })
        ));
        // Negative entry.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.5);
        coo.push(0, 1, -0.5);
        coo.push(1, 1, 1.0);
        let m = coo.to_csr();
        let t = m.transpose();
        assert!(matches!(
            ImplicitStochastic::with_tolerance(&m, &t, 1e-9),
            Err(MarkovError::InvalidProbability { row: 0, .. })
        ));
        // Non-square.
        let coo = CooMatrix::new(2, 3);
        let m = coo.to_csr();
        let t = m.transpose();
        assert!(matches!(
            ImplicitStochastic::with_tolerance(&m, &t, 1e-9),
            Err(MarkovError::NotSquare { .. })
        ));
    }
}
