//! Matrix-assembly benchmark — the paper's "matrix form time".
//!
//! Compares the generic Figure-2 cascade-network path against the
//! `n_w`-marginalizing fast path, and measures the fast path across sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stochcdr::{CdrConfig, CdrModel};

fn config(refinement: usize) -> CdrConfig {
    CdrConfig::builder()
        .phases(8)
        .grid_refinement(refinement)
        .counter_len(8)
        .white_sigma_ui(0.05)
        .drift(2e-3, 8e-3)
        .build()
        .expect("config")
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_tpm");
    group.sample_size(10);

    // Fast vs reference on a small model (the reference enumerates every
    // n_w outcome, so keep it small). Refinement 8 keeps the grid fine
    // enough for the drift spec to resolve.
    let small = CdrModel::new(config(8));
    group.bench_function("network_path_2k_states", |b| {
        b.iter(|| small.build_chain_via_network().expect("chain"))
    });
    group.bench_function("fast_path_2k_states", |b| {
        b.iter(|| small.build_chain().expect("chain"))
    });

    for refinement in [16usize, 64] {
        let model = CdrModel::new(config(refinement));
        let states = model.config().state_count();
        group.bench_with_input(BenchmarkId::new("fast_path", states), &states, |b, _| {
            b.iter(|| model.build_chain().expect("chain"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
