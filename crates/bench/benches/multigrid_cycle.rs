//! Per-component costs of one multigrid cycle: smoothing sweeps,
//! weighted aggregation (coarse-TPM construction), and disaggregation.

use criterion::{criterion_group, criterion_main, Criterion};

/// The obs_overhead rows measure the production configuration, and the
/// production binaries route allocations through the accounting wrapper
/// — so this bench does too. Its cost (a few relaxed atomics per
/// allocation, and warm solves barely allocate) is part of what the <5%
/// acceptance bar covers; results/OBS_OVERHEAD.md has the numbers.
#[global_allocator]
static GLOBAL: stochcdr_obs::mem::TrackingAlloc = stochcdr_obs::mem::TrackingAlloc::new();
use stochcdr::{CdrConfig, CdrModel};
use stochcdr_linalg::vecops;
use stochcdr_markov::lumping::{aggregate, disaggregate, lump_weighted};
use stochcdr_markov::stationary::{GaussSeidelSolver, JacobiSolver};

fn bench_cycle_parts(c: &mut Criterion) {
    let config = CdrConfig::builder()
        .phases(8)
        .grid_refinement(32)
        .counter_len(8)
        .white_sigma_ui(0.05)
        .drift(2e-3, 8e-3)
        .build()
        .expect("config");
    let chain = CdrModel::new(config.clone()).build_chain().expect("chain");
    let n = chain.state_count();
    // Reachability-aware hierarchy (the chain may prune Cartesian states).
    let parts = chain.phase_hierarchy();
    let part0 = &parts[0];
    let x = vecops::uniform(n);

    let mut group = c.benchmark_group("multigrid_cycle_parts_8k");
    group.sample_size(20);
    group.bench_function("jacobi_sweep", |b| {
        let solver = JacobiSolver::new(f64::MIN_POSITIVE, 1, 0.8);
        let mut y = x.clone();
        b.iter(|| solver.sweep_once(chain.tpm(), &mut y));
    });
    group.bench_function("gauss_seidel_sweep", |b| {
        let solver = GaussSeidelSolver::new(f64::MIN_POSITIVE, 1);
        let mut y = x.clone();
        b.iter(|| solver.sweep_once(chain.tpm(), &mut y));
    });
    group.bench_function("lump_weighted", |b| {
        b.iter(|| lump_weighted(chain.tpm(), part0, &x).expect("lump"));
    });
    group.bench_function("aggregate", |b| {
        b.iter(|| aggregate(part0, &x));
    });
    group.bench_function("disaggregate", |b| {
        let coarse = aggregate(part0, &x);
        b.iter(|| disaggregate(part0, &coarse, &x));
    });
    group.finish();
}

/// Overhead of the compiled-in `stochcdr-obs` instrumentation on a full
/// multigrid stationary solve. `metrics_disabled` is the production
/// default (no sink installed: every obs call is one relaxed atomic
/// load); `null_sink` exercises the complete record path into a
/// discarding sink. The disabled row must stay within noise (<2%) of
/// what an uninstrumented build would measure — the record path never
/// runs and the no-allocation property is asserted by
/// `crates/obs/tests/no_alloc.rs`.
fn bench_obs_overhead(c: &mut Criterion) {
    let config = CdrConfig::builder()
        .phases(8)
        .grid_refinement(8)
        .counter_len(8)
        .white_sigma_ui(0.05)
        .drift(2e-3, 8e-3)
        .build()
        .expect("config");
    let chain = CdrModel::new(config).build_chain().expect("chain");

    let mut group = c.benchmark_group("obs_overhead_mg_solve_2k");
    group.sample_size(10);
    group.bench_function("metrics_disabled", |b| {
        let _ = stochcdr_obs::uninstall();
        b.iter(|| {
            chain
                .analyze(stochcdr::SolverChoice::Multigrid)
                .expect("analyze")
        });
    });
    group.bench_function("null_sink", |b| {
        stochcdr_obs::install(Box::new(stochcdr_obs::NullSink));
        b.iter(|| {
            chain
                .analyze(stochcdr::SolverChoice::Multigrid)
                .expect("analyze")
        });
        stochcdr_obs::uninstall();
    });
    // Full `--trace` path: span begin/end pairs serialized as Chrome
    // Trace events into a discarding writer — the acceptance bar is <5%
    // over `metrics_disabled`.
    group.bench_function("chrome_trace", |b| {
        stochcdr_obs::install(Box::new(stochcdr_obs::ChromeTraceSink::new(Box::new(
            std::io::sink(),
        ))));
        b.iter(|| {
            chain
                .analyze(stochcdr::SolverChoice::Multigrid)
                .expect("analyze")
        });
        stochcdr_obs::uninstall();
    });
    group.finish();
}

criterion_group!(benches, bench_cycle_parts, bench_obs_overhead);
criterion_main!(benches);
