//! Stationary-solver benchmark: power, Gauss–Seidel, and multigrid on a
//! medium CDR chain at matched tolerance.

use criterion::{criterion_group, criterion_main, Criterion};
use stochcdr::{CdrConfig, CdrModel, SolverChoice};

fn bench_solvers(c: &mut Criterion) {
    let config = CdrConfig::builder()
        .phases(8)
        .grid_refinement(16)
        .counter_len(8)
        .white_sigma_ui(0.05)
        .drift(2e-3, 8e-3)
        .build()
        .expect("config");
    let chain = CdrModel::new(config).build_chain().expect("chain");
    let tol = 1e-9;

    let mut group = c.benchmark_group("stationary_solvers_4k_states");
    group.sample_size(10);
    for choice in [
        SolverChoice::Power,
        SolverChoice::GaussSeidel,
        SolverChoice::Multigrid,
    ] {
        let solver = chain.solver_with_tol(choice, tol);
        group.bench_function(solver.name(), |b| {
            b.iter(|| solver.solve(chain.tpm(), None).expect("solve"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
