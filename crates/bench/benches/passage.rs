//! First-passage (cycle-slip) solve benchmark: the paper's
//! "linear system with the (modified) TPM".

use criterion::{criterion_group, criterion_main, Criterion};
use stochcdr::cycle_slip::{boundary_states, mean_time_to_first_slip};
use stochcdr::{CdrConfig, CdrModel, SolverChoice};
use stochcdr_markov::passage::mean_hitting_times_direct;

fn bench_passage(c: &mut Criterion) {
    let config = CdrConfig::builder()
        .phases(8)
        .grid_refinement(4)
        .counter_len(8)
        .white_sigma_ui(0.08)
        .drift(4e-3, 1.6e-2)
        .build()
        .expect("config");
    let chain = CdrModel::new(config).build_chain().expect("chain");
    let target = boundary_states(&chain, 1);

    let mut group = c.benchmark_group("first_passage_1k_states");
    group.sample_size(10);
    group.bench_function("dense_lu_hitting_times", |b| {
        b.iter(|| mean_hitting_times_direct(chain.tpm(), &target).expect("solve"));
    });
    group.bench_function("mean_time_to_first_slip", |b| {
        b.iter(|| mean_time_to_first_slip(&chain, 1).expect("slip time"));
    });
    group.bench_function("stationary_plus_slip_rate", |b| {
        b.iter(|| {
            let a = chain
                .analyze_with_tol(SolverChoice::Multigrid, 1e-9)
                .expect("analysis");
            stochcdr::cycle_slip::mean_time_between_slips(&chain, &a.stationary).expect("mtbs")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_passage);
criterion_main!(benches);
