//! Kernel benchmark: sparse vector-matrix products on CDR transition
//! matrices — the inner loop of every stationary solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stochcdr::{CdrConfig, CdrModel};
use stochcdr_linalg::vecops;

fn chain(refinement: usize) -> stochcdr::CdrChain {
    let config = CdrConfig::builder()
        .phases(8)
        .grid_refinement(refinement)
        .counter_len(8)
        .white_sigma_ui(0.05)
        .drift(2e-3, 8e-3)
        .build()
        .expect("config");
    CdrModel::new(config).build_chain().expect("chain")
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    for refinement in [8usize, 32, 128] {
        let chain = chain(refinement);
        let n = chain.state_count();
        let x = vecops::uniform(n);
        let mut y = vec![0.0; n];
        group.throughput(Throughput::Elements(chain.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("mul_left", n), &n, |b, _| {
            b.iter(|| chain.tpm().step_into(&x, &mut y));
        });
        group.bench_with_input(BenchmarkId::new("mul_right_transposed", n), &n, |b, _| {
            b.iter(|| chain.tpm().transposed().mul_right_into(&x, &mut y));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
