//! Regression pin for the symbolic/numeric multigrid split at the
//! benchmark reference operating point (the `bench_snapshot`
//! configuration: Fig. 5 noise parameters, refinement 16).
//!
//! The perf work must not change a single bit of the solve: the cycle
//! count and the final residual are pinned to the exact values the
//! pre-split solver produced. Any arithmetic reordering — in the plan
//! replay, the workspace smoothers, or the in-place coarsest solve —
//! shows up here as a changed bit, not as a tolerance drift.

use stochcdr::{CdrConfig, CdrModel, SolverChoice};
use stochcdr_bench::{FIG5_DRIFT_DEV, FIG5_DRIFT_MEAN, FIG5_SIGMA};
use stochcdr_linalg::par;

fn reference_config() -> CdrConfig {
    CdrConfig::builder()
        .phases(8)
        .grid_refinement(16)
        .counter_len(8)
        .white_sigma_ui(FIG5_SIGMA)
        .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
        .build()
        .expect("config")
}

#[test]
fn reference_point_cycle_count_and_residual_are_bit_stable() {
    let chain = CdrModel::new(reference_config())
        .build_chain()
        .expect("chain");
    let analysis = chain.analyze(SolverChoice::Multigrid).expect("analysis");

    assert_eq!(analysis.iterations, 36, "multigrid cycle count drifted");
    assert_eq!(
        analysis.residual, 8.904770992370091e-13,
        "final residual is no longer bit-identical to the pre-split solver"
    );
    // The phase accounting must cover the phases the solve actually ran.
    let phases = analysis.mg_phases.expect("multigrid solve records phases");
    assert!(phases.setup_secs > 0.0);
    assert!(phases.cycle_total_secs() > 0.0);
}

/// The convergence telemetry must be as bit-stable as the solve itself:
/// the per-cycle residual trajectory — and everything the
/// [`ConvergenceTrace`](stochcdr_markov::stationary::ConvergenceTrace)
/// derives from it — is identical across worker-thread counts.
#[test]
fn residual_trajectory_is_bit_identical_across_thread_counts() {
    let run = |threads: usize| {
        par::set_threads(Some(threads));
        let chain = CdrModel::new(reference_config())
            .build_chain()
            .expect("chain");
        let solver = chain.multigrid_solver(
            SolverChoice::Multigrid,
            1e-12,
            chain.phase_hierarchy(),
            None,
        );
        let out = solver.solve_with_stats(chain.tpm(), None).expect("solve");
        par::set_threads(None);
        out
    };
    let (r1, s1) = run(1);
    let (r4, s4) = run(4);

    // Trajectory: every cycle's residual, bit for bit.
    assert_eq!(
        s1.residual_history, s4.residual_history,
        "trajectory drifted"
    );
    assert_eq!(r1.report, r4.report, "solve report drifted across threads");
    assert_eq!(
        s1.convergence, s4.convergence,
        "convergence summary drifted"
    );

    // And it is the trajectory the reference pin describes.
    assert_eq!(r1.report.iterations, 36);
    assert_eq!(r1.report.residual, 8.904770992370091e-13);
    assert_eq!(s1.residual_history.len(), 36);
    // A healthy multigrid solve at the reference point never stalls, and
    // its average contraction is well below the 0.9 stall threshold.
    assert!(!s1.convergence.stalled);
    assert_eq!(s1.convergence.reductions, 35);
    assert!(s1.convergence.ewma_reduction.expect("reductions seen") < 0.9);
}
