//! Regression pin for the symbolic/numeric multigrid split at the
//! benchmark reference operating point (the `bench_snapshot`
//! configuration: Fig. 5 noise parameters, refinement 16).
//!
//! The perf work must not change a single bit of the solve: the cycle
//! count and the final residual are pinned to the exact values the
//! pre-split solver produced. Any arithmetic reordering — in the plan
//! replay, the workspace smoothers, or the in-place coarsest solve —
//! shows up here as a changed bit, not as a tolerance drift.

use stochcdr::{CdrConfig, CdrModel, SolverChoice};
use stochcdr_bench::{FIG5_DRIFT_DEV, FIG5_DRIFT_MEAN, FIG5_SIGMA};

#[test]
fn reference_point_cycle_count_and_residual_are_bit_stable() {
    let config = CdrConfig::builder()
        .phases(8)
        .grid_refinement(16)
        .counter_len(8)
        .white_sigma_ui(FIG5_SIGMA)
        .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
        .build()
        .expect("config");
    let chain = CdrModel::new(config).build_chain().expect("chain");
    let analysis = chain.analyze(SolverChoice::Multigrid).expect("analysis");

    assert_eq!(analysis.iterations, 36, "multigrid cycle count drifted");
    assert_eq!(
        analysis.residual, 8.904770992370091e-13,
        "final residual is no longer bit-identical to the pre-split solver"
    );
    // The phase accounting must cover the phases the solve actually ran.
    let phases = analysis.mg_phases.expect("multigrid solve records phases");
    assert!(phases.setup_secs > 0.0);
    assert!(phases.cycle_total_secs() > 0.0);
}
