//! Golden-result gate: numeric diff of regenerated figures/tables against
//! the artifacts committed under `results/`.
//!
//! The figure and table binaries accept a `--check` flag: instead of
//! printing, they regenerate their output and diff it against the
//! committed golden file. Numeric fields compare at a relative tolerance
//! (default [`RTOL`]); wall-clock timings are masked, because they are the
//! one legitimately machine-dependent part of the output. Everything else
//! — iteration counts, residuals, BERs, density plots — is covered by the
//! workspace's determinism contract and must reproduce exactly.

use std::path::PathBuf;

/// Relative tolerance for numeric fields in golden comparisons.
pub const RTOL: f64 = 1e-9;

/// The committed golden artifacts live in `results/` at the repo root.
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// True when the token is a wall-clock reading: a number with an `s`
/// suffix (`0.012s`) — the formats `report::solver_row` and the figure
/// annotations use.
fn is_timing(token: &str) -> bool {
    token
        .strip_suffix('s')
        .is_some_and(|num| !num.is_empty() && num.parse::<f64>().is_ok())
}

/// True when the token is a phase-share percentage: a bare number with a
/// `%` suffix (`41.3%`), as printed by the `agg`/`smooth`/`coarse`
/// columns of `report::solver_row`. Shares are ratios of wall-clock
/// timings, so they are machine-dependent and masked like the timings
/// themselves. Parenthesized percentages in prose (`(-82.3%)`) do not
/// match this shape and still compare numerically.
fn is_share(token: &str) -> bool {
    token
        .strip_suffix('%')
        .is_some_and(|num| !num.is_empty() && num.parse::<f64>().is_ok())
}

/// True when the token is a byte-size reading: a number glued to a
/// `KiB`/`MiB`/`GiB` unit (`812.3MiB`), the format the scaling table's
/// peak-RSS column uses. RSS depends on the kernel and allocator, so it
/// is masked like wall clock.
fn is_bytes(token: &str) -> bool {
    ["KiB", "MiB", "GiB"].iter().any(|unit| {
        token
            .strip_suffix(unit)
            .is_some_and(|num| !num.is_empty() && num.parse::<f64>().is_ok())
    })
}

/// Strips punctuation that wraps numbers in prose (`(20676` → `20676`,
/// `nnz),` is untouched because it does not parse either way).
fn trim_punct(token: &str) -> &str {
    token
        .trim_start_matches(['(', '['])
        .trim_end_matches([')', ']', ',', ':', '%'])
}

fn as_number(token: &str) -> Option<f64> {
    trim_punct(token).parse::<f64>().ok()
}

/// Diffs `actual` against `golden` line by line.
///
/// Tokens split on whitespace. A token pair matches when:
///
/// * both are timings (number + `s` suffix), both are phase shares
///   (number + bare `%` suffix), both are byte sizes (number glued to a
///   `KiB`/`MiB`/`GiB` unit), or either is the number before a
///   `mins` unit — masked;
/// * both parse as numbers within relative tolerance `rtol`
///   (absolute for values straddling zero);
/// * otherwise, the tokens are byte-identical.
///
/// # Errors
///
/// Returns a human-readable description of the first mismatch.
pub fn compare(actual: &str, golden: &str, rtol: f64) -> Result<(), String> {
    let a_lines: Vec<&str> = actual.lines().collect();
    let g_lines: Vec<&str> = golden.lines().collect();
    if a_lines.len() != g_lines.len() {
        return Err(format!(
            "line count differs: {} regenerated vs {} golden",
            a_lines.len(),
            g_lines.len()
        ));
    }
    for (lineno, (a_line, g_line)) in a_lines.iter().zip(&g_lines).enumerate() {
        let a_toks: Vec<&str> = a_line.split_whitespace().collect();
        let g_toks: Vec<&str> = g_line.split_whitespace().collect();
        if a_toks.len() != g_toks.len() {
            return Err(format!(
                "line {}: token count differs\n  regenerated: {}\n  golden     : {}",
                lineno + 1,
                a_line,
                g_line
            ));
        }
        for (col, (a, g)) in a_toks.iter().zip(&g_toks).enumerate() {
            // Numbers immediately before a "mins" unit are wall times too.
            let before_mins = a_toks.get(col + 1) == Some(&"mins");
            if (is_timing(a) && is_timing(g))
                || (is_share(a) && is_share(g))
                || (is_bytes(a) && is_bytes(g))
                || before_mins
            {
                continue;
            }
            match (as_number(a), as_number(g)) {
                (Some(x), Some(y)) => {
                    let scale = x.abs().max(y.abs());
                    if (x - y).abs() > rtol * scale.max(1e-300) {
                        return Err(format!(
                            "line {}: numeric field differs by more than rtol {rtol:e}: \
                             {x:e} vs {y:e}\n  regenerated: {}\n  golden     : {}",
                            lineno + 1,
                            a_line,
                            g_line
                        ));
                    }
                }
                _ => {
                    if a != g {
                        return Err(format!(
                            "line {}: token '{}' vs '{}'\n  regenerated: {}\n  golden     : {}",
                            lineno + 1,
                            a,
                            g,
                            a_line,
                            g_line
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Binary entry point: with `--check` among the process arguments, diffs
/// `rendered` against `results/<name>.txt` and exits 1 on mismatch (2 if
/// the golden file is unreadable); otherwise prints `rendered` verbatim.
pub fn print_or_check(name: &str, rendered: &str) {
    if !std::env::args().any(|a| a == "--check") {
        print!("{rendered}");
        return;
    }
    let path = results_dir().join(format!("{name}.txt"));
    let golden = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("FAIL {name}: cannot read golden {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    match compare(rendered, &golden, RTOL) {
        Ok(()) => println!(
            "OK {name}: matches {} (numeric rtol {RTOL:e}, timings masked)",
            path.display()
        ),
        Err(msg) => {
            eprintln!("FAIL {name}: {msg}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_text_passes() {
        let text = "a 1.5 b\nrow 2038 9.68e-11 0.012s\n";
        assert!(compare(text, text, RTOL).is_ok());
    }

    #[test]
    fn timings_are_masked() {
        let a = "power 2038 421 9.68e-11 0.012s\ntime 0.00 mins x 0.05 mins\n";
        let g = "power 2038 421 9.68e-11 67.801s\ntime 12.34 mins x 9.99 mins\n";
        assert!(compare(a, g, RTOL).is_ok());
    }

    #[test]
    fn phase_shares_are_masked_but_wrapped_percentages_are_not() {
        let a = "multigrid 2038 12 9.68e-11 0.012s 41.3% 50.1% 3.6%";
        let g = "multigrid 2038 12 9.68e-11 0.500s 60.0% 30.0% 9.9%";
        assert!(compare(a, g, RTOL).is_ok());
        // A share against a non-share token is still a mismatch.
        assert!(compare("41.3%", "-", RTOL).is_err());
        // Parenthesized percentages in prose keep their numeric gate.
        assert!(compare("(-82.3%)", "(-82.3%)", RTOL).is_ok());
        assert!(compare("(-82.3%)", "(-41.0%)", RTOL).is_err());
    }

    #[test]
    fn byte_sizes_are_masked() {
        let a = "2 x 1270   1612900   25800 cycles 812.3MiB";
        let g = "2 x 1270   1612900   25800 cycles 1.7GiB";
        assert!(compare(a, g, RTOL).is_ok());
        // A byte size against a bare number is still a mismatch.
        assert!(compare("812.3MiB", "812.3", RTOL).is_err());
    }

    #[test]
    fn numeric_drift_beyond_rtol_fails() {
        let a = "BER: 1.47001e-120";
        let g = "BER: 1.47e-120";
        assert!(compare(a, g, 1e-9).is_err());
        assert!(compare(a, g, 1e-3).is_ok());
    }

    #[test]
    fn wrapped_numbers_compare_numerically() {
        let a = "--- 2038 states (20676 nnz), matrix form time 0.01s ---";
        let g = "--- 2038 states (20676 nnz), matrix form time 5.00s ---";
        assert!(compare(a, g, RTOL).is_ok());
        let bad = "--- 2038 states (20677 nnz), matrix form time 0.01s ---";
        assert!(compare(bad, g, RTOL).is_err());
    }

    #[test]
    fn structural_changes_fail() {
        assert!(compare("one line\n", "one line\nextra\n", RTOL).is_err());
        assert!(compare("a b c", "a b", RTOL).is_err());
        assert!(compare("#### plot", "##### plot", RTOL).is_err());
    }
}
