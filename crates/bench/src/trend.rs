//! **Perf-trend ledger** — an append-only JSONL history of benchmark
//! snapshots plus a robust trend analysis over it.
//!
//! `bench_snapshot` captures one moment; the gate compares exactly two
//! moments. Neither answers "has the solve been getting slower across
//! the last five PRs?". The ledger does: every `bench_snapshot --ledger`
//! run (and every `bench_trend --import` of an existing snapshot file)
//! appends one [`LedgerRecord`] — deterministic shape numbers, wall
//! times, thread configuration, git revision — and [`analyze`] renders
//! a per-thread-count sparkline table with a regression verdict that
//! compares the newest record against the *median* of the preceding
//! window (medians shrug off the one-off noise spikes that plague
//! wall-clock history on shared machines).
//!
//! Schema: one JSON object per line, `"schema": "stochcdr-perf-ledger/1"`.
//! Unknown future fields are ignored on read, so the format can grow.

use std::fmt::Write as _;

use stochcdr_obs::json::{self, Json};

/// Ledger line schema identifier.
pub const LEDGER_SCHEMA: &str = "stochcdr-perf-ledger/1";

/// Default trailing-window length for the median baseline.
pub const DEFAULT_WINDOW: usize = 5;

/// Default regression threshold: newest wall time vs window median.
/// 1.75 sits between run-to-run noise on loaded CI machines (≤ ~1.4x
/// in the recorded history) and the 2x slowdowns the ledger must flag.
pub const DEFAULT_THRESHOLD: f64 = 1.75;

/// One appended benchmark observation.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRecord {
    /// Human label for the run (e.g. `PR8`, derived from the snapshot
    /// filename, or a custom `--label`).
    pub label: String,
    /// `git rev-parse --short HEAD` at append time, `unknown` outside a
    /// work tree, `imported` for backfilled history.
    pub git_rev: String,
    /// Worker threads the run used.
    pub threads: u64,
    /// Hardware threads available on the machine.
    pub hw_threads: u64,
    /// Chain states at the reference operating point.
    pub states: u64,
    /// TPM nonzeros.
    pub nnz: u64,
    /// Multigrid cycles to tolerance.
    pub cycles: u64,
    /// Final stationary residual.
    pub residual: f64,
    /// Analytic BER.
    pub ber: f64,
    /// Chain-formation wall time (seconds).
    pub form_secs: f64,
    /// Stationary-solve wall time (seconds).
    pub solve_secs: f64,
    /// Monte-Carlo cross-check wall time (seconds).
    pub mc_secs: f64,
}

impl LedgerRecord {
    /// Serializes the record as one ledger line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":");
        json::escape_into(&mut out, LEDGER_SCHEMA);
        out.push_str(",\"label\":");
        json::escape_into(&mut out, &self.label);
        out.push_str(",\"git_rev\":");
        json::escape_into(&mut out, &self.git_rev);
        let _ = write!(
            out,
            ",\"threads\":{},\"hw_threads\":{},\"states\":{},\"nnz\":{},\"cycles\":{}",
            self.threads, self.hw_threads, self.states, self.nnz, self.cycles
        );
        for (name, v) in [
            ("residual", self.residual),
            ("ber", self.ber),
            ("form_secs", self.form_secs),
            ("solve_secs", self.solve_secs),
            ("mc_secs", self.mc_secs),
        ] {
            let _ = write!(out, ",\"{name}\":");
            json::write_f64(&mut out, v);
        }
        out.push('}');
        out
    }
}

/// Parses a ledger file (one JSON object per line, blank lines allowed).
///
/// # Errors
///
/// Returns a message naming the first offending line: invalid JSON, a
/// foreign schema tag, or a missing field.
pub fn parse_ledger(text: &str) -> Result<Vec<LedgerRecord>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let at = |what: &str| format!("ledger line {}: {what}", idx + 1);
        let v = Json::parse(line).map_err(|e| at(&format!("invalid JSON ({e})")))?;
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing schema"))?;
        if schema != LEDGER_SCHEMA {
            return Err(at(&format!("unsupported schema '{schema}'")));
        }
        let str_field = |name: &str| {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| at(&format!("missing field '{name}'")))
        };
        let num = |name: &str| {
            v.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| at(&format!("missing field '{name}'")))
        };
        out.push(LedgerRecord {
            label: str_field("label")?,
            git_rev: str_field("git_rev")?,
            threads: num("threads")? as u64,
            hw_threads: num("hw_threads")? as u64,
            states: num("states")? as u64,
            nnz: num("nnz")? as u64,
            cycles: num("cycles")? as u64,
            residual: num("residual")?,
            ber: num("ber")?,
            form_secs: num("form_secs")?,
            solve_secs: num("solve_secs")?,
            mc_secs: num("mc_secs")?,
        });
    }
    Ok(out)
}

/// Converts a full `bench_snapshot` JSON file into a ledger record.
///
/// # Errors
///
/// Rejects `--spmv-only` mini-snapshots (they carry no solve numbers)
/// and snapshots missing any of the headline fields.
pub fn snapshot_to_record(
    snapshot_json: &str,
    label: &str,
    git_rev: &str,
) -> Result<LedgerRecord, String> {
    let v = Json::parse(snapshot_json).map_err(|e| format!("invalid snapshot JSON: {e}"))?;
    if v.get("spmv_only").is_some() {
        return Err("snapshot is --spmv-only (no solve numbers to track)".into());
    }
    let num = |name: &str| {
        v.get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("snapshot missing field '{name}'"))
    };
    // `hw_threads` arrived in a later snapshot revision; imported early
    // history records 0 (= unknown) rather than being rejected.
    let hw_threads = v.get("hw_threads").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    Ok(LedgerRecord {
        label: label.to_string(),
        git_rev: git_rev.to_string(),
        threads: num("threads")? as u64,
        hw_threads,
        states: num("states")? as u64,
        nnz: num("nnz")? as u64,
        cycles: num("cycles")? as u64,
        residual: num("residual")?,
        ber: num("ber")?,
        form_secs: num("form_secs")?,
        solve_secs: num("solve_secs")?,
        mc_secs: num("mc_secs")?,
    })
}

/// Derives a run label from a snapshot path:
/// `results/BENCH_AFTER_PR5_T4.json` → `PR5`. Falls back to the bare
/// file stem when the conventional pieces are absent.
pub fn label_from_path(path: &str) -> String {
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path);
    let stem = stem.strip_prefix("BENCH_AFTER_").unwrap_or(stem);
    // Strip a trailing `_T<digits>` thread marker; the thread count is
    // its own ledger field.
    if let Some(pos) = stem.rfind("_T") {
        if stem[pos + 2..].chars().all(|c| c.is_ascii_digit()) && pos + 2 < stem.len() {
            return stem[..pos].to_string();
        }
    }
    stem.to_string()
}

/// `git rev-parse --short HEAD`, or `unknown` when git or the work tree
/// is unavailable (the ledger must append from bare CI checkouts too).
pub fn git_short_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One flagged regression from [`analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Thread count of the affected history group.
    pub threads: u64,
    /// The wall-time metric that regressed (e.g. `solve_secs`).
    pub metric: &'static str,
    /// Newest value over the median of the preceding window.
    pub ratio: f64,
}

/// The rendered trend table plus the machine-readable verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// Human-readable sparkline table.
    pub text: String,
    /// Flagged regressions; empty means the trend is healthy.
    pub regressions: Vec<Regression>,
}

impl TrendReport {
    /// Whether no metric crossed the regression threshold.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// A named accessor for one wall-time metric of a ledger record.
type Metric = (&'static str, fn(&LedgerRecord) -> f64);

/// The wall-time metrics the trend verdict covers.
const METRICS: [Metric; 3] = [
    ("form_secs", |r| r.form_secs),
    ("solve_secs", |r| r.solve_secs),
    ("mc_secs", |r| r.mc_secs),
];

/// Minimum records in a thread group before a verdict is attempted:
/// one newest record plus at least two for a meaningful median.
const MIN_HISTORY: usize = 3;

/// Analyzes ledger history: records are grouped by `(threads,
/// hw_threads)` — wall times across different pool sizes *or different
/// machines* are not comparable, and the recorded PR 2→8 history
/// really does contain a hardware change that would otherwise read as
/// a 2x "regression". Each group keeps its ledger order, and for every
/// wall-time metric the newest record is compared against the median
/// of up to `window` preceding records. A ratio above `threshold` is a
/// [`Regression`].
///
/// Groups with fewer than three records render as `insufficient
/// history` instead of a verdict.
pub fn analyze(records: &[LedgerRecord], window: usize, threshold: f64) -> TrendReport {
    let window = window.max(1);
    let mut text = String::new();
    let mut regressions = Vec::new();
    if records.is_empty() {
        text.push_str("perf trend: ledger is empty\n");
        return TrendReport { text, regressions };
    }

    let mut keys: Vec<(u64, u64)> = records.iter().map(|r| (r.threads, r.hw_threads)).collect();
    keys.sort_unstable();
    keys.dedup();

    for (threads, hw_threads) in keys {
        let group: Vec<&LedgerRecord> = records
            .iter()
            .filter(|r| r.threads == threads && r.hw_threads == hw_threads)
            .collect();
        let labels: Vec<&str> = group.iter().map(|r| r.label.as_str()).collect();
        let hw = if hw_threads == 0 {
            "?".to_string()
        } else {
            hw_threads.to_string()
        };
        let _ = writeln!(
            text,
            "threads={threads} hw={hw} ({} records: {})",
            group.len(),
            labels.join(" → ")
        );
        if group.len() < MIN_HISTORY {
            let _ = writeln!(
                text,
                "  insufficient history (need {MIN_HISTORY}+ records for a verdict)"
            );
            continue;
        }
        for (metric, get) in METRICS {
            let series: Vec<f64> = group.iter().map(|r| get(r)).collect();
            let newest = *series.last().expect("non-empty group");
            let prior = &series[..series.len() - 1];
            let tail = &prior[prior.len().saturating_sub(window)..];
            let baseline = median(tail);
            let ratio = if baseline > 0.0 {
                newest / baseline
            } else {
                1.0
            };
            // hw=0 means the records predate hardware tagging: the runs
            // may span different machines, so the ratio is shown but
            // never gated.
            let verdict = if hw_threads == 0 {
                format!("n/a (x{ratio:.2}; unknown hardware, no verdict)")
            } else if ratio > threshold {
                regressions.push(Regression {
                    threads,
                    metric,
                    ratio,
                });
                format!("REGRESSION (x{ratio:.2} > x{threshold:.2})")
            } else {
                format!("ok (x{ratio:.2})")
            };
            let _ = writeln!(
                text,
                "  {metric:<12} {}  last {newest:.3e}  median({}) {baseline:.3e}  {verdict}",
                sparkline(&series),
                tail.len(),
            );
        }
    }
    TrendReport { text, regressions }
}

/// Renders a series as a unicode sparkline (▁..█), min-to-max scaled.
/// Degenerate (constant or empty) series render as all-▄.
pub fn sparkline(series: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (min, max) = series
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    series
        .iter()
        .map(|&v| {
            if max > min {
                let t = (v - min) / (max - min);
                BARS[((t * 7.0).round() as usize).min(7)]
            } else {
                '▄'
            }
        })
        .collect()
}

fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, threads: u64, solve_secs: f64) -> LedgerRecord {
        LedgerRecord {
            label: label.to_string(),
            git_rev: "test".to_string(),
            threads,
            hw_threads: 8,
            states: 4056,
            nnz: 54468,
            cycles: 36,
            residual: 1e-11,
            ber: 2e-5,
            form_secs: 0.1,
            solve_secs,
            mc_secs: 0.2,
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let a = record("PR7", 4, 0.31);
        let b = record("PR8", 1, 0.92);
        let text = format!("{}\n{}\n\n", a.render(), b.render());
        let parsed = parse_ledger(&text).unwrap();
        assert_eq!(parsed, vec![a, b]);
    }

    #[test]
    fn parse_rejects_garbage_and_foreign_schemas() {
        assert!(parse_ledger("not json\n").unwrap_err().contains("line 1"));
        let foreign = "{\"schema\":\"stochcdr-bench-snapshot/1\"}\n";
        assert!(parse_ledger(foreign)
            .unwrap_err()
            .contains("unsupported schema"));
        let missing = "{\"schema\":\"stochcdr-perf-ledger/1\",\"label\":\"x\"}\n";
        assert!(parse_ledger(missing).unwrap_err().contains("git_rev"));
    }

    #[test]
    fn snapshot_import_reads_headline_fields() {
        let snap = r#"{
            "schema": "stochcdr-bench-snapshot/1",
            "states": 4056, "nnz": 54468, "cycles": 36,
            "residual": 9.1e-12, "ber": 2.4e-5,
            "form_secs": 1.2e-1, "solve_secs": 3.4e-1, "mc_secs": 2.2e-1,
            "threads": 4, "hw_threads": 8
        }"#;
        let r = snapshot_to_record(snap, "PR8", "imported").unwrap();
        assert_eq!(r.threads, 4);
        assert_eq!(r.states, 4056);
        assert_eq!(r.solve_secs, 3.4e-1);
        // Mini-snapshots are rejected, not silently zero-filled.
        let mini = r#"{"schema":"stochcdr-bench-snapshot/1","spmv_only":true}"#;
        assert!(snapshot_to_record(mini, "x", "y")
            .unwrap_err()
            .contains("spmv-only"));
    }

    #[test]
    fn labels_derive_from_snapshot_filenames() {
        assert_eq!(label_from_path("results/BENCH_AFTER_PR5_T4.json"), "PR5");
        assert_eq!(label_from_path("results/BENCH_AFTER_PR2.json"), "PR2");
        assert_eq!(label_from_path("BENCH_AFTER_PR10_T16.json"), "PR10");
        assert_eq!(label_from_path("custom_run.json"), "custom_run");
        // `_T` with no digits after it is part of the name, not a marker.
        assert_eq!(label_from_path("BENCH_AFTER_X_T.json"), "X_T");
    }

    #[test]
    fn flags_injected_2x_regression() {
        let mut records: Vec<LedgerRecord> = (2..=8)
            .map(|pr| record(&format!("PR{pr}"), 4, 0.30 + 0.01 * pr as f64))
            .collect();
        records.push(record("PR9", 4, 2.0 * 0.35));
        let report = analyze(&records, DEFAULT_WINDOW, DEFAULT_THRESHOLD);
        assert!(!report.ok());
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert_eq!(r.metric, "solve_secs");
        assert_eq!(r.threads, 4);
        assert!(r.ratio > 1.9, "ratio {}", r.ratio);
        assert!(report.text.contains("REGRESSION"), "{}", report.text);
    }

    #[test]
    fn quiet_on_flat_and_noisy_history() {
        // Flat history with ±30% noise (under the 1.75x threshold).
        let noise = [1.0, 1.3, 0.8, 1.1, 0.9, 1.25, 1.0];
        let records: Vec<LedgerRecord> = noise
            .iter()
            .enumerate()
            .map(|(i, &f)| record(&format!("PR{}", i + 2), 4, 0.3 * f))
            .collect();
        let report = analyze(&records, DEFAULT_WINDOW, DEFAULT_THRESHOLD);
        assert!(report.ok(), "{}", report.text);
        assert!(report.text.contains("ok (x"), "{}", report.text);
    }

    #[test]
    fn groups_by_thread_count() {
        // A slow 1-thread history must not contaminate the 4-thread
        // verdict; the 4-thread group alone regresses.
        let mut records = Vec::new();
        for pr in 2..=6 {
            records.push(record(&format!("PR{pr}"), 1, 1.0));
            records.push(record(&format!("PR{pr}"), 4, 0.3));
        }
        records.push(record("PR7", 1, 1.05));
        records.push(record("PR7", 4, 0.9));
        let report = analyze(&records, DEFAULT_WINDOW, DEFAULT_THRESHOLD);
        assert_eq!(report.regressions.len(), 1);
        assert!(report
            .regressions
            .iter()
            .all(|r| r.threads == 4 && r.metric == "solve_secs"));
    }

    #[test]
    fn machine_changes_split_groups_instead_of_flagging() {
        // Five records on an 8-hw-thread box, then one on a 1-hw-thread
        // box with 2x the wall times: a hardware change, not a code
        // regression — the new machine starts its own history.
        let mut records: Vec<LedgerRecord> = (2..=6)
            .map(|pr| record(&format!("PR{pr}"), 4, 0.3))
            .collect();
        let mut moved = record("PR7", 4, 0.6);
        moved.hw_threads = 1;
        records.push(moved);
        let report = analyze(&records, DEFAULT_WINDOW, DEFAULT_THRESHOLD);
        assert!(report.ok(), "{}", report.text);
        assert!(report.text.contains("hw=1"), "{}", report.text);
        assert!(
            report.text.contains("insufficient history"),
            "{}",
            report.text
        );
    }

    #[test]
    fn unknown_hardware_history_is_advisory_only() {
        // Records imported from the pre-hw-tagging era (hw_threads 0)
        // show ratios but never gate — even a 10x jump.
        let mut records: Vec<LedgerRecord> = (2..=7)
            .map(|pr| {
                let mut r = record(&format!("PR{pr}"), 4, 0.3);
                r.hw_threads = 0;
                r
            })
            .collect();
        records.last_mut().unwrap().solve_secs = 3.0;
        let report = analyze(&records, DEFAULT_WINDOW, DEFAULT_THRESHOLD);
        assert!(report.ok(), "{}", report.text);
        assert!(report.text.contains("unknown hardware"), "{}", report.text);
    }

    #[test]
    fn short_history_gets_no_verdict() {
        let records = vec![record("PR7", 4, 0.3), record("PR8", 4, 9.9)];
        let report = analyze(&records, DEFAULT_WINDOW, DEFAULT_THRESHOLD);
        assert!(report.ok());
        assert!(
            report.text.contains("insufficient history"),
            "{}",
            report.text
        );
    }

    #[test]
    fn sparkline_scales_min_to_max() {
        assert_eq!(sparkline(&[1.0, 2.0, 3.0]), "▁▅█");
        assert_eq!(sparkline(&[5.0, 5.0]), "▄▄");
        assert_eq!(sparkline(&[]), "");
    }
}
