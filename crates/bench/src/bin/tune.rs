//! Parameter-calibration sweep (development tool, not a paper figure).
//!
//! Prints BER as a function of counter length over a grid of noise
//! operating points, to locate the U-shaped counter-length optimum the
//! paper's Figure 5 reports. Usage: `cargo run --release -p stochcdr-bench
//! --bin tune`.

use stochcdr::{CdrConfig, CdrModel, SolverChoice};

fn main() {
    let phases = 8;
    let refinement = 16;
    for sigma in [0.03, 0.05, 0.07] {
        for (mean, dev) in [(1e-3, 6e-3), (2e-3, 8e-3), (3e-3, 1.0e-2), (4e-3, 1.2e-2)] {
            print!("sigma={sigma:<5} mean={mean:<7} dev={dev:<7} | BER:");
            for counter in [4usize, 8, 16, 32] {
                let cfg = CdrConfig::builder()
                    .phases(phases)
                    .grid_refinement(refinement)
                    .counter_len(counter)
                    .white_sigma_ui(sigma)
                    .drift(mean, dev)
                    .build()
                    .expect("config");
                let chain = CdrModel::new(cfg).build_chain().expect("chain");
                let a = chain
                    .analyze_with_tol(SolverChoice::Multigrid, 1e-11)
                    .expect("analysis");
                print!("  C{counter}={:.2e}", a.ber);
            }
            println!();
        }
    }
}
