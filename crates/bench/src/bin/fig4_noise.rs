//! **Figure 4** — stationary phase-error densities and BER at two noise
//! levels.
//!
//! "In Figure 4, in the top plot, the noise levels are so small that the
//! CDR system has negligible BER. When the standard deviation of the noise
//! source n_w that models the eye data opening is increased 10 times, the
//! BER increases ..., as seen in the bottom plot."
//!
//! Reproduces both panels: for each noise level it prints the paper's
//! annotation lines (counter length, σ(n_w), max n_r, BER; state-space
//! size, iterations, matrix-form time, solve time) and ASCII versions of
//! the two density curves.

use stochcdr::{report, CdrModel, SolverChoice};
use stochcdr_bench::{fig4_config, FIG4_SIGMA_SCALE};

fn main() {
    // `--solver NAME` picks any registry solver (default: the paper's
    // multigrid); names come from the same registry as the CLI.
    let mut solver = SolverChoice::Multigrid;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--solver") {
        let name = args.get(i + 1).map(String::as_str).unwrap_or("");
        solver = SolverChoice::parse(name).unwrap_or_else(|| {
            eprintln!("unknown solver '{name}'; expected {}", SolverChoice::cli_names());
            std::process::exit(2);
        });
    }
    println!("=== Figure 4: effect of the n_w (eye-opening) noise level ===\n");
    let mut bers = Vec::new();
    for (panel, scale) in [("top (baseline noise)", 1.0), ("bottom (10x n_w)", FIG4_SIGMA_SCALE)]
    {
        let config = fig4_config(scale).expect("preset config");
        let model = CdrModel::new(config);
        let chain = model.build_chain().expect("chain assembly");
        let analysis = chain.analyze(solver).expect("analysis");
        println!("--- panel: {panel} ---");
        println!("{}", report::figure_panel(&chain, &analysis));
        bers.push(analysis.ber);
    }
    println!("summary:");
    println!("  baseline BER : {:.2e}  (paper: negligible)", bers[0]);
    println!("  10x n_w BER  : {:.2e}  (paper: BER becomes significant)", bers[1]);
    if bers[0] > 0.0 {
        println!("  increase     : {:.1e}x", bers[1] / bers[0]);
    } else {
        println!("  increase     : from (sub-underflow) ~0 to {:.2e}", bers[1]);
    }
}
