//! **Figure 4** — stationary phase-error densities and BER at two noise
//! levels.
//!
//! "In Figure 4, in the top plot, the noise levels are so small that the
//! CDR system has negligible BER. When the standard deviation of the noise
//! source n_w that models the eye data opening is increased 10 times, the
//! BER increases ..., as seen in the bottom plot."
//!
//! Reproduces both panels: for each noise level it prints the paper's
//! annotation lines (counter length, σ(n_w), max n_r, BER; state-space
//! size, iterations, matrix-form time, solve time) and ASCII versions of
//! the two density curves.
//!
//! The two panels are one σ(n_w) sweep on the `stochcdr-sweep` engine:
//! the shared factor cache rebuilds only the phase-detector factors
//! between panels, and solves stay cold so the printed iteration counts
//! match a standalone `analyze` run. With `--check`, the output is
//! diffed against `results/fig4_noise.txt` instead of printed.

use std::fmt::Write as _;

use stochcdr::{report, SolverChoice};
use stochcdr_bench::{fig4_config, golden, FIG4_SIGMA_BASE, FIG4_SIGMA_SCALE};
use stochcdr_sweep::{run_map, FactorCache, SweepAxis, SweepSpec};

const PANELS: [&str; 2] = ["top (baseline noise)", "bottom (10x n_w)"];

fn render(solver: SolverChoice) -> String {
    let spec = SweepSpec::new(fig4_config(1.0).expect("preset config"))
        .axis(SweepAxis::SigmaNw(vec![
            FIG4_SIGMA_BASE,
            FIG4_SIGMA_BASE * FIG4_SIGMA_SCALE,
        ]))
        .solver(solver)
        .warm_start(false);
    let cache = FactorCache::new();
    let panels = run_map(&spec, &cache, &|ctx, chain, analysis| {
        Ok((
            PANELS[ctx.flat],
            report::figure_panel(chain, analysis),
            analysis.ber,
        ))
    })
    .expect("figure-4 sweep");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Figure 4: effect of the n_w (eye-opening) noise level ===\n"
    );
    for (panel, body, _) in &panels {
        let _ = writeln!(out, "--- panel: {panel} ---");
        let _ = writeln!(out, "{body}");
    }
    let bers: Vec<f64> = panels.iter().map(|p| p.2).collect();
    let _ = writeln!(out, "summary:");
    let _ = writeln!(out, "  baseline BER : {:.2e}  (paper: negligible)", bers[0]);
    let _ = writeln!(
        out,
        "  10x n_w BER  : {:.2e}  (paper: BER becomes significant)",
        bers[1]
    );
    if bers[0] > 0.0 {
        let _ = writeln!(out, "  increase     : {:.1e}x", bers[1] / bers[0]);
    } else {
        let _ = writeln!(
            out,
            "  increase     : from (sub-underflow) ~0 to {:.2e}",
            bers[1]
        );
    }
    out
}

fn main() {
    // `--solver NAME` picks any registry solver (default: the paper's
    // multigrid); names come from the same registry as the CLI.
    let mut solver = SolverChoice::Multigrid;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--solver") {
        let name = args.get(i + 1).map(String::as_str).unwrap_or("");
        solver = SolverChoice::parse(name).unwrap_or_else(|| {
            eprintln!(
                "unknown solver '{name}'; expected {}",
                SolverChoice::cli_names()
            );
            std::process::exit(2);
        });
    }
    golden::print_or_check("fig4_noise", &render(solver));
}
