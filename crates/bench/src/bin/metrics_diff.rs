//! **Metrics artifact diff** — compares two `stochcdr-obs` JSONL
//! captures (`--metrics A --metrics-format jsonl`) and fails when any
//! *deterministic* record moved.
//!
//! The determinism contract (see `crates/linalg/src/par.rs`) pins every
//! count the instrumentation emits: counter totals, event counts, span
//! counts, and histogram observation counts are identical between two
//! runs of the same configuration at the same thread count. Timing
//! payloads — span nanoseconds, gauge values, histogram quantiles — are
//! wall-clock and therefore advisory: printed as fresh/baseline ratios,
//! never gated on.
//!
//! Usage: `metrics_diff BASELINE.jsonl FRESH.jsonl` — exits 1 on a
//! deterministic mismatch, 2 on unreadable/invalid input.

use std::collections::BTreeSet;

use stochcdr_obs::artifact::Artifact;

fn load(path: &str) -> Artifact {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("metrics_diff: cannot read '{path}': {e}");
        std::process::exit(2);
    });
    Artifact::load_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("metrics_diff: '{path}' is not a metrics artifact: {e}");
        std::process::exit(2);
    })
}

/// Walks the union of both key sets, comparing `u64` values exactly.
/// Returns the number of mismatches (missing keys count as mismatches).
fn diff_exact<'a, I, J>(section: &str, baseline: I, fresh: J) -> usize
where
    I: Iterator<Item = (&'a str, u64)>,
    J: Iterator<Item = (&'a str, u64)>,
{
    let b: Vec<(&str, u64)> = baseline.collect();
    let f: Vec<(&str, u64)> = fresh.collect();
    let keys: BTreeSet<&str> = b.iter().chain(&f).map(|(k, _)| *k).collect();
    let get = |side: &[(&str, u64)], k: &str| side.iter().find(|(n, _)| *n == k).map(|(_, v)| *v);
    let mut failures = 0;
    for key in keys {
        match (get(&b, key), get(&f, key)) {
            (Some(bv), Some(fv)) if bv == fv => {
                println!("  ok    {section:<10} {key:<42} = {fv}");
            }
            (bv, fv) => {
                println!("  FAIL  {section:<10} {key:<42} : {bv:?} -> {fv:?}");
                failures += 1;
            }
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: metrics_diff BASELINE.jsonl FRESH.jsonl");
        std::process::exit(2);
    };
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);
    println!("metrics diff: {baseline_path} (baseline) vs {fresh_path} (fresh)");

    let mut failures = 0usize;
    if baseline.schema != fresh.schema {
        println!(
            "  FAIL  schema     : {:?} -> {:?}",
            baseline.schema, fresh.schema
        );
        failures += 1;
    }
    failures += diff_exact(
        "counter",
        baseline.counters.iter().map(|(k, v)| (k.as_str(), *v)),
        fresh.counters.iter().map(|(k, v)| (k.as_str(), *v)),
    );
    failures += diff_exact(
        "event",
        baseline.events.iter().map(|(k, v)| (k.as_str(), *v)),
        fresh.events.iter().map(|(k, v)| (k.as_str(), *v)),
    );
    failures += diff_exact(
        "span",
        baseline.spans.iter().map(|(k, s)| (k.as_str(), s.count)),
        fresh.spans.iter().map(|(k, s)| (k.as_str(), s.count)),
    );
    failures += diff_exact(
        "hist",
        baseline.hist_counts().into_iter(),
        fresh.hist_counts().into_iter(),
    );

    println!("  --- advisory wall-clock ratios (fresh / baseline) ---");
    for (path, fs) in &fresh.spans {
        if let Some(bs) = baseline.spans.get(path) {
            if bs.total_ns > 0 {
                println!(
                    "  info  span       {path:<42} : {:.3e}ns vs {:.3e}ns  (x{:.2})",
                    fs.total_ns as f64,
                    bs.total_ns as f64,
                    fs.total_ns as f64 / bs.total_ns as f64
                );
            }
        }
    }
    for (name, fh) in &fresh.hists {
        if let Some(bh) = baseline.hists.get(name) {
            let (bq, fq) = (bh.quantile(0.5), fh.quantile(0.5));
            if bq > 0.0 {
                println!(
                    "  info  hist p50   {name:<42} : {fq:.3e} vs {bq:.3e}  (x{:.2})",
                    fq / bq
                );
            }
        }
    }
    for (name, fv) in &fresh.gauges {
        if let Some(bv) = baseline.gauges.get(name) {
            println!("  info  gauge      {name:<42} : {fv:.3e} vs {bv:.3e}");
        }
    }

    if failures > 0 {
        eprintln!("metrics_diff: {failures} deterministic record(s) drifted");
        std::process::exit(1);
    }
    println!("metrics_diff: PASS (all deterministic records identical)");
}
