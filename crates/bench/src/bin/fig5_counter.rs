//! **Figure 5** — effect of the loop-filter counter length on BER.
//!
//! "We observe that the best BER performance is obtained when counter
//! length is set to 8 ... When the length is set to 4 the loop has high
//! bandwidth. The system tends to follow the dominant noise source, n_w
//! ... When the length is set to 16, the effect of the noise source n_r
//! becomes predominant: the loop response becomes too slow to follow the
//! drift ... Hence, there is an optimal counter length for given levels of
//! noise."
//!
//! Reproduces all three panels and the U-shaped BER-vs-counter-length
//! relation.

use stochcdr::{report, CdrModel, SolverChoice};
use stochcdr_bench::fig5_config;

fn main() {
    println!("=== Figure 5: effect of counter length on BER (noise held constant) ===\n");
    let lengths = [4usize, 8, 16];
    let mut results = Vec::new();
    for &len in &lengths {
        let config = fig5_config(len).expect("preset config");
        let model = CdrModel::new(config);
        let chain = model.build_chain().expect("chain assembly");
        let analysis = chain.analyze(SolverChoice::Multigrid).expect("analysis");
        println!("--- panel: counter length {len} ---");
        println!("{}", report::figure_panel(&chain, &analysis));
        results.push((len, analysis.ber));
    }

    let &(best_len, best_ber) = results
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    println!("summary (BER vs counter length):");
    for &(len, ber) in &results {
        println!(
            "  C = {len:>2}: BER = {ber:.2e}  ({:.1}x the optimum)",
            ber / best_ber
        );
    }
    println!(
        "\noptimal counter length: {best_len} (paper: 8 — high-bandwidth loops follow n_w, \
         slow loops cannot track the n_r drift)"
    );
}
