//! Dev probe: find a stiff operating point where power iteration struggles.
use std::time::Instant;
use stochcdr::{CdrConfig, CdrModel, SolverChoice};

fn main() {
    for (sigma, mean, dev, refinement, dead) in [
        (0.01, 2e-4, 2e-3, 32, 32usize),
        (0.01, 2e-4, 2e-3, 32, 64),
        (0.005, 1e-4, 2.5e-3, 32, 96),
        (0.01, 2e-4, 1.2e-3, 64, 128),
    ] {
        let cfg = CdrConfig::builder()
            .phases(8)
            .grid_refinement(refinement)
            .counter_len(8)
            .dead_zone_bins(dead)
            .white_sigma_ui(sigma)
            .drift(mean, dev)
            .build()
            .expect("config");
        let chain = CdrModel::new(cfg).build_chain().expect("chain");
        print!(
            "sigma={sigma} mean={mean} dev={dev} dead={dead} m={}: ",
            chain.config().m_bins()
        );
        for choice in [
            SolverChoice::Power,
            SolverChoice::Multigrid,
            SolverChoice::MultigridW,
        ] {
            let solver = chain.solver_with_tol(choice, 1e-10);
            let t = Instant::now();
            match solver.solve(chain.tpm(), None) {
                Ok(r) => print!(
                    " {}={} it {:.2}s",
                    solver.name(),
                    r.iterations(),
                    t.elapsed().as_secs_f64()
                ),
                Err(e) => print!(" {}=FAIL({e:.30})", solver.name()),
            }
        }
        println!();
    }
}
