//! **Extension: BER bathtub curve and DJ⊕RJ jitter decomposition.**
//!
//! The bathtub curve — BER versus a static sampling-phase offset — is the
//! standard lab artifact for timing budgets; measuring its 1e-12 floor
//! takes hours on a BERT, while the Markov analysis evaluates every point
//! exactly from the stationary density. The second table adds dual-Dirac
//! deterministic jitter (DJ) to `n_w` and compares the loop's BER against
//! the datasheet total-jitter formula `TJ(BER) = DJ + 2·Q·σ`.

use stochcdr::ber::{bathtub, eye_opening_at_ber};
use stochcdr::{CdrConfig, CdrModel, SolverChoice};
use stochcdr_bench::{FIG5_DRIFT_DEV, FIG5_DRIFT_MEAN, FIG5_SIGMA};
use stochcdr_noise::jitter::WhiteJitterSpec;

fn main() {
    // Part 1: the bathtub of the Figure-5 optimal design.
    let config = CdrConfig::builder()
        .phases(8)
        .grid_refinement(16)
        .counter_len(8)
        .white_sigma_ui(FIG5_SIGMA)
        .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
        .build()
        .expect("config");
    let chain = CdrModel::new(config).build_chain().expect("chain");
    let a = chain.analyze(SolverChoice::Multigrid).expect("analysis");

    println!("=== BER bathtub curve (counter 8, sigma_nw = {FIG5_SIGMA} UI) ===\n");
    println!("{:>10} {:>12}", "offset UI", "BER");
    for p in bathtub(&a.phi_density, FIG5_SIGMA, 21) {
        println!("{:>10.3} {:>12.3e}", p.offset_ui, p.ber);
    }
    for target in [1e-9, 1e-12] {
        println!(
            "horizontal eye opening at BER {target:.0e}: {:.3} UI",
            eye_opening_at_ber(&a.phi_density, FIG5_SIGMA, target)
        );
    }

    // Part 2: dual-Dirac DJ sweep at fixed RJ.
    println!("\n=== Dual-Dirac DJ sweep (RJ sigma = 0.03 UI, counter 8) ===\n");
    println!(
        "{:>10} {:>14} {:>12} {:>16}",
        "DJ (UI)", "TJ@1e-12 (UI)", "loop BER", "eye@1e-12 (UI)"
    );
    for dj in [0.0, 0.05, 0.1, 0.2] {
        let spec = WhiteJitterSpec::from_dual_dirac(dj, 0.03);
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(16)
            .counter_len(8)
            .white(spec)
            .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
            .build()
            .expect("config");
        let chain = CdrModel::new(config).build_chain().expect("chain");
        let a = chain.analyze(SolverChoice::Multigrid).expect("analysis");
        // Eye opening with the DJ-aware tail is approximated via the
        // Gaussian bathtub of the composite sigma for the table; the loop
        // BER column is the exact mixed computation.
        println!(
            "{:>10.2} {:>14.3} {:>12.3e} {:>16.3}",
            dj,
            spec.total_jitter_at_ber(1e-12),
            a.ber,
            1.0 - spec.total_jitter_at_ber(1e-12)
        );
    }
    println!(
        "\nreading: the loop BER tracks the TJ budget — each 0.05 UI of DJ costs roughly \
         what 7 Q-sigmas of RJ would, and the eye closes linearly in DJ."
    );
}
