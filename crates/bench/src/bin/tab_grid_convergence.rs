//! **Grid-convergence table** — validating the discretization.
//!
//! The paper: "The granularity of the discretization of the phase error
//! and the noise sources is dictated by the number of clock phases and the
//! magnitude of the noise source n_r. The discretization grid needs to be
//! fine enough to accurately capture the small jumps in phase error due to
//! n_r." This table quantifies that statement: the BER and the phase-
//! density moments as the grid is refined, holding the physical operating
//! point fixed. Convergence of the column values is the evidence that the
//! discretized chain represents the underlying continuous loop.
//!
//! The refinement ladder runs as one sweep-engine axis (cold solves; the
//! state space changes at every rung, so there is nothing to warm-start).
//! With `--check`, the output is diffed against
//! `results/tab_grid_convergence.txt` instead of printed.

use std::fmt::Write as _;

use stochcdr::{CdrConfig, SolverChoice};
use stochcdr_bench::{golden, FIG5_DRIFT_DEV, FIG5_DRIFT_MEAN, FIG5_SIGMA};
use stochcdr_sweep::{run_map, FactorCache, SweepAxis, SweepSpec};

fn render() -> String {
    let base = CdrConfig::builder()
        .phases(8)
        .grid_refinement(8)
        .counter_len(8)
        .white_sigma_ui(FIG5_SIGMA)
        .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
        .build()
        .expect("config");
    let spec = SweepSpec::new(base)
        .axis(SweepAxis::Refinement(vec![8, 16, 32, 64, 128]))
        .solver(SolverChoice::Multigrid)
        .warm_start(false);
    let cache = FactorCache::new();
    let rows = run_map(&spec, &cache, &|ctx, chain, a| {
        Ok((
            ctx.params[0].1.clone(),
            chain.state_count(),
            a.ber,
            a.phi_density.mean_ui(),
            a.phi_density.std_ui(),
            a.iterations,
        ))
    })
    .expect("grid-convergence sweep");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Discretization convergence (fixed physical operating point) ===\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "refinement", "states", "BER", "mean(phi)", "std(phi)", "cycles"
    );
    let mut previous_ber: Option<f64> = None;
    for (refinement, states, ber, mean, std, cycles) in rows {
        let trend = match previous_ber {
            Some(prev) if prev > 0.0 => format!("  ({:+.1}%)", (ber / prev - 1.0) * 100.0),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "{refinement:<12} {states:>8} {ber:>12.3e} {mean:>12.4} {std:>12.4} {cycles:>10}{trend}"
        );
        previous_ber = Some(ber);
    }
    let _ = writeln!(
        out,
        "\nreading: successive refinements change the BER by shrinking percentages; the \
         density moments are grid-insensitive, the BER tail converges to a few percent by \
         refinement 32 (the figure grid, refinement 16, sits within ~30% of the limit)."
    );
    out
}

fn main() {
    golden::print_or_check("tab_grid_convergence", &render());
}
