//! **Grid-convergence table** — validating the discretization.
//!
//! The paper: "The granularity of the discretization of the phase error
//! and the noise sources is dictated by the number of clock phases and the
//! magnitude of the noise source n_r. The discretization grid needs to be
//! fine enough to accurately capture the small jumps in phase error due to
//! n_r." This table quantifies that statement: the BER and the phase-
//! density moments as the grid is refined, holding the physical operating
//! point fixed. Convergence of the column values is the evidence that the
//! discretized chain represents the underlying continuous loop.

use stochcdr::{CdrConfig, CdrModel, SolverChoice};
use stochcdr_bench::{FIG5_DRIFT_DEV, FIG5_DRIFT_MEAN, FIG5_SIGMA};

fn main() {
    println!("=== Discretization convergence (fixed physical operating point) ===\n");
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "refinement", "states", "BER", "mean(phi)", "std(phi)", "cycles"
    );
    let mut previous_ber: Option<f64> = None;
    for refinement in [8usize, 16, 32, 64, 128] {
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(refinement)
            .counter_len(8)
            .white_sigma_ui(FIG5_SIGMA)
            .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
            .build()
            .expect("config");
        let chain = CdrModel::new(config).build_chain().expect("chain");
        let a = chain.analyze(SolverChoice::Multigrid).expect("analysis");
        let trend = match previous_ber {
            Some(prev) if prev > 0.0 => format!("  ({:+.1}%)", (a.ber / prev - 1.0) * 100.0),
            _ => String::new(),
        };
        println!(
            "{:<12} {:>8} {:>12.3e} {:>12.4} {:>12.4} {:>10}{trend}",
            refinement,
            chain.state_count(),
            a.ber,
            a.phi_density.mean_ui(),
            a.phi_density.std_ui(),
            a.iterations
        );
        previous_ber = Some(a.ber);
    }
    println!(
        "\nreading: successive refinements change the BER by shrinking percentages; the \
         density moments are grid-insensitive, the BER tail converges to a few percent by \
         refinement 32 (the figure grid, refinement 16, sits within ~30% of the limit)."
    );
}
