//! **Benchmark snapshot** — one JSON file capturing the repository's key
//! performance numbers for regression tracking.
//!
//! Runs the reference operating point (Fig. 5 parameters) end to end —
//! chain build, multigrid stationary solve, and a short Monte-Carlo
//! cross-check — while the `stochcdr-obs` summary sink captures the
//! instrumented internals, then serializes the headline metrics:
//! state count, TPM nonzeros, multigrid cycles and cycle-equivalents
//! (for both the fixed-V reference solve and the adaptive + Krylov
//! accelerated solve), wall times, BER.
//!
//! Usage: `cargo run --release -p stochcdr-bench --bin bench_snapshot --
//! [--out BENCH.json] [--refinement N] [--symbols N] [--spmv-only]
//! [--ledger LEDGER.jsonl]` (`scripts/bench_snapshot.sh` wraps this with
//! a dated filename). `--ledger` additionally appends the run's headline
//! numbers to the perf-trend ledger (see `bench_trend`).
//!
//! `--spmv-only` skips everything except the large-operator SpMV probe
//! and writes a mini-snapshot with the `spmv_large_*` fields — the cheap
//! unit `scripts/par_gate.sh` repeats to gate the parallel speedup.

use std::fmt::Write as _;
use std::time::Instant;

use stochcdr::monte_carlo::MonteCarlo;
use stochcdr::{CdrConfig, CdrModel, SolverChoice};
use stochcdr_bench::{FIG5_DRIFT_DEV, FIG5_DRIFT_MEAN, FIG5_SIGMA};
use stochcdr_linalg::par;
use stochcdr_markov::StochasticMatrix;
use stochcdr_obs as obs;
use stochcdr_sweep::{run, SweepAxis, SweepSpec};

/// Route allocations through the accounting wrapper so the snapshot can
/// record allocation counts and heap high-water marks per phase.
#[global_allocator]
static GLOBAL: obs::mem::TrackingAlloc = obs::mem::TrackingAlloc::new();

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Mean seconds per `x·P` product over enough repetitions to fill
/// ~0.3 s of wall clock (calibrated from a single warm rep).
fn time_spmv(p: &StochasticMatrix, x: &[f64], y: &mut [f64]) -> f64 {
    p.step_into(x, y); // warm-up, also the calibration rep
    let t0 = Instant::now();
    p.step_into(x, y);
    let one = t0.elapsed().as_secs_f64();
    let reps = ((0.3 / one.max(1e-9)) as u64).clamp(3, 20_000);
    let t0 = Instant::now();
    for _ in 0..reps {
        p.step_into(x, y);
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Build the refinement-64 probe chain (>500k nonzeros, clears the
/// `linalg::par` nnz gate) and time `x·P` at 1 thread vs `threads`.
/// Returns `(chain, 1t secs, Nt secs)` after asserting bit-identity.
fn spmv_large_probe(threads: usize) -> (stochcdr::CdrChain, f64, f64) {
    let large_config = CdrConfig::builder()
        .phases(8)
        .grid_refinement(64)
        .counter_len(8)
        .white_sigma_ui(FIG5_SIGMA)
        .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
        .build()
        .expect("large config");
    let large = CdrModel::new(large_config)
        .build_chain()
        .expect("large chain");
    let ln = large.state_count();
    let lx = vec![1.0 / ln as f64; ln];
    let mut ly1 = vec![0.0; ln];
    let mut lyn = vec![0.0; ln];
    par::set_threads(Some(1));
    let spmv_large_1t_secs = time_spmv(large.tpm(), &lx, &mut ly1);
    par::set_threads(Some(threads));
    let spmv_large_nt_secs = time_spmv(large.tpm(), &lx, &mut lyn);
    assert_eq!(ly1, lyn, "N-thread SpMV must be bit-identical to 1-thread");
    (large, spmv_large_1t_secs, spmv_large_nt_secs)
}

/// `--spmv-only`: run just the large SpMV probe and write a mini-snapshot
/// carrying the `spmv_large_*` fields plus the thread configuration. No
/// solve, no Monte Carlo, no summary sink — this is the unit the CI
/// par-gate repeats best-of-3, so it has to stay cheap.
fn run_spmv_only(out_path: &str) {
    let threads = par::threads();
    par::prewarm(); // pool spawn must not land in the measured windows
    let (large, spmv_large_1t_secs, spmv_large_nt_secs) = spmv_large_probe(threads);
    let spmv_large_speedup = spmv_large_1t_secs / spmv_large_nt_secs;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"stochcdr-bench-snapshot/1\",");
    let _ = writeln!(json, "  \"spmv_only\": true,");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"hw_threads\": {},", par::available());
    let _ = writeln!(json, "  \"spmv_large_states\": {},", large.state_count());
    let _ = writeln!(json, "  \"spmv_large_nnz\": {},", large.nnz());
    let _ = writeln!(json, "  \"spmv_large_1t_secs\": {spmv_large_1t_secs:e},");
    let _ = writeln!(json, "  \"spmv_large_nt_secs\": {spmv_large_nt_secs:e},");
    let _ = writeln!(json, "  \"spmv_large_speedup\": {spmv_large_speedup:.3}");
    json.push_str("}\n");
    obs::json::Json::parse(&json).expect("snapshot serializes to valid JSON");
    std::fs::write(out_path, &json).expect("write snapshot");
    println!(
        "wrote {out_path}: spmv large x{spmv_large_speedup:.2} at {threads} threads \
         ({} hw)",
        par::available()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH.json".to_string());
    if args.iter().any(|a| a == "--spmv-only") {
        run_spmv_only(&out_path);
        return;
    }
    let refinement: usize =
        flag(&args, "--refinement").map_or(16, |v| v.parse().expect("--refinement N"));
    let symbols: u64 =
        flag(&args, "--symbols").map_or(200_000, |v| v.parse().expect("--symbols N"));

    let config = CdrConfig::builder()
        .phases(8)
        .grid_refinement(refinement)
        .counter_len(8)
        .white_sigma_ui(FIG5_SIGMA)
        .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
        .build()
        .expect("config");

    // Memory pre-pass, *before* the summary sink is installed: the sink's
    // own bookkeeping (histogram bins, span maps) allocates on timing-
    // dependent paths, so measuring alongside it would make the counts
    // nondeterministic. With obs disabled the main-thread allocation
    // counts of chain build and solve are a pure function of the
    // configuration and thread count, so the gate can compare them
    // exactly; heap high-water marks include worker threads and are
    // advisory. Prewarming the pool first keeps its one-time lazy init
    // (env parse + persistent worker spawn) out of the measured windows.
    par::prewarm();
    obs::mem::reset_peak();
    let mark = obs::mem::thread_mark();
    let mem_chain = CdrModel::new(config.clone()).build_chain().expect("chain");
    let (mem_form_alloc_bytes, mem_form_alloc_count) = mark.delta();
    let mem_form_peak_bytes = obs::mem::peak_bytes();
    obs::mem::reset_peak();
    let mark = obs::mem::thread_mark();
    let _ = mem_chain
        .analyze(SolverChoice::Multigrid)
        .expect("analysis");
    let (mem_solve_alloc_bytes, mem_solve_alloc_count) = mark.delta();
    let mem_solve_peak_bytes = obs::mem::peak_bytes();
    drop(mem_chain);

    obs::install(Box::new(obs::SummarySink::new()));

    let t0 = Instant::now();
    let chain = CdrModel::new(config.clone()).build_chain().expect("chain");
    let form_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let analysis = chain.analyze(SolverChoice::Multigrid).expect("analysis");
    let solve_secs = t0.elapsed().as_secs_f64();

    // Accelerated solve on the same chain: the adaptive V→F→W schedule
    // with the always-on Krylov window (`mgk`). Cycle-equivalents — total
    // fine-grid work in units of one V-cycle — are a pure function of the
    // hierarchy and the controller's decisions, so both solves gate
    // exactly; only the wall times are advisory.
    let t0 = Instant::now();
    let accel = chain
        .analyze(SolverChoice::MgKrylov)
        .expect("accelerated analysis");
    let accel_solve_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mc = MonteCarlo::new(config).run(symbols, 0x5eed);
    let mc_secs = t0.elapsed().as_secs_f64();

    // SpMV microbenchmark: the same `x·P` kernel at 1 thread vs the
    // configured pool. The determinism contract demands bit-identical
    // output either way, which the snapshot asserts before recording the
    // speedup.
    let threads = par::threads();
    obs::gauge("bench.threads", threads as f64);
    let n = chain.state_count();
    let x = vec![1.0 / n as f64; n];
    let mut y1 = vec![0.0; n];
    let mut yn = vec![0.0; n];
    par::set_threads(Some(1));
    let spmv_1t_secs = time_spmv(chain.tpm(), &x, &mut y1);
    par::set_threads(Some(threads));
    let spmv_nt_secs = time_spmv(chain.tpm(), &x, &mut yn);
    assert_eq!(y1, yn, "N-thread SpMV must be bit-identical to 1-thread");
    let spmv_speedup = spmv_1t_secs / spmv_nt_secs;

    // Large-operator SpMV probe. The reference chain above sits *below*
    // the `linalg::par` nnz gate, so its "speedup" only measures that the
    // gate keeps the kernel serial. The refinement-64 probe chain clears
    // the gate: the 1-thread run is the forced-serial (gated) timing and
    // the N-thread run exercises the actual parallel kernel, so the pair
    // records both sides of the dispatch.
    let (large, spmv_large_1t_secs, spmv_large_nt_secs) = spmv_large_probe(threads);
    let ln = large.state_count();
    let spmv_large_speedup = spmv_large_1t_secs / spmv_large_nt_secs;

    // Tiny drift-ppm sweep: exercises the sweep engine's factor cache so
    // the snapshot records how the multigrid hierarchy ("mg.level") and
    // the symbolic lumping plans ("mg.plan") are reused across points.
    // The counts are deterministic (totals do not depend on scheduling),
    // so they gate exactly.
    let sweep_config = CdrConfig::builder()
        .phases(8)
        .grid_refinement(8)
        .counter_len(8)
        .white_sigma_ui(FIG5_SIGMA)
        .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
        .build()
        .expect("sweep config");
    let ppm = vec![2000.0, 2040.0, 2080.0, 2120.0];
    let sweep_drift_points = ppm.len();
    let sweep_spec = SweepSpec::new(sweep_config)
        .axis(SweepAxis::DriftPpm(ppm))
        .solver(SolverChoice::Multigrid)
        .tol(1e-10);
    let sweep = run(&sweep_spec).expect("drift sweep");
    let cache_kind = |kind: &str| {
        sweep
            .cache
            .by_kind
            .get(kind)
            .map_or((0, 0), |s| (s.hits, s.misses))
    };
    let (mg_level_hits, mg_level_misses) = cache_kind("mg.level");
    let (mg_plan_hits, mg_plan_misses) = cache_kind("mg.plan");

    // Implicit Kronecker probe: a 2-lane replication solved matrix-free
    // through `ProductChain::solve_implicit`, sized so the joint chain is
    // far larger than anything else in this snapshot while each factor
    // stays tiny. The structural numbers (states, nnz, cycles, residual)
    // are deterministic, but the whole block is recorded as advisory in
    // `bench_gate` — the implicit path is tracked for trend visibility,
    // not gated, while it is still young.
    // Coarse grid, so the drift is scaled up to stay resolvable (the
    // Fig.-5 drift rounds to zero against a refinement-2 grid step).
    let lane_config = CdrConfig::builder()
        .phases(8)
        .grid_refinement(2)
        .counter_len(4)
        .white_sigma_ui(FIG5_SIGMA)
        .drift(2e-2, 8e-2)
        .build()
        .expect("implicit lane config");
    let lane = CdrModel::new(lane_config)
        .build_chain()
        .expect("implicit lane chain");
    let product = lane.replicate(2).expect("2-lane product");
    let implicit_states = product.state_count();
    let implicit_compact_nnz = product.compact_nnz();
    let implicit_materialized_nnz = product.materialized_nnz();
    let t0 = Instant::now();
    let implicit = product.solve_implicit(1e-10).expect("implicit solve");
    let implicit_solve_secs = t0.elapsed().as_secs_f64();

    // Whole-process memory gauges go into the summary before it detaches.
    obs::mem::publish();
    let summary = obs::uninstall()
        .and_then(|mut s| s.finish())
        .unwrap_or_default();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"stochcdr-bench-snapshot/1\",");
    let _ = writeln!(json, "  \"obs_schema\": \"{}\",", obs::SCHEMA_VERSION);
    let _ = writeln!(json, "  \"refinement\": {refinement},");
    let _ = writeln!(json, "  \"states\": {},", chain.state_count());
    let _ = writeln!(json, "  \"nnz\": {},", chain.nnz());
    let _ = writeln!(json, "  \"solver\": \"{}\",", analysis.solver_name);
    let _ = writeln!(json, "  \"cycles\": {},", analysis.iterations);
    let _ = writeln!(
        json,
        "  \"cycle_equivalents\": {:e},",
        analysis.mg_cycle_equivalents.unwrap_or(f64::NAN)
    );
    let _ = writeln!(json, "  \"residual\": {:e},", analysis.residual);
    let _ = writeln!(json, "  \"accel_solver\": \"{}\",", accel.solver_name);
    let _ = writeln!(json, "  \"accel_cycles\": {},", accel.iterations);
    let _ = writeln!(
        json,
        "  \"accel_cycle_equivalents\": {:e},",
        accel.mg_cycle_equivalents.unwrap_or(f64::NAN)
    );
    let _ = writeln!(json, "  \"accel_residual\": {:e},", accel.residual);
    let _ = writeln!(json, "  \"accel_solve_secs\": {accel_solve_secs:e},");
    let _ = writeln!(json, "  \"ber\": {:e},", analysis.ber);
    let _ = writeln!(json, "  \"mc_symbols\": {symbols},");
    let _ = writeln!(json, "  \"mc_ber\": {:e},", mc.ber);
    let _ = writeln!(json, "  \"mc_cycle_slips\": {},", mc.cycle_slips);
    let _ = writeln!(json, "  \"form_secs\": {form_secs:e},");
    let _ = writeln!(json, "  \"solve_secs\": {solve_secs:e},");
    let _ = writeln!(json, "  \"mc_secs\": {mc_secs:e},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"hw_threads\": {},", par::available());
    let _ = writeln!(json, "  \"spmv_1t_secs\": {spmv_1t_secs:e},");
    let _ = writeln!(json, "  \"spmv_nt_secs\": {spmv_nt_secs:e},");
    let _ = writeln!(json, "  \"spmv_speedup\": {spmv_speedup:.3},");
    let _ = writeln!(json, "  \"spmv_large_states\": {ln},");
    let _ = writeln!(json, "  \"spmv_large_nnz\": {},", large.nnz());
    let _ = writeln!(json, "  \"spmv_large_1t_secs\": {spmv_large_1t_secs:e},");
    let _ = writeln!(json, "  \"spmv_large_nt_secs\": {spmv_large_nt_secs:e},");
    let _ = writeln!(json, "  \"spmv_large_speedup\": {spmv_large_speedup:.3},");
    let phases = analysis.mg_phases.unwrap_or_default();
    let _ = writeln!(json, "  \"solve_setup_secs\": {:e},", phases.setup_secs);
    let _ = writeln!(
        json,
        "  \"solve_aggregate_secs\": {:e},",
        phases.aggregate_secs
    );
    let _ = writeln!(json, "  \"solve_smooth_secs\": {:e},", phases.smooth_secs);
    let _ = writeln!(
        json,
        "  \"solve_coarse_secs\": {:e},",
        phases.coarse_solve_secs
    );
    let _ = writeln!(
        json,
        "  \"solve_disaggregate_secs\": {:e},",
        phases.disaggregate_secs
    );
    let _ = writeln!(json, "  \"mem_form_alloc_count\": {mem_form_alloc_count},");
    let _ = writeln!(json, "  \"mem_form_alloc_bytes\": {mem_form_alloc_bytes},");
    let _ = writeln!(json, "  \"mem_form_peak_bytes\": {mem_form_peak_bytes},");
    let _ = writeln!(
        json,
        "  \"mem_solve_alloc_count\": {mem_solve_alloc_count},"
    );
    let _ = writeln!(
        json,
        "  \"mem_solve_alloc_bytes\": {mem_solve_alloc_bytes},"
    );
    let _ = writeln!(json, "  \"mem_solve_peak_bytes\": {mem_solve_peak_bytes},");
    let _ = writeln!(json, "  \"mem_peak_bytes\": {},", obs::mem::peak_bytes());
    let _ = writeln!(json, "  \"mem_alloc_count\": {},", obs::mem::alloc_count());
    let _ = writeln!(
        json,
        "  \"mem_peak_rss_bytes\": {},",
        obs::mem::peak_rss_bytes()
    );
    let _ = writeln!(json, "  \"sweep_drift_points\": {sweep_drift_points},");
    let _ = writeln!(json, "  \"sweep_mg_level_hits\": {mg_level_hits},");
    let _ = writeln!(json, "  \"sweep_mg_level_misses\": {mg_level_misses},");
    let _ = writeln!(json, "  \"sweep_mg_plan_hits\": {mg_plan_hits},");
    let _ = writeln!(json, "  \"sweep_mg_plan_misses\": {mg_plan_misses},");
    let _ = writeln!(json, "  \"implicit_states\": {implicit_states},");
    let _ = writeln!(json, "  \"implicit_compact_nnz\": {implicit_compact_nnz},");
    let _ = writeln!(
        json,
        "  \"implicit_materialized_nnz\": {implicit_materialized_nnz},"
    );
    let _ = writeln!(
        json,
        "  \"implicit_cycles\": {},",
        implicit.result.iterations()
    );
    let _ = writeln!(
        json,
        "  \"implicit_residual\": {:e},",
        implicit.result.residual()
    );
    let _ = writeln!(
        json,
        "  \"implicit_cycle_equivalents\": {:e},",
        implicit.stats.cycle_equivalents
    );
    let _ = writeln!(json, "  \"implicit_solve_secs\": {implicit_solve_secs:e},");
    json.push_str("  \"obs_summary\": ");
    {
        // Reuse the obs JSON escaper so the embedded table is valid JSON.
        let mut escaped = String::new();
        obs::json::escape_into(&mut escaped, &summary);
        json.push_str(&escaped);
    }
    json.push_str("\n}\n");

    // Self-check: the snapshot must parse back.
    obs::json::Json::parse(&json).expect("snapshot serializes to valid JSON");

    std::fs::write(&out_path, &json).expect("write snapshot");

    // `--ledger PATH`: append this run's headline numbers to the
    // perf-trend history (one JSONL record; see `bench_trend`).
    if let Some(ledger_path) = flag(&args, "--ledger") {
        use stochcdr_bench::trend;
        let record = trend::snapshot_to_record(
            &json,
            &trend::label_from_path(&out_path),
            &trend::git_short_rev(),
        )
        .expect("snapshot carries every ledger field");
        let mut existing = std::fs::read_to_string(&ledger_path).unwrap_or_default();
        if !existing.is_empty() && !existing.ends_with('\n') {
            existing.push('\n');
        }
        existing.push_str(&record.render());
        existing.push('\n');
        std::fs::write(&ledger_path, existing).expect("append ledger record");
        println!("appended {} record to {ledger_path}", record.label);
    }

    println!(
        "wrote {out_path}: {} states, {} cycles (accel {} = {:.2} eq), BER {:.3e}, \
         solve {:.3}s, spmv x{spmv_speedup:.2} (large x{spmv_large_speedup:.2}) at \
         {threads} threads",
        chain.state_count(),
        analysis.iterations,
        accel.iterations,
        accel.mg_cycle_equivalents.unwrap_or(f64::NAN),
        analysis.ber,
        solve_secs
    );
}
