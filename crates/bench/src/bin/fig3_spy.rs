//! **Figure 3** — nonzero pattern of the CDR transition probability matrix.
//!
//! "Figure 3 shows the nonzero pattern for the transition probability
//! matrix of the clock recovery circuit model, where one can observe the
//! compositional structure of the problem."
//!
//! Prints the pattern as ASCII art, writes a PGM image next to the working
//! directory, and reports the pattern statistics (bandwidth, density,
//! fan-out) that quantify the block structure.

use stochcdr::{CdrModel, SolverChoice};
use stochcdr_bench::small_config;
use stochcdr_linalg::pattern;

fn main() {
    let config = small_config().expect("preset config");
    let model = CdrModel::new(config);
    let chain = model.build_chain().expect("chain assembly");
    let tpm = chain.tpm().matrix();

    println!("=== Figure 3: TPM nonzero pattern ===");
    println!(
        "model: {} data-run x {} counter x {} phase bins = {} states, {} nonzeros",
        chain.config().data_model.state_count(),
        chain.config().counter_len,
        chain.config().m_bins(),
        chain.state_count(),
        chain.nnz()
    );
    println!();
    println!("{}", pattern::spy_ascii(tpm, 64));
    println!();

    let stats = pattern::stats(tpm);
    println!("pattern statistics:");
    println!("  density        : {:.4e}", stats.density);
    println!("  avg row nnz    : {:.1}", stats.avg_row_nnz);
    println!(
        "  min/max row nnz: {} / {}",
        stats.min_row_nnz, stats.max_row_nnz
    );
    println!(
        "  bandwidth      : lower {} upper {}",
        stats.lower_bandwidth, stats.upper_bandwidth
    );

    let pgm = pattern::spy_pgm(tpm, 512);
    let path = "fig3_tpm_pattern.pgm";
    std::fs::write(path, pgm).expect("write PGM");
    println!(
        "\nwrote {path} ({}x{} downsampled pattern image)",
        512.min(tpm.rows()),
        512.min(tpm.rows())
    );

    // Sanity: the chain this pattern belongs to is solvable.
    let a = chain.analyze(SolverChoice::Multigrid).expect("analysis");
    println!(
        "(chain solves in {} multigrid cycles to residual {:.1e})",
        a.iterations, a.residual
    );
}
