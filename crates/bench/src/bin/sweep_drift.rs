//! **Sweep-engine acceptance benchmark** — the PR's headline scenario: a
//! 64-point drift-ppm sweep at refinement 32.
//!
//! The drift axis perturbs only the `n_r` pmf, so the factor cache keeps
//! every other assembly factor (and the multigrid hierarchy) warm across
//! all 64 points; warm-started solves seed each point from its chunk
//! neighbor. The binary reports the factor-cache hit rate (gated at
//! ≥ 90%) and the wall-time ratio against the pre-engine baseline: the
//! same grid run as a hand-rolled build-and-analyze loop with no cache
//! and cold solves.
//!
//! Usage: `cargo run --release -p stochcdr-bench --bin sweep_drift --
//! [--points N] [--refinement N] [--out SWEEP.json] [--skip-baseline]`

use std::time::Instant;

use stochcdr::cycle_slip::mean_time_between_slips;
use stochcdr::{CdrConfig, CdrModel, SolverChoice};
use stochcdr_noise::jitter::{DriftJitterSpec, DriftShape};
use stochcdr_sweep::{render, run, SweepAxis, SweepSpec};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn base_config(refinement: usize) -> CdrConfig {
    CdrConfig::builder()
        .phases(8)
        .grid_refinement(refinement)
        .counter_len(8)
        .white_sigma_ui(0.05)
        .drift(2e-3, 9e-3)
        .build()
        .expect("config")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let points: usize = flag(&args, "--points").map_or(64, |v| v.parse().expect("--points N"));
    let refinement: usize =
        flag(&args, "--refinement").map_or(32, |v| v.parse().expect("--refinement N"));
    let skip_baseline = args.iter().any(|a| a == "--skip-baseline");

    let base = base_config(refinement);
    let ppm: Vec<f64> = (0..points).map(|i| 2000.0 + 10.0 * i as f64).collect();
    let spec = SweepSpec::new(base.clone())
        .axis(SweepAxis::DriftPpm(ppm.clone()))
        .solver(SolverChoice::Multigrid)
        .tol(1e-10);

    println!(
        "=== sweep_drift: {points}-point drift-ppm sweep, refinement {refinement} \
         ({} states) ===",
        base.state_count()
    );

    let t0 = Instant::now();
    let sweep = run(&spec).expect("sweep");
    let engine_secs = t0.elapsed().as_secs_f64();
    let stats = &sweep.cache;
    let warm = sweep.points.iter().filter(|p| p.warm_started).count();
    println!(
        "engine : {engine_secs:.2}s  ({warm}/{points} warm-started solves, \
         mean {:.1} cycles)",
        sweep.points.iter().map(|p| p.iterations).sum::<usize>() as f64 / points as f64
    );
    println!(
        "cache  : {} hits / {} accesses = {:.1}% hit rate; misses by kind: \
         nr {}, others {}",
        stats.hits,
        stats.accesses(),
        stats.hit_rate() * 100.0,
        stats.by_kind.get("acc.nr").map_or(0, |k| k.misses),
        stats.misses - stats.by_kind.get("acc.nr").map_or(0, |k| k.misses),
    );

    if let Some(path) = flag(&args, "--out") {
        std::fs::write(&path, render(&spec, &sweep.points)).expect("write sweep JSON");
        println!("wrote  : {path}");
    }

    if !skip_baseline {
        // Pre-engine baseline: rebuild everything from scratch at each
        // point and solve cold — what fig4_noise-style loops did before
        // the sweep engine existed.
        let t0 = Instant::now();
        let mut baseline_ber = Vec::with_capacity(points);
        for &f_ppm in &ppm {
            let config = {
                let mut b = base.to_builder();
                b = b.drift_spec(DriftJitterSpec::from_frequency_offset_ppm(
                    f_ppm,
                    base.drift.max_dev_ui,
                    DriftShape::Triangular,
                ));
                b.build().expect("point config")
            };
            let chain = CdrModel::new(config).build_chain().expect("chain");
            let a = chain
                .analyze_with_tol(SolverChoice::Multigrid, 1e-10)
                .expect("analysis");
            let mtbs = mean_time_between_slips(&chain, &a.stationary).expect("mtbs");
            baseline_ber.push((a.ber, mtbs));
        }
        let loop_secs = t0.elapsed().as_secs_f64();
        println!(
            "loop   : {loop_secs:.2}s cold hand-rolled baseline  (engine x{:.2})",
            loop_secs / engine_secs
        );
        // Same physics either way: the cache and warm starts change cost,
        // not answers (BER agrees to solver tolerance).
        for (p, (ber, _)) in sweep.points.iter().zip(&baseline_ber) {
            let scale = p.ber.abs().max(ber.abs()).max(1e-300);
            assert!(
                (p.ber - ber).abs() / scale < 1e-6,
                "engine BER {} deviates from baseline {} at point {}",
                p.ber,
                ber,
                p.flat
            );
        }
        println!("check  : engine BERs match the baseline loop at every point");
    }

    if stats.hit_rate() < 0.90 {
        eprintln!(
            "sweep_drift: FAIL — factor-cache hit rate {:.1}% below the 90% acceptance bar",
            stats.hit_rate() * 100.0
        );
        std::process::exit(1);
    }
    println!("sweep_drift: PASS (hit rate >= 90%)");
}
