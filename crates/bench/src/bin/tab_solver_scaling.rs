//! **Solver scaling table** — the in-text performance claims.
//!
//! The paper's numerical-methods section claims a dedicated multigrid
//! method "capable of solving million state problems in less than an hour
//! on a beefed-up workstation", with per-figure annotations reporting the
//! state-space size, iteration counts, matrix-form time, and solve time.
//! This table regenerates those claims on the same model family: the
//! state space grows by refining the phase grid (and widening the data/
//! counter FSMs for the largest rows), and each stationary solver runs at
//! the same tolerance.
//!
//! Each size row is a solver-axis sweep on the `stochcdr-sweep` engine;
//! a factor cache shared across every row reuses the assembly factors
//! (and the multigrid hierarchy) between solver runs on the same chain.
//!
//! Usage: `cargo run --release -p stochcdr-bench --bin tab_solver_scaling
//! [--large] [--check]`. The `--large` flag adds the half-million-state
//! row (several minutes of runtime); `--check` diffs the output against
//! `results/tab_solver_scaling.txt` instead of printing.

use std::fmt::Write as _;
use std::time::Instant;

use stochcdr::{report, CdrConfig, CdrModel, SolverChoice};
use stochcdr_bench::{golden, FIG5_DRIFT_DEV, FIG5_DRIFT_MEAN, FIG5_SIGMA};
use stochcdr_noise::sonet::DataSpec;
use stochcdr_obs as obs;
use stochcdr_sweep::{run_map, FactorCache, SweepAxis, SweepSpec};

/// Solvers benchmarked on the smooth scaling family. Adding a solver to
/// either table is one line here — the solve/print plumbing below goes
/// through the `SolverChoice` registry.
const SCALING_SOLVERS: &[SolverChoice] = &[
    SolverChoice::Power,
    SolverChoice::GaussSeidel,
    SolverChoice::Multigrid,
];

/// Solvers benchmarked on the stiff dead-zone family (adds the W-cycle).
const STIFF_SOLVERS: &[SolverChoice] = &[
    SolverChoice::Power,
    SolverChoice::GaussSeidel,
    SolverChoice::Multigrid,
    SolverChoice::MultigridW,
];

/// One table row per solver on `config`, appended to `out` behind a
/// `--- N states ---` banner. Runs as a solver-axis sweep sharing
/// `cache`; solves stay cold so iteration counts match standalone runs.
fn bench_solvers(
    out: &mut String,
    config: CdrConfig,
    choices: &[SolverChoice],
    tol: f64,
    cache: &FactorCache,
    banner_form_time: bool,
) {
    let spec = SweepSpec::new(config)
        .axis(SweepAxis::Solver(choices.to_vec()))
        .tol(tol)
        .warm_start(false);
    let rows = run_map(&spec, cache, &|ctx, chain, analysis| {
        Ok((
            report::solver_row(
                analysis.solver_name,
                chain.state_count(),
                chain.nnz(),
                analysis.iterations,
                analysis.residual,
                ctx.solve_secs,
                analysis.mg_phases.as_ref(),
            ),
            chain.state_count(),
            chain.nnz(),
            ctx.form_secs,
        ))
    })
    .expect("solver sweep");
    let (_, states, nnz, form_secs) = rows[0].clone();
    if banner_form_time {
        let _ = writeln!(
            out,
            "--- {states} states ({nnz} nnz), matrix form time {form_secs:.2}s ---"
        );
    } else {
        let _ = writeln!(out, "--- {states} states ({nnz} nnz) ---");
    }
    for (row, ..) in &rows {
        let _ = writeln!(out, "{row}");
    }
}

/// Process peak RSS in the table's glued `MiB` format — the golden
/// comparator masks this token shape (machine-dependent, like timings).
fn fmt_mib(bytes: u64) -> String {
    format!("{:.1}MiB", bytes as f64 / (1024.0 * 1024.0))
}

/// One row of the implicit Kronecker section: `lanes` replicas of a
/// single-lane chain solved matrix-free on the product-form fine grid.
/// The joint TPM is never materialized — "dense nnz" reports what it
/// *would* store — and peak RSS shows the footprint the implicit path
/// actually pays. Cycles, cycle-equivalents, the final cycle kind, the
/// Krylov accept ratio, and the residual are deterministic (the implicit
/// path runs the default V-cycle schedule with always-on Krylov
/// extrapolation); solve time and RSS are masked in the golden diff. The family grows by widening the
/// lane's loop counter (the refinement is pinned at 8, the coarsest grid
/// the Fig.-5 drift still resolves).
fn bench_implicit(out: &mut String, counter: usize, lanes: usize, tol: f64) {
    let config = CdrConfig::builder()
        .phases(8)
        .grid_refinement(8)
        .counter_len(counter)
        .white_sigma_ui(FIG5_SIGMA)
        .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
        .build()
        .expect("implicit lane config");
    let lane = CdrModel::new(config).build_chain().expect("lane chain");
    let product = lane.replicate(lanes).expect("product chain");
    // Restart the RSS high-water mark so the column reports this row's
    // footprint, not the residue of the materialized sections above.
    obs::mem::reset_peak_rss();
    let t0 = Instant::now();
    let solve = product.solve_implicit(tol).expect("implicit solve");
    let secs = t0.elapsed().as_secs_f64();
    let _ = writeln!(
        out,
        "{lanes} x {:<6} {:>12} {:>11} {:>12.3e} {:>7} {:>10.2} {:>6} {:>5}/{:<2} {:>12.2e} {:>9.2}s {:>10}",
        lane.state_count(),
        product.state_count(),
        product.compact_nnz(),
        product.materialized_nnz() as f64,
        solve.result.iterations(),
        solve.stats.cycle_equivalents,
        solve.stats.final_cycle.cli_name(),
        solve.stats.krylov_accepts,
        solve.stats.krylov_windows,
        solve.result.residual(),
        secs,
        fmt_mib(obs::mem::peak_rss_bytes()),
    );
}

fn scaled_config(refinement: usize, run_len: usize, counter: usize) -> CdrConfig {
    CdrConfig::builder()
        .phases(8)
        .grid_refinement(refinement)
        .counter_len(counter)
        .data(DataSpec::new(0.5, run_len).expect("data spec"))
        .white_sigma_ui(FIG5_SIGMA)
        .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
        .build()
        .expect("config")
}

fn render(large: bool) -> String {
    let tol = 1e-10;
    // (refinement, data run, counter) -> states = run * counter * 8 * refinement.
    let mut sizes: Vec<(usize, usize, usize)> =
        vec![(8, 4, 8), (16, 4, 8), (64, 4, 8), (128, 8, 8), (256, 8, 16)];
    if large {
        sizes.push((512, 16, 16));
    }
    let cache = FactorCache::new();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Solver scaling on the CDR model family (tol = {tol:.0e}) ===\n"
    );
    let _ = writeln!(out, "{}", report::solver_header());
    for (refinement, run, counter) in sizes {
        bench_solvers(
            &mut out,
            scaled_config(refinement, run, counter),
            SCALING_SOLVERS,
            tol,
            &cache,
            true,
        );
    }
    // Part 2: a *stiff* operating point — dead-zone phase detector, so the
    // phase diffuses freely (no corrections) across a quarter-UI plateau.
    // This is the regime where one-level methods stall at 1 − O(1/m²) and
    // the paper's multigrid shines.
    let _ = writeln!(
        out,
        "\n=== Stiff (dead-zone) operating point: dead zone = UI/4 ===\n"
    );
    let _ = writeln!(out, "{}", report::solver_header());
    for refinement in [32usize, 64, 128] {
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(refinement)
            .counter_len(8)
            .dead_zone_bins(2 * refinement) // a quarter UI on each side
            .white_sigma_ui(0.01)
            .drift(2e-4, 2e-3)
            .build()
            .expect("stiff config");
        bench_solvers(&mut out, config, STIFF_SOLVERS, tol, &cache, false);
    }

    // Part 3: the implicit Kronecker path — multi-lane product-form
    // chains whose fine grid is never materialized. The interesting
    // columns are the stored-vs-dense nonzero gap and the peak RSS: the
    // million-state row's materialized TPM would need gigabytes, while
    // the matrix-free solve completes in well under one.
    let _ = writeln!(
        out,
        "\n=== Implicit Kronecker product scaling (matrix-free fine grid, tol = 1e-8) ===\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>11} {:>12} {:>7} {:>10} {:>6} {:>8} {:>12} {:>10} {:>10}",
        "lanes",
        "jointstates",
        "stored-nnz",
        "dense-nnz",
        "cycles",
        "cyc-equiv",
        "final",
        "krylov",
        "residual",
        "solve",
        "peak-RSS"
    );
    for counter in [2usize, 3, 5] {
        bench_implicit(&mut out, counter, 2, 1e-8);
    }

    let _ = writeln!(
        out,
        "\npaper claim reproduced in shape: multigrid iteration counts stay flat as the \
         state space grows, while one-level methods scale with the grid — decisively so \
         on the stiff dead-zone chains. The implicit Kronecker rows extend the same \
         solver past the materialization wall: the million-state product solves in a \
         footprint the dense nonzero count says it could never materialize."
    );
    out
}

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    golden::print_or_check("tab_solver_scaling", &render(large));
}
