//! **Solver scaling table** — the in-text performance claims.
//!
//! The paper's numerical-methods section claims a dedicated multigrid
//! method "capable of solving million state problems in less than an hour
//! on a beefed-up workstation", with per-figure annotations reporting the
//! state-space size, iteration counts, matrix-form time, and solve time.
//! This table regenerates those claims on the same model family: the
//! state space grows by refining the phase grid (and widening the data/
//! counter FSMs for the largest rows), and each stationary solver runs at
//! the same tolerance.
//!
//! Usage: `cargo run --release -p stochcdr-bench --bin tab_solver_scaling
//! [--large]`. The `--large` flag adds the half-million-state row (several
//! minutes of runtime).

use std::time::Instant;

use stochcdr::{report, CdrChain, CdrConfig, CdrModel, SolverChoice};
use stochcdr_bench::{FIG5_DRIFT_DEV, FIG5_DRIFT_MEAN, FIG5_SIGMA};
use stochcdr_noise::sonet::DataSpec;

/// Solvers benchmarked on the smooth scaling family. Adding a solver to
/// either table is one line here — the solve/print plumbing below goes
/// through the `SolverChoice` registry.
const SCALING_SOLVERS: &[SolverChoice] =
    &[SolverChoice::Power, SolverChoice::GaussSeidel, SolverChoice::Multigrid];

/// Solvers benchmarked on the stiff dead-zone family (adds the W-cycle).
const STIFF_SOLVERS: &[SolverChoice] = &[
    SolverChoice::Power,
    SolverChoice::GaussSeidel,
    SolverChoice::Multigrid,
    SolverChoice::MultigridW,
];

/// Runs each registry choice on `chain` and prints one table row per
/// solver — the single copy of the solve-and-report block.
fn bench_solvers(chain: &CdrChain, choices: &[SolverChoice], tol: f64) {
    for &choice in choices {
        let solver = chain.solver_with_tol(choice, tol);
        let t0 = Instant::now();
        match solver.solve(chain.tpm(), None) {
            Ok(r) => println!(
                "{}",
                report::solver_row(
                    solver.name(),
                    chain.state_count(),
                    chain.nnz(),
                    r.iterations(),
                    r.residual(),
                    t0.elapsed().as_secs_f64()
                )
            ),
            Err(e) => println!(
                "{:<14} {:>10} {:>12} {:>10} {:>12} {:>10.3}s  ({e})",
                solver.name(),
                chain.state_count(),
                chain.nnz(),
                "-",
                "-",
                t0.elapsed().as_secs_f64()
            ),
        }
    }
}

fn scaled_config(refinement: usize, run_len: usize, counter: usize) -> CdrConfig {
    CdrConfig::builder()
        .phases(8)
        .grid_refinement(refinement)
        .counter_len(counter)
        .data(DataSpec::new(0.5, run_len).expect("data spec"))
        .white_sigma_ui(FIG5_SIGMA)
        .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
        .build()
        .expect("config")
}

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    let tol = 1e-10;
    // (refinement, data run, counter) -> states = run * counter * 8 * refinement.
    let mut sizes: Vec<(usize, usize, usize)> =
        vec![(8, 4, 8), (16, 4, 8), (64, 4, 8), (128, 8, 8), (256, 8, 16)];
    if large {
        sizes.push((512, 16, 16));
    }

    println!("=== Solver scaling on the CDR model family (tol = {tol:.0e}) ===\n");
    println!("{}", report::solver_header());
    for (refinement, run, counter) in sizes {
        let config = scaled_config(refinement, run, counter);
        let t0 = Instant::now();
        let chain = CdrModel::new(config).build_chain().expect("chain");
        let form = t0.elapsed();
        println!(
            "--- {} states ({} nnz), matrix form time {:.2}s ---",
            chain.state_count(),
            chain.nnz(),
            form.as_secs_f64()
        );
        bench_solvers(&chain, SCALING_SOLVERS, tol);
    }
    // Part 2: a *stiff* operating point — dead-zone phase detector, so the
    // phase diffuses freely (no corrections) across a quarter-UI plateau.
    // This is the regime where one-level methods stall at 1 − O(1/m²) and
    // the paper's multigrid shines.
    println!("\n=== Stiff (dead-zone) operating point: dead zone = UI/4 ===\n");
    println!("{}", report::solver_header());
    for refinement in [32usize, 64, 128] {
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(refinement)
            .counter_len(8)
            .dead_zone_bins(2 * refinement) // a quarter UI on each side
            .white_sigma_ui(0.01)
            .drift(2e-4, 2e-3)
            .build()
            .expect("stiff config");
        let chain = CdrModel::new(config).build_chain().expect("chain");
        println!("--- {} states ({} nnz) ---", chain.state_count(), chain.nnz());
        bench_solvers(&chain, STIFF_SOLVERS, tol);
    }

    println!(
        "\npaper claim reproduced in shape: multigrid iteration counts stay flat as the \
         state space grows, while one-level methods scale with the grid — decisively so \
         on the stiff dead-zone chains."
    );
}
