//! **Extension: lock acquisition** — pull-in behavior vs counter length.
//!
//! The counter length trades steady-state BER (the paper's Figure 5)
//! against acquisition speed: longer counters filter harder and acquire
//! slower. This binary quantifies that trade with exact transient and
//! first-passage analysis from the worst-case half-UI start.

use stochcdr::acquisition::{lock_probability_curve, mean_lock_time, worst_case_start};
use stochcdr::{CdrModel, SolverChoice};
use stochcdr_bench::fig5_config;

fn main() {
    println!("=== Lock acquisition from a half-UI start vs counter length ===\n");
    println!(
        "{:<10} {:>16} {:>14} {:>14} {:>12}",
        "counter", "mean lock (sym)", "P(lock<=200)", "P(lock<=1000)", "BER"
    );
    for counter in [4usize, 8, 16] {
        let config = fig5_config(counter).expect("preset");
        let chain = CdrModel::new(config).build_chain().expect("chain");
        let radius = chain.config().step_bins(); // within one phase step of zero
        let mean = mean_lock_time(&chain, radius).expect("mean lock time");
        let curve =
            lock_probability_curve(&chain, worst_case_start(&chain), radius, 1000).expect("curve");
        let a = chain.analyze(SolverChoice::Multigrid).expect("analysis");
        println!(
            "{:<10} {:>16.1} {:>14.4} {:>14.4} {:>12.2e}",
            counter, mean, curve[200], curve[1000], a.ber
        );
    }
    println!(
        "\nreading: short counters acquire fastest but pay steady-state BER (Figure 5's \
         fast-loop penalty); the BER-optimal counter is not the acquisition-optimal one."
    );
}
