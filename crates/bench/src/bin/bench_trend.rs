//! **Perf-trend CLI** — renders the regression verdict over the
//! append-only benchmark ledger (see [`stochcdr_bench::trend`]).
//!
//! Usage:
//!
//! ```text
//! bench_trend --ledger results/PERF_LEDGER.jsonl [--window N] [--threshold X]
//! bench_trend --ledger results/PERF_LEDGER.jsonl --import SNAP.json [SNAP.json ...]
//! ```
//!
//! The first form analyzes the ledger and prints the sparkline table;
//! exit code 1 signals a flagged regression, 2 a malformed ledger or
//! bad flag. The second form backfills history: every snapshot file
//! after `--import` is converted to one ledger record (labelled from
//! its filename, `git_rev` = `imported`) and appended in argument
//! order, then the refreshed ledger is analyzed as usual.

use stochcdr_bench::trend;

fn fail(msg: &str) -> ! {
    eprintln!("bench_trend: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ledger_path: Option<String> = None;
    let mut window = trend::DEFAULT_WINDOW;
    let mut threshold = trend::DEFAULT_THRESHOLD;
    let mut imports: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ledger" => {
                ledger_path = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--ledger needs a path"))
                        .clone(),
                );
            }
            "--window" => {
                let v = it.next().unwrap_or_else(|| fail("--window needs a value"));
                window = v
                    .parse()
                    .ok()
                    .filter(|w| *w > 0)
                    .unwrap_or_else(|| fail(&format!("bad --window '{v}'")));
            }
            "--threshold" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--threshold needs a value"));
                threshold = v
                    .parse()
                    .ok()
                    .filter(|t: &f64| *t > 1.0 && t.is_finite())
                    .unwrap_or_else(|| fail(&format!("bad --threshold '{v}' (need > 1)")));
            }
            "--import" => {
                // Every following argument up to the next flag is a
                // snapshot path.
                while let Some(next) = it.peek() {
                    if next.starts_with("--") {
                        break;
                    }
                    imports.push(it.next().expect("peeked").clone());
                }
                if imports.is_empty() {
                    fail("--import needs at least one snapshot path");
                }
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    let ledger_path = ledger_path.unwrap_or_else(|| fail("--ledger PATH is required"));

    if !imports.is_empty() {
        let mut lines = String::new();
        for path in &imports {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read snapshot '{path}': {e}")));
            let label = trend::label_from_path(path);
            let rec = trend::snapshot_to_record(&text, &label, "imported")
                .unwrap_or_else(|e| fail(&format!("snapshot '{path}': {e}")));
            lines.push_str(&rec.render());
            lines.push('\n');
        }
        let mut existing = std::fs::read_to_string(&ledger_path).unwrap_or_default();
        if !existing.is_empty() && !existing.ends_with('\n') {
            existing.push('\n');
        }
        existing.push_str(&lines);
        std::fs::write(&ledger_path, existing)
            .unwrap_or_else(|e| fail(&format!("cannot write ledger '{ledger_path}': {e}")));
        println!("imported {} snapshot(s) into {ledger_path}", imports.len());
    }

    let text = std::fs::read_to_string(&ledger_path)
        .unwrap_or_else(|e| fail(&format!("cannot read ledger '{ledger_path}': {e}")));
    let records =
        trend::parse_ledger(&text).unwrap_or_else(|e| fail(&format!("{ledger_path}: {e}")));
    let report = trend::analyze(&records, window, threshold);
    println!(
        "perf trend: {ledger_path} ({} records, window {window}, threshold x{threshold:.2})\n",
        records.len()
    );
    print!("{}", report.text);
    if report.ok() {
        println!("\nverdict: OK — no wall-time metric above x{threshold:.2} of its window median");
    } else {
        for r in &report.regressions {
            println!(
                "\nverdict: REGRESSION — {} at threads={} is x{:.2} its window median",
                r.metric, r.threads, r.ratio
            );
        }
        std::process::exit(1);
    }
}
