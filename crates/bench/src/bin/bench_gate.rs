//! **Benchmark regression gate** — compares two `bench_snapshot` JSON
//! files and fails when any *deterministic* metric moved.
//!
//! The determinism contract makes this gate sharp: state count, TPM
//! nonzeros, solver cycles and cycle-equivalents (reference and
//! accelerated solves), residual, BER, and the Monte-Carlo results
//! are bit-identical across machines and thread counts, so any drift is
//! a real behavior change, not noise. Wall-clock fields (`*_secs`,
//! `spmv_*`) are advisory: the gate prints their ratios but never fails
//! on them, since CI runners vary.
//!
//! Usage: `bench_gate BASELINE.json FRESH.json` — exits 1 on a
//! deterministic mismatch, 2 on unreadable/invalid input.
//!
//! **Par-gate mode**: `bench_gate --par-gate SNAP.json... [--report PATH]`
//! takes one or more `--spmv-only` snapshots (repetitions of the same
//! probe), picks the best `spmv_large_speedup`, and fails (exit 1) when
//! it falls below a threshold. The threshold is `STOCHCDR_PAR_GATE_MIN`
//! when set; otherwise it is tiered by the recorded `hw_threads`, because
//! a parallel speedup is only measurable when the hardware has cores to
//! run on: ≥4 hw threads → 2.0, 2–3 → 1.2, 1 → 0.9 (on a single core the
//! pool must merely not *lose* to serial beyond scheduling noise).

use std::fmt::Write as _;

use stochcdr_obs::json::Json;

/// Metrics that must match exactly between snapshots.
const EXACT: &[&str] = &[
    "states",
    "nnz",
    "cycles",
    // Cycle-equivalents — fine-grid work in units of one V-cycle — for
    // both the fixed-V reference solve and the adaptive + Krylov
    // accelerated solve. Pure functions of the hierarchy pattern and the
    // residual-history-driven controller decisions, never of timing, so
    // they gate exactly: a drift means the cycle controller or the
    // extrapolation accept/reject logic changed behavior.
    "cycle_equivalents",
    "accel_cycles",
    "accel_cycle_equivalents",
    "accel_residual",
    "residual",
    "ber",
    "mc_symbols",
    "mc_ber",
    "mc_cycle_slips",
    "spmv_large_states",
    "spmv_large_nnz",
    "sweep_drift_points",
    "sweep_mg_level_hits",
    "sweep_mg_level_misses",
    "sweep_mg_plan_hits",
    "sweep_mg_plan_misses",
    // Main-thread allocation counts of the uninstrumented build/solve
    // pre-pass: a pure function of configuration and thread count, so an
    // unexplained change means an allocation crept into (or left) a
    // kernel. Byte figures and high-water marks are advisory below.
    "mem_form_alloc_count",
    "mem_solve_alloc_count",
];

/// Wall-clock metrics reported as ratios, never gated on. The multigrid
/// phase splits (`solve_*_secs`) are wall-clock too — the split between
/// aggregation, smoothing, and the coarse solve is machine-dependent
/// even though the arithmetic it accounts for is deterministic.
const ADVISORY: &[&str] = &[
    "form_secs",
    "solve_secs",
    "accel_solve_secs",
    "mc_secs",
    "spmv_1t_secs",
    "spmv_nt_secs",
    "spmv_speedup",
    "spmv_large_1t_secs",
    "spmv_large_nt_secs",
    "spmv_large_speedup",
    "solve_setup_secs",
    "solve_aggregate_secs",
    "solve_smooth_secs",
    "solve_coarse_secs",
    "solve_disaggregate_secs",
    // Memory figures: byte totals depend on allocator growth policies and
    // worker-thread scheduling (high-water marks), and RSS on the kernel,
    // so they are reported, not gated.
    "mem_form_alloc_bytes",
    "mem_form_peak_bytes",
    "mem_solve_alloc_bytes",
    "mem_solve_peak_bytes",
    "mem_peak_bytes",
    "mem_alloc_count",
    "mem_peak_rss_bytes",
    // Implicit Kronecker probe: the structural half (states, nnz, cycles,
    // residual) is deterministic, but the whole block stays advisory
    // while the implicit path is young — tracked for trend visibility,
    // promoted to EXACT once its numbers have aged a release.
    "implicit_states",
    "implicit_compact_nnz",
    "implicit_materialized_nnz",
    "implicit_cycles",
    "implicit_cycle_equivalents",
    "implicit_residual",
    "implicit_solve_secs",
];

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read '{path}': {e}");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_gate: '{path}' is not valid JSON: {e}");
        std::process::exit(2);
    });
    match doc.get("schema").and_then(Json::as_str) {
        Some("stochcdr-bench-snapshot/1") => doc,
        other => {
            eprintln!("bench_gate: '{path}' has unexpected schema {other:?}");
            std::process::exit(2);
        }
    }
}

/// One `--spmv-only` repetition, as read from its snapshot.
struct ParRep {
    path: String,
    threads: f64,
    hw_threads: f64,
    nnz: f64,
    secs_1t: f64,
    secs_nt: f64,
    speedup: f64,
}

fn par_field(doc: &Json, path: &str, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_f64).unwrap_or_else(|| {
        eprintln!("bench_gate: '{path}' is missing numeric field '{key}'");
        std::process::exit(2);
    })
}

/// Threshold the best-of-N speedup must clear. `STOCHCDR_PAR_GATE_MIN`
/// always wins; otherwise tier by how many hardware threads the probe
/// machine actually had — demanding a 2x speedup from one core gates on
/// the weather, not the code.
fn par_threshold(hw_threads: f64) -> (f64, &'static str) {
    if let Ok(v) = std::env::var("STOCHCDR_PAR_GATE_MIN") {
        let min = v.parse::<f64>().unwrap_or_else(|_| {
            eprintln!("bench_gate: STOCHCDR_PAR_GATE_MIN='{v}' is not a number");
            std::process::exit(2);
        });
        return (min, "STOCHCDR_PAR_GATE_MIN");
    }
    if hw_threads >= 4.0 {
        (2.0, "hw_threads >= 4")
    } else if hw_threads >= 2.0 {
        (1.2, "hw_threads in 2..4")
    } else {
        (0.9, "hw_threads == 1 (pool must not lose to serial)")
    }
}

/// `--par-gate` mode: best-of-N speedup check over `--spmv-only` reps.
fn par_gate(paths: &[String], report_path: Option<&str>) -> ! {
    if paths.is_empty() {
        eprintln!("usage: bench_gate --par-gate SNAP.json... [--report PATH]");
        std::process::exit(2);
    }
    let reps: Vec<ParRep> = paths
        .iter()
        .map(|p| {
            let doc = load(p);
            ParRep {
                path: p.clone(),
                threads: par_field(&doc, p, "threads"),
                hw_threads: par_field(&doc, p, "hw_threads"),
                nnz: par_field(&doc, p, "spmv_large_nnz"),
                secs_1t: par_field(&doc, p, "spmv_large_1t_secs"),
                secs_nt: par_field(&doc, p, "spmv_large_nt_secs"),
                speedup: par_field(&doc, p, "spmv_large_speedup"),
            }
        })
        .collect();
    // Repetitions must measure the same experiment: same pool size, same
    // operator, same machine. Anything else is a harness bug, not a
    // performance regression.
    let first = &reps[0];
    for r in &reps[1..] {
        if r.threads != first.threads || r.nnz != first.nnz || r.hw_threads != first.hw_threads {
            eprintln!(
                "bench_gate: inconsistent reps: '{}' ({} threads, {} hw, nnz {}) vs '{}' ({} threads, {} hw, nnz {})",
                first.path, first.threads, first.hw_threads, first.nnz,
                r.path, r.threads, r.hw_threads, r.nnz,
            );
            std::process::exit(2);
        }
    }
    let (min, source) = par_threshold(first.hw_threads);
    let best = reps.iter().fold(f64::NEG_INFINITY, |m, r| m.max(r.speedup));

    let mut report = String::new();
    let _ = writeln!(
        report,
        "par gate: spmv_large at {} threads ({} hw), {} rep(s)",
        first.threads,
        first.hw_threads,
        reps.len()
    );
    for r in &reps {
        let _ = writeln!(
            report,
            "  rep {:<28} 1t {:.3e}s  {}t {:.3e}s  x{:.3}",
            r.path, r.secs_1t, r.threads, r.secs_nt, r.speedup
        );
    }
    let _ = writeln!(
        report,
        "  best speedup x{best:.3}, threshold x{min} ({source})"
    );
    let verdict = if best >= min {
        format!("par_gate: PASS (x{best:.3} >= x{min})")
    } else {
        format!("par_gate: FAIL (best x{best:.3} < required x{min})")
    };
    let _ = writeln!(report, "{verdict}");
    print!("{report}");
    if let Some(path) = report_path {
        std::fs::write(path, &report).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot write report '{path}': {e}");
            std::process::exit(2);
        });
    }
    std::process::exit(if best >= min { 0 } else { 1 });
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--par-gate") {
        args.remove(0);
        let report = args.iter().position(|a| a == "--report").map(|i| {
            if i + 1 >= args.len() {
                eprintln!("bench_gate: --report needs a path");
                std::process::exit(2);
            }
            let path = args.remove(i + 1);
            args.remove(i);
            path
        });
        par_gate(&args, report.as_deref());
    }
    let [baseline_path, fresh_path] = &args[..] else {
        eprintln!(
            "usage: bench_gate BASELINE.json FRESH.json\n       bench_gate --par-gate SNAP.json... [--report PATH]"
        );
        std::process::exit(2);
    };
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);

    let mut failures = 0usize;
    println!("bench gate: {baseline_path} (baseline) vs {fresh_path} (fresh)");
    // Resolved paths and the mode the wrapper script selected, so a CI
    // log is self-describing about *what* was gated and *how*.
    let resolved = |p: &str| {
        std::fs::canonicalize(p)
            .map(|c| c.display().to_string())
            .unwrap_or_else(|_| p.to_string())
    };
    println!(
        "  baseline file : {}\n  fresh file    : {}\n  gate mode     : {}",
        resolved(baseline_path),
        resolved(fresh_path),
        std::env::var("BENCH_GATE_MODE").unwrap_or_else(|_| "unset (full)".to_string())
    );

    // String-valued deterministic fields.
    for key in ["solver", "accel_solver"] {
        let b_solver = baseline.get(key).and_then(Json::as_str);
        let f_solver = fresh.get(key).and_then(Json::as_str);
        if b_solver == f_solver {
            println!("  ok    {key:<15} = {}", f_solver.unwrap_or("?"));
        } else {
            println!("  FAIL  {key:<15} : {b_solver:?} -> {f_solver:?}");
            failures += 1;
        }
    }

    for key in EXACT {
        let b = baseline.get(key).and_then(Json::as_f64);
        let f = fresh.get(key).and_then(Json::as_f64);
        match (b, f) {
            (Some(b), Some(f)) if b == f => println!("  ok    {key:<15} = {f:e}"),
            _ => {
                println!("  FAIL  {key:<15} : {b:?} -> {f:?}");
                failures += 1;
            }
        }
    }

    let b_threads = baseline.get("threads").and_then(Json::as_f64);
    let f_threads = fresh.get("threads").and_then(Json::as_f64);
    if b_threads != f_threads {
        // Not a failure: the determinism contract covers every gated
        // metric at any pool size; timing ratios just mean less.
        println!(
            "  note  threads         : {b_threads:?} -> {f_threads:?} (timing ratios approximate)"
        );
    }

    println!("  --- advisory wall-clock ratios (fresh / baseline) ---");
    for key in ADVISORY {
        match (
            baseline.get(key).and_then(Json::as_f64),
            fresh.get(key).and_then(Json::as_f64),
        ) {
            (Some(b), Some(f)) if b > 0.0 => {
                println!("  info  {key:<15} : {f:.3e} vs {b:.3e}  (x{:.2})", f / b);
            }
            (b, f) => println!("  info  {key:<15} : {b:?} -> {f:?}"),
        }
    }

    if failures > 0 {
        eprintln!("bench_gate: {failures} deterministic metric(s) drifted");
        std::process::exit(1);
    }
    println!("bench_gate: PASS (all deterministic metrics identical)");
}
