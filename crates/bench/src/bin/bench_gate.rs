//! **Benchmark regression gate** — compares two `bench_snapshot` JSON
//! files and fails when any *deterministic* metric moved.
//!
//! The determinism contract makes this gate sharp: state count, TPM
//! nonzeros, solver cycles, residual, BER, and the Monte-Carlo results
//! are bit-identical across machines and thread counts, so any drift is
//! a real behavior change, not noise. Wall-clock fields (`*_secs`,
//! `spmv_*`) are advisory: the gate prints their ratios but never fails
//! on them, since CI runners vary.
//!
//! Usage: `bench_gate BASELINE.json FRESH.json` — exits 1 on a
//! deterministic mismatch, 2 on unreadable/invalid input.

use stochcdr_obs::json::Json;

/// Metrics that must match exactly between snapshots.
const EXACT: &[&str] = &[
    "states",
    "nnz",
    "cycles",
    "residual",
    "ber",
    "mc_symbols",
    "mc_ber",
    "mc_cycle_slips",
    "spmv_large_states",
    "spmv_large_nnz",
    "sweep_drift_points",
    "sweep_mg_level_hits",
    "sweep_mg_level_misses",
    "sweep_mg_plan_hits",
    "sweep_mg_plan_misses",
    // Main-thread allocation counts of the uninstrumented build/solve
    // pre-pass: a pure function of configuration and thread count, so an
    // unexplained change means an allocation crept into (or left) a
    // kernel. Byte figures and high-water marks are advisory below.
    "mem_form_alloc_count",
    "mem_solve_alloc_count",
];

/// Wall-clock metrics reported as ratios, never gated on. The multigrid
/// phase splits (`solve_*_secs`) are wall-clock too — the split between
/// aggregation, smoothing, and the coarse solve is machine-dependent
/// even though the arithmetic it accounts for is deterministic.
const ADVISORY: &[&str] = &[
    "form_secs",
    "solve_secs",
    "mc_secs",
    "spmv_1t_secs",
    "spmv_nt_secs",
    "spmv_speedup",
    "spmv_large_1t_secs",
    "spmv_large_nt_secs",
    "spmv_large_speedup",
    "solve_setup_secs",
    "solve_aggregate_secs",
    "solve_smooth_secs",
    "solve_coarse_secs",
    "solve_disaggregate_secs",
    // Memory figures: byte totals depend on allocator growth policies and
    // worker-thread scheduling (high-water marks), and RSS on the kernel,
    // so they are reported, not gated.
    "mem_form_alloc_bytes",
    "mem_form_peak_bytes",
    "mem_solve_alloc_bytes",
    "mem_solve_peak_bytes",
    "mem_peak_bytes",
    "mem_alloc_count",
    "mem_peak_rss_bytes",
    // Implicit Kronecker probe: the structural half (states, nnz, cycles,
    // residual) is deterministic, but the whole block stays advisory
    // while the implicit path is young — tracked for trend visibility,
    // promoted to EXACT once its numbers have aged a release.
    "implicit_states",
    "implicit_compact_nnz",
    "implicit_materialized_nnz",
    "implicit_cycles",
    "implicit_residual",
    "implicit_solve_secs",
];

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read '{path}': {e}");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_gate: '{path}' is not valid JSON: {e}");
        std::process::exit(2);
    });
    match doc.get("schema").and_then(Json::as_str) {
        Some("stochcdr-bench-snapshot/1") => doc,
        other => {
            eprintln!("bench_gate: '{path}' has unexpected schema {other:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench_gate BASELINE.json FRESH.json");
        std::process::exit(2);
    };
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);

    let mut failures = 0usize;
    println!("bench gate: {baseline_path} (baseline) vs {fresh_path} (fresh)");

    // String-valued deterministic field.
    let b_solver = baseline.get("solver").and_then(Json::as_str);
    let f_solver = fresh.get("solver").and_then(Json::as_str);
    if b_solver == f_solver {
        println!("  ok    solver          = {}", f_solver.unwrap_or("?"));
    } else {
        println!("  FAIL  solver          : {b_solver:?} -> {f_solver:?}");
        failures += 1;
    }

    for key in EXACT {
        let b = baseline.get(key).and_then(Json::as_f64);
        let f = fresh.get(key).and_then(Json::as_f64);
        match (b, f) {
            (Some(b), Some(f)) if b == f => println!("  ok    {key:<15} = {f:e}"),
            _ => {
                println!("  FAIL  {key:<15} : {b:?} -> {f:?}");
                failures += 1;
            }
        }
    }

    let b_threads = baseline.get("threads").and_then(Json::as_f64);
    let f_threads = fresh.get("threads").and_then(Json::as_f64);
    if b_threads != f_threads {
        // Not a failure: the determinism contract covers every gated
        // metric at any pool size; timing ratios just mean less.
        println!(
            "  note  threads         : {b_threads:?} -> {f_threads:?} (timing ratios approximate)"
        );
    }

    println!("  --- advisory wall-clock ratios (fresh / baseline) ---");
    for key in ADVISORY {
        match (
            baseline.get(key).and_then(Json::as_f64),
            fresh.get(key).and_then(Json::as_f64),
        ) {
            (Some(b), Some(f)) if b > 0.0 => {
                println!("  info  {key:<15} : {f:.3e} vs {b:.3e}  (x{:.2})", f / b);
            }
            (b, f) => println!("  info  {key:<15} : {b:?} -> {f:?}"),
        }
    }

    if failures > 0 {
        eprintln!("bench_gate: {failures} deterministic metric(s) drifted");
        std::process::exit(1);
    }
    println!("bench_gate: PASS (all deterministic metrics identical)");
}
