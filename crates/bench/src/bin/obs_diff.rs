//! **Run-diff regression report** — the scriptable face of the
//! `stochcdr diff` subcommand, built on [`stochcdr_obs::artifact::diff`].
//!
//! Where `metrics_diff` walks raw sections, this binary runs the shared
//! diff engine: counters, event counts, span counts, and histogram bins
//! compare exactly; span timings, memory attribution, and gauges are
//! advisory within `--rel-tol` (default 0.5). The rendered report is
//! what `scripts/bench_gate.sh` uploads from CI.
//!
//! Usage: `obs_diff BASELINE.jsonl FRESH.jsonl [--rel-tol X] [--out REPORT.txt]`
//! — exits 1 on a deterministic mismatch, 2 on unreadable/invalid input
//! or a bad flag (the `metrics_diff` convention).

use stochcdr_obs::artifact::{diff, Artifact, DiffOptions};

fn bail(msg: &str) -> ! {
    eprintln!("obs_diff: {msg}");
    eprintln!("usage: obs_diff BASELINE.jsonl FRESH.jsonl [--rel-tol X] [--out REPORT.txt]");
    std::process::exit(2);
}

fn load(path: &str) -> Artifact {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| bail(&format!("cannot read '{path}': {e}")));
    Artifact::load_jsonl(&text)
        .unwrap_or_else(|e| bail(&format!("'{path}' is not a metrics artifact: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut rel_tol = DiffOptions::default().rel_tol;
    let mut out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rel-tol" => {
                let v = it.next().unwrap_or_else(|| bail("--rel-tol needs a value"));
                rel_tol = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t > 0.0)
                    .unwrap_or_else(|| bail(&format!("invalid --rel-tol '{v}'")));
            }
            "--out" => out = Some(it.next().unwrap_or_else(|| bail("--out needs a value"))),
            flag if flag.starts_with("--") => bail(&format!("unknown flag '{flag}'")),
            path => paths.push(path.to_string()),
        }
    }
    let [baseline_path, fresh_path] = &paths[..] else {
        bail("expected exactly two artifact paths");
    };

    let baseline = load(baseline_path);
    let fresh = load(fresh_path);
    let report = diff(&baseline, &fresh, &DiffOptions { rel_tol });
    print!("{}", report.text);
    if let Some(path) = out {
        std::fs::write(&path, &report.text)
            .unwrap_or_else(|e| bail(&format!("cannot write '{path}': {e}")));
    }
    if !report.ok() {
        eprintln!(
            "obs_diff: {} deterministic record(s) drifted",
            report.failures.len()
        );
        std::process::exit(1);
    }
}
