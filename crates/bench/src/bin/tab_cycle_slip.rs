//! **Cycle-slip table** — mean time between cycle slips vs noise level.
//!
//! "Another measure of performance for CDR circuits is the average time
//! between cycle slips. This translates into the computation of mean
//! transition times between certain sets of MC states ... It involves
//! solving a linear system with the (modified) TPM."
//!
//! Reports, across a sweep of `n_w` noise levels at the Figure-5 geometry:
//! the stationary slip rate (exact, from per-state wrap probabilities),
//! the mean time between slips, the mean first-passage time from lock to
//! the slip boundary (the paper's modified-TPM solve), and the BER.

use stochcdr::cycle_slip::{mean_time_between_slips, mean_time_to_first_slip};
use stochcdr::{CdrConfig, CdrModel, SolverChoice};
use stochcdr_bench::{FIG5_DRIFT_DEV, FIG5_DRIFT_MEAN};

fn main() {
    println!("=== Mean time between cycle slips vs n_w noise level ===\n");
    println!(
        "{:<10} {:>12} {:>16} {:>18} {:>12}",
        "sigma_nw", "BER", "MTBS (symbols)", "first-slip (sym)", "iters"
    );
    for sigma in [0.05, 0.07, 0.09, 0.12, 0.15] {
        // Geometry kept at ≤ 2048 states so the first-passage system can be
        // solved with the exact dense LU path: slips are rare events and
        // iterative solvers cannot reach E[T] ~ 1e12.
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(8)
            .counter_len(8)
            .data(stochcdr_noise::sonet::DataSpec::new(0.5, 4).expect("data"))
            .white_sigma_ui(sigma)
            .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
            .build()
            .expect("config");
        let chain = CdrModel::new(config).build_chain().expect("chain");
        let a = chain.analyze(SolverChoice::Multigrid).expect("analysis");
        let mtbs = mean_time_between_slips(&chain, &a.stationary).expect("slip rate");
        let first = mean_time_to_first_slip(&chain, 1).expect("first passage");
        println!(
            "{:<10.3} {:>12.2e} {:>16.3e} {:>18.3e} {:>12}",
            sigma, a.ber, mtbs, first, a.iterations
        );
    }
    println!(
        "\nshape check: both slip measures collapse by orders of magnitude as the noise \
         grows, while remaining far beyond Monte-Carlo reach at the quiet end."
    );
}
