//! **Monte-Carlo cross-check table** — validating the analysis and
//! demonstrating the paper's infeasibility argument.
//!
//! "Such specifications are practically impossible to verify through
//! straightforward simulation because of the extremely long sequence that
//! would need to be simulated."
//!
//! Part 1 runs the brute-force simulator at *high-BER* operating points,
//! where it can collect statistics, and checks the Markov-chain analysis
//! against its confidence interval (the two share one probability space).
//! Part 2 tabulates how many symbols Monte-Carlo would need at the
//! low-BER operating points the analysis resolves instantly.

use stochcdr::monte_carlo::{McResult, MonteCarlo};
use stochcdr::{CdrConfig, CdrModel, PhaseDetector, SolverChoice};
use stochcdr_markov::poisson::asymptotic_variance;

fn main() {
    println!("=== Part 1: MC vs analysis at measurable BER ===\n");
    println!(
        "{:<10} {:>14} {:>22} {:>10} {:>8} {:>10}",
        "sigma_nw", "analysis BER", "MC BER (95% CI)", "TV(phase)", "agree?", "corr x"
    );
    let symbols = 2_000_000u64;
    for sigma in [0.12, 0.16, 0.20] {
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(8)
            .counter_len(8)
            .white_sigma_ui(sigma)
            .drift(4e-3, 1.2e-2)
            .build()
            .expect("config");
        let chain = CdrModel::new(config.clone()).build_chain().expect("chain");
        let a = chain.analyze(SolverChoice::Multigrid).expect("analysis");
        let mc = MonteCarlo::new(config);
        let r = mc.run(symbols, 2026);
        let tv = mc.validate_against(&chain, &a.stationary, 500_000, 7);
        let agree = (r.ber - a.ber_discrete).abs() <= 3.0 * r.ber_ci95 + 0.02 * a.ber_discrete;
        // Correlation inflation of the MC estimator: the per-symbol error
        // indicator has conditional mean f(state); its time-average variance
        // is the chain variance of f (Poisson equation) plus the Bernoulli
        // part. The ratio to the iid binomial variance is the factor by
        // which naive confidence intervals are too optimistic.
        let cfg2 = chain.config();
        let nw = PhaseDetector::new(cfg2).nw().clone();
        let half = (cfg2.m_bins() / 2) as i32;
        let f: Vec<f64> = (0..chain.state_count())
            .map(|s| {
                let o = chain.phase_offset_of(s) as i32;
                nw.prob_gt(half - o) + nw.prob_lt(-half - o)
            })
            .collect();
        let chain_var = asymptotic_variance(chain.tpm(), &a.stationary, &f).expect("variance");
        let bernoulli: f64 = a
            .stationary
            .iter()
            .zip(&f)
            .map(|(&e, &fi)| e * fi * (1.0 - fi))
            .sum();
        let iid = a.ber_discrete * (1.0 - a.ber_discrete);
        let inflation = (chain_var + bernoulli) / iid.max(1e-300);
        println!(
            "{:<10.2} {:>14.3e} {:>12.3e} ±{:>8.1e} {:>10.4} {:>8} {:>10.2}",
            sigma,
            a.ber_discrete,
            r.ber,
            r.ber_ci95,
            tv,
            if agree { "yes" } else { "NO" },
            inflation
        );
    }

    println!(
        "\n(corr x = variance inflation of MC time-averages from symbol-to-symbol\n\
         correlation, via the chain's Poisson equation — naive binomial CIs are\n\
         optimistic by this factor)"
    );

    println!("\n=== Part 2: symbols required by MC (95% conf, 10% precision) ===\n");
    println!(
        "{:<12} {:>18} {:>24}",
        "target BER", "required symbols", "at 2.5 Gb/s"
    );
    for ber in [1e-4, 1e-7, 1e-10, 1e-14] {
        let n = McResult::required_symbols(ber, 0.1);
        let seconds = n / 2.5e9;
        let human = if seconds < 60.0 {
            format!("{seconds:.1} s")
        } else if seconds < 86_400.0 {
            format!("{:.1} hours", seconds / 3600.0)
        } else {
            format!("{:.1} years", seconds / (365.25 * 86_400.0))
        };
        println!("{ber:<12.0e} {n:>18.2e} {human:>24}");
    }
    println!(
        "\nthe analysis method resolves every row above in seconds of CPU time, \
         independent of the BER magnitude — the paper's core argument."
    );
}
