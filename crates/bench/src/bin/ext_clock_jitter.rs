//! **Extension: recovered-clock jitter** — autocovariance, accumulated
//! jitter, and jitter PSD of the recovered clock.
//!
//! The paper notes that specifications also exist "on the recovered clock
//! jitter" and that the stationary distribution is "the prerequisite for
//! computing other performance quantities such as the autocorrelation of a
//! function defined on the states of the MC". This binary computes those
//! quantities at the Figure-4 operating points.

use stochcdr::clock_jitter::analyze_clock_jitter;
use stochcdr::{CdrModel, SolverChoice};
use stochcdr_bench::{fig4_config, FIG4_SIGMA_SCALE};

fn main() {
    println!("=== Recovered-clock jitter at the Figure-4 operating points ===\n");
    for (label, scale) in [("baseline noise", 1.0), ("10x n_w", FIG4_SIGMA_SCALE)] {
        let config = fig4_config(scale).expect("preset");
        let chain = CdrModel::new(config).build_chain().expect("chain");
        let a = chain.analyze(SolverChoice::Multigrid).expect("analysis");
        let report = analyze_clock_jitter(&chain, &a.stationary, 400, 32).expect("jitter");

        println!("--- {label} ---");
        println!("rms jitter          : {:.4e} UI", report.rms_ui);
        println!("lag-1 correlation   : {:.4}", report.lag1_correlation());
        println!(
            "correlation length  : {} symbols",
            report.correlation_length()
        );
        println!("accumulated jitter J(k) [UI]:");
        for &k in &[1usize, 4, 16, 64, 256] {
            println!("  J({k:>4}) = {:.4e}", report.accumulated_ui[k.min(400)]);
        }
        println!("jitter PSD samples (f in cycles/symbol, S in UI^2/cps):");
        for &(f, s) in report.psd.iter().step_by(8) {
            println!("  S({f:.4}) = {s:.4e}");
        }
        println!();
    }
    println!(
        "shape: the loop high-pass filters its own corrections — accumulated jitter \
         saturates at sqrt(2) x rms once past the loop time constant, and the PSD is \
         low-frequency dominated."
    );
}
