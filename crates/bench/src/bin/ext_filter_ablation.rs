//! **Extension: loop-filter ablation** — overflow counter vs consecutive
//! detector.
//!
//! The paper notes its framework "is by no means restricted to this
//! particular circuit". This ablation swaps the loop filter for a
//! burst-mode-style consecutive detector (N same-direction decisions in a
//! row emit a phase step; an opposite decision restarts the run) and
//! compares steady-state BER, cycle-slip MTBS, and acquisition time at
//! matched filter lengths.

use stochcdr::acquisition::mean_lock_time;
use stochcdr::cycle_slip::mean_time_between_slips;
use stochcdr::{CdrConfig, CdrModel, FilterKind, SolverChoice};
use stochcdr_bench::{FIG5_DRIFT_DEV, FIG5_DRIFT_MEAN, FIG5_SIGMA};

fn main() {
    println!("=== Loop-filter ablation at the Figure-5 operating point ===\n");
    println!(
        "{:<22} {:>6} {:>8} {:>12} {:>14} {:>12}",
        "filter", "len", "states", "BER", "MTBS (sym)", "lock (sym)"
    );
    for kind in [FilterKind::OverflowCounter, FilterKind::ConsecutiveDetector] {
        for len in [2usize, 4, 8] {
            if kind == FilterKind::OverflowCounter && len == 2 {
                // A 2-state counter overflows on every decision pair; skip
                // the degenerate row for comparability.
                continue;
            }
            let config = CdrConfig::builder()
                .phases(8)
                .grid_refinement(16)
                .counter_len(len)
                .filter_kind(kind)
                .white_sigma_ui(FIG5_SIGMA)
                .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
                .build()
                .expect("config");
            let chain = CdrModel::new(config).build_chain().expect("chain");
            let a = chain.analyze(SolverChoice::Multigrid).expect("analysis");
            let mtbs = mean_time_between_slips(&chain, &a.stationary).expect("mtbs");
            let lock = mean_lock_time(&chain, chain.config().step_bins())
                .map(|t| format!("{t:>12.1}"))
                .unwrap_or_else(|_| format!("{:>12}", "-"));
            println!(
                "{:<22} {:>6} {:>8} {:>12.2e} {:>14.2e} {lock}",
                format!("{kind:?}"),
                len,
                chain.state_count(),
                a.ber,
                mtbs
            );
        }
    }
    println!(
        "\nreading: the consecutive detector filters isolated noise decisions harder per \
         state (an opposite decision erases the whole run), trading drift tracking for \
         noise rejection — a different point on the same bandwidth trade the paper's \
         Figure 5 explores with counter length."
    );
}
