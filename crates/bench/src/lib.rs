//! Shared harness for the paper-reproduction binaries.
//!
//! Every figure and table of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it; the operating points they share are
//! defined here so EXPERIMENTS.md, the binaries, and the integration tests
//! all use identical parameters.

use stochcdr::{CdrConfig, Result};

pub mod golden;
pub mod trend;

/// The phase-grid geometry used by the figure experiments: 8 VCO phases
/// (`G = UI/8`, a coarse phase mux whose hunting penalty is visible),
/// refinement 16 → 128 bins/UI.
pub const FIG_PHASES: usize = 8;
/// Grid refinement for the figure experiments.
pub const FIG_REFINEMENT: usize = 16;

/// Baseline `n_w` standard deviation (UI) — the "small noise" panel of
/// Figure 4 (negligible BER).
pub const FIG4_SIGMA_BASE: f64 = 0.007;
/// The paper scales `σ(n_w)` by 10 for the second panel of Figure 4.
pub const FIG4_SIGMA_SCALE: f64 = 10.0;

/// Drift mean per symbol (UI) for the figure experiments.
pub const FIG_DRIFT_MEAN: f64 = 2e-3;
/// Max random drift deviation (UI).
pub const FIG_DRIFT_DEV: f64 = 8e-3;

/// The operating point of the counter-length study (Figure 5): noise
/// levels held constant while the counter length sweeps {4, 8, 16}.
/// Calibrated (see `bin/tune.rs`) so the BER minimum falls at length 8
/// with the fast-loop penalty at 4 and the slow-loop penalty at 16, the
/// shape the paper reports.
pub const FIG5_SIGMA: f64 = 0.05;
/// Figure-5 drift mean.
pub const FIG5_DRIFT_MEAN: f64 = 2e-3;
/// Figure-5 drift deviation.
pub const FIG5_DRIFT_DEV: f64 = 8e-3;

/// Builds the Figure-4 configuration at a given `n_w` scale factor.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn fig4_config(sigma_scale: f64) -> Result<CdrConfig> {
    CdrConfig::builder()
        .phases(FIG_PHASES)
        .grid_refinement(FIG_REFINEMENT)
        .counter_len(8)
        .white_sigma_ui(FIG4_SIGMA_BASE * sigma_scale)
        .drift(FIG_DRIFT_MEAN, FIG_DRIFT_DEV)
        .build()
}

/// Builds the Figure-5 configuration at a given counter length.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn fig5_config(counter_len: usize) -> Result<CdrConfig> {
    CdrConfig::builder()
        .phases(FIG_PHASES)
        .grid_refinement(FIG_REFINEMENT)
        .counter_len(counter_len)
        .white_sigma_ui(FIG5_SIGMA)
        .drift(FIG5_DRIFT_MEAN, FIG5_DRIFT_DEV)
        .build()
}

/// A small configuration for smoke tests and the Figure-3 spy plot (the
/// block structure is legible only for modest sizes).
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn small_config() -> Result<CdrConfig> {
    CdrConfig::builder()
        .phases(8)
        .grid_refinement(2)
        .counter_len(4)
        .white_sigma_ui(0.06)
        .drift(1e-2, 4e-2)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build() {
        assert!(fig4_config(1.0).is_ok());
        assert!(fig4_config(FIG4_SIGMA_SCALE).is_ok());
        for c in [4, 8, 16] {
            assert!(fig5_config(c).is_ok());
        }
        assert!(small_config().is_ok());
    }
}
