//! Coarsening strategies: sequences of partitions from fine to coarse.

use stochcdr_markov::lumping::Partition;

/// Structure-blind pairwise coarsening: states `(2i, 2i+1)` are lumped at
/// every level until the chain has at most `stop_at` states.
///
/// Effective when the state ordering is such that adjacent indices are
/// "similar" (e.g. a 1-D chain); for product-space models prefer
/// [`GeometricCoarsening`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseCoarsening {
    stop_at: usize,
}

impl PairwiseCoarsening {
    /// Coarsens until the level size is `<= stop_at`.
    ///
    /// # Panics
    ///
    /// Panics if `stop_at == 0`.
    pub fn until(stop_at: usize) -> Self {
        assert!(stop_at > 0, "stop size must be positive");
        PairwiseCoarsening { stop_at }
    }

    /// Generates the partition sequence for a fine chain of `n` states.
    ///
    /// Each partition maps a level's states onto the next-coarser level;
    /// the sequence is empty when `n <= stop_at` already.
    pub fn levels(&self, n: usize) -> Vec<Partition> {
        let mut parts = Vec::new();
        let mut size = n;
        while size > self.stop_at {
            let labels: Vec<usize> = (0..size).map(|i| i / 2).collect();
            parts.push(Partition::from_labels(labels).expect("pairing labels are contiguous"));
            size = size.div_ceil(2);
        }
        parts
    }
}

/// Structure-aware coarsening for product-space chains: halves the grid of
/// **one designated component** at each level, leaving the other components
/// intact.
///
/// This is the paper's strategy: "we employed a coarsening strategy which
/// lumps the two states corresponding to consecutive discretized phase
/// error values. In this way, the lumped problems resemble the original
/// problem but with coarser phase error discretization."
///
/// State packing must be row-major over `dims` (first component slowest),
/// matching `stochcdr_fsm::ProductSpace`.
///
/// # Example
///
/// ```
/// use stochcdr_multigrid::GeometricCoarsening;
///
/// // (data=2, counter=4, phase=16): halve the phase grid down to 4 bins.
/// let levels = GeometricCoarsening::new(vec![2, 4, 16], 2, 4).levels();
/// assert_eq!(levels.len(), 2); // 16 -> 8 -> 4
/// assert_eq!(levels[0].n(), 2 * 4 * 16);
/// assert_eq!(levels[1].block_count(), 2 * 4 * 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometricCoarsening {
    dims: Vec<usize>,
    /// `(component, stop_at)` entries processed in order.
    schedule: Vec<(usize, usize)>,
}

impl GeometricCoarsening {
    /// Creates a coarsening over the given product dimensions, halving
    /// `component` until that component's dimension is `<= stop_at`.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, any dimension is zero, `component` is out
    /// of range, or `stop_at == 0`.
    pub fn new(dims: Vec<usize>, component: usize, stop_at: usize) -> Self {
        assert!(!dims.is_empty(), "need at least one component");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
        assert!(component < dims.len(), "component index out of range");
        assert!(stop_at > 0, "stop size must be positive");
        GeometricCoarsening {
            dims,
            schedule: vec![(component, stop_at)],
        }
    }

    /// Creates a coarsening that halves several components in sequence:
    /// each `(component, stop_at)` entry is exhausted before the next
    /// begins.
    ///
    /// The coarsest level of a multi-component product space is otherwise
    /// bounded below by the *unhalved* components' dimensions, which makes
    /// the direct coarsest solve (and therefore every W-cycle, which
    /// visits it `2^levels` times) expensive. Continuing through the other
    /// components shrinks the coarsest chain to a few dozen states.
    ///
    /// # Panics
    ///
    /// Same conditions as [`new`](Self::new), for every schedule entry.
    pub fn with_schedule(dims: Vec<usize>, schedule: Vec<(usize, usize)>) -> Self {
        assert!(!dims.is_empty(), "need at least one component");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
        assert!(!schedule.is_empty(), "schedule must be non-empty");
        for &(component, stop_at) in &schedule {
            assert!(component < dims.len(), "component index out of range");
            assert!(stop_at > 0, "stop size must be positive");
        }
        GeometricCoarsening { dims, schedule }
    }

    /// Generates the partition sequence.
    ///
    /// At each level, the active component's value `v` maps to `v / 2`;
    /// all other components are preserved. Odd dimensions leave the last
    /// value in a singleton block.
    pub fn levels(&self) -> Vec<Partition> {
        let mut parts = Vec::new();
        let mut dims = self.dims.clone();
        for &(component, stop_at) in &self.schedule {
            while dims[component] > stop_at {
                let fine_total: usize = dims.iter().product();
                let mut coarse_dims = dims.clone();
                coarse_dims[component] = dims[component].div_ceil(2);

                // Strides for fine and coarse packings.
                let strides = row_major_strides(&dims);
                let coarse_strides = row_major_strides(&coarse_dims);

                let mut labels = vec![0usize; fine_total];
                let mut parts_buf = vec![0usize; dims.len()];
                for (flat, label) in labels.iter_mut().enumerate() {
                    unpack(flat, &strides, &dims, &mut parts_buf);
                    parts_buf[component] /= 2;
                    *label = pack(&parts_buf, &coarse_strides);
                }
                parts.push(Partition::from_labels(labels).expect("halving labels are contiguous"));
                dims = coarse_dims;
            }
        }
        parts
    }

    /// The dimensions at each level, starting with the fine grid.
    pub fn level_dims(&self) -> Vec<Vec<usize>> {
        let mut out = vec![self.dims.clone()];
        let mut dims = self.dims.clone();
        for &(component, stop_at) in &self.schedule {
            while dims[component] > stop_at {
                dims[component] = dims[component].div_ceil(2);
                out.push(dims.clone());
            }
        }
        out
    }
}

fn row_major_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len() - 1).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

fn unpack(flat: usize, strides: &[usize], dims: &[usize], out: &mut [usize]) {
    let mut rem = flat;
    for i in 0..dims.len() {
        out[i] = rem / strides[i];
        rem %= strides[i];
    }
}

fn pack(parts: &[usize], strides: &[usize]) -> usize {
    parts.iter().zip(strides).map(|(&p, &s)| p * s).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_levels_halve() {
        let parts = PairwiseCoarsening::until(4).levels(32);
        assert_eq!(parts.len(), 3); // 32 -> 16 -> 8 -> 4
        assert_eq!(parts[0].n(), 32);
        assert_eq!(parts[0].block_count(), 16);
        assert_eq!(parts[2].block_count(), 4);
    }

    #[test]
    fn pairwise_odd_sizes() {
        let parts = PairwiseCoarsening::until(2).levels(7);
        // 7 -> 4 -> 2
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].block_count(), 4);
        assert_eq!(parts[1].block_count(), 2);
    }

    #[test]
    fn pairwise_no_levels_needed() {
        assert!(PairwiseCoarsening::until(8).levels(8).is_empty());
        assert!(PairwiseCoarsening::until(8).levels(5).is_empty());
    }

    #[test]
    fn geometric_halves_only_chosen_component() {
        // dims (data=2, counter=3, phase=8); halve phase until <= 2.
        let g = GeometricCoarsening::new(vec![2, 3, 8], 2, 2);
        let parts = g.levels();
        assert_eq!(parts.len(), 2); // 8 -> 4 -> 2
        assert_eq!(parts[0].n(), 48);
        assert_eq!(parts[0].block_count(), 24);
        assert_eq!(parts[1].block_count(), 12);
        let dims = g.level_dims();
        assert_eq!(dims, vec![vec![2, 3, 8], vec![2, 3, 4], vec![2, 3, 2]]);
    }

    #[test]
    fn geometric_pairs_adjacent_phase_values() {
        let g = GeometricCoarsening::new(vec![2, 4], 1, 2);
        let parts = g.levels();
        let p = &parts[0];
        // Fine states (d, phi) with phi in 0..4: (0,0) and (0,1) same block.
        assert_eq!(p.block_of(0), p.block_of(1));
        assert_ne!(p.block_of(1), p.block_of(2));
        assert_eq!(p.block_of(2), p.block_of(3));
        // Different data states never share a block.
        assert_ne!(p.block_of(0), p.block_of(4));
    }

    #[test]
    fn geometric_odd_dimension() {
        let g = GeometricCoarsening::new(vec![5], 0, 2);
        let parts = g.levels();
        // 5 -> 3 -> 2
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].block_count(), 3);
        // Last fine value 4 sits alone in block 2.
        assert_eq!(parts[0].block_of(4), 2);
    }

    #[test]
    fn schedule_continues_through_components() {
        // dims (data=4, counter=8, phase=16): phase to 4, then counter to
        // 2, then data to 1.
        let g = GeometricCoarsening::with_schedule(vec![4, 8, 16], vec![(2, 4), (1, 2), (0, 1)]);
        let dims = g.level_dims();
        assert_eq!(dims.first().unwrap(), &vec![4, 8, 16]);
        assert_eq!(dims.last().unwrap(), &vec![1, 2, 4]);
        // phase: 16->8->4 (2 levels), counter: 8->4->2 (2), data: 4->2->1 (2).
        assert_eq!(dims.len(), 7);
        let parts = g.levels();
        assert_eq!(parts.len(), 6);
        for w in parts.windows(2) {
            assert_eq!(w[0].block_count(), w[1].n());
        }
        assert_eq!(parts.last().unwrap().block_count(), 8);
    }

    #[test]
    fn partitions_chain_consistently() {
        // Each partition's block count equals the next partition's n.
        let g = GeometricCoarsening::new(vec![3, 16], 1, 2);
        let parts = g.levels();
        for w in parts.windows(2) {
            assert_eq!(w[0].block_count(), w[1].n());
        }
    }
}
