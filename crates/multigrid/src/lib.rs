//! Multi-level aggregation/disaggregation ("algebraic multigrid") solver
//! for stationary distributions of large Markov chains.
//!
//! This crate implements the paper's dedicated solver: "a specialized
//! multi-grid method which takes advantage of the underlying problem
//! structure and is capable of solving million state problems in less than
//! an hour". The method is the multi-level aggregation algorithm of Horton
//! & Leutenegger, built from three ingredients:
//!
//! 1. **Smoothing** — a few damped ("Gauss–") Jacobi or Gauss–Seidel sweeps
//!    on the current level's stationarity equations,
//! 2. **Aggregation (restriction)** — lump the chain with respect to the
//!    current iterate (weak lumping, [`stochcdr_markov::lumping`]) onto a
//!    coarser partition. The paper's coarsening "lumps the two states
//!    corresponding to consecutive discretized phase error values", which is
//!    [`GeometricCoarsening`]; [`PairwiseCoarsening`] is the structure-blind
//!    fallback,
//! 3. **Disaggregation (prolongation)** — distribute the coarse solution
//!    back over each aggregate proportionally to the fine iterate,
//!    multiplicatively correcting it.
//!
//! The coarsest level ("solved exactly with a direct method") uses GTH
//! elimination.
//!
//! The solver is split into a one-time **symbolic setup** and cheap
//! **numeric cycles**: [`MultigridSolver::prepare`] builds an
//! [`MgHierarchy`] (cached coarse sparsity patterns, scatter maps, and all
//! per-level workspaces), after which every cycle is an allocation-free
//! numeric refresh — see [`hierarchy`](MgHierarchy) for the invalidation
//! rules.
//!
//! # Example
//!
//! ```
//! use stochcdr_linalg::CooMatrix;
//! use stochcdr_markov::{StochasticMatrix, stationary::StationarySolver};
//! use stochcdr_multigrid::{MultigridSolver, PairwiseCoarsening};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Random walk on 64 states.
//! let n = 64;
//! let mut coo = CooMatrix::new(n, n);
//! for i in 0..n {
//!     let (up, down) = (0.4, 0.6);
//!     if i == 0 { coo.push(0, 0, down); } else { coo.push(i, i - 1, down); }
//!     if i == n - 1 { coo.push(i, i, up); } else { coo.push(i, i + 1, up); }
//! }
//! let p = StochasticMatrix::new(coo.to_csr())?;
//! let solver = MultigridSolver::builder(PairwiseCoarsening::until(8).levels(n))
//!     .build();
//! let eta = solver.solve(&p, None)?;
//! assert!(p.stationary_residual(&eta.distribution) < 1e-10);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod adaptive;
mod coarsen;
mod hierarchy;
mod smoother;
mod solver;

pub use adaptive::{StrengthCoarsening, MAX_AGGREGATE};
pub use coarsen::{GeometricCoarsening, PairwiseCoarsening};
pub use hierarchy::{MgHierarchy, MgPhases};
pub use smoother::Smoother;
pub use solver::{
    CycleKind, CycleSchedule, KrylovAccel, MultigridBuilder, MultigridSolver, MultigridStats,
    DEFAULT_KRYLOV_RESTART, ESCALATE_TO_F, ESCALATE_TO_W, MAX_KRYLOV_WINDOW, MAX_W_DEPTH,
};
