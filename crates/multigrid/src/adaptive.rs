//! Adaptive (strength-based) coarsening for chains without geometric
//! structure.
//!
//! The paper's coarsening exploits the CDR model's layout (pairing
//! adjacent phase bins). For arbitrary chains the multigrid literature it
//! cites (Buchholz's "adaptive aggregation/disaggregation") builds the
//! aggregates from the *matrix itself*: states that exchange probability
//! strongly should share an aggregate, because their stationary
//! probabilities equilibrate quickly relative to the rest of the chain.
//!
//! [`StrengthCoarsening`] implements greedy pairwise aggregation by
//! symmetric coupling strength — the Markov-chain analogue of pairwise
//! aggregation AMG.

use stochcdr_linalg::CsrMatrix;
use stochcdr_markov::lumping::{lump_with_plan, LumpPlan, LumpWorkspace, Partition};
use stochcdr_markov::StochasticMatrix;

/// Union-find root lookup with path halving — iterative, deterministic.
fn find(root: &mut [u32], mut i: u32) -> u32 {
    while root[i as usize] != i {
        let parent = root[i as usize];
        root[i as usize] = root[parent as usize];
        i = root[i as usize];
    }
    i
}

/// Largest aggregate size [`StrengthCoarsening::aggregates`] accepts.
pub const MAX_AGGREGATE: usize = 8;

/// Greedy strength-based aggregation coarsening.
///
/// At each level every state is matched with its most strongly coupled
/// unmatched neighbor (`strength(i, j) = p_ij + p_ji`); unmatched leftovers
/// become singletons. With [`aggregates`](Self::aggregates) above 2, a
/// second strength-threshold pass grows the pairs into variable-size
/// aggregates: a still-unaggregated state joins its strongest neighboring
/// aggregate whenever that coupling is at least `threshold` times the
/// state's strongest coupling overall and the aggregate has room. Levels
/// are generated until the size drops to `stop_at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrengthCoarsening {
    stop_at: usize,
    max_aggregate: usize,
    threshold: f64,
}

impl StrengthCoarsening {
    /// Coarsens until the level size is `<= stop_at`, with strict pairwise
    /// aggregation (the historical default).
    ///
    /// # Panics
    ///
    /// Panics if `stop_at == 0`.
    pub fn until(stop_at: usize) -> Self {
        assert!(stop_at > 0, "stop size must be positive");
        StrengthCoarsening {
            stop_at,
            max_aggregate: 2,
            threshold: 0.25,
        }
    }

    /// Allows aggregates of up to `max` states (default 2, i.e. strict
    /// pairs). Larger aggregates mean fewer, shallower levels — the lever
    /// that keeps million-state hierarchies short.
    ///
    /// # Panics
    ///
    /// Panics unless `max` is in `2..=8`.
    pub fn aggregates(mut self, max: usize) -> Self {
        assert!(
            (2..=MAX_AGGREGATE).contains(&max),
            "aggregate size bound must be in 2..={MAX_AGGREGATE}"
        );
        self.max_aggregate = max;
        self
    }

    /// Relative strength-of-connection threshold for the growth pass
    /// (default 0.25): a state only joins an aggregate through an edge at
    /// least this fraction of its strongest coupling, so weakly attached
    /// states stay out rather than polluting an aggregate.
    ///
    /// # Panics
    ///
    /// Panics unless `threshold` is in `(0, 1]`.
    pub fn threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "strength threshold must be in (0, 1]"
        );
        self.threshold = threshold;
        self
    }

    /// Builds one aggregation partition for the given transition matrix.
    ///
    /// Returns `None` when the chain is already at or below the stop size.
    pub fn coarsen_once(&self, p: &CsrMatrix) -> Option<Partition> {
        let n = p.rows();
        if n <= self.stop_at {
            return None;
        }
        // Symmetric strengths: collect (strength, i, j) for i < j.
        let mut edges: Vec<(f64, u32, u32)> = Vec::with_capacity(p.nnz());
        for (i, j, v) in p.iter() {
            match i.cmp(&j) {
                std::cmp::Ordering::Less => edges.push((v + p.get(j, i), i as u32, j as u32)),
                std::cmp::Ordering::Greater => {
                    // Only count (j, i) if (j -> i) has no reverse edge;
                    // otherwise the Less arm already recorded the pair.
                    if p.get(j, i) == 0.0 {
                        edges.push((v, j as u32, i as u32));
                    }
                }
                std::cmp::Ordering::Equal => {}
            }
        }
        edges.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));

        // Pass 1 — greedy pairwise matching in strength order, tracked as
        // a union-find forest rooted at the pair's smaller index.
        let mut root: Vec<u32> = (0..n as u32).collect();
        let mut size = vec![1u32; n];
        let mut matched = vec![false; n];
        for &(_, i, j) in &edges {
            if !matched[i as usize] && !matched[j as usize] {
                matched[i as usize] = true;
                matched[j as usize] = true;
                root[j as usize] = i;
                size[i as usize] = 2;
            }
        }

        // Pass 2 — strength-threshold growth: walk the same deterministic
        // strength order again and union aggregates across an edge when
        // the combined size fits the bound and the edge carries at least
        // `threshold` of the weaker endpoint's strongest coupling. This
        // grows pairs into variable-size aggregates (pair + singleton,
        // pair + pair, …) instead of leaving every level a strict halving.
        if self.max_aggregate > 2 {
            let mut smax = vec![0.0f64; n];
            for &(s, i, j) in &edges {
                if s > smax[i as usize] {
                    smax[i as usize] = s;
                }
                if s > smax[j as usize] {
                    smax[j as usize] = s;
                }
            }
            let cap = self.max_aggregate as u32;
            for &(s, i, j) in &edges {
                let ri = find(&mut root, i);
                let rj = find(&mut root, j);
                if ri == rj {
                    continue;
                }
                let combined = size[ri as usize] + size[rj as usize];
                if combined <= cap && s >= self.threshold * smax[i as usize].min(smax[j as usize])
                {
                    // Root at the smaller index so labels stay a pure
                    // function of the (deterministically ordered) edges.
                    let (keep, gone) = if ri < rj { (ri, rj) } else { (rj, ri) };
                    root[gone as usize] = keep;
                    size[keep as usize] = combined;
                }
            }
        }

        // Assign block labels in state order: aggregates share one label,
        // singletons get their own.
        let mut labels = vec![usize::MAX; n];
        let mut root_label = vec![usize::MAX; n];
        let mut next = 0usize;
        for i in 0..n {
            let r = find(&mut root, i as u32) as usize;
            if root_label[r] == usize::MAX {
                root_label[r] = next;
                next += 1;
            }
            labels[i] = root_label[r];
        }
        Some(Partition::from_labels(labels).expect("labels are contiguous by construction"))
    }

    /// Builds the full partition hierarchy for a chain, re-aggregating the
    /// (uniform-weight) coarse operator at each level.
    ///
    /// # Errors
    ///
    /// Propagates lumping failures (cannot occur for a valid chain, but
    /// surfaced rather than panicking).
    pub fn levels(&self, p: &StochasticMatrix) -> stochcdr_markov::Result<Vec<Partition>> {
        self.levels_with_plans(p).map(|(parts, _)| parts)
    }

    /// Like [`levels`](Self::levels), but also returns the symbolic
    /// lumping plan for each transfer. The strength analysis has to build
    /// every coarse operator anyway, so the plans come out as a by-product
    /// — callers hand them to
    /// [`MultigridBuilder::plans`](crate::MultigridBuilder::plans) and the
    /// solver skips its own symbolic pass.
    ///
    /// # Errors
    ///
    /// Same as [`levels`](Self::levels).
    pub fn levels_with_plans(
        &self,
        p: &StochasticMatrix,
    ) -> stochcdr_markov::Result<(Vec<Partition>, Vec<LumpPlan>)> {
        let mut parts = Vec::new();
        let mut plans = Vec::new();
        let mut current = p.clone();
        while let Some(part) = self.coarsen_once(current.matrix()) {
            // Aggregate with uniform weights to expose the next level's
            // coupling structure; the solver refreshes operators with real
            // weights at run time through the same plans.
            let plan = LumpPlan::build(&current, &part)?;
            let mut ws = LumpWorkspace::for_plan(&plan);
            let w = vec![1.0; current.n()];
            current = lump_with_plan(&current, &part, &w, &plan, &mut ws)?;
            parts.push(part);
            plans.push(plan);
        }
        Ok((parts, plans))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CycleKind, MultigridSolver};
    use stochcdr_linalg::{vecops, CooMatrix};
    use stochcdr_markov::stationary::{GthSolver, StationarySolver};

    /// Two tightly coupled pairs with weak cross coupling.
    fn paired_chain() -> StochasticMatrix {
        let eps = 1e-3;
        let mut coo = CooMatrix::new(4, 4);
        // Pair {0,1}: strong exchange.
        coo.push(0, 1, 0.9 - eps);
        coo.push(0, 0, 0.1);
        coo.push(0, 2, eps);
        coo.push(1, 0, 0.8);
        coo.push(1, 1, 0.2);
        // Pair {2,3}.
        coo.push(2, 3, 0.9 - eps);
        coo.push(2, 2, 0.1);
        coo.push(2, 0, eps);
        coo.push(3, 2, 0.8);
        coo.push(3, 3, 0.2);
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn pairs_strongly_coupled_states() {
        let p = paired_chain();
        let part = StrengthCoarsening::until(2)
            .coarsen_once(p.matrix())
            .unwrap();
        assert_eq!(part.block_count(), 2);
        assert_eq!(part.block_of(0), part.block_of(1));
        assert_eq!(part.block_of(2), part.block_of(3));
        assert_ne!(part.block_of(0), part.block_of(2));
    }

    #[test]
    fn respects_stop_size() {
        let p = paired_chain();
        assert!(StrengthCoarsening::until(4)
            .coarsen_once(p.matrix())
            .is_none());
        assert!(StrengthCoarsening::until(8).levels(&p).unwrap().is_empty());
    }

    #[test]
    fn hierarchy_chains_consistently() {
        // Ring of 32 states.
        let n = 32;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 0.55);
            coo.push(i, (i + n - 1) % n, 0.35);
            coo.push(i, i, 0.1);
        }
        let p = StochasticMatrix::new(coo.to_csr()).unwrap();
        let parts = StrengthCoarsening::until(4).levels(&p).unwrap();
        assert!(!parts.is_empty());
        assert_eq!(parts[0].n(), n);
        for w in parts.windows(2) {
            assert_eq!(w[0].block_count(), w[1].n());
        }
        assert!(parts.last().unwrap().block_count() <= 4);
    }

    #[test]
    fn plans_chain_and_injecting_them_is_bit_identical() {
        let n = 32;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 0.55);
            coo.push(i, (i + n - 1) % n, 0.35);
            coo.push(i, i, 0.1);
        }
        let p = StochasticMatrix::new(coo.to_csr()).unwrap();
        let (parts, plans) = StrengthCoarsening::until(4).levels_with_plans(&p).unwrap();
        assert_eq!(parts.len(), plans.len());
        assert_eq!(plans[0].fine_n(), n);
        for (part, plan) in parts.iter().zip(&plans) {
            assert_eq!(part.block_count(), plan.block_count());
        }
        let base = MultigridSolver::builder(parts.clone())
            .tol(1e-10)
            .build()
            .solve(&p, None)
            .unwrap();
        let injected = MultigridSolver::builder(parts)
            .plans(std::sync::Arc::new(plans))
            .tol(1e-10)
            .build()
            .solve(&p, None)
            .unwrap();
        assert_eq!(base.distribution, injected.distribution);
        assert_eq!(base.iterations(), injected.iterations());
    }

    #[test]
    fn variable_aggregates_shorten_the_hierarchy() {
        // Ring of 64 states: pairwise halves each level, size-8 aggregates
        // should cut roughly three levels per one.
        let n = 64;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 0.55);
            coo.push(i, (i + n - 1) % n, 0.35);
            coo.push(i, i, 0.1);
        }
        let p = StochasticMatrix::new(coo.to_csr()).unwrap();
        let pairs = StrengthCoarsening::until(4).levels(&p).unwrap();
        let wide = StrengthCoarsening::until(4)
            .aggregates(8)
            .levels(&p)
            .unwrap();
        assert!(
            wide.len() < pairs.len(),
            "size-8 aggregates built {} levels, pairs {}",
            wide.len(),
            pairs.len()
        );
        // Aggregates actually grow beyond pairs somewhere.
        let max_block = wide
            .iter()
            .flat_map(|part| {
                let mut sizes = vec![0usize; part.block_count()];
                for i in 0..part.n() {
                    sizes[part.block_of(i)] += 1;
                }
                sizes
            })
            .max()
            .unwrap();
        assert!(max_block > 2, "growth pass never exceeded pairs");
        assert!(max_block <= 8);
    }

    #[test]
    fn variable_aggregate_hierarchy_still_solves() {
        let n = 64;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 0.55);
            coo.push(i, (i + n - 1) % n, 0.35);
            coo.push(i, i, 0.1);
        }
        let p = StochasticMatrix::new(coo.to_csr()).unwrap();
        let parts = StrengthCoarsening::until(4)
            .aggregates(4)
            .levels(&p)
            .unwrap();
        let solver = MultigridSolver::builder(parts)
            .tol(1e-11)
            .max_cycles(500)
            .build();
        let mg = solver.solve(&p, None).unwrap();
        let reference = GthSolver::new().solve(&p, None).unwrap();
        assert!(vecops::dist1(&mg.distribution, &reference.distribution) < 1e-8);
    }

    #[test]
    fn multigrid_with_adaptive_hierarchy_solves() {
        // Unstructured chain: pseudo-random sparse stochastic matrix.
        let n = 64;
        let mut state = 0xDEADBEEFu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 997) as f64 / 997.0
        };
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let mut weights = [(0usize, 0.0f64); 4];
            for w in weights.iter_mut() {
                *w = ((rnd() * n as f64) as usize % n, rnd() + 0.05);
            }
            let total: f64 = weights.iter().map(|&(_, v)| v).sum();
            for &(j, v) in &weights {
                coo.push(i, j, v / total);
            }
            // Ensure connectivity via a weak ring.
            coo.push(i, (i + 1) % n, 1e-3);
        }
        // Renormalize rows.
        let m = coo.to_csr();
        let sums = m.row_sums();
        let factors: Vec<f64> = sums.iter().map(|s| 1.0 / s).collect();
        let p = StochasticMatrix::new(m.scale_rows(&factors)).unwrap();

        let parts = StrengthCoarsening::until(8).levels(&p).unwrap();
        let solver = MultigridSolver::builder(parts)
            .cycle(CycleKind::W)
            .tol(1e-11)
            .max_cycles(500)
            .build();
        let mg = solver.solve(&p, None).unwrap();
        let reference = GthSolver::new().solve(&p, None).unwrap();
        assert!(
            vecops::dist1(&mg.distribution, &reference.distribution) < 1e-8,
            "adaptive multigrid deviates"
        );
    }
}
