//! Smoothers used between grid transfers.
//!
//! Every sweep's hot product routes through the chain's cached transpose
//! (`StochasticMatrix::step_into` → `CsrMatrix::mul_right_into`), so
//! smoothing inherits the nnz-balanced `RowPartition` blocking and the
//! persistent `linalg::par` worker pool on levels large enough to clear
//! the parallel nnz gate; coarse levels stay serial by the same gate.

use stochcdr_markov::stationary::{GaussSeidelSolver, JacobiSolver};
use stochcdr_markov::{ImplicitStochastic, StochasticMatrix};

/// The relaxation applied before and after each coarse-grid correction.
///
/// The paper interleaves "simple Gauss–Jacobi iterations" with the lumping
/// and expanding steps; Gauss–Seidel is provided as the standard stronger
/// alternative.
#[derive(Debug, Clone, PartialEq)]
pub enum Smoother {
    /// Damped Jacobi with relaxation factor `ω ∈ (0, 1]`.
    Jacobi {
        /// Damping factor.
        omega: f64,
    },
    /// Forward Gauss–Seidel sweeps.
    GaussSeidel,
    /// Plain power steps `x ← x P` (the weakest but cheapest smoother).
    Power,
}

impl Smoother {
    /// Applies `sweeps` relaxation sweeps to `x` in place.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != p.n()` or (for Jacobi) `ω ∉ (0, 1]`.
    pub fn apply(&self, p: &StochasticMatrix, x: &mut [f64], sweeps: usize) {
        match self {
            Smoother::Jacobi { omega } => {
                let j = JacobiSolver::new(f64::MIN_POSITIVE, 1, *omega);
                for _ in 0..sweeps {
                    j.sweep_once(p, x);
                }
            }
            Smoother::GaussSeidel => {
                let g = GaussSeidelSolver::new(f64::MIN_POSITIVE, 1);
                for _ in 0..sweeps {
                    g.sweep_once(p, x);
                }
            }
            Smoother::Power => {
                let mut buf = vec![0.0; x.len()];
                for _ in 0..sweeps {
                    p.step_into(x, &mut buf);
                    x.copy_from_slice(&buf);
                    stochcdr_linalg::vecops::normalize_l1(x);
                }
            }
        }
    }

    /// Allocation-free variant of [`apply`](Self::apply) with caller-owned
    /// scratch: `diag` receives `p`'s main diagonal (Jacobi only) and
    /// `scratch` is a work vector, both of length `p.n()`. Same bits as
    /// `apply`; the cycle loop hoists both buffers into the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths disagree with `p.n()`.
    pub(crate) fn apply_ws(
        &self,
        p: &StochasticMatrix,
        x: &mut [f64],
        sweeps: usize,
        diag: &mut [f64],
        scratch: &mut [f64],
    ) {
        if sweeps == 0 {
            return;
        }
        match self {
            Smoother::Jacobi { omega } => {
                // The diagonal is constant across sweeps: hoist it once.
                p.matrix().diagonal_into(diag);
                let j = JacobiSolver::new(f64::MIN_POSITIVE, 1, *omega);
                for _ in 0..sweeps {
                    j.sweep_with_scratch(p, diag, x, scratch);
                }
            }
            Smoother::GaussSeidel => {
                let g = GaussSeidelSolver::new(f64::MIN_POSITIVE, 1);
                for _ in 0..sweeps {
                    g.sweep_once(p, x);
                }
            }
            Smoother::Power => {
                for _ in 0..sweeps {
                    p.step_into(x, scratch);
                    x.copy_from_slice(&scratch[..x.len()]);
                    stochcdr_linalg::vecops::normalize_l1(x);
                }
            }
        }
    }

    /// Implicit-path twin of [`apply_ws`](Self::apply_ws): smooths against
    /// a matrix-free [`ImplicitStochastic`] chain. `diag` must hold the
    /// chain's main diagonal (hoisted once at hierarchy build — the
    /// operator's values are fixed for the lifetime of the borrow, so the
    /// diagonal never changes) and `scratch` a work vector of length
    /// `imp.n()`. Produces the same bits as `apply_ws` on the materialized
    /// twin of the same operator, at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths disagree with `imp.n()`.
    pub(crate) fn apply_op_ws(
        &self,
        imp: &ImplicitStochastic<'_>,
        x: &mut [f64],
        sweeps: usize,
        diag: &[f64],
        scratch: &mut [f64],
    ) {
        if sweeps == 0 {
            return;
        }
        match self {
            Smoother::Jacobi { omega } => {
                let j = JacobiSolver::new(f64::MIN_POSITIVE, 1, *omega);
                for _ in 0..sweeps {
                    j.sweep_op_with_scratch(imp, diag, x, scratch);
                }
            }
            Smoother::GaussSeidel => {
                let pt = imp.transposed_view();
                for _ in 0..sweeps {
                    GaussSeidelSolver::sweep_transposed_op(&pt, x);
                }
            }
            Smoother::Power => {
                for _ in 0..sweeps {
                    imp.step_into(x, scratch);
                    x.copy_from_slice(&scratch[..x.len()]);
                    stochcdr_linalg::vecops::normalize_l1(x);
                }
            }
        }
    }
}

impl Default for Smoother {
    /// Damped Jacobi with `ω = 0.8` — the paper's Gauss–Jacobi smoother.
    fn default() -> Self {
        Smoother::Jacobi { omega: 0.8 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochcdr_linalg::{vecops, CooMatrix};

    fn chain() -> StochasticMatrix {
        let n = 16;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 0.6);
            coo.push(i, (i + n - 1) % n, 0.3);
            coo.push(i, i, 0.1);
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn all_smoothers_reduce_residual() {
        let p = chain();
        for s in [
            Smoother::Jacobi { omega: 0.8 },
            Smoother::GaussSeidel,
            Smoother::Power,
        ] {
            let mut x: Vec<f64> = (0..16).map(|i| (i + 1) as f64).collect();
            vecops::normalize_l1(&mut x);
            let before = p.stationary_residual(&x);
            s.apply(&p, &mut x, 10);
            let after = p.stationary_residual(&x);
            assert!(after < before, "{s:?}: {after} !< {before}");
            assert!((vecops::sum(&x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_ws_matches_apply_bitwise() {
        let p = chain();
        for s in [
            Smoother::Jacobi { omega: 0.8 },
            Smoother::GaussSeidel,
            Smoother::Power,
        ] {
            let mut a: Vec<f64> = (0..16).map(|i| (i + 1) as f64).collect();
            vecops::normalize_l1(&mut a);
            let mut b = a.clone();
            let mut diag = vec![0.0; 16];
            let mut scratch = vec![f64::NAN; 16];
            s.apply(&p, &mut a, 7);
            s.apply_ws(&p, &mut b, 7, &mut diag, &mut scratch);
            assert_eq!(a, b, "{s:?}");
        }
    }

    #[test]
    fn apply_op_ws_matches_apply_ws_bitwise() {
        // The implicit chain wraps the same raw CSR the materialized chain
        // validated; every smoother must produce identical bits.
        let n = 16;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 0.6);
            coo.push(i, (i + n - 1) % n, 0.3);
            coo.push(i, i, 0.1);
        }
        let raw = coo.to_csr();
        let p = StochasticMatrix::with_tolerance(raw.clone(), 1e-6).unwrap();
        let rawt = raw.transpose();
        let imp = ImplicitStochastic::with_tolerance(&raw, &rawt, 1e-6).unwrap();
        let mut diag = vec![0.0; n];
        stochcdr_linalg::TransitionOp::diagonal_into(&imp, &mut diag);
        for s in [
            Smoother::Jacobi { omega: 0.8 },
            Smoother::GaussSeidel,
            Smoother::Power,
        ] {
            let mut a: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
            vecops::normalize_l1(&mut a);
            let mut b = a.clone();
            let mut mdiag = vec![0.0; n];
            let mut sa = vec![f64::NAN; n];
            let mut sb = vec![f64::NAN; n];
            s.apply_ws(&p, &mut a, 5, &mut mdiag, &mut sa);
            s.apply_op_ws(&imp, &mut b, 5, &diag, &mut sb);
            assert_eq!(a, b, "{s:?}");
        }
    }

    #[test]
    fn zero_sweeps_is_identity() {
        let p = chain();
        let mut x = vecops::uniform(16);
        let before = x.clone();
        Smoother::default().apply(&p, &mut x, 0);
        assert_eq!(x, before);
    }
}
