//! The multi-level aggregation/disaggregation solver.
//!
//! Threading: the grid-transfer kernels (`lump_weighted_into` /
//! `lump_op_weighted_into`) fan out over the `LumpPlan`'s precomputed
//! gather-weight `RowPartition`, and every smoothing/residual product
//! rides the operator's own partition through `mul_right_into` — all on
//! the persistent `linalg::par` pool, with block fences that are a pure
//! function of the operator, never of the thread count.

use std::sync::Arc;
use std::time::Instant;

use stochcdr_linalg::{vecops, TransitionOp};
use stochcdr_markov::lumping::{
    disaggregate_scaled, lump_op_weighted_into, lump_weighted_into, LumpPlan, Partition,
};
use stochcdr_markov::stationary::{
    ConvergenceSummary, ConvergenceTrace, GthSolver, SolveReport, StationaryResult,
    StationarySolver,
};
use stochcdr_markov::{ImplicitStochastic, MarkovError, Result, StochasticMatrix};
use stochcdr_obs as obs;

use crate::hierarchy::{CoarseWs, MgHierarchy, MgLevel, MgPhases};
use crate::Smoother;

/// Static span names per level, so per-level trace lanes stay
/// allocation-free. Hierarchies deeper than this share the last name.
const LEVEL_SPANS: [&str; 12] = [
    "mg.level0",
    "mg.level1",
    "mg.level2",
    "mg.level3",
    "mg.level4",
    "mg.level5",
    "mg.level6",
    "mg.level7",
    "mg.level8",
    "mg.level9",
    "mg.level10",
    "mg.level.deep",
];

fn level_span(level: usize) -> &'static str {
    LEVEL_SPANS[level.min(LEVEL_SPANS.len() - 1)]
}

/// The finest level's chain backend. Coarse levels are always materialized
/// (`StochasticMatrix`); the fine grid is either materialized too, or a
/// matrix-free [`ImplicitStochastic`] wrapper around a product-form
/// operator whose joint TPM never exists in memory. All value-level
/// arithmetic is shared between the two arms, so a solve through `Op` is
/// bit-identical to one through `Mat` whenever the operator serves the
/// materialized chain's values.
#[derive(Clone, Copy)]
enum FineLevel<'a, 'b> {
    /// Materialized fine chain.
    Mat(&'a StochasticMatrix),
    /// Implicit (matrix-free) fine chain.
    Op(&'a ImplicitStochastic<'b>),
}

impl FineLevel<'_, '_> {
    fn n(&self) -> usize {
        match self {
            FineLevel::Mat(p) => p.n(),
            FineLevel::Op(imp) => imp.n(),
        }
    }
}

/// Recursion pattern of the multigrid cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleKind {
    /// One recursive visit per level (V-cycle).
    V,
    /// One full recursive visit followed by a V-sweep (F-cycle): level `ℓ`
    /// is visited `ℓ + 1` times per fine cycle — between V and W in
    /// coarse-level work.
    F,
    /// Two recursive visits per level (W-cycle) — more coarse-level work,
    /// more robust on stiff chains. Truncated below [`MAX_W_DEPTH`]: on
    /// deep hierarchies an exact W-cycle re-enters level `ℓ` `2^ℓ` times,
    /// and each visit re-lumps and re-smooths, so the coarse traversal
    /// grows exponentially with depth while the extra visits stop buying
    /// contraction. Levels deeper than the cap recurse singly.
    W,
}

/// Depth at which W-recursion stops branching: level `ℓ` is visited
/// `2^min(ℓ, MAX_W_DEPTH)` times per W-cycle. Hierarchies up to
/// `MAX_W_DEPTH + 1` coarse levels run the textbook W-cycle unchanged;
/// the deep (12–17 level) implicit Kronecker hierarchies keep at most 64
/// revisits per level, which bounds the per-cycle coarse work at a small
/// multiple of one fine apply instead of an exponential in the depth.
pub const MAX_W_DEPTH: usize = 6;

impl CycleKind {
    /// The cycle kinds each recursive visit below `level` runs: a
    /// V-cycle recurses once as V, an F-cycle recurses as F then sweeps
    /// back up with a V, a W-cycle recurses twice as W until the
    /// [`MAX_W_DEPTH`] truncation stops the branching.
    fn children(self, level: usize) -> [Option<CycleKind>; 2] {
        match self {
            CycleKind::V => [Some(CycleKind::V), None],
            CycleKind::F => [Some(CycleKind::F), Some(CycleKind::V)],
            CycleKind::W if level < MAX_W_DEPTH => [Some(CycleKind::W), Some(CycleKind::W)],
            CycleKind::W => [Some(CycleKind::W), None],
        }
    }

    /// Number of times a cycle of this kind started at the fine grid
    /// visits the level `depth` grids below it.
    fn visits(self, depth: usize) -> f64 {
        match self {
            CycleKind::V => 1.0,
            CycleKind::F => (depth + 1) as f64,
            CycleKind::W => (depth.min(MAX_W_DEPTH) as f64).exp2(),
        }
    }

    /// Escalation order used by the adaptive controller: V < F < W.
    fn rank(self) -> u8 {
        match self {
            CycleKind::V => 0,
            CycleKind::F => 1,
            CycleKind::W => 2,
        }
    }

    /// Short name used by CLI flags and cache keys.
    pub fn cli_name(self) -> &'static str {
        match self {
            CycleKind::V => "v",
            CycleKind::F => "f",
            CycleKind::W => "w",
        }
    }
}

/// Cycle-kind schedule for a whole solve: either one fixed kind per
/// cycle, or the deterministic escalation controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleSchedule {
    /// Every cycle uses the same kind.
    Fixed(CycleKind),
    /// Escalate V→F→W when the per-cycle reduction EWMA (the
    /// [`ConvergenceTrace`] everyone else sees) crosses
    /// [`ESCALATE_TO_F`] / [`ESCALATE_TO_W`]. A pure function of the
    /// residual history — never of timing — so the chosen kinds are
    /// bit-identical at any thread count. Escalation is monotone: the
    /// controller never steps back down within one solve.
    Adaptive,
}

/// Adaptive controller: escalate V→F once the reduction EWMA reaches
/// this value (a healthy cycle contracts well below it).
pub const ESCALATE_TO_F: f64 = 0.6;
/// Adaptive controller: escalate to W once the EWMA reaches this value.
pub const ESCALATE_TO_W: f64 = 0.85;
/// Reduction observations required before the controller may escalate
/// (the EWMA needs a few cycles to mean anything).
const ESCALATE_WARMUP: usize = 4;

impl CycleSchedule {
    /// Kind of the first cycle (the adaptive schedule starts at V).
    fn initial(self) -> CycleKind {
        match self {
            CycleSchedule::Fixed(kind) => kind,
            CycleSchedule::Adaptive => CycleKind::V,
        }
    }

    /// Parses a CLI spelling: `v`, `f`, `w`, or `adaptive`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "v" => Some(CycleSchedule::Fixed(CycleKind::V)),
            "f" => Some(CycleSchedule::Fixed(CycleKind::F)),
            "w" => Some(CycleSchedule::Fixed(CycleKind::W)),
            "adaptive" => Some(CycleSchedule::Adaptive),
            _ => None,
        }
    }

    /// The spelling [`parse`](Self::parse) accepts for this schedule.
    pub fn cli_name(self) -> &'static str {
        match self {
            CycleSchedule::Fixed(kind) => kind.cli_name(),
            CycleSchedule::Adaptive => "adaptive",
        }
    }

    /// Next kind the adaptive controller runs, given the kind of the
    /// previous cycle and the reduction history so far. Pure function of
    /// the residual history: thread-count invariant by construction.
    fn next_kind(self, current: CycleKind, convergence: &ConvergenceSummary) -> CycleKind {
        let CycleSchedule::Adaptive = self else {
            return current;
        };
        if convergence.reductions < ESCALATE_WARMUP {
            return current;
        }
        let Some(ewma) = convergence.ewma_reduction else {
            return current;
        };
        let target = if ewma >= ESCALATE_TO_W {
            CycleKind::W
        } else if ewma >= ESCALATE_TO_F {
            CycleKind::F
        } else {
            return current;
        };
        if target.rank() > current.rank() {
            target
        } else {
            current
        }
    }
}

/// Largest accepted Krylov window length (the small least-squares system
/// lives on the stack).
pub const MAX_KRYLOV_WINDOW: usize = 16;

/// Default Krylov window length: long enough to collapse a handful of
/// slow modes per window, short enough that the window storage stays a
/// small multiple of the iterate.
pub const DEFAULT_KRYLOV_RESTART: usize = 8;

/// Krylov acceleration of the multigrid fixed point: collect a window of
/// `restart` successive cycle iterates and their residual vectors, then
/// replace the iterate with the minimal-residual affine combination of
/// the window (GMRES on the multigrid-preconditioned fixed-point map,
/// computed by a deterministic serial Arnoldi/MGS factorization). The
/// candidate is accepted only when its true fine-grid residual improves
/// on the plain cycle's — a safeguard that makes acceleration strictly
/// non-harmful in exact arithmetic and deterministic in floating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KrylovAccel {
    /// Window length (iterates per extrapolation), in `2..=16`.
    pub restart: usize,
    /// When true, the window only starts filling after the
    /// [`ConvergenceTrace`] stall detector fires; when false it is armed
    /// from the first cycle.
    pub on_stall_only: bool,
}

impl KrylovAccel {
    /// Acceleration armed from the first cycle.
    pub fn always(restart: usize) -> Self {
        KrylovAccel {
            restart,
            on_stall_only: false,
        }
    }

    /// Acceleration armed by the stall detector.
    pub fn on_stall(restart: usize) -> Self {
        KrylovAccel {
            restart,
            on_stall_only: true,
        }
    }
}

impl Default for KrylovAccel {
    fn default() -> Self {
        KrylovAccel::always(DEFAULT_KRYLOV_RESTART)
    }
}

/// Builder for [`MultigridSolver`].
#[derive(Debug, Clone)]
pub struct MultigridBuilder {
    partitions: Vec<Partition>,
    pre_sweeps: usize,
    post_sweeps: usize,
    schedule: CycleSchedule,
    accel: Option<KrylovAccel>,
    smoother: Smoother,
    tol: f64,
    max_cycles: usize,
    coarse_direct_max: usize,
    fmg: bool,
    plans: Option<Arc<Vec<LumpPlan>>>,
}

impl MultigridBuilder {
    /// Pre-smoothing sweeps per level (default 1).
    pub fn pre_sweeps(mut self, n: usize) -> Self {
        self.pre_sweeps = n;
        self
    }

    /// Post-smoothing sweeps per level (default 2).
    pub fn post_sweeps(mut self, n: usize) -> Self {
        self.post_sweeps = n;
        self
    }

    /// Fixed cycle kind for every cycle (default V). Shorthand for
    /// [`schedule`](Self::schedule) with [`CycleSchedule::Fixed`].
    pub fn cycle(mut self, kind: CycleKind) -> Self {
        self.schedule = CycleSchedule::Fixed(kind);
        self
    }

    /// Cycle-kind schedule (default `Fixed(V)`): a fixed kind, or the
    /// deterministic V→F→W escalation controller.
    pub fn schedule(mut self, schedule: CycleSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Enables Krylov acceleration of the cycle fixed point
    /// (default off).
    ///
    /// # Panics
    ///
    /// Panics unless `accel.restart` is in `2..=16`.
    pub fn accel(mut self, accel: KrylovAccel) -> Self {
        assert!(
            (2..=MAX_KRYLOV_WINDOW).contains(&accel.restart),
            "Krylov window length must be in 2..={MAX_KRYLOV_WINDOW}"
        );
        self.accel = Some(accel);
        self
    }

    /// Smoother (default damped Jacobi, ω = 0.8).
    pub fn smoother(mut self, s: Smoother) -> Self {
        self.smoother = s;
        self
    }

    /// Residual tolerance `||ηP − η||₁` (default 1e-12).
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0`.
    pub fn tol(mut self, tol: f64) -> Self {
        assert!(tol > 0.0, "tolerance must be positive");
        self.tol = tol;
        self
    }

    /// Cycle budget (default 200).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn max_cycles(mut self, n: usize) -> Self {
        assert!(n > 0, "cycle budget must be positive");
        self.max_cycles = n;
        self
    }

    /// Largest coarsest-level size accepted for the direct (GTH) solve
    /// (default 4096).
    pub fn coarse_direct_max(mut self, n: usize) -> Self {
        self.coarse_direct_max = n;
        self
    }

    /// Enables full-multigrid (FMG) initialization (default off): before
    /// cycling, the chain is recursively aggregated to the coarsest level
    /// with uniform weights, solved there directly, and the solution
    /// prolonged back up — a coarse-grid first guess that usually saves
    /// several fine-level cycles.
    pub fn fmg(mut self, enable: bool) -> Self {
        self.fmg = enable;
        self
    }

    /// Injects precomputed symbolic lumping plans (default: none; the
    /// solver runs the symbolic analysis itself during
    /// [`MultigridSolver::prepare`]). Plans are pure functions of the fine
    /// sparsity pattern and the partition sequence, so sweep drivers cache
    /// and share them across solves whose patterns match; a mismatched
    /// stack is rejected by `prepare`, never silently used.
    pub fn plans(mut self, plans: Arc<Vec<LumpPlan>>) -> Self {
        self.plans = Some(plans);
        self
    }

    /// Finalizes the solver.
    pub fn build(self) -> MultigridSolver {
        MultigridSolver {
            partitions: self.partitions,
            pre_sweeps: self.pre_sweeps,
            post_sweeps: self.post_sweeps,
            schedule: self.schedule,
            accel: self.accel,
            smoother: self.smoother,
            tol: self.tol,
            max_cycles: self.max_cycles,
            coarse_direct_max: self.coarse_direct_max,
            fmg: self.fmg,
            plans: self.plans,
        }
    }
}

/// Per-solve diagnostics collected by
/// [`MultigridSolver::solve_with_stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultigridStats {
    /// L1 residual after each cycle.
    pub residual_history: Vec<f64>,
    /// Number of levels (including the fine grid).
    pub levels: usize,
    /// State count at each level, fine first.
    pub level_sizes: Vec<usize>,
    /// Wall-clock seconds per phase (setup, smoothing, aggregation,
    /// disaggregation, coarse solves, residual checks). Advisory: the
    /// arithmetic is deterministic, the timings are not.
    pub phases: MgPhases,
    /// Condensed convergence trajectory: per-cycle reduction-factor EWMA
    /// and the stall detector's verdict. A pure function of
    /// [`MultigridStats::residual_history`], so bit-identical across
    /// thread counts.
    pub convergence: ConvergenceSummary,
    /// Total fine-grid work in units of one V-cycle: each cycle costs
    /// `Σ_ℓ visits(kind, ℓ)·w_ℓ / Σ_ℓ w_ℓ` V-cycle equivalents, where
    /// `w_ℓ` is the level's apply cost in multiply-adds (its nnz for
    /// materialized levels; [`TransitionOp::apply_cost`] for an implicit
    /// fine grid, whose compact nnz badly understates the real work), and
    /// every extra fine-grid residual evaluation the Krylov safeguard
    /// performs adds `w_0 / Σ_ℓ w_ℓ`. A deterministic cost metric: a
    /// pure function of the hierarchy pattern and the cycle/extrapolation
    /// decisions, never of timing. Equals the cycle count exactly for an
    /// unaccelerated fixed V schedule.
    pub cycle_equivalents: f64,
    /// Kind of the last cycle run (differs from the first only under
    /// [`CycleSchedule::Adaptive`]).
    pub final_cycle: CycleKind,
    /// Krylov extrapolation windows completed.
    pub krylov_windows: u64,
    /// Windows whose candidate beat the plain cycle and was accepted.
    pub krylov_accepts: u64,
}

/// Multi-level aggregation/disaggregation stationary solver.
///
/// One cycle at level `ℓ`:
///
/// 1. pre-smooth the iterate `x` on the level-`ℓ` chain,
/// 2. aggregate: build the weighted-lumped coarse chain using `x` as the
///    lumping weights (weak lumping), restrict `x` by block sums,
/// 3. recurse (or solve the coarsest level directly with GTH),
/// 4. disaggregate: distribute the coarse solution over each block
///    proportionally to the fine iterate (multiplicative correction),
/// 5. post-smooth.
///
/// The coarse chain is rebuilt *every cycle* from the current iterate —
/// the scheme is a fixed-point (nonlinear) multigrid whose exact solution
/// is a fixed point of the aggregation/disaggregation pair.
#[derive(Debug, Clone)]
pub struct MultigridSolver {
    partitions: Vec<Partition>,
    pre_sweeps: usize,
    post_sweeps: usize,
    schedule: CycleSchedule,
    accel: Option<KrylovAccel>,
    smoother: Smoother,
    tol: f64,
    max_cycles: usize,
    coarse_direct_max: usize,
    fmg: bool,
    plans: Option<Arc<Vec<LumpPlan>>>,
}

impl MultigridSolver {
    /// Starts building a solver from a fine-to-coarse partition sequence
    /// (e.g. from [`crate::GeometricCoarsening::levels`]).
    ///
    /// # Panics
    ///
    /// Panics if consecutive partitions do not chain (`partitions[k]`'s
    /// block count must equal `partitions[k+1]`'s state count).
    pub fn builder(partitions: Vec<Partition>) -> MultigridBuilder {
        for w in partitions.windows(2) {
            assert_eq!(
                w[0].block_count(),
                w[1].n(),
                "partition sequence does not chain"
            );
        }
        MultigridBuilder {
            partitions,
            pre_sweeps: 1,
            post_sweeps: 2,
            schedule: CycleSchedule::Fixed(CycleKind::V),
            accel: None,
            smoother: Smoother::default(),
            tol: 1e-12,
            max_cycles: 200,
            coarse_direct_max: 4096,
            fmg: false,
            plans: None,
        }
    }

    /// Number of levels including the fine grid.
    pub fn levels(&self) -> usize {
        self.partitions.len() + 1
    }

    /// Solves and returns per-cycle diagnostics alongside the result.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StationarySolver::solve`].
    pub fn solve_with_stats(
        &self,
        p: &StochasticMatrix,
        init: Option<&[f64]>,
    ) -> Result<(StationaryResult, MultigridStats)> {
        let mut h = self.prepare(p)?;
        self.solve_prepared(p, &mut h, init)
    }

    /// One-time symbolic + storage setup for `p`: validates the partition
    /// sequence, runs (or adopts injected) symbolic lumping plans, and
    /// allocates every buffer the cycle loop needs. The returned hierarchy
    /// is valid for any chain sharing `p`'s sparsity pattern — value
    /// changes never require re-preparation.
    ///
    /// Instrumented as the `mg.setup` span.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidArgument`] when the finest partition
    /// does not cover `p`, when the coarsest level exceeds the
    /// direct-solve cap, or when injected plans do not match.
    pub fn prepare(&self, p: &StochasticMatrix) -> Result<MgHierarchy> {
        if let Some(part) = self.partitions.first() {
            if part.n() != p.n() {
                return Err(MarkovError::InvalidArgument(format!(
                    "finest partition covers {} states, chain has {}",
                    part.n(),
                    p.n()
                )));
            }
        }
        let coarsest = self.partitions.last().map_or(p.n(), Partition::block_count);
        if coarsest > self.coarse_direct_max {
            return Err(MarkovError::InvalidArgument(format!(
                "coarsest level has {coarsest} states, exceeding the direct-solve cap {}; \
                 add more coarsening levels",
                self.coarse_direct_max
            )));
        }
        let t0 = Instant::now();
        let _span = obs::span("mg.setup");
        let plans = match &self.plans {
            Some(pl) => Arc::clone(pl),
            None => Arc::new(LumpPlan::build_stack(p, &self.partitions)?),
        };
        let mut h = MgHierarchy::build(p, &self.partitions, plans)?;
        h.phases.setup_secs = t0.elapsed().as_secs_f64();
        Ok(h)
    }

    /// Implicit-path twin of [`prepare`](Self::prepare): one-time setup
    /// for a matrix-free fine grid. The finest symbolic plan is built by
    /// traversing the operator's rows ([`LumpPlan::from_op`]); only the
    /// coarse levels are materialized. Injected plans
    /// ([`MultigridBuilder::plans`]) must have an operator-built finest
    /// plan.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidArgument`] when the partition
    /// sequence is empty (the coarsest direct solve needs a materialized
    /// chain), does not cover the operator, or exceeds the direct-solve
    /// cap; plan mismatches are rejected as in `prepare`.
    pub fn prepare_op(&self, imp: &ImplicitStochastic<'_>) -> Result<MgHierarchy> {
        if let Some(part) = self.partitions.first() {
            if part.n() != imp.n() {
                return Err(MarkovError::InvalidArgument(format!(
                    "finest partition covers {} states, chain has {}",
                    part.n(),
                    imp.n()
                )));
            }
        }
        let coarsest = self
            .partitions
            .last()
            .map_or(imp.n(), Partition::block_count);
        if coarsest > self.coarse_direct_max {
            return Err(MarkovError::InvalidArgument(format!(
                "coarsest level has {coarsest} states, exceeding the direct-solve cap {}; \
                 add more coarsening levels",
                self.coarse_direct_max
            )));
        }
        let t0 = Instant::now();
        let _span = obs::span("mg.setup");
        let mut h = MgHierarchy::build_op(imp, &self.partitions, self.plans.clone())?;
        h.phases.setup_secs = t0.elapsed().as_secs_f64();
        Ok(h)
    }

    /// Runs one multigrid cycle against a prepared hierarchy and returns
    /// the L1 stationarity residual of the updated iterate.
    ///
    /// This is the allocation-free hot path: after [`prepare`](Self::prepare),
    /// repeated calls perform no heap allocations (instrumentation off,
    /// single worker thread) and produce bits identical to the original
    /// rebuild-everything cycle at any thread count.
    ///
    /// Callers driving the cycle loop themselves can feed the returned
    /// residuals to a [`ConvergenceTrace`] for reduction-factor EWMA and
    /// stall detection — [`solve_prepared`](Self::solve_prepared) does
    /// exactly that and reports the summary on [`MultigridStats`].
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidArgument`] if `h` was prepared for a
    /// different pattern, or propagates coarse-solve failures.
    pub fn cycle(&self, p: &StochasticMatrix, h: &mut MgHierarchy, x: &mut [f64]) -> Result<f64> {
        self.cycle_with(self.schedule.initial(), p, h, x)
    }

    /// [`cycle`](Self::cycle) with an explicit cycle kind, overriding the
    /// schedule for this one cycle. The adaptive solve loop drives this
    /// directly; it shares the workspace-reuse guarantees of `cycle`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`cycle`](Self::cycle).
    pub fn cycle_with(
        &self,
        kind: CycleKind,
        p: &StochasticMatrix,
        h: &mut MgHierarchy,
        x: &mut [f64],
    ) -> Result<f64> {
        if !h.matches(p) {
            return Err(MarkovError::InvalidArgument(
                "hierarchy was prepared for a different chain".into(),
            ));
        }
        let MgHierarchy {
            plans,
            levels,
            gth,
            resid,
            phases,
            ..
        } = h;
        self.run_cycle(FineLevel::Mat(p), kind, 0, plans, levels, gth, phases, x)?;
        let t0 = Instant::now();
        let res = p.stationary_residual_with(x, resid);
        phases.residual_secs += t0.elapsed().as_secs_f64();
        Ok(res)
    }

    /// Implicit-path twin of [`cycle`](Self::cycle): runs one multigrid
    /// cycle with a matrix-free fine grid. The fine-level aggregation
    /// re-traverses the operator's rows (no materialized storage), fine
    /// smoothing runs on the operator's product kernels, and the residual
    /// is evaluated matrix-free; everything below level 0 is the exact
    /// materialized cycle. Allocation-free after
    /// [`prepare_op`](Self::prepare_op), like the materialized path.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidArgument`] if `h` was not prepared
    /// for this operator's shape, or propagates coarse-solve failures.
    pub fn cycle_op(
        &self,
        imp: &ImplicitStochastic<'_>,
        h: &mut MgHierarchy,
        x: &mut [f64],
    ) -> Result<f64> {
        self.cycle_op_with(self.schedule.initial(), imp, h, x)
    }

    /// [`cycle_op`](Self::cycle_op) with an explicit cycle kind — the
    /// implicit twin of [`cycle_with`](Self::cycle_with).
    ///
    /// # Errors
    ///
    /// Same conditions as [`cycle_op`](Self::cycle_op).
    pub fn cycle_op_with(
        &self,
        kind: CycleKind,
        imp: &ImplicitStochastic<'_>,
        h: &mut MgHierarchy,
        x: &mut [f64],
    ) -> Result<f64> {
        if !h.matches_op(imp) {
            return Err(MarkovError::InvalidArgument(
                "hierarchy was prepared for a different chain".into(),
            ));
        }
        let MgHierarchy {
            plans,
            levels,
            gth,
            resid,
            phases,
            ..
        } = h;
        self.run_cycle(FineLevel::Op(imp), kind, 0, plans, levels, gth, phases, x)?;
        let t0 = Instant::now();
        let res = imp.stationary_residual_with(x, resid);
        phases.residual_secs += t0.elapsed().as_secs_f64();
        Ok(res)
    }

    /// Cycles a prepared hierarchy to convergence. Same contract as
    /// [`solve_with_stats`](Self::solve_with_stats), minus the setup work:
    /// callers that solve many chains with one pattern (parameter sweeps)
    /// prepare once and reuse `h`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StationarySolver::solve`].
    pub fn solve_prepared(
        &self,
        p: &StochasticMatrix,
        h: &mut MgHierarchy,
        init: Option<&[f64]>,
    ) -> Result<(StationaryResult, MultigridStats)> {
        if !h.matches(p) {
            return Err(MarkovError::InvalidArgument(
                "hierarchy was prepared for a different chain".into(),
            ));
        }
        let x = match init {
            None if self.fmg => self.fmg_initial(p, h)?,
            None => vecops::uniform(p.n()),
            Some(v) => checked_init(p.n(), v)?,
        };
        self.solve_loop(FineLevel::Mat(p), h, x)
    }

    /// Implicit-path twin of [`solve_prepared`](Self::solve_prepared):
    /// cycles a hierarchy prepared by [`prepare_op`](Self::prepare_op) to
    /// convergence against a matrix-free fine grid. When the operator
    /// serves the same values a materialized chain would, the returned
    /// distribution, cycle count and residuals are bit-identical to the
    /// materialized solve, at any thread count.
    ///
    /// FMG initialization is not available on this path (it smooths on
    /// every level's chain, including the fine one, with allocation);
    /// pass an explicit `init` or start uniform.
    ///
    /// # Errors
    ///
    /// Same conditions as [`solve_prepared`](Self::solve_prepared), plus
    /// [`MarkovError::InvalidArgument`] when FMG is enabled.
    pub fn solve_op_prepared(
        &self,
        imp: &ImplicitStochastic<'_>,
        h: &mut MgHierarchy,
        init: Option<&[f64]>,
    ) -> Result<(StationaryResult, MultigridStats)> {
        if !h.matches_op(imp) {
            return Err(MarkovError::InvalidArgument(
                "hierarchy was prepared for a different chain".into(),
            ));
        }
        let x = match init {
            None if self.fmg => {
                return Err(MarkovError::InvalidArgument(
                    "FMG initialization is not available on the implicit path".into(),
                ));
            }
            None => vecops::uniform(imp.n()),
            Some(v) => checked_init(imp.n(), v)?,
        };
        self.solve_loop(FineLevel::Op(imp), h, x)
    }

    /// Prepares and solves against a matrix-free fine grid in one call —
    /// the implicit twin of [`solve_with_stats`](Self::solve_with_stats).
    ///
    /// # Errors
    ///
    /// Same conditions as [`prepare_op`](Self::prepare_op) and
    /// [`solve_op_prepared`](Self::solve_op_prepared).
    pub fn solve_op_with_stats(
        &self,
        imp: &ImplicitStochastic<'_>,
        init: Option<&[f64]>,
    ) -> Result<(StationaryResult, MultigridStats)> {
        let mut h = self.prepare_op(imp)?;
        self.solve_op_prepared(imp, &mut h, init)
    }

    /// The shared cycle loop: identical control flow for both fine-grid
    /// backends, so the materialized path's bits are untouched by the
    /// implicit path's existence.
    fn solve_loop(
        &self,
        fine: FineLevel<'_, '_>,
        h: &mut MgHierarchy,
        mut x: Vec<f64>,
    ) -> Result<(StationaryResult, MultigridStats)> {
        let level_sizes = h.level_sizes();

        let _solve_span = obs::span("multigrid.solve");
        let coarsest_size = *level_sizes.last().expect("non-empty");
        obs::event(
            "multigrid.hierarchy",
            &[
                ("levels", self.levels().into()),
                ("fine_states", fine.n().into()),
                ("coarsest_states", coarsest_size.into()),
                (
                    "coarsening_ratio",
                    (fine.n() as f64 / coarsest_size.max(1) as f64).into(),
                ),
            ],
        );

        let mut history = Vec::new();
        // Multigrid stalls much faster than a slowly-grinding power
        // iteration would: a healthy cycle contracts by ~0.1, so even a
        // 0.9 reduction sustained over 5 cycles means the coarse
        // correction has stopped helping.
        let mut trace = ConvergenceTrace::new("multigrid.stall").with_stall(0.9, 5);
        // Live progress (default off): interval-throttled solve.progress
        // heartbeats with an ETA projected from the EWMA contraction.
        let heartbeat = obs::Heartbeat::new("multigrid");

        // Deterministic cost accounting: per-level logical work (nnz) and
        // the resulting V-cycle-equivalent price of each cycle kind. The
        // coarse patterns are fixed by the plans, so these are constants
        // of the hierarchy.
        let mut level_work = Vec::with_capacity(h.levels.len() + 1);
        level_work.push(h.fine_work as f64);
        for lvl in &h.levels {
            level_work.push(lvl.coarse.matrix().nnz() as f64);
        }
        let v_cost: f64 = level_work.iter().sum();
        let kind_cost = |kind: CycleKind| -> f64 {
            level_work
                .iter()
                .enumerate()
                .map(|(depth, w)| kind.visits(depth) * w)
                .sum::<f64>()
                / v_cost
        };
        let fine_apply_cost = level_work[0] / v_cost;
        let mut cycle_equivalents = 0.0;

        let mut kind = self.schedule.initial();
        let mut krylov = match self.accel {
            Some(a) if !a.on_stall_only => Some(KrylovWindow::new(fine.n(), a.restart)),
            _ => None,
        };
        let mut krylov_windows = 0u64;
        let mut krylov_accepts = 0u64;

        for cycle in 1..=self.max_cycles {
            let next = self.schedule.next_kind(kind, &trace.summary());
            if next != kind {
                obs::event(
                    "multigrid.cycle_type",
                    &[
                        ("cycle", cycle.into()),
                        ("from", kind.cli_name().into()),
                        ("to", next.cli_name().into()),
                    ],
                );
                kind = next;
            }
            let cycle_t0 = obs::enabled().then(Instant::now);
            let cycle_span = obs::span("cycle");
            let mut res = match fine {
                FineLevel::Mat(p) => self.cycle_with(kind, p, h, &mut x)?,
                FineLevel::Op(imp) => self.cycle_op_with(kind, imp, h, &mut x)?,
            };
            drop(cycle_span);
            cycle_equivalents += kind_cost(kind);
            if let Some(w) = krylov.as_mut() {
                // `h.resid` holds xP from the residual evaluation above,
                // so the residual *vector* of the cycle's iterate is free.
                w.push(&x, &h.resid);
                if w.full() {
                    krylov_windows += 1;
                    obs::counter("solver.krylov.windows", 1);
                    let _accel_span = obs::span("krylov.extrapolate");
                    if w.extrapolate() {
                        // Safeguard: one true fine-grid residual for the
                        // candidate (priced like any other fine apply).
                        let res_y = match fine {
                            FineLevel::Mat(p) => p.stationary_residual_with(&w.y, &mut h.resid),
                            FineLevel::Op(imp) => imp.stationary_residual_with(&w.y, &mut h.resid),
                        };
                        cycle_equivalents += fine_apply_cost;
                        if res_y < res {
                            krylov_accepts += 1;
                            obs::counter("solver.krylov.accepts", 1);
                            obs::histogram("solver.krylov.gain", res / res_y.max(f64::MIN_POSITIVE));
                            x.copy_from_slice(&w.y);
                            res = res_y;
                        } else {
                            obs::counter("solver.krylov.rejects", 1);
                        }
                    }
                    w.clear();
                }
            }
            trace.observe(res);
            if krylov.is_none() && trace.stalled() {
                if let Some(a) = self.accel {
                    // Stall-triggered arming: the window starts filling
                    // from the next cycle on.
                    obs::event(
                        "solver.krylov.armed",
                        &[("cycle", cycle.into()), ("restart", a.restart.into())],
                    );
                    krylov = Some(KrylovWindow::new(fine.n(), a.restart));
                }
            }
            if heartbeat.active() {
                heartbeat.tick_solve(cycle as u64, res, trace.summary().ewma_reduction, self.tol);
            }
            if let Some(t0) = cycle_t0 {
                obs::histogram("multigrid.cycle.ns", t0.elapsed().as_nanos() as f64);
                // Per-cycle contraction factor: the distribution the
                // convergence claim rests on, not just its last value.
                if let Some(&prev) = history.last() {
                    if prev > 0.0 {
                        obs::histogram("multigrid.residual_reduction", res / prev);
                    }
                }
            }
            history.push(res);
            obs::event(
                "multigrid.cycle",
                &[("cycle", cycle.into()), ("residual", res.into())],
            );
            if res <= self.tol {
                vecops::clamp_roundoff(&mut x, 1e-12);
                // Clamping perturbs the iterate, so the pre-clamp residual
                // no longer describes the distribution actually returned:
                // recompute it and keep history's last entry in sync.
                let final_res = match fine {
                    FineLevel::Mat(p) => p.stationary_residual_with(&x, &mut h.resid),
                    FineLevel::Op(imp) => imp.stationary_residual_with(&x, &mut h.resid),
                };
                *history.last_mut().expect("pushed above") = final_res;
                obs::event(
                    "multigrid.converged",
                    &[
                        ("cycles", cycle.into()),
                        ("residual", final_res.into()),
                        ("cycle_equivalents", cycle_equivalents.into()),
                    ],
                );
                let convergence = trace.summary();
                if obs::enabled() {
                    if let Some(ewma) = convergence.ewma_reduction {
                        obs::gauge("multigrid.reduction_ewma", ewma);
                    }
                }
                let result = StationaryResult {
                    distribution: x,
                    report: SolveReport {
                        iterations: cycle,
                        residual: final_res,
                        residual_history: history.clone(),
                        convergence: convergence.clone(),
                    },
                };
                let stats = MultigridStats {
                    residual_history: history,
                    levels: self.levels(),
                    level_sizes,
                    phases: h.phases,
                    convergence,
                    cycle_equivalents,
                    final_cycle: kind,
                    krylov_windows,
                    krylov_accepts,
                };
                return Ok((result, stats));
            }
        }
        Err(MarkovError::NotConverged {
            iterations: self.max_cycles,
            residual: *history.last().unwrap_or(&f64::NAN),
        })
    }

    /// Full-multigrid first guess over the prepared hierarchy: `prepare`
    /// refreshed every coarse chain with uniform weights (exactly the
    /// chains the from-scratch FMG built), so this just solves the
    /// coarsest chain and prolongs back up with the cached uniform shares,
    /// smoothing at each level. One-time initialization: allocation here
    /// is fine.
    fn fmg_initial(&self, p: &StochasticMatrix, h: &mut MgHierarchy) -> Result<Vec<f64>> {
        // Re-refresh every level with uniform weights: a freshly prepared
        // hierarchy already is (this is a bit-identical no-op there), but a
        // reused one holds iterate-weighted chains from previous cycles.
        for k in 0..h.levels.len() {
            let (done, rest) = h.levels.split_at_mut(k);
            let lvl = &mut rest[0];
            let fine = if k == 0 { p } else { &done[k - 1].coarse };
            let ones = vec![1.0; fine.n()];
            lump_weighted_into(
                fine,
                &self.partitions[k],
                &ones,
                &h.plans[k],
                &mut lvl.ws,
                &mut lvl.coarse,
            )?;
        }
        let MgHierarchy { levels, gth, .. } = h;
        let coarsest = levels.last().map_or(p, |l| &l.coarse);
        let mut x = vecops::uniform(coarsest.n());
        self.solve_coarsest_ws(coarsest, gth, &mut x)?;
        // Prolong upward with uniform in-block weights, smoothing as we go.
        for (level, part) in self.partitions.iter().enumerate().rev() {
            let mut xf = vec![0.0; part.n()];
            disaggregate_scaled(part, &x, levels[level].ws.wscale(), &mut xf);
            vecops::normalize_l1(&mut xf);
            let chain = if level == 0 {
                p
            } else {
                &levels[level - 1].coarse
            };
            self.smoother.apply(chain, &mut xf, self.post_sweeps.max(1));
            x = xf;
        }
        Ok(x)
    }

    /// Smoothing sweeps with per-level accounting: a `smooth` span, the
    /// level's sweep counter, and a per-level sweep-time histogram. The
    /// owned names only materialize when instrumentation is enabled.
    #[allow(clippy::too_many_arguments)]
    fn smooth_ws(
        &self,
        chain: &StochasticMatrix,
        x: &mut [f64],
        sweeps: usize,
        level: usize,
        diag: &mut [f64],
        scratch: &mut [f64],
        ph: &mut MgPhases,
    ) {
        let t0 = Instant::now();
        if !obs::enabled() {
            self.smoother.apply_ws(chain, x, sweeps, diag, scratch);
            ph.smooth_secs += t0.elapsed().as_secs_f64();
            return;
        }
        {
            let _span = obs::span("smooth");
            self.smoother.apply_ws(chain, x, sweeps, diag, scratch);
        }
        let ns = t0.elapsed().as_nanos() as f64;
        ph.smooth_secs += ns * 1e-9;
        obs::counter(
            &format!("multigrid.smooth_sweeps.level{level}"),
            sweeps as u64,
        );
        obs::histogram(&format!("multigrid.smooth.ns.level{level}"), ns);
    }

    /// Implicit twin of [`smooth_ws`](Self::smooth_ws): identical
    /// accounting, smoothing against the matrix-free fine chain. `diag` is
    /// read-only — the operator's diagonal was hoisted once at hierarchy
    /// build (recomputing it from a Kronecker operator allocates).
    #[allow(clippy::too_many_arguments)]
    fn smooth_op_ws(
        &self,
        imp: &ImplicitStochastic<'_>,
        x: &mut [f64],
        sweeps: usize,
        level: usize,
        diag: &[f64],
        scratch: &mut [f64],
        ph: &mut MgPhases,
    ) {
        let t0 = Instant::now();
        if !obs::enabled() {
            self.smoother.apply_op_ws(imp, x, sweeps, diag, scratch);
            ph.smooth_secs += t0.elapsed().as_secs_f64();
            return;
        }
        {
            let _span = obs::span("smooth");
            self.smoother.apply_op_ws(imp, x, sweeps, diag, scratch);
        }
        let ns = t0.elapsed().as_nanos() as f64;
        ph.smooth_secs += ns * 1e-9;
        obs::counter(
            &format!("multigrid.smooth_sweeps.level{level}"),
            sweeps as u64,
        );
        obs::histogram(&format!("multigrid.smooth.ns.level{level}"), ns);
    }

    /// One multigrid cycle at `level`, updating `x` in place. Numeric
    /// only: the coarse chain's values are refreshed through the cached
    /// plan, the restriction is the block-weight vector the refresh
    /// already computed, and the prolongation reuses its per-state shares.
    #[allow(clippy::too_many_arguments)]
    fn run_cycle(
        &self,
        chain: FineLevel<'_, '_>,
        kind: CycleKind,
        level: usize,
        plans: &[LumpPlan],
        levels: &mut [MgLevel],
        cw: &mut CoarseWs,
        ph: &mut MgPhases,
        x: &mut [f64],
    ) -> Result<()> {
        let _level_span = obs::span(level_span(level));
        let Some((lvl, rest)) = levels.split_first_mut() else {
            let FineLevel::Mat(chain) = chain else {
                // `prepare_op` rejects empty partition sequences, so the
                // implicit fine grid never reaches the coarsest arm.
                return Err(MarkovError::InvalidArgument(
                    "implicit fine grid cannot be the coarsest level".into(),
                ));
            };
            let t0 = Instant::now();
            let _span = obs::span("coarse_solve");
            let r = self.solve_coarsest_ws(chain, cw, x);
            ph.coarse_solve_secs += t0.elapsed().as_secs_f64();
            return r;
        };
        match chain {
            FineLevel::Mat(p) => {
                self.smooth_ws(p, x, self.pre_sweeps, level, &mut lvl.diag, &mut lvl.sm, ph)
            }
            FineLevel::Op(imp) => {
                self.smooth_op_ws(imp, x, self.pre_sweeps, level, &lvl.diag, &mut lvl.sm, ph)
            }
        }

        let part = &self.partitions[level];
        let plan = &plans[level];
        let t0 = Instant::now();
        let agg_span = obs::span("aggregate");
        {
            let _refresh = obs::span("mg.refresh");
            match chain {
                FineLevel::Mat(p) => {
                    lump_weighted_into(p, part, x, plan, &mut lvl.ws, &mut lvl.coarse)?
                }
                FineLevel::Op(imp) => {
                    lump_op_weighted_into(imp, part, x, plan, &mut lvl.ws, &mut lvl.coarse)?
                }
            }
        }
        // The refresh's block-weight pass *is* the restriction: same block
        // sums, same order, same bits as `aggregate(part, x)`.
        lvl.xc.copy_from_slice(lvl.ws.block_weight());
        vecops::normalize_l1(&mut lvl.xc);
        drop(agg_span);
        ph.aggregate_secs += t0.elapsed().as_secs_f64();
        for child in kind.children(level).into_iter().flatten() {
            self.run_cycle(
                FineLevel::Mat(&lvl.coarse),
                child,
                level + 1,
                plans,
                rest,
                cw,
                ph,
                &mut lvl.xc,
            )?;
        }
        let t0 = Instant::now();
        let disagg_span = obs::span("disaggregate");
        disaggregate_scaled(part, &lvl.xc, lvl.ws.wscale(), x);
        vecops::normalize_l1(x);
        drop(disagg_span);
        ph.disaggregate_secs += t0.elapsed().as_secs_f64();

        match chain {
            FineLevel::Mat(p) => self.smooth_ws(
                p,
                x,
                self.post_sweeps,
                level,
                &mut lvl.diag,
                &mut lvl.sm,
                ph,
            ),
            FineLevel::Op(imp) => {
                self.smooth_op_ws(imp, x, self.post_sweeps, level, &lvl.diag, &mut lvl.sm, ph)
            }
        }
        Ok(())
    }

    /// Direct solve at the coarsest level; falls back to smoothing sweeps
    /// when the (weight-dependent) coarse chain is numerically reducible.
    /// The dense scratch is reused across cycles: zero it, scatter the
    /// chain's entries (what `to_dense` builds), eliminate in place.
    fn solve_coarsest_ws(
        &self,
        chain: &StochasticMatrix,
        cw: &mut CoarseWs,
        x: &mut [f64],
    ) -> Result<()> {
        let gth_span = obs::span("markov.gth");
        cw.dense.fill(0.0);
        let m = chain.matrix();
        for r in 0..chain.n() {
            let row = cw.dense.row_mut(r);
            for (c, v) in m.row(r) {
                row[c] = v;
            }
        }
        match GthSolver::new().solve_dense_in_place(&mut cw.dense, x) {
            Ok(()) => {
                if obs::enabled() {
                    let residual = chain.stationary_residual_with(x, &mut cw.resid);
                    obs::event(
                        "markov.gth",
                        &[("states", chain.n().into()), ("residual", residual.into())],
                    );
                }
                Ok(())
            }
            Err(MarkovError::Reducible(_)) => {
                drop(gth_span);
                // Zero-weight aggregates can disconnect the coarse chain;
                // relaxation still reduces the error, so smooth instead.
                // (A failed elimination never touches `x`.)
                self.smoother
                    .apply_ws(chain, x, 20, &mut cw.diag, &mut cw.sm);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

/// Workspace for the windowed minimal-residual extrapolation: `restart`
/// iterates with their residual vectors, plus the candidate buffer. All
/// storage is allocated once (at arming) and reused across windows; the
/// per-cycle hot path [`MultigridSolver::cycle`] never sees it.
struct KrylovWindow {
    /// Window iterates `x_0 … x_{m−1}`.
    xs: Vec<Vec<f64>>,
    /// Their residual vectors `r_i = x_iP − x_i`; during extrapolation
    /// the first `m − 1` slots are overwritten in place by the
    /// orthonormalized difference basis.
    rs: Vec<Vec<f64>>,
    /// Candidate combination.
    y: Vec<f64>,
    len: usize,
}

impl KrylovWindow {
    fn new(n: usize, restart: usize) -> Self {
        KrylovWindow {
            xs: vec![vec![0.0; n]; restart],
            rs: vec![vec![0.0; n]; restart],
            y: vec![0.0; n],
            len: 0,
        }
    }

    /// Records an iterate and its residual vector, given `xp = xP` (the
    /// scratch the cycle's residual evaluation already produced).
    fn push(&mut self, x: &[f64], xp: &[f64]) {
        let i = self.len;
        self.xs[i].copy_from_slice(x);
        for ((r, &a), &b) in self.rs[i].iter_mut().zip(xp).zip(x) {
            *r = a - b;
        }
        self.len += 1;
    }

    fn full(&self) -> bool {
        self.len == self.xs.len()
    }

    fn clear(&mut self) {
        self.len = 0;
    }

    /// Minimal-residual extrapolation over the full window: finds the
    /// affine combination `y = Σ c_i x_i`, `Σ c_i = 1`, minimizing the
    /// 2-norm of the linearized residual `Σ c_i r_i`, via a serial
    /// modified-Gram-Schmidt QR of the difference basis
    /// `s_i = r_i − r_{m−1}` (every reduction is a serial `vecops` dot,
    /// so the coefficients are bit-identical at any thread count). The
    /// combination is clamped to the simplex (negative entries zeroed,
    /// L1-normalized) before it lands in `self.y`.
    ///
    /// Returns false when the basis is numerically degenerate or the
    /// clamped combination has no mass — callers then skip the window.
    fn extrapolate(&mut self) -> bool {
        let m = self.len;
        debug_assert!(self.full() && m >= 2);
        let (basis, tail) = self.rs.split_at_mut(m - 1);
        let r_last = &tail[0];
        let k = m - 1;
        let mut r = [[0.0f64; MAX_KRYLOV_WINDOW]; MAX_KRYLOV_WINDOW];
        let mut used = [false; MAX_KRYLOV_WINDOW];
        for i in 0..k {
            vecops::axpy(-1.0, r_last, &mut basis[i]);
            let norm0 = vecops::norm2(&basis[i]);
            let (left, right) = basis.split_at_mut(i);
            let qi = &mut right[0];
            for (j, qj) in left.iter().enumerate() {
                if !used[j] {
                    continue;
                }
                let hij = vecops::dot(qj, qi);
                r[j][i] = hij;
                vecops::axpy(-hij, qj, qi);
            }
            let nrm = vecops::norm2(qi);
            // Columns that vanish under orthogonalization carry no new
            // direction; drop them rather than divide by noise.
            if nrm > 1e-12 * norm0.max(f64::MIN_POSITIVE) {
                vecops::scale(1.0 / nrm, qi);
                r[i][i] = nrm;
                used[i] = true;
            }
        }
        if !used.iter().take(k).any(|&u| u) {
            return false;
        }
        // γ = argmin ‖r_last + Σ γ_i s_i‖₂  ⇒  Rγ = −Qᵀ r_last.
        let mut gamma = [0.0f64; MAX_KRYLOV_WINDOW];
        let mut beta = [0.0f64; MAX_KRYLOV_WINDOW];
        for j in 0..k {
            if used[j] {
                beta[j] = -vecops::dot(&basis[j], r_last);
            }
        }
        for i in (0..k).rev() {
            if !used[i] {
                continue;
            }
            let mut s = beta[i];
            for j in (i + 1)..k {
                if used[j] {
                    s -= r[i][j] * gamma[j];
                }
            }
            gamma[i] = s / r[i][i];
        }
        // y = (1 − Σγ)·x_last + Σ γ_i x_i, clamped back onto the simplex.
        let c_last = 1.0 - gamma.iter().take(k).sum::<f64>();
        self.y.copy_from_slice(&self.xs[m - 1]);
        vecops::scale(c_last, &mut self.y);
        for i in 0..k {
            if used[i] && gamma[i] != 0.0 {
                vecops::axpy(gamma[i], &self.xs[i], &mut self.y);
            }
        }
        for v in &mut self.y {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        vecops::normalize_l1(&mut self.y)
    }
}

/// Validates a caller-provided starting vector and normalizes it.
fn checked_init(n: usize, v: &[f64]) -> Result<Vec<f64>> {
    let mut x = v.to_vec();
    if x.len() != n || !vecops::is_nonnegative(&x) || !vecops::normalize_l1(&mut x) {
        return Err(MarkovError::InvalidArgument(
            "initial vector must be a non-negative distribution of matching length".into(),
        ));
    }
    Ok(x)
}

impl StationarySolver for MultigridSolver {
    /// Materializes the operator as a validated [`StochasticMatrix`] and
    /// runs the cycling on it. The aggregation/disaggregation transfers
    /// need explicit row access and rebuild lumped chains every cycle, so
    /// multigrid cannot stay matrix-free; backends that already are a
    /// `StochasticMatrix` take the direct [`solve`](StationarySolver::solve)
    /// path with no copy.
    fn solve_op(&self, op: &dyn TransitionOp, init: Option<&[f64]>) -> Result<StationaryResult> {
        let p = StochasticMatrix::with_tolerance(op.materialize_csr(), 1e-6)?;
        self.solve_with_stats(&p, init).map(|(r, _)| r)
    }

    fn solve(&self, p: &StochasticMatrix, init: Option<&[f64]>) -> Result<StationaryResult> {
        self.solve_with_stats(p, init).map(|(r, _)| r)
    }

    fn name(&self) -> &'static str {
        match (self.schedule, self.accel.is_some()) {
            (_, true) => "multigrid-krylov",
            (CycleSchedule::Fixed(CycleKind::V), false) => "multigrid-v",
            (CycleSchedule::Fixed(CycleKind::F), false) => "multigrid-f",
            (CycleSchedule::Fixed(CycleKind::W), false) => "multigrid-w",
            (CycleSchedule::Adaptive, false) => "multigrid-adaptive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeometricCoarsening, PairwiseCoarsening};
    use stochcdr_linalg::CooMatrix;
    use stochcdr_markov::stationary::PowerIteration;

    /// Birth–death chain of `n` states with up-probability `up`.
    fn birth_death(n: usize, up: f64) -> StochasticMatrix {
        let down = 1.0 - up;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            if i == 0 {
                coo.push(0, 0, down);
            } else {
                coo.push(i, i - 1, down);
            }
            if i == n - 1 {
                coo.push(i, i, up);
            } else {
                coo.push(i, i + 1, up);
            }
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    /// A stiff nearly-completely-decomposable chain: `k` clusters of `m`
    /// states with weak ring coupling `eps` — the structure multigrid
    /// excels at. Within each cluster, a reflecting birth–death walk with a
    /// geometric (non-uniform) stationary profile.
    fn ncd_chain(k: usize, m: usize, eps: f64) -> StochasticMatrix {
        let n = k * m;
        let (up, down) = (0.7 * (1.0 - eps), 0.3 * (1.0 - eps));
        let mut coo = CooMatrix::new(n, n);
        for c in 0..k {
            for i in 0..m {
                let s = c * m + i;
                if i == 0 {
                    coo.push(s, s, down);
                } else {
                    coo.push(s, s - 1, down);
                }
                if i == m - 1 {
                    coo.push(s, s, up);
                } else {
                    coo.push(s, s + 1, up);
                }
                // Weak coupling to the same position in the next cluster.
                coo.push(s, ((c + 1) % k) * m + i, eps);
            }
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn matches_power_iteration_on_birth_death() {
        let p = birth_death(64, 0.45);
        let solver = MultigridSolver::builder(PairwiseCoarsening::until(8).levels(64))
            .tol(1e-11)
            .build();
        let mg = solver.solve(&p, None).unwrap();
        let pw = PowerIteration::new(1e-13, 2_000_000)
            .solve(&p, None)
            .unwrap();
        assert!(vecops::dist1(&mg.distribution, &pw.distribution) < 1e-8);
    }

    #[test]
    fn solves_ncd_chain_where_power_struggles() {
        let p = ncd_chain(4, 8, 1e-7);
        // Start with all mass in cluster 0: the inter-cluster equilibration
        // is the 1 − O(eps) slow mode.
        let mut init = vec![0.0; 32];
        for v in init.iter_mut().take(8) {
            *v = 1.0 / 8.0;
        }
        let solver = MultigridSolver::builder(PairwiseCoarsening::until(4).levels(32))
            .cycle(CycleKind::W)
            .tol(1e-12)
            .build();
        let (r, stats) = solver.solve_with_stats(&p, Some(&init)).unwrap();
        assert!(p.stationary_residual(&r.distribution) < 1e-11);
        assert!(stats.levels >= 3);
        // Correctness: all four clusters carry equal mass.
        for c in 0..4 {
            let mass: f64 = r.distribution[c * 8..(c + 1) * 8].iter().sum();
            assert!((mass - 0.25).abs() < 1e-9, "cluster {c} mass {mass}");
        }
        // Power iteration with an equivalent sweep budget barely moves the
        // cluster masses: residual stays at the O(eps) coupling scale.
        let budget = r.iterations() * (stats.levels * 4);
        let mut x = init;
        let mut buf = vec![0.0; 32];
        for _ in 0..budget {
            p.step_into(&x, &mut buf);
            std::mem::swap(&mut x, &mut buf);
        }
        assert!(p.stationary_residual(&x) > p.stationary_residual(&r.distribution) * 100.0);
    }

    #[test]
    fn geometric_coarsening_on_product_chain() {
        // 2-component chain: independent toggle (dim 2) x birth-death (dim 32),
        // phase component fastest-varying.
        let bd = birth_death(32, 0.4);
        let mut coo = CooMatrix::new(64, 64);
        for s in 0..64usize {
            let (t, phi) = (s / 32, s % 32);
            for (phi2, v) in bd.matrix().row(phi) {
                coo.push(s, (1 - t) * 32 + phi2, v);
            }
        }
        let p = StochasticMatrix::new(coo.to_csr()).unwrap();
        let parts = GeometricCoarsening::new(vec![2, 32], 1, 4).levels();
        let solver = MultigridSolver::builder(parts)
            .tol(1e-11)
            .max_cycles(500)
            .build();
        let r = solver.solve(&p, None).unwrap();
        // Product stationary: uniform over toggle x geometric over phase.
        let pw = GthSolver::new().solve(&p, None).unwrap();
        assert!(vecops::dist1(&r.distribution, &pw.distribution) < 1e-8);
    }

    #[test]
    fn fmg_initialization_saves_cycles_on_stiff_chain() {
        let p = ncd_chain(4, 8, 1e-7);
        let parts = PairwiseCoarsening::until(4).levels(32);
        let plain = MultigridSolver::builder(parts.clone())
            .cycle(CycleKind::W)
            .tol(1e-11)
            .build()
            .solve(&p, None)
            .unwrap();
        let fmg = MultigridSolver::builder(parts)
            .cycle(CycleKind::W)
            .tol(1e-11)
            .fmg(true)
            .build()
            .solve(&p, None)
            .unwrap();
        assert!(p.stationary_residual(&fmg.distribution) < 1e-10);
        assert!(
            fmg.iterations() <= plain.iterations(),
            "FMG {} cycles vs plain {}",
            fmg.iterations(),
            plain.iterations()
        );
        assert!(vecops::dist1(&fmg.distribution, &plain.distribution) < 1e-8);
    }

    #[test]
    fn implicit_path_is_bitwise_the_materialized_solve() {
        // A raw CSR plays the role of the never-materialized operator: the
        // ImplicitStochastic wrapper serves exactly the values the
        // validated StochasticMatrix stores, so every cycle — fine
        // smoothing, operator-plan lumping, coarse levels, residuals —
        // must reproduce the materialized solve bit for bit.
        let raw = ncd_chain(4, 8, 1e-7).matrix().clone();
        let mat = StochasticMatrix::with_tolerance(raw.clone(), 1e-6).unwrap();
        let rawt = raw.transpose();
        let imp = ImplicitStochastic::with_tolerance(&raw, &rawt, 1e-6).unwrap();
        for smoother in [Smoother::Jacobi { omega: 0.8 }, Smoother::GaussSeidel] {
            let solver = MultigridSolver::builder(PairwiseCoarsening::until(4).levels(32))
                .cycle(CycleKind::W)
                .smoother(smoother.clone())
                .tol(1e-12)
                .build();
            let (rm, sm) = solver.solve_with_stats(&mat, None).unwrap();
            let (ri, si) = solver.solve_op_with_stats(&imp, None).unwrap();
            assert_eq!(rm.iterations(), ri.iterations(), "{smoother:?}");
            assert_eq!(
                rm.residual().to_bits(),
                ri.residual().to_bits(),
                "{smoother:?}"
            );
            let same = rm
                .distribution
                .iter()
                .zip(&ri.distribution)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{smoother:?}: distributions diverge");
            assert_eq!(sm.residual_history, si.residual_history, "{smoother:?}");
            assert_eq!(sm.level_sizes, si.level_sizes);
        }
    }

    #[test]
    fn implicit_hierarchy_is_reusable_across_solves() {
        let raw = ncd_chain(4, 8, 1e-7).matrix().clone();
        let rawt = raw.transpose();
        let imp = ImplicitStochastic::with_tolerance(&raw, &rawt, 1e-6).unwrap();
        let solver = MultigridSolver::builder(PairwiseCoarsening::until(4).levels(32))
            .tol(1e-11)
            .build();
        let mut h = solver.prepare_op(&imp).unwrap();
        let (a, _) = solver.solve_op_prepared(&imp, &mut h, None).unwrap();
        let (b, _) = solver.solve_op_prepared(&imp, &mut h, None).unwrap();
        assert_eq!(a.distribution, b.distribution);
        // Cached plans can seed a second solver instance.
        let reuse = MultigridSolver::builder(PairwiseCoarsening::until(4).levels(32))
            .tol(1e-11)
            .plans(Arc::clone(h.plans()))
            .build();
        let (c, _) = reuse.solve_op_with_stats(&imp, None).unwrap();
        assert_eq!(a.distribution, c.distribution);
    }

    #[test]
    fn implicit_path_rejects_unsupported_shapes() {
        let raw = birth_death(16, 0.4).matrix().clone();
        let rawt = raw.transpose();
        let imp = ImplicitStochastic::with_tolerance(&raw, &rawt, 1e-6).unwrap();
        // No coarsening levels: the coarsest solve needs a materialized chain.
        let direct = MultigridSolver::builder(vec![]).build();
        assert!(matches!(
            direct.prepare_op(&imp),
            Err(MarkovError::InvalidArgument(_))
        ));
        // FMG needs the materialized path.
        let fmg = MultigridSolver::builder(PairwiseCoarsening::until(4).levels(16))
            .fmg(true)
            .build();
        assert!(matches!(
            fmg.solve_op_with_stats(&imp, None),
            Err(MarkovError::InvalidArgument(_))
        ));
        // Mismatched hierarchy rejected.
        let solver = MultigridSolver::builder(PairwiseCoarsening::until(4).levels(16)).build();
        let mut h = solver.prepare_op(&imp).unwrap();
        let other_raw = birth_death(32, 0.4).matrix().clone();
        let other_t = other_raw.transpose();
        let other = ImplicitStochastic::with_tolerance(&other_raw, &other_t, 1e-6).unwrap();
        let mut x = vecops::uniform(32);
        assert!(solver.cycle_op(&other, &mut h, &mut x).is_err());
    }

    #[test]
    fn no_partitions_degenerates_to_direct() {
        let p = birth_death(16, 0.3);
        let solver = MultigridSolver::builder(vec![]).build();
        let r = solver.solve(&p, None).unwrap();
        assert!(p.stationary_residual(&r.distribution) < 1e-12);
        assert_eq!(r.iterations(), 1);
    }

    #[test]
    fn coarse_cap_enforced() {
        let p = birth_death(64, 0.4);
        let solver = MultigridSolver::builder(vec![])
            .coarse_direct_max(8)
            .build();
        assert!(matches!(
            solver.solve(&p, None),
            Err(MarkovError::InvalidArgument(_))
        ));
    }

    #[test]
    fn mismatched_partition_rejected() {
        let p = birth_death(16, 0.4);
        let solver = MultigridSolver::builder(PairwiseCoarsening::until(4).levels(32)).build();
        assert!(solver.solve(&p, None).is_err());
    }

    #[test]
    fn stats_expose_hierarchy() {
        let p = birth_death(64, 0.45);
        let solver = MultigridSolver::builder(PairwiseCoarsening::until(8).levels(64))
            .tol(1e-10)
            .build();
        let (_, stats) = solver.solve_with_stats(&p, None).unwrap();
        assert_eq!(stats.level_sizes, vec![64, 32, 16, 8]);
        assert_eq!(stats.levels, 4);
        assert!(!stats.residual_history.is_empty());
        // Residual history is (weakly) decreasing at the tail.
        let h = &stats.residual_history;
        if h.len() >= 2 {
            assert!(h[h.len() - 1] <= h[0]);
        }
    }

    #[test]
    fn invalid_init_rejected() {
        let p = birth_death(16, 0.4);
        let solver = MultigridSolver::builder(PairwiseCoarsening::until(4).levels(16)).build();
        assert!(solver.solve(&p, Some(&[1.0, 2.0])).is_err());
    }

    #[test]
    fn f_cycle_solves_and_costs_between_v_and_w() {
        let p = ncd_chain(4, 8, 1e-7);
        let parts = PairwiseCoarsening::until(4).levels(32);
        let gth = GthSolver::new().solve(&p, None).unwrap();
        let mut equivalents_per_cycle = Vec::new();
        for kind in [CycleKind::V, CycleKind::F, CycleKind::W] {
            let solver = MultigridSolver::builder(parts.clone())
                .cycle(kind)
                .tol(1e-12)
                .build();
            let (r, stats) = solver.solve_with_stats(&p, None).unwrap();
            assert!(vecops::dist1(&r.distribution, &gth.distribution) < 1e-8);
            assert_eq!(stats.final_cycle, kind);
            equivalents_per_cycle.push(stats.cycle_equivalents / r.report.iterations as f64);
        }
        // Per-cycle price: V is the unit, F sits strictly between V and W.
        assert_eq!(equivalents_per_cycle[0], 1.0);
        assert!(equivalents_per_cycle[0] < equivalents_per_cycle[1]);
        assert!(equivalents_per_cycle[1] < equivalents_per_cycle[2]);
    }

    #[test]
    fn fixed_v_cycle_equivalents_equal_cycle_count() {
        let p = birth_death(64, 0.45);
        let solver = MultigridSolver::builder(PairwiseCoarsening::until(8).levels(64))
            .tol(1e-10)
            .build();
        let (r, stats) = solver.solve_with_stats(&p, None).unwrap();
        assert_eq!(stats.cycle_equivalents, r.report.iterations as f64);
        assert_eq!(stats.krylov_windows, 0);
        assert_eq!(stats.final_cycle, CycleKind::V);
    }

    #[test]
    fn adaptive_schedule_escalates_deterministically() {
        // An underdamped single-sweep smoother leaves V-cycles crawling
        // (fixed-V EWMA ≈ 0.94 on this chain), so the controller must
        // escalate.
        let p = ncd_chain(4, 8, 0.2);
        let parts = PairwiseCoarsening::until(4).levels(32);
        let adaptive = MultigridSolver::builder(parts.clone())
            .schedule(CycleSchedule::Adaptive)
            .smoother(Smoother::Jacobi { omega: 0.15 })
            .pre_sweeps(0)
            .post_sweeps(1)
            .tol(1e-12)
            .max_cycles(20_000)
            .build();
        let (r, stats) = adaptive.solve_with_stats(&p, None).unwrap();
        let gth = GthSolver::new().solve(&p, None).unwrap();
        assert!(vecops::dist1(&r.distribution, &gth.distribution) < 1e-8);
        assert!(
            stats.final_cycle.rank() > CycleKind::V.rank(),
            "controller never escalated on a chain where V-cycles crawl"
        );
        // The decision sequence is a pure function of the residual
        // history: a second run reproduces it bit for bit.
        let (r2, stats2) = adaptive.solve_with_stats(&p, None).unwrap();
        assert_eq!(r.distribution, r2.distribution);
        assert_eq!(stats.residual_history, stats2.residual_history);
        assert_eq!(stats.cycle_equivalents, stats2.cycle_equivalents);
    }

    #[test]
    fn krylov_acceleration_reduces_cycles_on_stiff_chain() {
        let p = ncd_chain(4, 8, 0.2);
        let parts = PairwiseCoarsening::until(4).levels(32);
        let plain = MultigridSolver::builder(parts.clone())
            .tol(1e-12)
            .max_cycles(20_000)
            .build();
        let accel = MultigridSolver::builder(parts)
            .tol(1e-12)
            .max_cycles(20_000)
            .accel(KrylovAccel::always(6))
            .build();
        let (rp, _) = plain.solve_with_stats(&p, None).unwrap();
        let (ra, sa) = accel.solve_with_stats(&p, None).unwrap();
        let gth = GthSolver::new().solve(&p, None).unwrap();
        assert!(vecops::dist1(&ra.distribution, &gth.distribution) < 1e-8);
        assert!(sa.krylov_windows > 0);
        assert!(sa.krylov_accepts > 0, "no extrapolation ever accepted");
        assert!(
            sa.cycle_equivalents < 0.7 * rp.report.iterations as f64,
            "acceleration saved too little: {} equivalents vs {} plain cycles",
            sa.cycle_equivalents,
            rp.report.iterations
        );
        // Deterministic: same bits on a rerun.
        let (ra2, sa2) = accel.solve_with_stats(&p, None).unwrap();
        assert_eq!(ra.distribution, ra2.distribution);
        assert_eq!(sa.cycle_equivalents, sa2.cycle_equivalents);
    }

    #[test]
    fn stall_triggered_acceleration_arms_only_after_stall() {
        let p = ncd_chain(4, 8, 0.2);
        let parts = PairwiseCoarsening::until(4).levels(32);
        let accel = MultigridSolver::builder(parts)
            .smoother(Smoother::Jacobi { omega: 0.15 })
            .pre_sweeps(0)
            .post_sweeps(1)
            .tol(1e-12)
            .max_cycles(20_000)
            .accel(KrylovAccel::on_stall(6))
            .build();
        let (r, stats) = accel.solve_with_stats(&p, None).unwrap();
        let gth = GthSolver::new().solve(&p, None).unwrap();
        assert!(vecops::dist1(&r.distribution, &gth.distribution) < 1e-8);
        let stalled_at = stats.convergence.stalled_at.expect("chain must stall");
        assert!(stats.krylov_windows > 0);
        // The first window needs `restart` pushes after arming, so no
        // window can complete before the stall fires.
        assert!(r.report.iterations > stalled_at);
    }

    #[test]
    fn cycle_schedule_parses_cli_names() {
        for s in [
            CycleSchedule::Fixed(CycleKind::V),
            CycleSchedule::Fixed(CycleKind::F),
            CycleSchedule::Fixed(CycleKind::W),
            CycleSchedule::Adaptive,
        ] {
            assert_eq!(CycleSchedule::parse(s.cli_name()), Some(s));
        }
        assert_eq!(CycleSchedule::parse("x"), None);
    }

    #[test]
    fn solver_names_cover_schedules() {
        let parts = PairwiseCoarsening::until(4).levels(16);
        let mk = |b: MultigridBuilder| b.build().name();
        assert_eq!(mk(MultigridSolver::builder(parts.clone())), "multigrid-v");
        assert_eq!(
            mk(MultigridSolver::builder(parts.clone()).cycle(CycleKind::F)),
            "multigrid-f"
        );
        assert_eq!(
            mk(MultigridSolver::builder(parts.clone()).cycle(CycleKind::W)),
            "multigrid-w"
        );
        assert_eq!(
            mk(MultigridSolver::builder(parts.clone()).schedule(CycleSchedule::Adaptive)),
            "multigrid-adaptive"
        );
        assert_eq!(
            mk(MultigridSolver::builder(parts).accel(KrylovAccel::default())),
            "multigrid-krylov"
        );
    }
}
