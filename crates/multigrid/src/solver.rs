//! The multi-level aggregation/disaggregation solver.

use stochcdr_linalg::{vecops, TransitionOp};
use stochcdr_markov::lumping::{aggregate, disaggregate, lump_weighted, Partition};
use stochcdr_markov::stationary::{GthSolver, SolveReport, StationaryResult, StationarySolver};
use stochcdr_markov::{MarkovError, Result, StochasticMatrix};
use stochcdr_obs as obs;

use crate::Smoother;

/// Static span names per level, so per-level trace lanes stay
/// allocation-free. Hierarchies deeper than this share the last name.
const LEVEL_SPANS: [&str; 12] = [
    "mg.level0",
    "mg.level1",
    "mg.level2",
    "mg.level3",
    "mg.level4",
    "mg.level5",
    "mg.level6",
    "mg.level7",
    "mg.level8",
    "mg.level9",
    "mg.level10",
    "mg.level.deep",
];

fn level_span(level: usize) -> &'static str {
    LEVEL_SPANS[level.min(LEVEL_SPANS.len() - 1)]
}

/// Recursion pattern of the multigrid cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleKind {
    /// One recursive visit per level (V-cycle).
    V,
    /// Two recursive visits per level (W-cycle) — more coarse-level work,
    /// more robust on stiff chains.
    W,
}

impl CycleKind {
    fn gamma(self) -> usize {
        match self {
            CycleKind::V => 1,
            CycleKind::W => 2,
        }
    }
}

/// Builder for [`MultigridSolver`].
#[derive(Debug, Clone)]
pub struct MultigridBuilder {
    partitions: Vec<Partition>,
    pre_sweeps: usize,
    post_sweeps: usize,
    cycle: CycleKind,
    smoother: Smoother,
    tol: f64,
    max_cycles: usize,
    coarse_direct_max: usize,
    fmg: bool,
}

impl MultigridBuilder {
    /// Pre-smoothing sweeps per level (default 1).
    pub fn pre_sweeps(mut self, n: usize) -> Self {
        self.pre_sweeps = n;
        self
    }

    /// Post-smoothing sweeps per level (default 2).
    pub fn post_sweeps(mut self, n: usize) -> Self {
        self.post_sweeps = n;
        self
    }

    /// Cycle kind (default V).
    pub fn cycle(mut self, kind: CycleKind) -> Self {
        self.cycle = kind;
        self
    }

    /// Smoother (default damped Jacobi, ω = 0.8).
    pub fn smoother(mut self, s: Smoother) -> Self {
        self.smoother = s;
        self
    }

    /// Residual tolerance `||ηP − η||₁` (default 1e-12).
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0`.
    pub fn tol(mut self, tol: f64) -> Self {
        assert!(tol > 0.0, "tolerance must be positive");
        self.tol = tol;
        self
    }

    /// Cycle budget (default 200).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn max_cycles(mut self, n: usize) -> Self {
        assert!(n > 0, "cycle budget must be positive");
        self.max_cycles = n;
        self
    }

    /// Largest coarsest-level size accepted for the direct (GTH) solve
    /// (default 4096).
    pub fn coarse_direct_max(mut self, n: usize) -> Self {
        self.coarse_direct_max = n;
        self
    }

    /// Enables full-multigrid (FMG) initialization (default off): before
    /// cycling, the chain is recursively aggregated to the coarsest level
    /// with uniform weights, solved there directly, and the solution
    /// prolonged back up — a coarse-grid first guess that usually saves
    /// several fine-level cycles.
    pub fn fmg(mut self, enable: bool) -> Self {
        self.fmg = enable;
        self
    }

    /// Finalizes the solver.
    pub fn build(self) -> MultigridSolver {
        MultigridSolver {
            partitions: self.partitions,
            pre_sweeps: self.pre_sweeps,
            post_sweeps: self.post_sweeps,
            cycle: self.cycle,
            smoother: self.smoother,
            tol: self.tol,
            max_cycles: self.max_cycles,
            coarse_direct_max: self.coarse_direct_max,
            fmg: self.fmg,
        }
    }
}

/// Per-solve diagnostics collected by
/// [`MultigridSolver::solve_with_stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultigridStats {
    /// L1 residual after each cycle.
    pub residual_history: Vec<f64>,
    /// Number of levels (including the fine grid).
    pub levels: usize,
    /// State count at each level, fine first.
    pub level_sizes: Vec<usize>,
}

/// Multi-level aggregation/disaggregation stationary solver.
///
/// One cycle at level `ℓ`:
///
/// 1. pre-smooth the iterate `x` on the level-`ℓ` chain,
/// 2. aggregate: build the weighted-lumped coarse chain using `x` as the
///    lumping weights (weak lumping), restrict `x` by block sums,
/// 3. recurse (or solve the coarsest level directly with GTH),
/// 4. disaggregate: distribute the coarse solution over each block
///    proportionally to the fine iterate (multiplicative correction),
/// 5. post-smooth.
///
/// The coarse chain is rebuilt *every cycle* from the current iterate —
/// the scheme is a fixed-point (nonlinear) multigrid whose exact solution
/// is a fixed point of the aggregation/disaggregation pair.
#[derive(Debug, Clone)]
pub struct MultigridSolver {
    partitions: Vec<Partition>,
    pre_sweeps: usize,
    post_sweeps: usize,
    cycle: CycleKind,
    smoother: Smoother,
    tol: f64,
    max_cycles: usize,
    coarse_direct_max: usize,
    fmg: bool,
}

impl MultigridSolver {
    /// Starts building a solver from a fine-to-coarse partition sequence
    /// (e.g. from [`crate::GeometricCoarsening::levels`]).
    ///
    /// # Panics
    ///
    /// Panics if consecutive partitions do not chain (`partitions[k]`'s
    /// block count must equal `partitions[k+1]`'s state count).
    pub fn builder(partitions: Vec<Partition>) -> MultigridBuilder {
        for w in partitions.windows(2) {
            assert_eq!(
                w[0].block_count(),
                w[1].n(),
                "partition sequence does not chain"
            );
        }
        MultigridBuilder {
            partitions,
            pre_sweeps: 1,
            post_sweeps: 2,
            cycle: CycleKind::V,
            smoother: Smoother::default(),
            tol: 1e-12,
            max_cycles: 200,
            coarse_direct_max: 4096,
            fmg: false,
        }
    }

    /// Number of levels including the fine grid.
    pub fn levels(&self) -> usize {
        self.partitions.len() + 1
    }

    /// Solves and returns per-cycle diagnostics alongside the result.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StationarySolver::solve`].
    pub fn solve_with_stats(
        &self,
        p: &StochasticMatrix,
        init: Option<&[f64]>,
    ) -> Result<(StationaryResult, MultigridStats)> {
        if let Some(part) = self.partitions.first() {
            if part.n() != p.n() {
                return Err(MarkovError::InvalidArgument(format!(
                    "finest partition covers {} states, chain has {}",
                    part.n(),
                    p.n()
                )));
            }
        }
        let coarsest = self.partitions.last().map_or(p.n(), Partition::block_count);
        if coarsest > self.coarse_direct_max {
            return Err(MarkovError::InvalidArgument(format!(
                "coarsest level has {coarsest} states, exceeding the direct-solve cap {}; \
                 add more coarsening levels",
                self.coarse_direct_max
            )));
        }

        let mut x = match init {
            None if self.fmg => self.fmg_initial(p)?,
            None => vecops::uniform(p.n()),
            Some(v) => {
                let mut x = v.to_vec();
                if x.len() != p.n() || !vecops::is_nonnegative(&x) || !vecops::normalize_l1(&mut x)
                {
                    return Err(MarkovError::InvalidArgument(
                        "initial vector must be a non-negative distribution of matching length"
                            .into(),
                    ));
                }
                x
            }
        };

        let mut level_sizes = vec![p.n()];
        level_sizes.extend(self.partitions.iter().map(Partition::block_count));

        let _solve_span = obs::span("multigrid.solve");
        let coarsest_size = *level_sizes.last().expect("non-empty");
        obs::event(
            "multigrid.hierarchy",
            &[
                ("levels", self.levels().into()),
                ("fine_states", p.n().into()),
                ("coarsest_states", coarsest_size.into()),
                (
                    "coarsening_ratio",
                    (p.n() as f64 / coarsest_size.max(1) as f64).into(),
                ),
            ],
        );

        let mut history = Vec::new();
        for cycle in 1..=self.max_cycles {
            let cycle_t0 = obs::enabled().then(std::time::Instant::now);
            let cycle_span = obs::span("cycle");
            self.run_cycle(p, 0, &mut x)?;
            let res = p.stationary_residual(&x);
            drop(cycle_span);
            if let Some(t0) = cycle_t0 {
                obs::histogram("multigrid.cycle.ns", t0.elapsed().as_nanos() as f64);
                // Per-cycle contraction factor: the distribution the
                // convergence claim rests on, not just its last value.
                if let Some(&prev) = history.last() {
                    if prev > 0.0 {
                        obs::histogram("multigrid.residual_reduction", res / prev);
                    }
                }
            }
            history.push(res);
            obs::event(
                "multigrid.cycle",
                &[("cycle", cycle.into()), ("residual", res.into())],
            );
            if res <= self.tol {
                vecops::clamp_roundoff(&mut x, 1e-12);
                // Clamping perturbs the iterate, so the pre-clamp residual
                // no longer describes the distribution actually returned:
                // recompute it and keep history's last entry in sync.
                let final_res = p.stationary_residual(&x);
                *history.last_mut().expect("pushed above") = final_res;
                obs::event(
                    "multigrid.converged",
                    &[("cycles", cycle.into()), ("residual", final_res.into())],
                );
                let result = StationaryResult {
                    distribution: x,
                    report: SolveReport {
                        iterations: cycle,
                        residual: final_res,
                        residual_history: history.clone(),
                    },
                };
                let stats = MultigridStats {
                    residual_history: history,
                    levels: self.levels(),
                    level_sizes,
                };
                return Ok((result, stats));
            }
        }
        Err(MarkovError::NotConverged {
            iterations: self.max_cycles,
            residual: *history.last().unwrap_or(&f64::NAN),
        })
    }

    /// Full-multigrid first guess: aggregate to the coarsest level with
    /// uniform weights, solve there, prolong back up level by level with a
    /// smoothing pass at each.
    fn fmg_initial(&self, p: &StochasticMatrix) -> Result<Vec<f64>> {
        // Build the chain of uniformly-aggregated operators.
        let mut chains = vec![p.clone()];
        for part in &self.partitions {
            let w = vec![1.0; chains.last().expect("non-empty").n()];
            let coarse = lump_weighted(chains.last().expect("non-empty"), part, &w)?;
            chains.push(coarse);
        }
        let mut x = vecops::uniform(chains.last().expect("non-empty").n());
        self.solve_coarsest(chains.last().expect("non-empty"), &mut x)?;
        // Prolong upward with uniform in-block weights, smoothing as we go.
        for (level, part) in self.partitions.iter().enumerate().rev() {
            let w = vec![1.0; part.n()];
            x = disaggregate(part, &x, &w);
            vecops::normalize_l1(&mut x);
            self.smoother
                .apply(&chains[level], &mut x, self.post_sweeps.max(1));
        }
        Ok(x)
    }

    /// Smoothing sweeps with per-level accounting: a `smooth` span, the
    /// level's sweep counter, and a per-level sweep-time histogram. The
    /// owned names only materialize when instrumentation is enabled.
    fn smooth_instrumented(
        &self,
        chain: &StochasticMatrix,
        x: &mut [f64],
        sweeps: usize,
        level: usize,
    ) {
        if !obs::enabled() {
            self.smoother.apply(chain, x, sweeps);
            return;
        }
        let t0 = std::time::Instant::now();
        {
            let _span = obs::span("smooth");
            self.smoother.apply(chain, x, sweeps);
        }
        let ns = t0.elapsed().as_nanos() as f64;
        obs::counter(
            &format!("multigrid.smooth_sweeps.level{level}"),
            sweeps as u64,
        );
        obs::histogram(&format!("multigrid.smooth.ns.level{level}"), ns);
    }

    /// One multigrid cycle at `level`, updating `x` in place.
    fn run_cycle(&self, chain: &StochasticMatrix, level: usize, x: &mut Vec<f64>) -> Result<()> {
        let _level_span = obs::span(level_span(level));
        if level == self.partitions.len() {
            let _span = obs::span("coarse_solve");
            return self.solve_coarsest(chain, x);
        }
        self.smooth_instrumented(chain, x, self.pre_sweeps, level);

        let part = &self.partitions[level];
        let agg_span = obs::span("aggregate");
        let coarse = lump_weighted(chain, part, x)?;
        let mut xc = aggregate(part, x);
        vecops::normalize_l1(&mut xc);
        drop(agg_span);
        for _ in 0..self.cycle.gamma() {
            self.run_cycle(&coarse, level + 1, &mut xc)?;
        }
        let disagg_span = obs::span("disaggregate");
        *x = disaggregate(part, &xc, x);
        vecops::normalize_l1(x);
        drop(disagg_span);

        self.smooth_instrumented(chain, x, self.post_sweeps, level);
        Ok(())
    }

    /// Direct solve at the coarsest level; falls back to smoothing sweeps
    /// when the (weight-dependent) coarse chain is numerically reducible.
    fn solve_coarsest(&self, chain: &StochasticMatrix, x: &mut Vec<f64>) -> Result<()> {
        match GthSolver::new().solve(chain, None) {
            Ok(r) => {
                *x = r.distribution;
                Ok(())
            }
            Err(MarkovError::Reducible(_)) => {
                // Zero-weight aggregates can disconnect the coarse chain;
                // relaxation still reduces the error, so smooth instead.
                self.smoother.apply(chain, x, 20);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

impl StationarySolver for MultigridSolver {
    /// Materializes the operator as a validated [`StochasticMatrix`] and
    /// runs the cycling on it. The aggregation/disaggregation transfers
    /// need explicit row access and rebuild lumped chains every cycle, so
    /// multigrid cannot stay matrix-free; backends that already are a
    /// `StochasticMatrix` take the direct [`solve`](StationarySolver::solve)
    /// path with no copy.
    fn solve_op(&self, op: &dyn TransitionOp, init: Option<&[f64]>) -> Result<StationaryResult> {
        let p = StochasticMatrix::with_tolerance(op.materialize_csr(), 1e-6)?;
        self.solve_with_stats(&p, init).map(|(r, _)| r)
    }

    fn solve(&self, p: &StochasticMatrix, init: Option<&[f64]>) -> Result<StationaryResult> {
        self.solve_with_stats(p, init).map(|(r, _)| r)
    }

    fn name(&self) -> &'static str {
        match self.cycle {
            CycleKind::V => "multigrid-v",
            CycleKind::W => "multigrid-w",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeometricCoarsening, PairwiseCoarsening};
    use stochcdr_linalg::CooMatrix;
    use stochcdr_markov::stationary::PowerIteration;

    /// Birth–death chain of `n` states with up-probability `up`.
    fn birth_death(n: usize, up: f64) -> StochasticMatrix {
        let down = 1.0 - up;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            if i == 0 {
                coo.push(0, 0, down);
            } else {
                coo.push(i, i - 1, down);
            }
            if i == n - 1 {
                coo.push(i, i, up);
            } else {
                coo.push(i, i + 1, up);
            }
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    /// A stiff nearly-completely-decomposable chain: `k` clusters of `m`
    /// states with weak ring coupling `eps` — the structure multigrid
    /// excels at. Within each cluster, a reflecting birth–death walk with a
    /// geometric (non-uniform) stationary profile.
    fn ncd_chain(k: usize, m: usize, eps: f64) -> StochasticMatrix {
        let n = k * m;
        let (up, down) = (0.7 * (1.0 - eps), 0.3 * (1.0 - eps));
        let mut coo = CooMatrix::new(n, n);
        for c in 0..k {
            for i in 0..m {
                let s = c * m + i;
                if i == 0 {
                    coo.push(s, s, down);
                } else {
                    coo.push(s, s - 1, down);
                }
                if i == m - 1 {
                    coo.push(s, s, up);
                } else {
                    coo.push(s, s + 1, up);
                }
                // Weak coupling to the same position in the next cluster.
                coo.push(s, ((c + 1) % k) * m + i, eps);
            }
        }
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn matches_power_iteration_on_birth_death() {
        let p = birth_death(64, 0.45);
        let solver = MultigridSolver::builder(PairwiseCoarsening::until(8).levels(64))
            .tol(1e-11)
            .build();
        let mg = solver.solve(&p, None).unwrap();
        let pw = PowerIteration::new(1e-13, 2_000_000)
            .solve(&p, None)
            .unwrap();
        assert!(vecops::dist1(&mg.distribution, &pw.distribution) < 1e-8);
    }

    #[test]
    fn solves_ncd_chain_where_power_struggles() {
        let p = ncd_chain(4, 8, 1e-7);
        // Start with all mass in cluster 0: the inter-cluster equilibration
        // is the 1 − O(eps) slow mode.
        let mut init = vec![0.0; 32];
        for v in init.iter_mut().take(8) {
            *v = 1.0 / 8.0;
        }
        let solver = MultigridSolver::builder(PairwiseCoarsening::until(4).levels(32))
            .cycle(CycleKind::W)
            .tol(1e-12)
            .build();
        let (r, stats) = solver.solve_with_stats(&p, Some(&init)).unwrap();
        assert!(p.stationary_residual(&r.distribution) < 1e-11);
        assert!(stats.levels >= 3);
        // Correctness: all four clusters carry equal mass.
        for c in 0..4 {
            let mass: f64 = r.distribution[c * 8..(c + 1) * 8].iter().sum();
            assert!((mass - 0.25).abs() < 1e-9, "cluster {c} mass {mass}");
        }
        // Power iteration with an equivalent sweep budget barely moves the
        // cluster masses: residual stays at the O(eps) coupling scale.
        let budget = r.iterations() * (stats.levels * 4);
        let mut x = init;
        let mut buf = vec![0.0; 32];
        for _ in 0..budget {
            p.step_into(&x, &mut buf);
            std::mem::swap(&mut x, &mut buf);
        }
        assert!(p.stationary_residual(&x) > p.stationary_residual(&r.distribution) * 100.0);
    }

    #[test]
    fn geometric_coarsening_on_product_chain() {
        // 2-component chain: independent toggle (dim 2) x birth-death (dim 32),
        // phase component fastest-varying.
        let bd = birth_death(32, 0.4);
        let mut coo = CooMatrix::new(64, 64);
        for s in 0..64usize {
            let (t, phi) = (s / 32, s % 32);
            for (phi2, v) in bd.matrix().row(phi) {
                coo.push(s, (1 - t) * 32 + phi2, v);
            }
        }
        let p = StochasticMatrix::new(coo.to_csr()).unwrap();
        let parts = GeometricCoarsening::new(vec![2, 32], 1, 4).levels();
        let solver = MultigridSolver::builder(parts)
            .tol(1e-11)
            .max_cycles(500)
            .build();
        let r = solver.solve(&p, None).unwrap();
        // Product stationary: uniform over toggle x geometric over phase.
        let pw = GthSolver::new().solve(&p, None).unwrap();
        assert!(vecops::dist1(&r.distribution, &pw.distribution) < 1e-8);
    }

    #[test]
    fn fmg_initialization_saves_cycles_on_stiff_chain() {
        let p = ncd_chain(4, 8, 1e-7);
        let parts = PairwiseCoarsening::until(4).levels(32);
        let plain = MultigridSolver::builder(parts.clone())
            .cycle(CycleKind::W)
            .tol(1e-11)
            .build()
            .solve(&p, None)
            .unwrap();
        let fmg = MultigridSolver::builder(parts)
            .cycle(CycleKind::W)
            .tol(1e-11)
            .fmg(true)
            .build()
            .solve(&p, None)
            .unwrap();
        assert!(p.stationary_residual(&fmg.distribution) < 1e-10);
        assert!(
            fmg.iterations() <= plain.iterations(),
            "FMG {} cycles vs plain {}",
            fmg.iterations(),
            plain.iterations()
        );
        assert!(vecops::dist1(&fmg.distribution, &plain.distribution) < 1e-8);
    }

    #[test]
    fn no_partitions_degenerates_to_direct() {
        let p = birth_death(16, 0.3);
        let solver = MultigridSolver::builder(vec![]).build();
        let r = solver.solve(&p, None).unwrap();
        assert!(p.stationary_residual(&r.distribution) < 1e-12);
        assert_eq!(r.iterations(), 1);
    }

    #[test]
    fn coarse_cap_enforced() {
        let p = birth_death(64, 0.4);
        let solver = MultigridSolver::builder(vec![])
            .coarse_direct_max(8)
            .build();
        assert!(matches!(
            solver.solve(&p, None),
            Err(MarkovError::InvalidArgument(_))
        ));
    }

    #[test]
    fn mismatched_partition_rejected() {
        let p = birth_death(16, 0.4);
        let solver = MultigridSolver::builder(PairwiseCoarsening::until(4).levels(32)).build();
        assert!(solver.solve(&p, None).is_err());
    }

    #[test]
    fn stats_expose_hierarchy() {
        let p = birth_death(64, 0.45);
        let solver = MultigridSolver::builder(PairwiseCoarsening::until(8).levels(64))
            .tol(1e-10)
            .build();
        let (_, stats) = solver.solve_with_stats(&p, None).unwrap();
        assert_eq!(stats.level_sizes, vec![64, 32, 16, 8]);
        assert_eq!(stats.levels, 4);
        assert!(!stats.residual_history.is_empty());
        // Residual history is (weakly) decreasing at the tail.
        let h = &stats.residual_history;
        if h.len() >= 2 {
            assert!(h[h.len() - 1] <= h[0]);
        }
    }

    #[test]
    fn invalid_init_rejected() {
        let p = birth_death(16, 0.4);
        let solver = MultigridSolver::builder(PairwiseCoarsening::until(4).levels(16)).build();
        assert!(solver.solve(&p, Some(&[1.0, 2.0])).is_err());
    }
}
