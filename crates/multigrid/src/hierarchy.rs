//! Prepared multigrid hierarchy: the symbolic/numeric split.
//!
//! The aggregation/disaggregation scheme rebuilds every coarse chain from
//! the current iterate *each cycle* — the scheme is nonlinear — but the
//! coarse **patterns** never change: they are pure functions of the fine
//! sparsity pattern and the partition sequence. [`MgHierarchy`] exploits
//! that by running the symbolic analysis once
//! ([`stochcdr_markov::lumping::LumpPlan`] per level) and reducing every
//! subsequent cycle to numeric refreshes into preallocated storage:
//!
//! * per level: the coarse [`StochasticMatrix`] (pattern fixed, values
//!   rewritten), the lumping workspace (block weights + per-state shares),
//!   the restricted iterate, and smoothing scratch;
//! * at the coarsest level: one dense scratch matrix for the in-place GTH
//!   elimination plus its smoothing/residual buffers;
//! * at the finest level: a residual scratch vector.
//!
//! After [`MultigridSolver::prepare`](crate::MultigridSolver::prepare)
//! returns, [`MultigridSolver::cycle`](crate::MultigridSolver::cycle)
//! performs **zero heap allocations** (with instrumentation disabled and a
//! single worker thread; at higher thread counts the persistent pool's
//! workers are spawned once, ahead of the first cycle, and parked between
//! dispatches). Values produced are bit-identical to the from-scratch
//! path at every thread count.
//!
//! **Invalidation rules**: a hierarchy is valid for exactly one (fine
//! pattern, partition sequence) pair. Changing transition *values* never
//! invalidates it; changing the sparsity pattern or any partition requires
//! a fresh `prepare`. [`MgHierarchy::matches`] is the guard callers use
//! when recycling hierarchies across solves (e.g. warm-started sweeps).

use std::sync::Arc;

use stochcdr_linalg::{DenseMatrix, TransitionOp};
use stochcdr_markov::lumping::{
    lump_op_with_plan, lump_with_plan, LumpPlan, LumpWorkspace, Partition,
};
use stochcdr_markov::{ImplicitStochastic, MarkovError, Result, StochasticMatrix};

/// Wall-clock seconds accumulated per multigrid phase.
///
/// Collected unconditionally (two `Instant` reads per phase — negligible
/// next to the numeric work) so phase attribution does not require
/// instrumentation to be on. Wall times are advisory: they vary run to
/// run even though the arithmetic is bit-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MgPhases {
    /// One-time hierarchy construction: symbolic analysis (when not
    /// injected from a cache) plus the initial numeric refresh.
    pub setup_secs: f64,
    /// Pre- and post-smoothing sweeps across all levels.
    pub smooth_secs: f64,
    /// Coarse-chain numeric refresh + iterate restriction.
    pub aggregate_secs: f64,
    /// Prolongation of coarse corrections back to finer levels.
    pub disaggregate_secs: f64,
    /// Direct (GTH) solves at the coarsest level.
    pub coarse_solve_secs: f64,
    /// Per-cycle residual evaluation on the fine chain.
    pub residual_secs: f64,
}

impl MgPhases {
    /// Total seconds across the cycle-loop phases (setup excluded).
    pub fn cycle_total_secs(&self) -> f64 {
        self.smooth_secs
            + self.aggregate_secs
            + self.disaggregate_secs
            + self.coarse_solve_secs
            + self.residual_secs
    }
}

/// Per-level preallocated state: the coarse chain with its fixed pattern,
/// the lumping workspace, the restricted iterate, and smoothing scratch
/// sized for the *fine* side of this level's transfer.
pub(crate) struct MgLevel {
    /// Coarse chain for this level; values refreshed each cycle.
    pub(crate) coarse: StochasticMatrix,
    /// Block weights + per-state shares from the latest refresh.
    pub(crate) ws: LumpWorkspace,
    /// Restricted iterate (length = this level's block count).
    pub(crate) xc: Vec<f64>,
    /// Diagonal scratch for smoothing the fine side of this transfer.
    pub(crate) diag: Vec<f64>,
    /// Sweep scratch for smoothing the fine side of this transfer.
    pub(crate) sm: Vec<f64>,
}

/// Coarsest-level scratch: a dense matrix reused by the in-place GTH
/// elimination plus smoothing/residual buffers for the fallback path.
pub(crate) struct CoarseWs {
    /// Dense scratch the elimination destroys each coarse solve.
    pub(crate) dense: DenseMatrix,
    /// Residual scratch (coarsest size).
    pub(crate) resid: Vec<f64>,
    /// Diagonal scratch for the reducible-fallback smoothing.
    pub(crate) diag: Vec<f64>,
    /// Sweep scratch for the reducible-fallback smoothing.
    pub(crate) sm: Vec<f64>,
}

/// A prepared multigrid hierarchy: cached symbolic plans plus every buffer
/// the cycle loop needs, so cycling is numeric-only and allocation-free.
///
/// Built by [`MultigridSolver::prepare`](crate::MultigridSolver::prepare);
/// driven by [`MultigridSolver::cycle`](crate::MultigridSolver::cycle) or
/// [`MultigridSolver::solve_prepared`](crate::MultigridSolver::solve_prepared).
pub struct MgHierarchy {
    /// One symbolic plan per transfer, fine to coarse. Shared (`Arc`) so
    /// sweep drivers can cache plans across solver instances.
    pub(crate) plans: Arc<Vec<LumpPlan>>,
    pub(crate) levels: Vec<MgLevel>,
    pub(crate) gth: CoarseWs,
    /// Fine-level residual scratch.
    pub(crate) resid: Vec<f64>,
    pub(crate) fine_n: usize,
    pub(crate) fine_nnz: usize,
    /// Fine-level apply cost in scalar multiply-adds, the weight the
    /// cycle-equivalents accounting uses for level 0. Equals `fine_nnz`
    /// for materialized chains; for the implicit path it is the
    /// operator's true per-apply work ([`TransitionOp::apply_cost`]),
    /// which the compact `nnz` badly understates.
    pub(crate) fine_work: usize,
    pub(crate) phases: MgPhases,
}

impl MgHierarchy {
    /// Builds the numeric side of a hierarchy from prevalidated plans:
    /// allocates every level's storage and refreshes each coarse chain
    /// with uniform weights (the same chains FMG initialization uses).
    pub(crate) fn build(
        p: &StochasticMatrix,
        partitions: &[Partition],
        plans: Arc<Vec<LumpPlan>>,
    ) -> Result<Self> {
        if plans.len() != partitions.len() {
            return Err(MarkovError::InvalidArgument(format!(
                "hierarchy has {} plans for {} partitions",
                plans.len(),
                partitions.len()
            )));
        }
        let mut levels: Vec<MgLevel> = Vec::with_capacity(plans.len());
        for (k, plan) in plans.iter().enumerate() {
            let (fine_n, fine_nnz) = match levels.last() {
                None => (p.n(), p.nnz()),
                Some(prev) => (prev.coarse.n(), prev.coarse.nnz()),
            };
            if plan.fine_n() != fine_n || plan.fine_nnz() != fine_nnz {
                return Err(MarkovError::InvalidArgument(format!(
                    "plan {k} expects a {}-state/{}-entry fine chain, level has {fine_n}/{fine_nnz}",
                    plan.fine_n(),
                    plan.fine_nnz()
                )));
            }
            let mut ws = LumpWorkspace::for_plan(plan);
            let ones = vec![1.0; plan.fine_n()];
            let coarse = {
                let fine = match levels.last() {
                    None => p,
                    Some(prev) => &prev.coarse,
                };
                lump_with_plan(fine, &partitions[k], &ones, plan, &mut ws)?
            };
            levels.push(MgLevel {
                coarse,
                ws,
                xc: vec![0.0; plan.block_count()],
                diag: vec![0.0; plan.fine_n()],
                sm: vec![0.0; plan.fine_n()],
            });
        }
        let nc = levels.last().map_or(p.n(), |l| l.coarse.n());
        Ok(MgHierarchy {
            plans,
            levels,
            gth: CoarseWs {
                dense: DenseMatrix::zeros(nc, nc),
                resid: vec![0.0; nc],
                diag: vec![0.0; nc],
                sm: vec![0.0; nc],
            },
            resid: vec![0.0; p.n()],
            fine_n: p.n(),
            fine_nnz: p.nnz(),
            fine_work: p.nnz(),
            phases: MgPhases::default(),
        })
    }

    /// Builds a hierarchy whose finest level is a matrix-free
    /// [`ImplicitStochastic`] chain: the level-0 transfer uses an
    /// operator-built plan ([`LumpPlan::from_op`]) that re-traverses the
    /// operator's rows instead of gathering from materialized storage, so
    /// only the coarse levels are ever materialized. When `injected` is
    /// `None` the symbolic analysis runs here, interleaved with the coarse
    /// chain construction (each plan needs the previous level's pattern).
    ///
    /// The level-0 smoothing diagonal is filled once from the operator —
    /// the implicit chain's values are fixed for the borrow's lifetime, so
    /// cycles never recompute it (and the Kronecker diagonal expansion
    /// allocates, which the allocation-free cycle loop must avoid).
    pub(crate) fn build_op(
        imp: &ImplicitStochastic<'_>,
        partitions: &[Partition],
        injected: Option<Arc<Vec<LumpPlan>>>,
    ) -> Result<Self> {
        if partitions.is_empty() {
            return Err(MarkovError::InvalidArgument(
                "implicit fine grid needs at least one coarsening level: the coarsest \
                 level must be materialized for the direct solve"
                    .into(),
            ));
        }
        if let Some(pl) = &injected {
            if pl.len() != partitions.len() {
                return Err(MarkovError::InvalidArgument(format!(
                    "hierarchy has {} plans for {} partitions",
                    pl.len(),
                    partitions.len()
                )));
            }
        }
        let mut built: Vec<LumpPlan> = Vec::with_capacity(partitions.len());
        let mut levels: Vec<MgLevel> = Vec::with_capacity(partitions.len());
        for (k, part) in partitions.iter().enumerate() {
            let plan: &LumpPlan = match &injected {
                Some(pl) => &pl[k],
                None => {
                    let p = if k == 0 {
                        LumpPlan::from_op(imp, part)?
                    } else {
                        LumpPlan::build(&levels[k - 1].coarse, part)?
                    };
                    built.push(p);
                    built.last().expect("just pushed")
                }
            };
            if plan.is_operator_plan() != (k == 0) {
                return Err(MarkovError::InvalidArgument(format!(
                    "plan {k}: the finest plan must be operator-built (LumpPlan::from_op), \
                     coarser plans gather-built"
                )));
            }
            let fine_n = match levels.last() {
                None => imp.n(),
                Some(prev) => prev.coarse.n(),
            };
            if plan.fine_n() != fine_n {
                return Err(MarkovError::InvalidArgument(format!(
                    "plan {k} expects a {}-state fine chain, level has {fine_n}",
                    plan.fine_n()
                )));
            }
            if let Some(prev_nnz) = levels.last().map(|l| l.coarse.nnz()) {
                if plan.fine_nnz() != prev_nnz {
                    return Err(MarkovError::InvalidArgument(format!(
                        "plan {k} expects {} fine entries, level has {prev_nnz}",
                        plan.fine_nnz()
                    )));
                }
            }
            let mut ws = LumpWorkspace::for_plan(plan);
            let ones = vec![1.0; plan.fine_n()];
            let coarse = if k == 0 {
                lump_op_with_plan(imp, part, &ones, plan, &mut ws)?
            } else {
                let fine = &levels[k - 1].coarse;
                lump_with_plan(fine, part, &ones, plan, &mut ws)?
            };
            levels.push(MgLevel {
                coarse,
                ws,
                xc: vec![0.0; plan.block_count()],
                diag: vec![0.0; plan.fine_n()],
                sm: vec![0.0; plan.fine_n()],
            });
        }
        imp.diagonal_into(&mut levels[0].diag);
        let plans = match injected {
            Some(pl) => pl,
            None => Arc::new(built),
        };
        let fine_nnz = plans[0].fine_nnz();
        let nc = levels.last().expect("non-empty").coarse.n();
        Ok(MgHierarchy {
            plans,
            levels,
            gth: CoarseWs {
                dense: DenseMatrix::zeros(nc, nc),
                resid: vec![0.0; nc],
                diag: vec![0.0; nc],
                sm: vec![0.0; nc],
            },
            resid: vec![0.0; imp.n()],
            fine_n: imp.n(),
            fine_nnz,
            fine_work: imp.apply_cost(),
            phases: MgPhases::default(),
        })
    }

    /// Number of levels including the fine grid.
    pub fn levels(&self) -> usize {
        self.levels.len() + 1
    }

    /// State count at each level, fine first.
    pub fn level_sizes(&self) -> Vec<usize> {
        let mut sizes = Vec::with_capacity(self.levels.len() + 1);
        sizes.push(self.fine_n);
        sizes.extend(self.levels.iter().map(|l| l.coarse.n()));
        sizes
    }

    /// The shared symbolic plans, for caching across solver instances.
    pub fn plans(&self) -> &Arc<Vec<LumpPlan>> {
        &self.plans
    }

    /// Whether this hierarchy is valid for `p`: same state count and same
    /// sparsity-pattern size as the chain it was prepared for. (Values may
    /// differ freely — the symbolic side only depends on the pattern.)
    pub fn matches(&self, p: &StochasticMatrix) -> bool {
        self.fine_n == p.n() && self.fine_nnz == p.nnz()
    }

    /// Whether this hierarchy is valid for the implicit chain `imp`: same
    /// state count and an operator-built finest plan. The entry count
    /// cannot be cross-checked cheaply (product-form operators report
    /// their compact storage size, while the plan counts the logical
    /// entries it traverses), so callers must keep the operator's sparsity
    /// pattern fixed across reuse — the same contract
    /// [`matches`](Self::matches) states for values vs. patterns.
    pub fn matches_op(&self, imp: &ImplicitStochastic<'_>) -> bool {
        self.fine_n == imp.n() && self.plans.first().is_some_and(LumpPlan::is_operator_plan)
    }

    /// Phase-time totals accumulated so far (setup plus all cycles run
    /// against this hierarchy).
    pub fn phases(&self) -> &MgPhases {
        &self.phases
    }
}
