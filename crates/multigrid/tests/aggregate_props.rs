//! Property tests for variable-size strength aggregation.
//!
//! The coarsening contract: every state lands in exactly one aggregate,
//! aggregate sizes never exceed the configured bound, strict-pairs mode
//! is unchanged by the growth machinery, and the full
//! `levels_with_plans` output — partitions and symbolic plans — is a
//! pure function of the chain, bit-identical at any worker thread count.

use proptest::prelude::*;
use stochcdr_linalg::{par, CooMatrix};
use stochcdr_markov::StochasticMatrix;
use stochcdr_multigrid::StrengthCoarsening;

const N: usize = 24;

/// Random row-stochastic matrix on `N` states: every row gets a self
/// loop plus a few weighted targets, then normalizes.
fn chain() -> impl Strategy<Value = StochasticMatrix> {
    prop::collection::vec(
        (
            prop::collection::vec((0..N, 0.05f64..1.0), 1..5),
            0.05f64..1.0,
        ),
        N,
    )
    .prop_map(|rows| {
        let mut coo = CooMatrix::new(N, N);
        for (i, (targets, self_w)) in rows.into_iter().enumerate() {
            let total: f64 = self_w + targets.iter().map(|&(_, v)| v).sum::<f64>();
            coo.push(i, i, self_w / total);
            for (j, v) in targets {
                coo.push(i, j, v / total);
            }
            // A weak ring keeps the chain irreducible.
            coo.push(i, (i + 1) % N, 1e-3);
        }
        let m = coo.to_csr();
        let sums = m.row_sums();
        let factors: Vec<f64> = sums.iter().map(|s| 1.0 / s).collect();
        StochasticMatrix::new(m.scale_rows(&factors)).expect("rows normalized")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every state lands in exactly one aggregate and sizes respect the
    /// configured `2..=8` bound at every level of the hierarchy.
    #[test]
    fn aggregates_partition_the_states_within_the_size_bound(
        p in chain(),
        max in 2usize..=8,
    ) {
        let parts = StrengthCoarsening::until(4)
            .aggregates(max)
            .levels(&p)
            .expect("levels");
        let mut n = N;
        for part in &parts {
            prop_assert_eq!(part.n(), n);
            let mut sizes = vec![0usize; part.block_count()];
            for i in 0..part.n() {
                let b = part.block_of(i);
                prop_assert!(b < part.block_count());
                sizes[b] += 1;
            }
            // Exactly-one-aggregate coverage: block sizes add back up to
            // the level size, and no block is empty or over the bound.
            prop_assert_eq!(sizes.iter().sum::<usize>(), part.n());
            for &s in &sizes {
                prop_assert!(s >= 1 && s <= max, "aggregate size {} out of 1..={}", s, max);
            }
            // Coarsening must make progress (some aggregate has >= 2
            // states) or the loop in `levels` would never terminate.
            prop_assert!(part.block_count() < part.n());
            n = part.block_count();
        }
    }

    /// The growth machinery leaves strict-pairs mode (`aggregates(2)`)
    /// exactly where the historical pairwise matcher put it.
    #[test]
    fn pairwise_mode_is_unchanged_by_growth_machinery(p in chain()) {
        let plain = StrengthCoarsening::until(4).levels(&p).expect("plain");
        let capped = StrengthCoarsening::until(4)
            .aggregates(2)
            .levels(&p)
            .expect("capped");
        prop_assert_eq!(plain.len(), capped.len());
        for (a, b) in plain.iter().zip(&capped) {
            prop_assert_eq!(a.labels(), b.labels());
        }
    }

    /// `levels_with_plans` output is invariant to the worker thread
    /// count: partitions and symbolic plan patterns are bit-identical at
    /// 1 and 4 threads.
    #[test]
    fn levels_with_plans_is_thread_count_invariant(
        p in chain(),
        max in 2usize..=8,
    ) {
        par::set_threads(Some(1));
        let serial = StrengthCoarsening::until(4)
            .aggregates(max)
            .levels_with_plans(&p);
        par::set_threads(Some(4));
        let threaded = StrengthCoarsening::until(4)
            .aggregates(max)
            .levels_with_plans(&p);
        par::set_threads(None);
        let (parts1, plans1) = serial.expect("serial levels");
        let (parts4, plans4) = threaded.expect("threaded levels");
        prop_assert_eq!(parts1.len(), parts4.len());
        for (a, b) in parts1.iter().zip(&parts4) {
            prop_assert_eq!(a.labels(), b.labels());
        }
        prop_assert_eq!(plans1.len(), plans4.len());
        for (a, b) in plans1.iter().zip(&plans4) {
            prop_assert_eq!(a.fine_n(), b.fine_n());
            prop_assert_eq!(a.fine_nnz(), b.fine_nnz());
            prop_assert_eq!(a.block_count(), b.block_count());
        }
    }
}
