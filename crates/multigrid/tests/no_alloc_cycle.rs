//! Proof of the symbolic/numeric split's headline claim: after
//! [`MultigridSolver::prepare`], a cycle performs **zero heap
//! allocations**.
//!
//! Every coarse operator, transpose, scatter map, and scratch vector is
//! owned by the [`MgHierarchy`]; the numeric refresh and the smoothers
//! write into those buffers in place. A counting wrapper around the
//! system allocator (same technique as `stochcdr-obs`'s zero-overhead
//! proof) tallies allocations across warm cycles and demands none.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use stochcdr_linalg::{par, CooMatrix};
use stochcdr_markov::lumping::Partition;
use stochcdr_markov::StochasticMatrix;
use stochcdr_multigrid::{CycleKind, MultigridSolver, Smoother};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Smallest allocation delta across `attempts` runs of `f`: the counter
/// is process-global, so another harness thread can allocate inside a
/// window, but a genuine allocation in the code under test repeats every
/// attempt.
fn min_delta<F: FnMut()>(mut f: F, attempts: usize) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..attempts {
        let before = alloc_count();
        f();
        let delta = alloc_count() - before;
        best = best.min(delta);
        if best == 0 {
            break;
        }
    }
    best
}

/// Ring chain of `n` states with a small self loop.
fn ring(n: usize) -> StochasticMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, (i + 1) % n, 0.55);
        coo.push(i, (i + n - 1) % n, 0.35);
        coo.push(i, i, 0.1);
    }
    StochasticMatrix::new(coo.to_csr()).unwrap()
}

/// Pairwise partitions halving the state count `levels` times.
fn pair_partitions(mut n: usize, levels: usize) -> Vec<Partition> {
    let mut parts = Vec::new();
    for _ in 0..levels {
        parts.push(Partition::from_labels((0..n).map(|i| i / 2).collect()).unwrap());
        n /= 2;
    }
    parts
}

#[test]
fn warm_cycles_do_not_allocate() {
    // Obs off and a serial pool: the claim is about the solver's own
    // buffers, not about thread-spawn or sink bookkeeping.
    let _ = stochcdr_obs::uninstall();
    par::set_threads(Some(1));

    let n = 64;
    let p = ring(n);
    for kind in [CycleKind::V, CycleKind::W] {
        let solver = MultigridSolver::builder(pair_partitions(n, 3))
            .cycle(kind)
            .smoother(Smoother::GaussSeidel)
            .pre_sweeps(1)
            .post_sweeps(2)
            .tol(1e-12)
            .build();
        let mut h = solver.prepare(&p).unwrap();
        let mut x = vec![1.0 / n as f64; n];
        // Warm cycles: touch every code path (refresh, recursion, GTH)
        // once before the measured window.
        for _ in 0..3 {
            solver.cycle(&p, &mut h, &mut x).unwrap();
        }
        let allocated = min_delta(
            || {
                let res = solver.cycle(&p, &mut h, &mut x).unwrap();
                assert!(res.is_finite());
            },
            5,
        );
        assert_eq!(
            allocated, 0,
            "{kind:?}-cycle allocated {allocated} times after setup"
        );
    }
    par::set_threads(None);
}
