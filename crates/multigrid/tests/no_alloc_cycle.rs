//! Proof of the symbolic/numeric split's headline claim: after
//! [`MultigridSolver::prepare`], a cycle performs **zero heap
//! allocations**.
//!
//! Every coarse operator, transpose, scatter map, and scratch vector is
//! owned by the [`MgHierarchy`]; the numeric refresh and the smoothers
//! write into those buffers in place. The workspace's accounting
//! allocator ([`stochcdr_obs::mem::TrackingAlloc`]) tallies allocations
//! across warm cycles and demands none — the same instrument CI's
//! mem-smoke job runs.

use stochcdr_fsm::KroneckerOp;
use stochcdr_linalg::{par, CooMatrix};
use stochcdr_markov::lumping::Partition;
use stochcdr_markov::{ImplicitStochastic, StochasticMatrix};
use stochcdr_multigrid::{CycleKind, MultigridSolver, Smoother};
use stochcdr_obs::mem;

#[global_allocator]
static GLOBAL: mem::TrackingAlloc = mem::TrackingAlloc::new();

/// Ring chain of `n` states with a small self loop.
fn ring(n: usize) -> StochasticMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, (i + 1) % n, 0.55);
        coo.push(i, (i + n - 1) % n, 0.35);
        coo.push(i, i, 0.1);
    }
    StochasticMatrix::new(coo.to_csr()).unwrap()
}

/// Pairwise partitions halving the state count `levels` times.
fn pair_partitions(mut n: usize, levels: usize) -> Vec<Partition> {
    let mut parts = Vec::new();
    for _ in 0..levels {
        parts.push(Partition::from_labels((0..n).map(|i| i / 2).collect()).unwrap());
        n /= 2;
    }
    parts
}

#[test]
fn warm_cycles_do_not_allocate() {
    // Obs off and a serial pool: the claim is about the solver's own
    // buffers, not about thread-spawn or sink bookkeeping.
    let _ = stochcdr_obs::uninstall();
    par::set_threads(Some(1));

    let n = 64;
    let p = ring(n);
    assert!(
        mem::tracking_active(),
        "TrackingAlloc must be installed for this proof to mean anything"
    );
    for kind in [CycleKind::V, CycleKind::F, CycleKind::W] {
        let solver = MultigridSolver::builder(pair_partitions(n, 3))
            .cycle(kind)
            .smoother(Smoother::GaussSeidel)
            .pre_sweeps(1)
            .post_sweeps(2)
            .tol(1e-12)
            .build();
        let mut h = solver.prepare(&p).unwrap();
        let mut x = vec![1.0 / n as f64; n];
        // Warm cycles: touch every code path (refresh, recursion, GTH)
        // once before the measured window.
        for _ in 0..3 {
            solver.cycle(&p, &mut h, &mut x).unwrap();
        }
        let allocated = mem::min_alloc_delta(
            || {
                let res = solver.cycle(&p, &mut h, &mut x).unwrap();
                assert!(res.is_finite());
            },
            5,
        );
        assert_eq!(
            allocated, 0,
            "{kind:?}-cycle allocated {allocated} times after setup"
        );
    }
    par::set_threads(None);
}

/// The same zero-allocation claim for the matrix-free fine grid: after
/// [`MultigridSolver::prepare_op`], a warm [`MultigridSolver::cycle_op`]
/// against a Kronecker product-form operator performs no heap
/// allocations. In particular the Jacobi smoother's per-cycle diagonal
/// comes from `KroneckerOp::diagonal_into` writing into the hierarchy's
/// hoisted buffer, not a fresh vector.
#[test]
fn warm_implicit_cycles_do_not_allocate() {
    let _ = stochcdr_obs::uninstall();
    par::set_threads(Some(1));

    // Two ring factors kept in product form: a 64-state joint chain whose
    // fine level is never materialized.
    let op = KroneckerOp::new(vec![ring(8).matrix().clone(), ring(8).matrix().clone()]);
    let tr = op.transposed(); // cached: built once, outside the window
    let imp = ImplicitStochastic::with_tolerance(&op, tr, 1e-9).unwrap();
    let n = op.dim();
    assert!(
        mem::tracking_active(),
        "TrackingAlloc must be installed for this proof to mean anything"
    );
    for smoother in [Smoother::Jacobi { omega: 0.8 }, Smoother::GaussSeidel] {
        let solver = MultigridSolver::builder(pair_partitions(n, 3))
            .cycle(CycleKind::V)
            .smoother(smoother.clone())
            .pre_sweeps(1)
            .post_sweeps(2)
            .tol(1e-12)
            .build();
        let mut h = solver.prepare_op(&imp).unwrap();
        let mut x = vec![1.0 / n as f64; n];
        for _ in 0..3 {
            solver.cycle_op(&imp, &mut h, &mut x).unwrap();
        }
        let allocated = mem::min_alloc_delta(
            || {
                let res = solver.cycle_op(&imp, &mut h, &mut x).unwrap();
                assert!(res.is_finite());
            },
            5,
        );
        assert_eq!(
            allocated, 0,
            "implicit {smoother:?} cycle allocated {allocated} times after setup"
        );
    }
    par::set_threads(None);
}
