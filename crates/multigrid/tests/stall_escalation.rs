//! Stall detection and cycle escalation under the determinism contract.
//!
//! The adaptive controller and the stall-armed Krylov window are pure
//! functions of the residual history, so the whole decision trajectory —
//! which cycle the stall event fires on, when the schedule escalates,
//! when the accelerator arms — must be bit-identical at any worker
//! thread count. The stall event must also fire exactly **once** per
//! solve even though escalated W-cycles re-enter every level `2^ℓ`
//! times: stall detection lives on the outer iteration's
//! `ConvergenceTrace`, never inside the recursion.

use stochcdr_linalg::{par, vecops, CooMatrix};
use stochcdr_markov::stationary::{GthSolver, StationarySolver};
use stochcdr_markov::StochasticMatrix;
use stochcdr_multigrid::{
    CycleKind, CycleSchedule, KrylovAccel, MultigridSolver, PairwiseCoarsening, Smoother,
};
use stochcdr_obs::artifact::Artifact;
use stochcdr_obs::{self as obs, JsonLinesSink};

/// Nearly completely decomposable chain: `k` clusters of `m` birth–death
/// states with weak coupling `eps` between clusters. Stiff enough that a
/// deliberately underdamped smoother stalls the V-cycle.
fn ncd_chain(k: usize, m: usize, eps: f64) -> StochasticMatrix {
    let n = k * m;
    let (up, down) = (0.7 * (1.0 - eps), 0.3 * (1.0 - eps));
    let mut coo = CooMatrix::new(n, n);
    for c in 0..k {
        for i in 0..m {
            let s = c * m + i;
            if i == 0 {
                coo.push(s, s, down);
            } else {
                coo.push(s, s - 1, down);
            }
            if i == m - 1 {
                coo.push(s, s, up);
            } else {
                coo.push(s, s + 1, up);
            }
            coo.push(s, ((c + 1) % k) * m + i, eps);
        }
    }
    StochasticMatrix::new(coo.to_csr()).unwrap()
}

/// What one observed solve did, reduced to the exactly-comparable parts.
struct Run {
    distribution: Vec<f64>,
    residual_history: Vec<f64>,
    cycle_equivalents: f64,
    final_cycle: CycleKind,
    stalled_at: Option<usize>,
    stall_events: u64,
    escalations: u64,
    armed_events: u64,
    krylov_windows: u64,
}

fn observed_solve(p: &StochasticMatrix, threads: usize) -> Run {
    let solver = MultigridSolver::builder(PairwiseCoarsening::until(4).levels(p.n()))
        .schedule(CycleSchedule::Adaptive)
        .accel(KrylovAccel::on_stall(6))
        .smoother(Smoother::Jacobi { omega: 0.15 })
        .pre_sweeps(0)
        .post_sweeps(1)
        .tol(1e-12)
        .max_cycles(20_000)
        .build();

    let _ = obs::uninstall();
    let (sink, buf) = JsonLinesSink::to_shared_buffer();
    obs::install(Box::new(sink));
    par::set_threads(Some(threads));
    let (result, stats) = solver.solve_with_stats(p, None).unwrap();
    par::set_threads(None);
    obs::uninstall();

    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let artifact = Artifact::load_jsonl(&text).expect("artifact parses");
    let count = |name: &str| artifact.events.get(name).copied().unwrap_or(0);
    Run {
        distribution: result.distribution,
        residual_history: stats.residual_history.clone(),
        cycle_equivalents: stats.cycle_equivalents,
        final_cycle: stats.final_cycle,
        stalled_at: result.report.convergence.stalled_at,
        stall_events: count("multigrid.stall"),
        escalations: count("multigrid.cycle_type"),
        armed_events: count("solver.krylov.armed"),
        krylov_windows: stats.krylov_windows,
    }
}

#[test]
fn stall_and_escalation_fire_bit_identically_across_thread_counts() {
    let p = ncd_chain(4, 8, 0.2);
    let runs: Vec<Run> = [1usize, 4]
        .into_iter()
        .map(|threads| observed_solve(&p, threads))
        .collect();

    // The solve itself is honest: it lands on the direct answer.
    let gth = GthSolver::new().solve(&p, None).unwrap();
    assert!(vecops::dist1(&runs[0].distribution, &gth.distribution) < 1e-8);

    for r in &runs {
        // Once-only: the underdamped smoother stalls this chain and the
        // controller escalates into W-cycles (recursion re-enters every
        // level 2^ℓ times), yet exactly one stall event fires.
        assert_eq!(
            r.stall_events, 1,
            "stall must fire exactly once across W-cycle recursion"
        );
        assert!(r.stalled_at.is_some(), "summary must carry the stall cycle");
        assert!(
            r.escalations >= 1,
            "the stalling chain must trigger at least one escalation"
        );
        assert_eq!(
            r.final_cycle,
            CycleKind::W,
            "a persistent stall must walk the schedule up to W"
        );
        // `on_stall` acceleration arms exactly once, when the detector
        // fires, and then actually does work.
        assert_eq!(r.armed_events, 1);
        assert!(r.krylov_windows > 0);
    }

    // Bit-identity at 1 vs 4 worker threads: same distribution bits,
    // same residual trajectory, same controller decisions, same events.
    let (a, b) = (&runs[0], &runs[1]);
    assert_eq!(a.distribution.len(), b.distribution.len());
    for (x, y) in a.distribution.iter().zip(&b.distribution) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.residual_history.len(), b.residual_history.len());
    for (x, y) in a.residual_history.iter().zip(&b.residual_history) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.cycle_equivalents.to_bits(), b.cycle_equivalents.to_bits());
    assert_eq!(a.final_cycle, b.final_cycle);
    assert_eq!(a.stalled_at, b.stalled_at);
    assert_eq!(a.escalations, b.escalations);
    assert_eq!(a.krylov_windows, b.krylov_windows);
}
