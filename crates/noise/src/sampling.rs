//! Random sampling from noise models — the Monte-Carlo substrate.
//!
//! The paper's core argument is that Monte-Carlo simulation cannot verify
//! BERs of 1e-10; the workspace still implements MC simulation to
//! cross-validate the analysis at *high* BER operating points. This module
//! provides the samplers: inverse-CDF sampling of a [`DiscreteDist`] (with
//! `O(log n)` lookup) and a Box–Muller Gaussian sampler.

use rand::Rng;

use crate::discretize::DiscreteDist;

/// Pre-processed sampler over a [`DiscreteDist`] using cumulative inversion.
///
/// # Example
///
/// ```
/// use stochcdr_noise::DiscreteDist;
/// use stochcdr_noise::sampling::DiscreteSampler;
/// use rand::SeedableRng;
///
/// let d = DiscreteDist::two_point(-1, 0.5, 1).unwrap();
/// let sampler = DiscreteSampler::new(&d);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = sampler.sample(&mut rng);
/// assert!(x == -1 || x == 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteSampler {
    offsets: Vec<i32>,
    /// Cumulative probabilities; last entry is exactly 1.0.
    cdf: Vec<f64>,
}

impl DiscreteSampler {
    /// Builds a sampler from a discrete distribution.
    pub fn new(dist: &DiscreteDist) -> Self {
        let mut offsets = Vec::with_capacity(dist.support_len());
        let mut cdf = Vec::with_capacity(dist.support_len());
        let mut acc = 0.0;
        for (k, p) in dist.iter() {
            acc += p;
            offsets.push(k);
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0; // absorb round-off so sampling never falls off the end
        }
        DiscreteSampler { offsets, cdf }
    }

    /// Draws one grid offset.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i32 {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u);
        self.offsets[idx.min(self.offsets.len() - 1)]
    }
}

/// Draws a standard-normal sample via the Box–Muller transform.
///
/// Uses the polar (Marsaglia) variant to avoid trigonometric calls.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws a Gaussian sample with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std < 0`.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    assert!(std >= 0.0, "standard deviation must be non-negative");
    mean + std * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn discrete_sampler_matches_pmf() {
        let d = DiscreteDist::from_pairs([(-2, 0.2), (0, 0.5), (3, 0.3)]).unwrap();
        let s = DiscreteSampler::new(&d);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(s.sample(&mut rng)).or_insert(0usize) += 1;
        }
        for (k, p) in d.iter() {
            let freq = counts[&k] as f64 / n as f64;
            assert!((freq - p).abs() < 0.01, "offset {k}: {freq} vs {p}");
        }
        assert_eq!(counts.len(), 3);
    }

    #[test]
    fn point_mass_always_same() {
        let s = DiscreteSampler::new(&DiscreteDist::point(7));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 7);
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = gaussian(&mut rng, 2.0, 3.0);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn standard_normal_tail_fraction() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let beyond_2: usize = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count();
        let frac = beyond_2 as f64 / n as f64;
        assert!((frac - 0.0455).abs() < 0.01, "2-sigma fraction {frac}");
    }
}
