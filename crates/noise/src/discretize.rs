//! Grid discretization of noise distributions.
//!
//! "One way to analyze the system ... is using the machinery of
//! discrete-time Markov chains, which requires that we discretize the phase
//! error and also the noise sources to obtain a discrete state-space."
//! A [`DiscreteDist`] is a probability mass function over *integer grid
//! offsets*: offset `k` means a jitter amplitude of `k · δ` where `δ` is the
//! phase-error grid step.

use crate::dist::Distribution;
use crate::{NoiseError, Result};
use stochcdr_obs as obs;

/// A finite probability mass function over integer grid offsets.
///
/// Offsets are expressed in units of the phase-error grid step `δ`; the
/// support is contiguous `[min_offset, max_offset]` with possibly-zero
/// entries stored explicitly (they are pruned at construction).
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteDist {
    offsets: Vec<i32>,
    probs: Vec<f64>,
}

impl DiscreteDist {
    /// Builds a distribution from `(offset, probability)` pairs.
    ///
    /// Pairs may be unordered; duplicate offsets are summed; zero-mass
    /// entries are dropped; the result is normalized to total mass one.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::InvalidPmf`] if the support is empty after
    /// pruning, any mass is negative/non-finite, or the total mass is zero.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (i32, f64)>) -> Result<Self> {
        let mut map = std::collections::BTreeMap::<i32, f64>::new();
        for (k, p) in pairs {
            if !p.is_finite() || p < 0.0 {
                return Err(NoiseError::InvalidPmf(format!("mass {p} at offset {k}")));
            }
            if p > 0.0 {
                *map.entry(k).or_insert(0.0) += p;
            }
        }
        if map.is_empty() {
            return Err(NoiseError::InvalidPmf("empty support".into()));
        }
        let total: f64 = map.values().sum();
        if total <= 0.0 {
            return Err(NoiseError::InvalidPmf("zero total mass".into()));
        }
        let (offsets, probs): (Vec<i32>, Vec<f64>) =
            map.into_iter().map(|(k, p)| (k, p / total)).unzip();
        Ok(DiscreteDist { offsets, probs })
    }

    /// The deterministic distribution concentrated at one offset.
    pub fn point(offset: i32) -> Self {
        DiscreteDist {
            offsets: vec![offset],
            probs: vec![1.0],
        }
    }

    /// A two-point distribution: `P(a) = pa`, `P(b) = 1 − pa`.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::InvalidPmf`] if `pa ∉ [0, 1]` or `a == b` with
    /// degenerate mass handled as a point mass.
    pub fn two_point(a: i32, pa: f64, b: i32) -> Result<Self> {
        if !(0.0..=1.0).contains(&pa) {
            return Err(NoiseError::InvalidPmf(format!("pa = {pa} outside [0,1]")));
        }
        Self::from_pairs([(a, pa), (b, 1.0 - pa)])
    }

    /// Support/probability pairs, ascending by offset.
    pub fn iter(&self) -> impl Iterator<Item = (i32, f64)> + '_ {
        self.offsets.iter().copied().zip(self.probs.iter().copied())
    }

    /// Number of support points.
    pub fn support_len(&self) -> usize {
        self.offsets.len()
    }

    /// Smallest offset with positive mass.
    pub fn min_offset(&self) -> i32 {
        self.offsets[0]
    }

    /// Largest offset with positive mass.
    pub fn max_offset(&self) -> i32 {
        *self.offsets.last().expect("non-empty by construction")
    }

    /// Total mass (should be 1 up to round-off; exposed for validation).
    pub fn total_mass(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Mean offset in grid units.
    pub fn mean_offset(&self) -> f64 {
        self.iter().map(|(k, p)| k as f64 * p).sum()
    }

    /// Variance in grid units squared.
    pub fn variance_offset(&self) -> f64 {
        let m = self.mean_offset();
        self.iter().map(|(k, p)| (k as f64 - m).powi(2) * p).sum()
    }

    /// Probability mass at a given offset (zero if outside the support).
    pub fn prob(&self, offset: i32) -> f64 {
        match self.offsets.binary_search(&offset) {
            Ok(i) => self.probs[i],
            Err(_) => 0.0,
        }
    }

    /// `P(X > k)`.
    pub fn prob_gt(&self, k: i32) -> f64 {
        self.iter().filter(|&(o, _)| o > k).map(|(_, p)| p).sum()
    }

    /// `P(X < k)`.
    pub fn prob_lt(&self, k: i32) -> f64 {
        self.iter().filter(|&(o, _)| o < k).map(|(_, p)| p).sum()
    }

    /// Convolution with another discrete distribution (sum of independent
    /// variables).
    pub fn convolve(&self, other: &DiscreteDist) -> DiscreteDist {
        let mut pairs = std::collections::BTreeMap::<i32, f64>::new();
        for (a, pa) in self.iter() {
            for (b, pb) in other.iter() {
                *pairs.entry(a + b).or_insert(0.0) += pa * pb;
            }
        }
        let (offsets, probs) = pairs.into_iter().unzip();
        DiscreteDist { offsets, probs }
    }

    /// Returns the distribution reflected about zero: `P'(k) = P(−k)`.
    pub fn negated(&self) -> DiscreteDist {
        let pairs: Vec<(i32, f64)> = self.iter().map(|(k, p)| (-k, p)).collect();
        Self::from_pairs(pairs).expect("negation preserves validity")
    }
}

/// Discretizes a continuous distribution onto the grid `… −δ, 0, +δ …`,
/// truncated to `[lo, hi]` (in the same physical units as the
/// distribution, typically UI).
///
/// Bin `k` receives the probability of `((k−½)δ, (k+½)δ]`; the truncated
/// tail mass below `lo` (above `hi`) is folded into the first (last) bin so
/// no probability is lost. This preserves total mass exactly and the mean
/// to `O(δ²)` for symmetric densities.
///
/// # Panics
///
/// Panics if `delta <= 0` or `lo >= hi`.
pub fn discretize(dist: &dyn Distribution, delta: f64, lo: f64, hi: f64) -> DiscreteDist {
    assert!(
        delta > 0.0 && delta.is_finite(),
        "grid step must be positive"
    );
    assert!(lo < hi, "truncation range must be non-empty");
    let k_lo = (lo / delta).round() as i64;
    let k_hi = (hi / delta).round() as i64;
    let mut pairs = Vec::with_capacity((k_hi - k_lo + 1) as usize);
    for k in k_lo..=k_hi {
        let left = if k == k_lo {
            f64::NEG_INFINITY
        } else {
            (k as f64 - 0.5) * delta
        };
        let right = if k == k_hi {
            f64::INFINITY
        } else {
            (k as f64 + 0.5) * delta
        };
        let mass = if right.is_infinite() {
            dist.sf(left)
        } else if left.is_infinite() {
            dist.cdf(right)
        } else {
            (dist.cdf(right) - dist.cdf(left)).max(0.0)
        };
        pairs.push((k as i32, mass));
    }
    let d = DiscreteDist::from_pairs(pairs).expect("discretization of a CDF yields a valid pmf");
    obs::event(
        "noise.discretized",
        &[
            ("support", d.support_len().into()),
            ("delta", delta.into()),
            ("mean_offset", d.mean_offset().into()),
        ],
    );
    d
}

/// Discretizes with a symmetric `n_sigma` truncation around the mean.
///
/// Convenience wrapper: the range is `mean ± n_sigma · std`.
///
/// # Panics
///
/// Panics if `delta <= 0` or `n_sigma <= 0` or the distribution has zero
/// variance.
pub fn discretize_sigma(dist: &dyn Distribution, delta: f64, n_sigma: f64) -> DiscreteDist {
    assert!(n_sigma > 0.0, "n_sigma must be positive");
    let std = dist.variance().sqrt();
    assert!(std > 0.0, "distribution must have positive variance");
    let m = dist.mean();
    // Always include at least one bin on each side of the mean.
    let half = (n_sigma * std).max(delta);
    discretize(dist, delta, m - half, m + half)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Gaussian, Uniform};

    #[test]
    fn from_pairs_normalizes_and_sorts() {
        let d = DiscreteDist::from_pairs([(2, 1.0), (-1, 1.0), (2, 2.0)]).unwrap();
        assert_eq!(d.support_len(), 2);
        assert_eq!(d.min_offset(), -1);
        assert_eq!(d.max_offset(), 2);
        assert!((d.prob(-1) - 0.25).abs() < 1e-15);
        assert!((d.prob(2) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn invalid_pmfs_rejected() {
        assert!(DiscreteDist::from_pairs([(0, -0.5)]).is_err());
        assert!(DiscreteDist::from_pairs([(0, 0.0)]).is_err());
        assert!(DiscreteDist::from_pairs(std::iter::empty()).is_err());
        assert!(DiscreteDist::two_point(0, 1.5, 1).is_err());
    }

    #[test]
    fn point_mass() {
        let d = DiscreteDist::point(3);
        assert_eq!(d.mean_offset(), 3.0);
        assert_eq!(d.variance_offset(), 0.0);
        assert_eq!(d.prob_gt(2), 1.0);
        assert_eq!(d.prob_gt(3), 0.0);
    }

    #[test]
    fn moments_of_two_point() {
        let d = DiscreteDist::two_point(-1, 0.5, 1).unwrap();
        assert_eq!(d.mean_offset(), 0.0);
        assert_eq!(d.variance_offset(), 1.0);
    }

    #[test]
    fn tails() {
        let d = DiscreteDist::from_pairs([(-2, 0.1), (0, 0.5), (3, 0.4)]).unwrap();
        assert!((d.prob_gt(0) - 0.4).abs() < 1e-15);
        assert!((d.prob_lt(0) - 0.1).abs() < 1e-15);
        assert!((d.prob_gt(-3) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn convolution_matches_manual() {
        let a = DiscreteDist::two_point(0, 0.5, 1).unwrap();
        let c = a.convolve(&a);
        assert!((c.prob(0) - 0.25).abs() < 1e-15);
        assert!((c.prob(1) - 0.5).abs() < 1e-15);
        assert!((c.prob(2) - 0.25).abs() < 1e-15);
        // Mean and variance add.
        assert!((c.mean_offset() - 2.0 * a.mean_offset()).abs() < 1e-12);
        assert!((c.variance_offset() - 2.0 * a.variance_offset()).abs() < 1e-12);
    }

    #[test]
    fn negation_flips_mean() {
        let d = DiscreteDist::from_pairs([(0, 0.7), (4, 0.3)]).unwrap();
        let n = d.negated();
        assert!((n.mean_offset() + d.mean_offset()).abs() < 1e-15);
        assert_eq!(n.min_offset(), -4);
    }

    #[test]
    fn gaussian_discretization_preserves_moments() {
        let g = Gaussian::new(0.0, 0.02);
        let delta = 1.0 / 256.0;
        let d = discretize_sigma(&g, delta, 8.0);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
        // Mean in physical units.
        assert!((d.mean_offset() * delta).abs() < 1e-6);
        let var_phys = d.variance_offset() * delta * delta;
        assert!(
            (var_phys / g.variance() - 1.0).abs() < 0.01,
            "variance off: {var_phys} vs {}",
            g.variance()
        );
    }

    #[test]
    fn truncation_folds_tails() {
        let g = Gaussian::new(0.0, 1.0);
        let d = discretize(&g, 1.0, -2.0, 2.0);
        assert_eq!(d.min_offset(), -2);
        assert_eq!(d.max_offset(), 2);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
        // Edge bins hold the folded tail: more than the central formula.
        let edge_mass = d.prob(2);
        let interior_formula = g.cdf(2.5) - g.cdf(1.5);
        assert!(edge_mass > interior_formula);
    }

    #[test]
    fn uniform_discretization_is_flat_inside() {
        let u = Uniform::new(-0.05, 0.05);
        let d = discretize(&u, 0.01, -0.05, 0.05);
        // Interior bins all equal.
        let inner: Vec<f64> = d
            .iter()
            .filter(|&(k, _)| k.abs() < 4)
            .map(|(_, p)| p)
            .collect();
        for w in inner.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn nonzero_mean_shifted_source() {
        use crate::dist::Shifted;
        let base = Uniform::new(-0.002, 0.002);
        let d = discretize(&Shifted::new(base, 0.004), 0.001, 0.0, 0.008);
        assert!((d.mean_offset() * 0.001 - 0.004).abs() < 2e-4);
        assert!(d.min_offset() >= 0);
    }
}
