//! Continuous amplitude distributions for jitter sources.

use crate::special;

/// A continuous probability distribution on the real line, described by its
/// cumulative distribution function.
///
/// Only the CDF (and survival function) are required: discretization
/// integrates the density over grid bins, and the far-tail BER computations
/// use the survival function directly.
pub trait Distribution {
    /// Cumulative distribution function `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Survival function `P(X > x)`.
    ///
    /// The default `1 − cdf(x)` loses relative accuracy in the upper tail;
    /// implementations with analytic tails should override it.
    fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Variance of the distribution.
    fn variance(&self) -> f64;
}

/// Gaussian (normal) distribution — the standard model for the random part
/// of data jitter (`n_w`, the eye opening).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    std: f64,
}

impl Gaussian {
    /// Creates a Gaussian with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std <= 0` or either parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(
            mean.is_finite() && std.is_finite(),
            "parameters must be finite"
        );
        assert!(std > 0.0, "standard deviation must be positive");
        Gaussian { mean, std }
    }

    /// Standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }
}

impl Distribution for Gaussian {
    fn cdf(&self, x: f64) -> f64 {
        special::normal_cdf((x - self.mean) / self.std)
    }

    fn sf(&self, x: f64) -> f64 {
        special::normal_sf((x - self.mean) / self.std)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.std * self.std
    }
}

/// Uniform distribution on `[lo, hi]` — bounded jitter with flat density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or parameters are non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "lower bound must be below upper bound");
        Uniform { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Distribution for Uniform {
    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }
}

/// Triangular distribution on `[lo, hi]` with the given mode — a simple
/// bounded, peaked density used for drift jitter whose worst case is known.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangular {
    lo: f64,
    mode: f64,
    hi: f64,
}

impl Triangular {
    /// Creates a triangular distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= mode <= hi` and `lo < hi`.
    pub fn new(lo: f64, mode: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && mode.is_finite() && hi.is_finite());
        assert!(
            lo < hi && lo <= mode && mode <= hi,
            "need lo <= mode <= hi, lo < hi"
        );
        Triangular { lo, mode, hi }
    }
}

impl Distribution for Triangular {
    fn cdf(&self, x: f64) -> f64 {
        let (a, c, b) = (self.lo, self.mode, self.hi);
        if x <= a {
            0.0
        } else if x < c {
            (x - a) * (x - a) / ((b - a) * (c - a))
        } else if x < b {
            1.0 - (b - x) * (b - x) / ((b - a) * (b - c))
        } else {
            1.0
        }
    }

    fn mean(&self) -> f64 {
        (self.lo + self.mode + self.hi) / 3.0
    }

    fn variance(&self) -> f64 {
        let (a, c, b) = (self.lo, self.mode, self.hi);
        (a * a + b * b + c * c - a * b - a * c - b * c) / 18.0
    }
}

/// Amplitude distribution of sinusoidal jitter `A sin(θ)` with uniform
/// phase — the arcsine law on `[−A, +A]`.
///
/// The paper notes that "one can even mimic deterministic sinusoidally
/// varying jitter by assigning the amplitude distribution of `n_r`
/// appropriately"; this is that distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinusoidalJitter {
    amplitude: f64,
}

impl SinusoidalJitter {
    /// Creates the amplitude distribution of a sinusoid with the given
    /// amplitude.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude <= 0` or non-finite.
    pub fn new(amplitude: f64) -> Self {
        assert!(
            amplitude.is_finite() && amplitude > 0.0,
            "amplitude must be positive"
        );
        SinusoidalJitter { amplitude }
    }

    /// Peak amplitude `A`.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }
}

impl Distribution for SinusoidalJitter {
    fn cdf(&self, x: f64) -> f64 {
        if x <= -self.amplitude {
            0.0
        } else if x >= self.amplitude {
            1.0
        } else {
            0.5 + (x / self.amplitude).asin() / std::f64::consts::PI
        }
    }

    fn mean(&self) -> f64 {
        0.0
    }

    fn variance(&self) -> f64 {
        self.amplitude * self.amplitude / 2.0
    }
}

/// Dual-Dirac jitter: the industry-standard decomposition of total jitter
/// into deterministic jitter (DJ, modeled as two Dirac deltas `±DJ/2`
/// apart) convolved with random jitter (RJ, Gaussian σ):
///
/// ```text
/// pdf(x) = ½ N(x; −DJ/2, σ) + ½ N(x; +DJ/2, σ)
/// ```
///
/// The "total jitter at BER" of datasheets is
/// `TJ(BER) = DJ + 2 Q(BER) σ`, available as
/// [`total_jitter_at_ber`](Self::total_jitter_at_ber).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualDirac {
    dj: f64,
    sigma: f64,
}

impl DualDirac {
    /// Creates a dual-Dirac model with deterministic jitter `dj`
    /// (peak-to-peak separation of the two deltas) and random jitter
    /// sigma `sigma`.
    ///
    /// # Panics
    ///
    /// Panics unless `dj >= 0` and `sigma > 0` (a pure-DJ model has a
    /// degenerate CDF; add even a tiny RJ).
    pub fn new(dj: f64, sigma: f64) -> Self {
        assert!(dj >= 0.0 && dj.is_finite(), "DJ must be non-negative");
        assert!(
            sigma > 0.0 && sigma.is_finite(),
            "RJ sigma must be positive"
        );
        DualDirac { dj, sigma }
    }

    /// Deterministic-jitter separation.
    pub fn dj(&self) -> f64 {
        self.dj
    }

    /// Random-jitter sigma.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Datasheet total jitter at a BER: `TJ = DJ + 2 Q(BER) σ`.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `(0, 0.5)`.
    pub fn total_jitter_at_ber(&self, ber: f64) -> f64 {
        assert!(ber > 0.0 && ber < 0.5, "BER must be in (0, 0.5)");
        self.dj + 2.0 * special::q_factor(ber) * self.sigma
    }
}

impl Distribution for DualDirac {
    fn cdf(&self, x: f64) -> f64 {
        let h = self.dj / 2.0;
        0.5 * (special::normal_cdf((x + h) / self.sigma)
            + special::normal_cdf((x - h) / self.sigma))
    }

    fn sf(&self, x: f64) -> f64 {
        let h = self.dj / 2.0;
        0.5 * (special::normal_sf((x + h) / self.sigma) + special::normal_sf((x - h) / self.sigma))
    }

    fn mean(&self) -> f64 {
        0.0
    }

    fn variance(&self) -> f64 {
        // Mixture variance: sigma^2 + (DJ/2)^2.
        self.sigma * self.sigma + (self.dj / 2.0) * (self.dj / 2.0)
    }
}

/// A location-shifted distribution: `Y = X + shift`.
///
/// Used to give the drift source `n_r` its nonzero mean without duplicating
/// every base distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shifted<D> {
    inner: D,
    shift: f64,
}

impl<D: Distribution> Shifted<D> {
    /// Shifts `inner` to the right by `shift`.
    ///
    /// # Panics
    ///
    /// Panics if `shift` is non-finite.
    pub fn new(inner: D, shift: f64) -> Self {
        assert!(shift.is_finite(), "shift must be finite");
        Shifted { inner, shift }
    }
}

impl<D: Distribution> Distribution for Shifted<D> {
    fn cdf(&self, x: f64) -> f64 {
        self.inner.cdf(x - self.shift)
    }

    fn sf(&self, x: f64) -> f64 {
        self.inner.sf(x - self.shift)
    }

    fn mean(&self) -> f64 {
        self.inner.mean() + self.shift
    }

    fn variance(&self) -> f64 {
        self.inner.variance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cdf_monotone(d: &dyn Distribution, lo: f64, hi: f64) {
        let mut prev = -1.0;
        for i in 0..=100 {
            let x = lo + (hi - lo) * i as f64 / 100.0;
            let c = d.cdf(x);
            assert!(c >= prev - 1e-12, "cdf not monotone at {x}");
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn gaussian_properties() {
        let g = Gaussian::new(1.0, 2.0);
        assert_eq!(g.mean(), 1.0);
        assert_eq!(g.variance(), 4.0);
        assert!((g.cdf(1.0) - 0.5).abs() < 1e-6);
        check_cdf_monotone(&g, -10.0, 10.0);
        // sf accurate in the far tail.
        assert!(g.sf(1.0 + 2.0 * 7.0) > 0.0);
    }

    #[test]
    fn uniform_properties() {
        let u = Uniform::new(-1.0, 3.0);
        assert_eq!(u.mean(), 1.0);
        assert!((u.variance() - 16.0 / 12.0).abs() < 1e-12);
        assert_eq!(u.cdf(-2.0), 0.0);
        assert_eq!(u.cdf(5.0), 1.0);
        assert!((u.cdf(1.0) - 0.5).abs() < 1e-12);
        check_cdf_monotone(&u, -2.0, 4.0);
    }

    #[test]
    fn triangular_properties() {
        let t = Triangular::new(0.0, 1.0, 2.0);
        assert_eq!(t.mean(), 1.0);
        assert!((t.cdf(1.0) - 0.5).abs() < 1e-12);
        assert!((t.variance() - 3.0 / 18.0).abs() < 1e-9);
        check_cdf_monotone(&t, -0.5, 2.5);
    }

    #[test]
    fn sinusoidal_properties() {
        let s = SinusoidalJitter::new(0.1);
        assert_eq!(s.mean(), 0.0);
        assert!((s.variance() - 0.005).abs() < 1e-12);
        assert!((s.cdf(0.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.cdf(-0.2), 0.0);
        assert_eq!(s.cdf(0.2), 1.0);
        check_cdf_monotone(&s, -0.15, 0.15);
        // Arcsine density piles mass at the edges: P(|X| > 0.09) is large.
        let edge = s.sf(0.09) + s.cdf(-0.09);
        assert!(edge > 0.2, "edge mass {edge}");
    }

    #[test]
    fn dual_dirac_properties() {
        let d = DualDirac::new(0.1, 0.01);
        assert_eq!(d.mean(), 0.0);
        assert!((d.variance() - (0.0001 + 0.0025)).abs() < 1e-12);
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-6);
        check_cdf_monotone(&d, -0.2, 0.2);
        // Bimodal: the CDF has a plateau between the deltas.
        let slope_center = d.cdf(0.005) - d.cdf(-0.005);
        let slope_peak = d.cdf(0.055) - d.cdf(0.045);
        assert!(slope_peak > slope_center * 3.0, "expected bimodal density");
        // TJ formula: DJ + 2 Q sigma.
        let tj = d.total_jitter_at_ber(1e-12);
        assert!((tj - (0.1 + 2.0 * 7.0345 * 0.01)).abs() < 1e-3);
        // Zero DJ degenerates to a Gaussian.
        let g = DualDirac::new(0.0, 0.02);
        let reference = Gaussian::new(0.0, 0.02);
        for x in [-0.05, 0.0, 0.03] {
            assert!((g.cdf(x) - reference.cdf(x)).abs() < 1e-9);
        }
    }

    #[test]
    fn dual_dirac_tail_is_dj_shifted_gaussian() {
        // Far in the tail, sf(x) ≈ ½ Q((x − DJ/2)/σ): the nearer delta
        // dominates.
        let d = DualDirac::new(0.2, 0.01);
        let x = 0.2; // 10 sigma past the near delta
        let expect = 0.5 * crate::special::normal_sf((x - 0.1) / 0.01);
        assert!((d.sf(x) / expect - 1.0).abs() < 1e-6);
    }

    #[test]
    fn shifted_distribution() {
        let d = Shifted::new(Uniform::new(-1.0, 1.0), 5.0);
        assert_eq!(d.mean(), 5.0);
        assert!((d.cdf(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(d.variance(), Uniform::new(-1.0, 1.0).variance());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gaussian_rejects_bad_sigma() {
        let _ = Gaussian::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn uniform_rejects_inverted_bounds() {
        let _ = Uniform::new(1.0, 0.0);
    }
}
