//! Error type for noise and jitter modeling.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, NoiseError>;

/// Error raised by distribution construction or discretization.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseError {
    /// A distribution parameter was out of its valid domain.
    InvalidParameter(String),
    /// A probability mass function did not sum to one or had negative mass.
    InvalidPmf(String),
    /// A requested conversion has no solution (e.g. eye opening wider than
    /// one UI at the requested BER).
    Infeasible(String),
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            NoiseError::InvalidPmf(msg) => write!(f, "invalid pmf: {msg}"),
            NoiseError::Infeasible(msg) => write!(f, "infeasible specification: {msg}"),
        }
    }
}

impl std::error::Error for NoiseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(NoiseError::InvalidParameter("sigma < 0".into())
            .to_string()
            .contains("sigma"));
    }
}
