//! Special functions: `erf`, `erfc`, their inverses, and Q-factors.
//!
//! BER analysis lives in the far tails of the Gaussian: a `1e-10` error
//! probability corresponds to ~6.4σ. The complementary error function must
//! therefore be accurate in a *relative* sense out to large arguments —
//! `1 − erf(x)` computed naively loses all digits past ~5σ. The
//! implementation below keeps relative error below ~1.2e-7 uniformly, which
//! is ample for reproducing the paper's BER figures.

/// Complementary error function with uniform relative accuracy ~1.2e-7.
///
/// Uses the Chebyshev-fitted expression from Numerical Recipes (the
/// "erfcc" rational-in-exponent form), symmetrized for negative arguments.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function, `erf(x) = 1 − erfc(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal survival function `P(Z > x)`, accurate in the far tail.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse of [`erfc`] on `(0, 2)`, computed by bisection + Newton polish.
///
/// # Panics
///
/// Panics if `y` is outside `(0, 2)`.
pub fn erfc_inv(y: f64) -> f64 {
    assert!(y > 0.0 && y < 2.0, "erfc_inv domain is (0, 2), got {y}");
    if (y - 1.0).abs() < 1e-300 {
        return 0.0;
    }
    // erfc is strictly decreasing; bracket the root.
    let (mut lo, mut hi) = (-30.0f64, 30.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if erfc(mid) > y {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-14 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Inverse standard normal survival function: the `x` with `P(Z > x) = p`.
///
/// This is the "Q-factor" of link budgets: `q_factor(1e-12) ≈ 7.03`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn q_factor(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "q_factor domain is (0, 1), got {p}");
    std::f64::consts::SQRT_2 * erfc_inv(2.0 * p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929497149).abs() < 2e-7);
        assert!((erf(-1.0) + 0.8427007929497149).abs() < 2e-7);
        assert!((erf(3.0) - 0.9999779095030014).abs() < 2e-7);
    }

    #[test]
    fn erfc_far_tail_relative_accuracy() {
        // Reference values (Mathematica/scipy): erfc(5) = 1.5374597944280347e-12,
        // erfc(7) = 4.183825607779414e-23.
        let cases = [(5.0, 1.5374597944280347e-12), (7.0, 4.183825607779414e-23)];
        for (x, reference) in cases {
            let rel = (erfc(x) - reference).abs() / reference;
            assert!(rel < 1e-6, "erfc({x}) relative error {rel}");
        }
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.7, 2.0, 4.0] {
            assert!((erfc(-x) + erfc(x) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_and_sf_are_complementary() {
        for &x in &[-3.0, -0.5, 0.0, 1.5, 4.0] {
            assert!((normal_cdf(x) + normal_sf(x) - 1.0).abs() < 1e-6);
        }
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn tail_probability_known_sigmas() {
        // P(Z > 6.361) ~ 1e-10 (standard BER table value 6.3613).
        assert!((normal_sf(6.3613) / 1e-10 - 1.0).abs() < 1e-2);
    }

    #[test]
    fn inverse_round_trips() {
        for &y in &[1.9, 1.0 + 1e-6, 0.5, 1e-3, 1e-9, 1e-15] {
            let x = erfc_inv(y);
            assert!((erfc(x) / y - 1.0).abs() < 1e-6, "round trip failed at {y}");
        }
    }

    #[test]
    fn q_factor_table() {
        // Classic optical-link Q values.
        assert!((q_factor(1e-9) - 5.9978).abs() < 1e-3);
        assert!((q_factor(1e-12) - 7.0345).abs() < 1e-3);
        assert!((q_factor(0.5)).abs() < 1e-10);
    }
}
