//! Noise and jitter modeling for stochastic CDR analysis.
//!
//! The paper drives its CDR Markov model with two random processes:
//!
//! * `n_w` — zero-mean white noise modeling the *eye opening* of the
//!   incoming data (per-symbol uncorrelated timing jitter, usually
//!   Gaussian),
//! * `n_r` — a *nonzero-mean* white noise whose deterministic part models
//!   frequency drift and whose random part accumulates into a random walk;
//!   its probability density is "chosen to reflect SONET system
//!   specifications".
//!
//! This crate provides the continuous distributions, the moment-aware grid
//! [`discretize`](discretize::discretize) step that turns them into finite
//! probability mass functions on the phase-error grid (the paper:
//! "the discretization grid needs to be fine enough to accurately capture
//! the small jumps in phase error due to `n_r`"), the jitter-spec
//! conversions (eye opening ↔ Gaussian σ via Q-factors), and samplers for
//! the Monte-Carlo baseline.
//!
//! # Example
//!
//! ```
//! use stochcdr_noise::dist::Gaussian;
//! use stochcdr_noise::discretize::discretize;
//!
//! // Discretize a N(0, 0.02 UI) jitter onto a 1/64-UI grid, ±6σ.
//! let g = Gaussian::new(0.0, 0.02);
//! let d = discretize(&g, 1.0 / 64.0, -0.12, 0.12);
//! assert!((d.total_mass() - 1.0).abs() < 1e-12);
//! assert!(d.mean_offset().abs() < 1e-9);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod discretize;
pub mod dist;
mod error;
pub mod jitter;
pub mod sampling;
pub mod sonet;
pub mod special;

pub use discretize::DiscreteDist;
pub use error::{NoiseError, Result};
