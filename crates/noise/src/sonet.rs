//! SONET/SDH-flavored system specifications.
//!
//! The paper evaluates its method on a SONET-type application: "The first
//! FSM models the data statistics taken from SONET system specifications"
//! and `n_r`'s density is "chosen to reflect SONET system specifications".
//! Real SONET specs (GR-253, ITU-T G.825) are long documents; this module
//! captures the parts the model consumes:
//!
//! * scrambled-data statistics — transition density ½ with a bounded run of
//!   consecutive identical digits (CID; receivers are tested with 72-bit
//!   CID per GR-253),
//! * clock accuracy — ±20 ppm free-run for a Stratum-3 crystal, ±4.6 ppm
//!   Stratum-2 (we default to 100 ppm as a stress value, matching the
//!   magnitude a multiplexer sees before lock),
//! * jitter tolerance masks — summarized as the high-frequency corner
//!   amplitude (0.15 UI p-p for OC-48 per GR-253), which the model treats
//!   as bounded white `n_r` deviation.

use crate::jitter::{DriftJitterSpec, DriftShape, WhiteJitterSpec};
use crate::{NoiseError, Result};

/// Statistics of the incoming (scrambled) data stream.
///
/// "The input data stream is usually specified in terms of the longest
/// possible bit sequence with no transitions and a maximal drift in
/// frequency."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataSpec {
    /// Probability that consecutive bits differ (½ for scrambled data).
    pub transition_density: f64,
    /// Longest allowed run of identical bits; the source FSM forces a
    /// transition at this length.
    pub max_run_length: usize,
}

impl DataSpec {
    /// Creates a data spec.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::InvalidParameter`] unless
    /// `0 < transition_density < 1` and `max_run_length >= 1`.
    pub fn new(transition_density: f64, max_run_length: usize) -> Result<Self> {
        if !(transition_density > 0.0 && transition_density < 1.0) {
            return Err(NoiseError::InvalidParameter(format!(
                "transition density {transition_density} must be in (0, 1)"
            )));
        }
        if max_run_length == 0 {
            return Err(NoiseError::InvalidParameter(
                "max run length must be >= 1".into(),
            ));
        }
        Ok(DataSpec {
            transition_density,
            max_run_length,
        })
    }

    /// Scrambled SONET payload: density ½, 72-bit CID immunity requirement
    /// folded down to a modeling run-bound of 72.
    pub fn sonet_scrambled() -> Self {
        DataSpec {
            transition_density: 0.5,
            max_run_length: 72,
        }
    }

    /// A denser test pattern (e.g. clock-like preamble regions).
    pub fn dense(transition_density: f64) -> Result<Self> {
        Self::new(transition_density, 8)
    }

    /// Stationary transition density of the run-length-limited source
    /// (slightly above `transition_density` because of the forced
    /// transition at the run bound).
    ///
    /// Derived from the stationary distribution of the run-length counter:
    /// states `0..L-1` with continue-probability `q = 1 − p` and a forced
    /// transition at `L−1`.
    pub fn effective_transition_density(&self) -> f64 {
        let p = self.transition_density;
        let q = 1.0 - p;
        let l = self.max_run_length;
        // Stationary run-position distribution: π_k ∝ q^k for k < L.
        let mut norm = 0.0;
        let mut qs = 1.0;
        for _ in 0..l {
            norm += qs;
            qs *= q;
        }
        // Transition probability from position k is p except at L-1 where 1.
        let mut acc = 0.0;
        let mut qk = 1.0;
        for k in 0..l {
            let pk = qk / norm;
            acc += pk * if k == l - 1 { 1.0 } else { p };
            qk *= q;
        }
        acc
    }
}

/// A complete SONET-flavored operating point: data statistics plus the two
/// jitter sources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SonetProfile {
    /// Incoming data statistics.
    pub data: DataSpec,
    /// Eye-opening white jitter `n_w`.
    pub white: WhiteJitterSpec,
    /// Drift jitter `n_r`.
    pub drift: DriftJitterSpec,
}

impl SonetProfile {
    /// The baseline profile used by the paper-reproduction harness:
    /// scrambled data, σ(n_w) derived from a 0.7-UI eye at BER 1e-12, and a
    /// 20 ppm frequency offset with bounded sinusoidal-interference
    /// deviation.
    ///
    /// # Errors
    ///
    /// Propagates spec-construction errors (none for these constants; the
    /// `Result` is kept so callers treat profiles uniformly).
    pub fn baseline() -> Result<Self> {
        Ok(SonetProfile {
            data: DataSpec::new(0.5, 8)?,
            white: WhiteJitterSpec::from_eye_opening(0.7, 1e-12)?,
            drift: DriftJitterSpec::from_frequency_offset_ppm(20.0, 4e-3, DriftShape::Triangular),
        })
    }

    /// The baseline with `n_w` scaled by `factor` (the paper's Figure 4
    /// "increases the standard deviation of n_w 10 times").
    ///
    /// # Errors
    ///
    /// Propagates spec-construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn with_white_scaled(factor: f64) -> Result<Self> {
        assert!(factor > 0.0, "scale factor must be positive");
        let base = Self::baseline()?;
        Ok(SonetProfile {
            white: WhiteJitterSpec::from_sigma(base.white.sigma_ui * factor),
            ..base
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_spec_validation() {
        assert!(DataSpec::new(0.0, 4).is_err());
        assert!(DataSpec::new(1.0, 4).is_err());
        assert!(DataSpec::new(0.5, 0).is_err());
        assert!(DataSpec::new(0.5, 4).is_ok());
    }

    #[test]
    fn sonet_defaults() {
        let d = DataSpec::sonet_scrambled();
        assert_eq!(d.transition_density, 0.5);
        assert_eq!(d.max_run_length, 72);
    }

    #[test]
    fn effective_density_exceeds_nominal() {
        let d = DataSpec::new(0.5, 4).unwrap();
        let eff = d.effective_transition_density();
        assert!(eff > 0.5 && eff < 1.0, "eff = {eff}");
        // With a huge run bound the correction vanishes.
        let d = DataSpec::new(0.5, 60).unwrap();
        assert!((d.effective_transition_density() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn forced_transition_dominates_short_bounds() {
        let d = DataSpec::new(0.1, 2).unwrap();
        // Positions: π ∝ (1, 0.9); transition = (0.1·1 + 1.0·0.9)/1.9.
        let expect = (0.1 + 0.9) / 1.9;
        assert!((d.effective_transition_density() - expect).abs() < 1e-12);
    }

    #[test]
    fn baseline_profile_is_consistent() {
        let p = SonetProfile::baseline().unwrap();
        assert!(p.white.sigma_ui > 0.0 && p.white.sigma_ui < 0.1);
        assert!((p.drift.mean_ui - 2e-5).abs() < 1e-12);
        let scaled = SonetProfile::with_white_scaled(10.0).unwrap();
        assert!((scaled.white.sigma_ui / p.white.sigma_ui - 10.0).abs() < 1e-9);
        assert_eq!(scaled.drift, p.drift);
    }
}
