//! Jitter specifications and their conversion to discretized noise sources.
//!
//! System specs express jitter as an *eye opening* ("the input data jitter
//! is specified by eye opening, usually defined as uncorrelated timing
//! jitter from a bit to the next") and a worst-case *frequency drift*. This
//! module converts those specs into the `n_w` and `n_r` mass functions the
//! Markov model consumes.
//!
//! All amplitudes are in **unit intervals (UI)**: 1 UI = one symbol period.

use crate::discretize::{discretize, DiscreteDist};
use crate::dist::{Distribution, DualDirac, Shifted, SinusoidalJitter, Triangular, Uniform};
use crate::special::q_factor;
use crate::{NoiseError, Result};

/// Specification of the white data jitter `n_w` (eye opening).
///
/// `n_w` is zero-mean. The random part is Gaussian with `sigma_ui`; an
/// optional deterministic part `dj_ui` (dual-Dirac peak-to-peak) models
/// data-dependent jitter, giving the industry-standard DJ⊕RJ
/// decomposition. `dj_ui = 0` is the pure-Gaussian case.
///
/// # Example
///
/// ```
/// use stochcdr_noise::jitter::WhiteJitterSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A 0.7-UI eye at BER 1e-12 implies sigma ~ 0.0213 UI.
/// let spec = WhiteJitterSpec::from_eye_opening(0.7, 1e-12)?;
/// assert!((spec.sigma_ui - 0.0213).abs() < 1e-3);
/// let pmf = spec.discretize(1.0 / 128.0);
/// assert!((pmf.total_mass() - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhiteJitterSpec {
    /// Random-jitter standard deviation in UI.
    pub sigma_ui: f64,
    /// Deterministic (dual-Dirac) jitter in UI, peak-to-peak (0 = none).
    pub dj_ui: f64,
    /// Truncation width in standard deviations when discretizing.
    pub n_sigma: f64,
}

impl WhiteJitterSpec {
    /// Creates a spec from an explicit σ (UI).
    ///
    /// # Panics
    ///
    /// Panics if `sigma_ui <= 0`.
    pub fn from_sigma(sigma_ui: f64) -> Self {
        assert!(
            sigma_ui > 0.0 && sigma_ui.is_finite(),
            "sigma must be positive"
        );
        WhiteJitterSpec {
            sigma_ui,
            dj_ui: 0.0,
            n_sigma: 8.0,
        }
    }

    /// Creates a dual-Dirac spec: deterministic jitter `dj_ui`
    /// (peak-to-peak) plus Gaussian random jitter `sigma_ui`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_ui <= 0` or `dj_ui < 0`.
    pub fn from_dual_dirac(dj_ui: f64, sigma_ui: f64) -> Self {
        assert!(
            sigma_ui > 0.0 && sigma_ui.is_finite(),
            "sigma must be positive"
        );
        assert!(dj_ui >= 0.0 && dj_ui.is_finite(), "DJ must be non-negative");
        WhiteJitterSpec {
            sigma_ui,
            dj_ui,
            n_sigma: 8.0,
        }
    }

    /// Derives σ from an eye-opening spec: the eye is `eye_ui` wide at the
    /// reference bit-error rate `ber`, i.e. each eye edge carries Gaussian
    /// jitter that stays within `(1 − eye_ui)/2` UI except with
    /// probability `ber`.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::Infeasible`] unless `0 < eye_ui < 1` and
    /// `0 < ber < 0.5`.
    pub fn from_eye_opening(eye_ui: f64, ber: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&eye_ui) || eye_ui == 0.0 {
            return Err(NoiseError::Infeasible(format!(
                "eye opening {eye_ui} UI must be in (0, 1)"
            )));
        }
        if !(0.0..0.5).contains(&ber) || ber == 0.0 {
            return Err(NoiseError::Infeasible(format!(
                "reference BER {ber} must be in (0, 0.5)"
            )));
        }
        let half_closure = (1.0 - eye_ui) / 2.0;
        let sigma = half_closure / q_factor(ber);
        Ok(WhiteJitterSpec {
            sigma_ui: sigma,
            dj_ui: 0.0,
            n_sigma: 8.0,
        })
    }

    /// Overrides the discretization truncation (default 8σ).
    ///
    /// # Panics
    ///
    /// Panics if `n_sigma <= 0`.
    pub fn with_truncation(mut self, n_sigma: f64) -> Self {
        assert!(n_sigma > 0.0, "truncation must be positive");
        self.n_sigma = n_sigma;
        self
    }

    /// The continuous distribution of `n_w` (a [`DualDirac`], which with
    /// `dj_ui = 0` is exactly the Gaussian).
    pub fn distribution(&self) -> DualDirac {
        DualDirac::new(self.dj_ui, self.sigma_ui)
    }

    /// Datasheet total jitter at a BER: `TJ = DJ + 2 Q(BER) σ`.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `(0, 0.5)`.
    pub fn total_jitter_at_ber(&self, ber: f64) -> f64 {
        self.distribution().total_jitter_at_ber(ber)
    }

    /// Discretizes `n_w` onto a grid with step `delta_ui`.
    pub fn discretize(&self, delta_ui: f64) -> DiscreteDist {
        let g = self.distribution();
        let half = (self.n_sigma * self.sigma_ui + self.dj_ui / 2.0).max(delta_ui);
        discretize(&g, delta_ui, -half, half)
    }
}

/// Shape of the bounded random part of the drift source `n_r`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftShape {
    /// Uniform over `[−max_dev, +max_dev]`.
    Uniform,
    /// Triangular peaked at zero over `[−max_dev, +max_dev]`.
    Triangular,
    /// Arcsine distribution of a sinusoid of amplitude `max_dev`
    /// (models sinusoidal interference jitter).
    Sinusoidal,
}

/// Specification of the drift jitter `n_r`: a deterministic per-symbol mean
/// (frequency offset between data and local clock) plus a bounded,
/// zero-mean random part.
///
/// # Example
///
/// ```
/// use stochcdr_noise::jitter::{DriftJitterSpec, DriftShape};
///
/// // 100 ppm frequency offset with 4e-3 UI of triangular interference.
/// let spec = DriftJitterSpec::from_frequency_offset_ppm(100.0, 4e-3, DriftShape::Triangular);
/// let pmf = spec.discretize(1.0 / 256.0);
/// // The discretized mean preserves the drift exactly.
/// assert!((pmf.mean_offset() / 256.0 - 1e-4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftJitterSpec {
    /// Deterministic drift per symbol, UI (sign = direction).
    pub mean_ui: f64,
    /// Maximum deviation of the random part, UI.
    pub max_dev_ui: f64,
    /// Density shape of the random part.
    pub shape: DriftShape,
}

impl DriftJitterSpec {
    /// Creates a drift spec.
    ///
    /// # Panics
    ///
    /// Panics if `max_dev_ui < 0` or parameters are non-finite.
    pub fn new(mean_ui: f64, max_dev_ui: f64, shape: DriftShape) -> Self {
        assert!(
            mean_ui.is_finite() && max_dev_ui.is_finite(),
            "parameters must be finite"
        );
        assert!(max_dev_ui >= 0.0, "max deviation must be non-negative");
        DriftJitterSpec {
            mean_ui,
            max_dev_ui,
            shape,
        }
    }

    /// Creates a spec from a fractional frequency offset (ppm):
    /// a `f_ppm` offset slips `f_ppm · 1e-6` UI per symbol.
    pub fn from_frequency_offset_ppm(f_ppm: f64, max_dev_ui: f64, shape: DriftShape) -> Self {
        Self::new(f_ppm * 1e-6, max_dev_ui, shape)
    }

    /// Largest magnitude `n_r` can take (mean plus worst-case deviation).
    pub fn max_abs_ui(&self) -> f64 {
        self.mean_ui.abs() + self.max_dev_ui
    }

    /// Discretizes `n_r` onto a grid with step `delta_ui`.
    ///
    /// The returned mass function has mean `≈ mean_ui / delta_ui` grid
    /// units. When the spec is smaller than half a grid step in every
    /// direction, the result degenerates to a point mass at the rounded
    /// mean — the paper's warning that the grid "needs to be fine enough to
    /// accurately capture the small jumps in phase error due to n_r" is
    /// checked by [`resolves_grid`](Self::resolves_grid).
    pub fn discretize(&self, delta_ui: f64) -> DiscreteDist {
        if self.max_dev_ui == 0.0 {
            // Pure deterministic drift: spread the mean over the two
            // adjacent grid points to preserve it in expectation.
            return spread_mean(self.mean_ui / delta_ui);
        }
        let lo = self.mean_ui - self.max_dev_ui;
        let hi = self.mean_ui + self.max_dev_ui;
        let d: DiscreteDist = match self.shape {
            DriftShape::Uniform => {
                let u = Shifted::new(
                    Uniform::new(-self.max_dev_ui, self.max_dev_ui),
                    self.mean_ui,
                );
                discretize(&u, delta_ui, lo, hi)
            }
            DriftShape::Triangular => {
                let t = Triangular::new(lo, self.mean_ui, hi);
                discretize(&t, delta_ui, lo, hi)
            }
            DriftShape::Sinusoidal => {
                let s = Shifted::new(SinusoidalJitter::new(self.max_dev_ui), self.mean_ui);
                discretize(&s, delta_ui, lo, hi)
            }
        };
        correct_mean(d, self.mean_ui / delta_ui)
    }

    /// `true` if the grid step resolves this drift source: the grid must be
    /// no coarser than the total drift span, otherwise the discretized
    /// `n_r` cannot move the phase at all.
    pub fn resolves_grid(&self, delta_ui: f64) -> bool {
        self.max_abs_ui() >= 0.5 * delta_ui
    }

    /// The continuous distribution of the random part (`None` for pure
    /// deterministic drift).
    pub fn random_part(&self) -> Option<Box<dyn Distribution>> {
        if self.max_dev_ui == 0.0 {
            return None;
        }
        Some(match self.shape {
            DriftShape::Uniform => Box::new(Uniform::new(-self.max_dev_ui, self.max_dev_ui)),
            DriftShape::Triangular => {
                Box::new(Triangular::new(-self.max_dev_ui, 0.0, self.max_dev_ui))
            }
            DriftShape::Sinusoidal => Box::new(SinusoidalJitter::new(self.max_dev_ui)),
        })
    }
}

/// Point-ish distribution with non-integer mean `m` (grid units): mass split
/// between `floor(m)` and `ceil(m)` so the expectation is exactly `m`.
fn spread_mean(m: f64) -> DiscreteDist {
    let lo = m.floor();
    let frac = m - lo;
    if frac == 0.0 {
        DiscreteDist::point(lo as i32)
    } else {
        DiscreteDist::two_point(lo as i32, 1.0 - frac, lo as i32 + 1)
            .expect("fraction in [0,1] by construction")
    }
}

/// Adjusts a discretized pmf so its mean equals `target` (grid units) by
/// convolving-in a tiny two-point correction; keeps sub-grid drift rates
/// exact, which matters because the drift accumulates over millions of
/// symbols.
fn correct_mean(d: DiscreteDist, target: f64) -> DiscreteDist {
    let err = target - d.mean_offset();
    if err.abs() < 1e-12 {
        return d;
    }
    d.convolve(&spread_mean(err))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_from_eye_opening() {
        // Eye of 0.5 UI at BER 1e-12: closure per side 0.25 UI over Q≈7.03.
        let w = WhiteJitterSpec::from_eye_opening(0.5, 1e-12).unwrap();
        assert!((w.sigma_ui - 0.25 / 7.0345).abs() < 1e-4);
    }

    #[test]
    fn infeasible_eyes_rejected() {
        assert!(WhiteJitterSpec::from_eye_opening(0.0, 1e-12).is_err());
        assert!(WhiteJitterSpec::from_eye_opening(1.2, 1e-12).is_err());
        assert!(WhiteJitterSpec::from_eye_opening(0.5, 0.7).is_err());
    }

    #[test]
    fn white_jitter_discretizes_symmetric() {
        let w = WhiteJitterSpec::from_sigma(0.02);
        let d = w.discretize(1.0 / 128.0);
        assert!(d.mean_offset().abs() < 1e-9);
        assert_eq!(d.min_offset(), -d.max_offset());
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dual_dirac_spec_widens_the_pmf() {
        let delta = 1.0 / 128.0;
        let rj_only = WhiteJitterSpec::from_sigma(0.01).discretize(delta);
        let with_dj = WhiteJitterSpec::from_dual_dirac(0.1, 0.01).discretize(delta);
        assert!(with_dj.max_offset() > rj_only.max_offset());
        assert!(with_dj.variance_offset() > rj_only.variance_offset());
        // Still symmetric and zero-mean.
        assert!(with_dj.mean_offset().abs() < 1e-9);
        // TJ formula plumbing.
        let spec = WhiteJitterSpec::from_dual_dirac(0.1, 0.01);
        assert!((spec.total_jitter_at_ber(1e-12) - (0.1 + 2.0 * 7.0345 * 0.01)).abs() < 1e-3);
    }

    #[test]
    fn drift_spec_mean_preserved_exactly() {
        let delta = 1.0 / 64.0;
        for shape in [
            DriftShape::Uniform,
            DriftShape::Triangular,
            DriftShape::Sinusoidal,
        ] {
            let s = DriftJitterSpec::new(2.3e-4, 5e-3, shape);
            let d = s.discretize(delta);
            let mean_ui = d.mean_offset() * delta;
            assert!(
                (mean_ui - 2.3e-4).abs() < 1e-9,
                "{shape:?}: mean {mean_ui} vs 2.3e-4"
            );
        }
    }

    #[test]
    fn pure_deterministic_drift() {
        let delta = 0.01;
        let s = DriftJitterSpec::new(0.004, 0.0, DriftShape::Uniform);
        let d = s.discretize(delta);
        assert_eq!(d.support_len(), 2);
        assert!((d.mean_offset() * delta - 0.004).abs() < 1e-12);
    }

    #[test]
    fn integer_grid_drift_is_point() {
        let s = DriftJitterSpec::new(0.02, 0.0, DriftShape::Uniform);
        let d = s.discretize(0.01);
        assert_eq!(d.support_len(), 1);
        assert_eq!(d.min_offset(), 2);
    }

    #[test]
    fn ppm_conversion() {
        let s = DriftJitterSpec::from_frequency_offset_ppm(100.0, 0.0, DriftShape::Uniform);
        assert!((s.mean_ui - 1e-4).abs() < 1e-18);
    }

    #[test]
    fn grid_resolution_check() {
        let s = DriftJitterSpec::new(1e-4, 4e-3, DriftShape::Uniform);
        assert!(s.resolves_grid(1.0 / 256.0)); // δ≈3.9e-3, span 4.1e-3
        assert!(!s.resolves_grid(1.0 / 64.0)); // δ≈1.6e-2 too coarse
    }

    #[test]
    fn max_abs_combines_parts() {
        let s = DriftJitterSpec::new(-1e-3, 2e-3, DriftShape::Triangular);
        assert!((s.max_abs_ui() - 3e-3).abs() < 1e-15);
    }

    #[test]
    fn random_part_variances_differ_by_shape() {
        let u = DriftJitterSpec::new(0.0, 0.01, DriftShape::Uniform)
            .random_part()
            .unwrap();
        let t = DriftJitterSpec::new(0.0, 0.01, DriftShape::Triangular)
            .random_part()
            .unwrap();
        let s = DriftJitterSpec::new(0.0, 0.01, DriftShape::Sinusoidal)
            .random_part()
            .unwrap();
        assert!(t.variance() < u.variance());
        assert!(u.variance() < s.variance());
        assert!(DriftJitterSpec::new(0.0, 0.0, DriftShape::Uniform)
            .random_part()
            .is_none());
    }
}
