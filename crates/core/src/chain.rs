//! The assembled CDR Markov chain with state labeling.

use stochcdr_markov::StochasticMatrix;

use crate::stages::offset_of_bin;
use crate::CdrConfig;

/// The Markov chain of a CDR configuration, together with the state
/// labeling needed to read physical quantities back out of chain states.
///
/// Joint states are packed row-major over `(data_run, counter, phase_bin)`
/// with the phase bin fastest-varying — the layout both the paper's
/// Figure 3 block structure and the multigrid phase-pairing coarsening
/// rely on.
///
/// The chain covers the **recurrent reachable subset** of the Cartesian
/// product — the paper: "the state set is the reachable state space of the
/// MC, which is a subset of the Cartesian product". Some configurations
/// (e.g. one-sided `n_r`) make extreme-phase states transient; those are
/// pruned at build time so the chain is always irreducible. When pruning
/// occurred, chain state indices are *dense* indices; the labeling
/// accessors translate through the stored mapping.
#[derive(Debug, Clone)]
pub struct CdrChain {
    config: CdrConfig,
    tpm: StochasticMatrix,
    /// Per-state probability that the next transition wraps the phase
    /// accumulator across ±UI/2 (a cycle slip).
    wrap_prob: Vec<f64>,
    /// Wall-clock time spent assembling the TPM (the paper's "matrix form
    /// time").
    form_time: std::time::Duration,
    /// `original[dense] = full-product index`; `None` when nothing was
    /// pruned (identity mapping).
    original: Option<Vec<u32>>,
    /// `dense_of[full] = dense index` (`u32::MAX` = pruned); `None` when
    /// nothing was pruned.
    dense_of: Option<Vec<u32>>,
}

impl CdrChain {
    pub(crate) fn new(
        config: CdrConfig,
        tpm: StochasticMatrix,
        wrap_prob: Vec<f64>,
        form_time: std::time::Duration,
    ) -> Self {
        debug_assert_eq!(tpm.n(), config.state_count());
        debug_assert_eq!(wrap_prob.len(), tpm.n());
        CdrChain {
            config,
            tpm,
            wrap_prob,
            form_time,
            original: None,
            dense_of: None,
        }
    }

    /// Constructs a chain restricted to `keep` (ascending full-product
    /// indices).
    pub(crate) fn new_restricted(
        config: CdrConfig,
        tpm: StochasticMatrix,
        wrap_prob: Vec<f64>,
        form_time: std::time::Duration,
        keep: Vec<usize>,
    ) -> Self {
        debug_assert_eq!(tpm.n(), keep.len());
        debug_assert_eq!(wrap_prob.len(), keep.len());
        let mut dense_of = vec![u32::MAX; config.state_count()];
        for (dense, &full) in keep.iter().enumerate() {
            dense_of[full] = dense as u32;
        }
        let original = keep.into_iter().map(|f| f as u32).collect();
        CdrChain {
            config,
            tpm,
            wrap_prob,
            form_time,
            original: Some(original),
            dense_of: Some(dense_of),
        }
    }

    /// The configuration this chain was built from.
    pub fn config(&self) -> &CdrConfig {
        &self.config
    }

    /// The validated transition probability matrix (over the reachable
    /// recurrent states).
    pub fn tpm(&self) -> &StochasticMatrix {
        &self.tpm
    }

    /// Number of chain states (after pruning, if any).
    pub fn state_count(&self) -> usize {
        self.tpm.n()
    }

    /// Number of Cartesian-product states pruned as transient/unreachable.
    pub fn pruned_states(&self) -> usize {
        self.config.state_count() - self.state_count()
    }

    /// Stored transitions in the TPM.
    pub fn nnz(&self) -> usize {
        self.tpm.nnz()
    }

    /// Wall-clock time spent assembling the TPM.
    pub fn form_time(&self) -> std::time::Duration {
        self.form_time
    }

    /// Per-state cycle-slip (phase-wrap) probability.
    pub fn wrap_prob(&self) -> &[f64] {
        &self.wrap_prob
    }

    /// The full-Cartesian-product index of a chain state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn full_index_of(&self, state: usize) -> usize {
        assert!(state < self.state_count(), "state out of range");
        match &self.original {
            None => state,
            Some(map) => map[state] as usize,
        }
    }

    /// The phase bin (`0 .. m_bins`) of a chain state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn phase_bin_of(&self, state: usize) -> usize {
        self.full_index_of(state) % self.config.m_bins()
    }

    /// The signed phase offset in grid bins of a chain state.
    pub fn phase_offset_of(&self, state: usize) -> i64 {
        offset_of_bin(self.phase_bin_of(state), self.config.m_bins())
    }

    /// The phase error in UI of a chain state.
    pub fn phase_ui_of(&self, state: usize) -> f64 {
        self.phase_offset_of(state) as f64 * self.config.delta_ui()
    }

    /// The loop-filter state of a chain state.
    pub fn counter_of(&self, state: usize) -> usize {
        (self.full_index_of(state) / self.config.m_bins()) % self.config.filter_states()
    }

    /// The data-source state of a chain state.
    pub fn data_of(&self, state: usize) -> usize {
        self.full_index_of(state) / (self.config.m_bins() * self.config.filter_states())
    }

    /// Packs `(data, counter, phase_bin)` into a chain state index, if that
    /// joint state survived reachability pruning.
    pub fn try_pack(&self, data: usize, counter: usize, phase_bin: usize) -> Option<usize> {
        if data >= self.config.data_model.state_count()
            || counter >= self.config.filter_states()
            || phase_bin >= self.config.m_bins()
        {
            return None;
        }
        let full =
            (data * self.config.filter_states() + counter) * self.config.m_bins() + phase_bin;
        match &self.dense_of {
            None => Some(full),
            Some(map) => match map[full] {
                u32::MAX => None,
                dense => Some(dense as usize),
            },
        }
    }

    /// Packs `(data, counter, phase_bin)` into a chain state index.
    ///
    /// # Panics
    ///
    /// Panics if any component is out of range or the joint state was
    /// pruned as unreachable; use [`try_pack`](Self::try_pack) to probe.
    pub fn pack(&self, data: usize, counter: usize, phase_bin: usize) -> usize {
        self.try_pack(data, counter, phase_bin).unwrap_or_else(|| {
            panic!(
                "joint state (data {data}, counter {counter}, phase {phase_bin}) is out of \
                 range or was pruned as unreachable"
            )
        })
    }

    /// The "locked" reference state: zero phase error, neutral filter,
    /// fresh data run — or, if that exact state was pruned, the chain
    /// state with the smallest phase-error magnitude. Used as the start
    /// state for transient analyses and the Monte-Carlo simulator.
    pub fn locked_state(&self) -> usize {
        let center = crate::stages::LoopCounter::new(&self.config).center();
        if let Some(s) = self.try_pack(0, center, self.config.m_bins() / 2) {
            return s;
        }
        (0..self.state_count())
            .min_by_key(|&s| {
                (
                    self.phase_offset_of(s).abs(),
                    self.counter_of(s).abs_diff(center),
                )
            })
            .expect("chain is non-empty")
    }

    /// `n`-lane Kronecker replication of this chain — the entry point to
    /// the implicit product-form solve path
    /// ([`ProductChain::solve_auto`](crate::ProductChain::solve_auto)
    /// picks the matrix-free backend whenever materializing the joint
    /// TPM would cross the soft memory budget).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CdrError::Config`] when `n == 0` or the joint
    /// dimension overflows `usize`.
    pub fn replicate(&self, n: usize) -> crate::Result<crate::ProductChain> {
        crate::ProductChain::replicated(self, n)
    }
}

#[cfg(test)]
mod tests {
    use crate::{CdrConfig, CdrModel};

    fn small_chain() -> crate::CdrChain {
        let config = CdrConfig::builder()
            .phases(4)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(0.08)
            .drift(2e-2, 8e-2)
            .build()
            .unwrap();
        CdrModel::new(config).build_chain().unwrap()
    }

    #[test]
    fn labeling_round_trips() {
        let chain = small_chain();
        let (l, c, m) = (4, 4, 8);
        assert!(chain.state_count() <= l * c * m);
        for s in 0..chain.state_count() {
            let (d, k, p) = (chain.data_of(s), chain.counter_of(s), chain.phase_bin_of(s));
            assert_eq!(chain.pack(d, k, p), s);
        }
    }

    #[test]
    fn phase_units() {
        let chain = small_chain();
        let locked = chain.locked_state();
        assert_eq!(chain.phase_offset_of(locked), 0);
        // Whatever the most negative reachable offset is, its UI value is
        // consistent with the grid step.
        let s = (0..chain.state_count())
            .min_by_key(|&s| chain.phase_offset_of(s))
            .unwrap();
        let o = chain.phase_offset_of(s);
        assert!((chain.phase_ui_of(s) - o as f64 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_probabilities_are_probabilities() {
        let chain = small_chain();
        assert_eq!(chain.wrap_prob().len(), chain.state_count());
        for &p in chain.wrap_prob() {
            assert!((0.0..=1.0).contains(&p));
        }
        // Some state near the boundary must have positive wrap probability.
        assert!(chain.wrap_prob().iter().any(|&p| p > 0.0));
        // The locked state should not slip in one step with these params.
        assert_eq!(chain.wrap_prob()[chain.locked_state()], 0.0);
    }

    #[test]
    fn try_pack_probes_without_panicking() {
        let chain = small_chain();
        assert!(chain.try_pack(99, 0, 0).is_none());
        let locked = chain.locked_state();
        assert_eq!(
            chain.try_pack(
                chain.data_of(locked),
                chain.counter_of(locked),
                chain.phase_bin_of(locked)
            ),
            Some(locked)
        );
    }

    #[test]
    fn one_sided_drift_prunes_transient_states() {
        // One-sided n_r (all mass >= 0): extreme negative phases beyond
        // corrective reach are transient and must be pruned, leaving an
        // irreducible chain.
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(4)
            .counter_len(2)
            .white_sigma_ui(0.02)
            .drift(6.1e-3, 1.65e-2)
            .build()
            .unwrap();
        let chain = CdrModel::new(config).build_chain().unwrap();
        assert!(chain.pruned_states() > 0, "expected pruning");
        let cls = stochcdr_markov::classify::classify(chain.tpm());
        assert!(cls.is_irreducible());
        // Labels still round-trip through the mapping.
        for s in (0..chain.state_count()).step_by(7) {
            let (d, k, p) = (chain.data_of(s), chain.counter_of(s), chain.phase_bin_of(s));
            assert_eq!(chain.pack(d, k, p), s);
        }
    }
}
