//! Recovered-clock jitter analysis.
//!
//! "There are also specifications on the recovered clock jitter." The
//! recovered clock's phase *is* the negated phase error of the loop, so
//! its jitter statistics follow from second-order functionals of the
//! chain: the stationary autocovariance of `Φ` ("computation of η is the
//! prerequisite for computing other performance quantities such as the
//! autocorrelation of a function defined on the states of the MC"), the
//! accumulated (k-symbol) jitter, and the one-sided jitter power spectral
//! density via the Wiener–Khinchin relation.

use stochcdr_markov::functional::autocovariance;

use crate::{CdrChain, CdrError, Result};

/// Second-order jitter statistics of the recovered clock.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockJitterReport {
    /// RMS phase jitter in UI (√C(0)).
    pub rms_ui: f64,
    /// Autocovariance sequence `C(0..=max_lag)` in UI².
    pub autocovariance: Vec<f64>,
    /// Accumulated jitter `J(k) = sqrt(E[(Φ_k − Φ_0)²])` in UI for
    /// `k = 0..=max_lag` (the oscilloscope "jitter vs observation
    /// interval" curve).
    pub accumulated_ui: Vec<f64>,
    /// One-sided jitter PSD samples `(f, S(f))`; `f` in cycles/symbol
    /// (`0 < f ≤ ½`), `S` in UI²/(cycles/symbol).
    pub psd: Vec<(f64, f64)>,
}

impl ClockJitterReport {
    /// The lag-1 correlation coefficient — how slowly the loop moves the
    /// phase per symbol.
    pub fn lag1_correlation(&self) -> f64 {
        if self.autocovariance[0] <= 0.0 {
            return 0.0;
        }
        self.autocovariance.get(1).copied().unwrap_or(0.0) / self.autocovariance[0]
    }

    /// Effective correlation length: smallest lag where the normalized
    /// autocovariance falls below `1/e` (or `max_lag` if it never does).
    pub fn correlation_length(&self) -> usize {
        let c0 = self.autocovariance[0];
        if c0 <= 0.0 {
            return 0;
        }
        let threshold = c0 / std::f64::consts::E;
        self.autocovariance
            .iter()
            .position(|&c| c < threshold)
            .unwrap_or(self.autocovariance.len() - 1)
    }
}

/// Computes the recovered-clock jitter statistics from a stationary
/// distribution.
///
/// `max_lag` bounds the autocovariance sequence (cost: one sparse
/// matrix-vector product per lag); `n_freq` sets the PSD sampling density
/// over `(0, ½]` cycles/symbol. The PSD uses a Bartlett (triangular) lag
/// window, which guarantees non-negativity of the estimate.
///
/// # Errors
///
/// Returns [`CdrError::Config`] if `eta` has the wrong length or
/// `max_lag == 0`, and propagates functional-evaluation errors.
pub fn analyze_clock_jitter(
    chain: &CdrChain,
    eta: &[f64],
    max_lag: usize,
    n_freq: usize,
) -> Result<ClockJitterReport> {
    if eta.len() != chain.state_count() {
        return Err(CdrError::Config(format!(
            "stationary vector length {} != state count {}",
            eta.len(),
            chain.state_count()
        )));
    }
    if max_lag == 0 {
        return Err(CdrError::Config("max_lag must be positive".into()));
    }
    let phase: Vec<f64> = (0..chain.state_count())
        .map(|s| chain.phase_ui_of(s))
        .collect();
    let c = autocovariance(chain.tpm(), eta, &phase, max_lag)?;
    let rms = c[0].max(0.0).sqrt();

    // Accumulated jitter: E[(Φ_k − Φ_0)²] = 2 (C(0) − C(k)) for a
    // stationary process.
    let accumulated: Vec<f64> = c
        .iter()
        .map(|&ck| (2.0 * (c[0] - ck)).max(0.0).sqrt())
        .collect();

    // One-sided PSD with Bartlett window, normalized so that
    // ∫_0^{1/2} S(f) df = C(0):
    // S(f) = 2 [ C(0) + 2 Σ_k w_k C(k) cos(2π f k) ],  w_k = 1 − k/(K+1).
    let mut psd = Vec::with_capacity(n_freq);
    let k_max = max_lag;
    for i in 1..=n_freq {
        let f = 0.5 * i as f64 / n_freq as f64;
        let mut s = c[0];
        for (k, &ck) in c.iter().enumerate().skip(1) {
            let w = 1.0 - k as f64 / (k_max + 1) as f64;
            s += 2.0 * w * ck * (2.0 * std::f64::consts::PI * f * k as f64).cos();
        }
        psd.push((f, (2.0 * s).max(0.0)));
    }

    Ok(ClockJitterReport {
        rms_ui: rms,
        autocovariance: c,
        accumulated_ui: accumulated,
        psd,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CdrConfig, CdrModel, SolverChoice};

    fn setup() -> (CdrChain, Vec<f64>) {
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(0.06)
            .drift(5e-3, 4e-2)
            .build()
            .unwrap();
        let chain = CdrModel::new(config).build_chain().unwrap();
        let eta = chain.analyze(SolverChoice::Direct).unwrap().stationary;
        (chain, eta)
    }

    #[test]
    fn rms_matches_density_std() {
        let (chain, eta) = setup();
        let report = analyze_clock_jitter(&chain, &eta, 50, 16).unwrap();
        let a = chain.analysis_from_stationary(eta, 1, 0.0, std::time::Duration::ZERO, "gth");
        // √C(0) is the std of the phase marginal plus the mean-removal:
        // both paths compute std of the same marginal.
        assert!((report.rms_ui - a.phi_density.std_ui()).abs() < 1e-10);
    }

    #[test]
    fn accumulated_jitter_grows_then_saturates() {
        let (chain, eta) = setup();
        let report = analyze_clock_jitter(&chain, &eta, 200, 8).unwrap();
        assert_eq!(report.accumulated_ui[0], 0.0);
        // Monotone-ish growth at short lags.
        assert!(report.accumulated_ui[5] > report.accumulated_ui[1]);
        // Saturation at sqrt(2) * rms for a decorrelated pair.
        let sat = report.accumulated_ui.last().unwrap();
        assert!(
            (*sat - 2f64.sqrt() * report.rms_ui).abs() < 0.2 * report.rms_ui,
            "saturation {sat} vs {}",
            2f64.sqrt() * report.rms_ui
        );
    }

    #[test]
    fn correlation_diagnostics() {
        let (chain, eta) = setup();
        let report = analyze_clock_jitter(&chain, &eta, 100, 8).unwrap();
        let rho1 = report.lag1_correlation();
        assert!(rho1 > 0.5 && rho1 < 1.0, "lag-1 correlation {rho1}");
        let len = report.correlation_length();
        assert!(len > 1 && len < 100, "correlation length {len}");
    }

    #[test]
    fn psd_is_nonnegative_and_integrates_to_variance() {
        let (chain, eta) = setup();
        let n_freq = 256;
        let report = analyze_clock_jitter(&chain, &eta, 150, n_freq).unwrap();
        assert!(report.psd.iter().all(|&(_, s)| s >= 0.0));
        // Parseval: ∫_0^{1/2} S(f) df ≈ C(0)/... with the one-sided
        // convention S integrates to the (windowed) variance; allow the
        // Bartlett bias.
        let df = 0.5 / n_freq as f64;
        let integral: f64 = report.psd.iter().map(|&(_, s)| s * df).sum();
        let var = report.autocovariance[0];
        assert!(
            (integral / var - 1.0).abs() < 0.3,
            "PSD integral {integral} vs variance {var}"
        );
    }

    #[test]
    fn argument_validation() {
        let (chain, eta) = setup();
        assert!(analyze_clock_jitter(&chain, &eta[1..], 10, 4).is_err());
        assert!(analyze_clock_jitter(&chain, &eta, 0, 4).is_err());
    }
}
