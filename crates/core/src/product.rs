//! Multi-lane product-form CDR models and the implicit Kronecker solve
//! path.
//!
//! The paper's headline scale — ~10^6 states — is out of reach for any
//! path that materializes the joint TPM: a product of two ~10^3-state
//! lanes has ~10^6 states but ~10^8 stored transitions (nnz multiplies,
//! not adds). Product-form front-ends (multi-lane collaborative CDR,
//! auxiliary frequency loops) compose per-lane chains with a Kronecker
//! product, and [`ProductChain`] keeps that product *implicit*: the fine
//! grid lives as a [`KroneckerOp`] holding only the per-lane CSRs, the
//! multigrid solver smooths and aggregates through mode-by-mode factor
//! products, and only the (small) coarse levels are ever materialized.
//!
//! # Path selection
//!
//! [`solve_auto`](ProductChain::solve_auto) picks the backend from the
//! soft memory budget ([`stochcdr_obs::mem::set_budget`], `--mem-budget`
//! on the CLI): when [`KroneckerOp::materialize_cost_bytes`] would push
//! the live heap past the budget, the solve runs implicitly; otherwise
//! the product is materialized and solved on the ordinary path. Both
//! backends share one solver configuration and one hierarchy, so on any
//! model small enough to run both, the stationary vector, cycle count,
//! and residuals are **bit-identical** between them — at any thread
//! count (the PR 2 determinism contract holds on both sides).

use std::sync::Arc;

use stochcdr_fsm::{FactorCache, KroneckerOp};
use stochcdr_markov::lumping::Partition;
use stochcdr_markov::stationary::StationaryResult;
use stochcdr_markov::{ImplicitStochastic, StochasticMatrix};
use stochcdr_multigrid::{
    CycleKind, CycleSchedule, GeometricCoarsening, KrylovAccel, MultigridSolver, MultigridStats,
    Smoother,
};
use stochcdr_obs as obs;

use crate::factors::chain_key;
use crate::{AssemblyFactors, CdrChain, CdrConfig, CdrError, CdrModel, Result};

/// TPM-validation tolerance for product chains. Each lane's rows sum to
/// one within the assembly tolerance (1e-9); the product's row sums are
/// products of lane row sums, so the joint drift stays far below this.
const PRODUCT_TOL: f64 = 1e-6;

/// Coarsest-level state cap — matches the multigrid builder's default
/// direct-solve cap.
const COARSE_CAP: usize = 4096;

/// Target size for the first (implicit-level) aggregation. The level-1
/// coarse chain is the largest *materialized* object in an implicit
/// solve, and its nnz scales with its state count; collapsing the fine
/// grid to ~10^5 states in one composed partition keeps the whole
/// hierarchy (coarse CSRs + gather plans) well under the budgets that
/// forced the implicit path in the first place. Aggressive first-step
/// aggregation trades some per-cycle contraction for memory — the
/// weighted (iterate-adaptive) lumping keeps the cycle convergent.
const FIRST_LEVEL_TARGET: usize = 1 << 17;

/// A product-form chain: the Kronecker product of per-lane CDR chains.
///
/// Lane 0 is the outermost (slowest-varying) factor of the joint state
/// index, matching [`KroneckerOp`]'s ordering.
#[derive(Debug, Clone)]
pub struct ProductChain {
    lanes: Vec<CdrChain>,
    op: KroneckerOp,
}

/// Result of a product-chain stationary solve.
#[derive(Debug, Clone)]
pub struct ProductSolve {
    /// The stationary distribution over the joint state space plus
    /// iteration/residual bookkeeping.
    pub result: StationaryResult,
    /// Per-cycle multigrid diagnostics.
    pub stats: MultigridStats,
    /// Whether the solve ran on the implicit (matrix-free) fine grid.
    pub implicit: bool,
}

impl ProductChain {
    /// Composes the given lanes into a product chain.
    ///
    /// # Errors
    ///
    /// Returns [`CdrError::Config`] when `lanes` is empty or the joint
    /// dimension would overflow `usize`.
    pub fn new(lanes: Vec<CdrChain>) -> Result<Self> {
        if lanes.is_empty() {
            return Err(CdrError::Config(
                "product chain needs at least one lane".into(),
            ));
        }
        let mut dim = 1usize;
        for lane in &lanes {
            dim = dim.checked_mul(lane.state_count()).ok_or_else(|| {
                CdrError::Config("joint product dimension overflows usize".into())
            })?;
        }
        let op = KroneckerOp::new(lanes.iter().map(|c| c.tpm().matrix().clone()).collect());
        Ok(ProductChain { lanes, op })
    }

    /// `n` identical copies of `lane` — the cheap way to reach the
    /// paper's scale regime from a single assembled chain.
    ///
    /// # Errors
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn replicated(lane: &CdrChain, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(CdrError::Config(
                "product chain needs at least one lane".into(),
            ));
        }
        Self::new(vec![lane.clone(); n])
    }

    /// Builds the lanes through `cache`: assembled lane chains are
    /// shared under the `product.lane` kind (keyed by each
    /// configuration's chain-determining parameters), and lane assembly
    /// itself pulls its tables through [`AssemblyFactors::cached`]. A
    /// sweep that moves one lane's drift axis therefore reuses every
    /// untouched lane outright *and* rebuilds the moved lane from cached
    /// factors — only the drift table (`acc.nr`) is recomputed.
    ///
    /// # Errors
    ///
    /// Propagates the first lane-assembly failure (which is also cached:
    /// a configuration that failed once fails again without re-running
    /// the assembler), plus the [`new`](Self::new) conditions.
    pub fn cached(configs: &[CdrConfig], cache: &FactorCache) -> Result<Self> {
        let mut lanes = Vec::with_capacity(configs.len());
        for cfg in configs {
            // Fetched outside the lane closure: `get_or_build` runs its
            // builder under the cache lock, so the nested factor lookups
            // must happen first (they are pure hits when the lane is
            // cached anyway).
            let factors = AssemblyFactors::cached(cfg, cache);
            let built: Arc<Result<CdrChain>> =
                cache.get_or_build("product.lane", chain_key(cfg), || {
                    CdrModel::new(cfg.clone()).build_chain_with(&factors)
                });
            lanes.push(built.as_ref().clone()?);
        }
        Self::new(lanes)
    }

    /// The per-lane chains, outermost first.
    pub fn lanes(&self) -> &[CdrChain] {
        &self.lanes
    }

    /// Joint state count (product of lane state counts).
    pub fn state_count(&self) -> usize {
        self.op.dim()
    }

    /// The implicit Kronecker operator over the lane TPMs.
    pub fn operator(&self) -> &KroneckerOp {
        &self.op
    }

    /// Stored entries of the compact (factored) representation.
    pub fn compact_nnz(&self) -> usize {
        self.op.compact_nnz()
    }

    /// Nonzeros the materialized joint TPM would hold.
    pub fn materialized_nnz(&self) -> usize {
        self.op.materialized_nnz()
    }

    /// Estimated heap bytes of materializing the joint TPM.
    pub fn materialize_cost_bytes(&self) -> u64 {
        self.op.materialize_cost_bytes()
    }

    /// The multigrid coarsening hierarchy for this product space.
    ///
    /// Above [`FIRST_LEVEL_TARGET`] joint states, the first partition is
    /// a *composed* geometric coarsening (several halvings of the
    /// innermost lanes folded into one aggregation step) so the level-1
    /// coarse chain — the largest materialized object of an implicit
    /// solve — lands near the target size instead of at half the fine
    /// grid. Below the target, plain one-halving-per-level geometric
    /// coarsening is used. Either way the coarsest level ends at or
    /// under the direct-solve cap.
    pub fn hierarchy(&self) -> Vec<Partition> {
        let dims: Vec<usize> = self.lanes.iter().map(CdrChain::state_count).collect();
        let mut parts = Vec::new();
        let mut cur = dims;
        if let Some((first, coarse_dims)) = composed_first_partition(&cur) {
            parts.push(first);
            cur = coarse_dims;
        }
        // Halve lane dimensions innermost-first down to 2 until the
        // coarsest product is under the cap; guarantee at least one
        // level (the implicit fine grid cannot be the coarsest level).
        let mut schedule = Vec::new();
        let mut sim = cur.clone();
        for c in (0..sim.len()).rev() {
            if sim.iter().product::<usize>() <= COARSE_CAP
                && !(parts.is_empty() && schedule.is_empty())
            {
                break;
            }
            if sim[c] > 2 {
                schedule.push((c, 2usize));
                sim[c] = 2;
            }
        }
        if parts.is_empty() && schedule.is_empty() {
            // Tiny product, nothing above 2 to halve further except one
            // last cut; halve the innermost non-trivial lane once.
            if let Some(c) = (0..cur.len()).rev().find(|&c| cur[c] > 1) {
                schedule.push((c, cur[c].div_ceil(2)));
            }
        }
        if !schedule.is_empty() {
            parts.extend(GeometricCoarsening::with_schedule(cur, schedule).levels());
        }
        parts
    }

    /// The project-standard solver for product chains: fixed V-cycles
    /// with Krylov window acceleration (window
    /// [`Self::KRYLOV_RESTART`]) over the paper's damped-Jacobi
    /// smoother (`ω = 0.8`, fully parallel on the implicit fine grid),
    /// 1 pre-/2 post-sweeps. Both solve backends use this exact
    /// configuration, which is what makes them bit-comparable; the
    /// extrapolation is a pure function of the residual history, so
    /// the acceleration preserves the thread-count determinism
    /// contract.
    ///
    /// V rather than `Adaptive` is a measured choice: on the deep
    /// (~14-level) hierarchies these product chains build, one F-cycle
    /// costs ~1.8 V-equivalents and a (truncated) W-cycle ~2.2+,
    /// because the first lumped level is as expensive to visit as the
    /// implicit fine grid itself. With the Krylov window armed the
    /// deeper schedules no longer buy convergence — on the 574k-state
    /// two-lane chain at tol 1e-8, V/F/adaptive-to-W all converge in
    /// 34–37 cycles, so plain V wins outright: 36.2 cycle-equivalents
    /// and 115 s vs 68.0 / 139 s (F) and 75.5 / 180 s (W). Escalation
    /// remains available through `schedule`
    /// (`--cycle adaptive|f|w`).
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0`.
    pub fn solver(&self, tol: f64) -> MultigridSolver {
        self.solver_tuned(tol, None, None)
    }

    /// Krylov window length for the product-path default accelerator.
    ///
    /// Longer than [`stochcdr_multigrid::DEFAULT_KRYLOV_RESTART`]
    /// because at tight
    /// tolerances the window length dominates the cycle count: on the
    /// 574k-state two-lane chain at tol 1e-10 a window of 4 needs 93
    /// accelerated V-cycles, 6 needs 72, 8 needs 50, and 12/16 plateau
    /// at 48 — short windows extrapolate from too small a subspace and
    /// the accept-test keeps rejecting marginal candidates. 12 buys
    /// the plateau at 3/4 of the window-buffer footprint of 16
    /// (`restart × n` doubles).
    pub const KRYLOV_RESTART: usize = 12;

    /// [`solver`](Self::solver) with explicit tuning. `schedule`:
    /// `None` keeps the adaptive default, `Some(s)` forces a schedule
    /// (the CLI `--cycle` flag). `accel` is two-layered: the outer
    /// `None` keeps the default always-on Krylov window, `Some(None)`
    /// disables acceleration outright (the historical plain-V
    /// configuration), `Some(Some(a))` forces a specific window config
    /// (`--accel`/`--restart`).
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0`.
    pub fn solver_tuned(
        &self,
        tol: f64,
        schedule: Option<CycleSchedule>,
        accel: Option<Option<KrylovAccel>>,
    ) -> MultigridSolver {
        assert!(tol > 0.0, "tolerance must be positive");
        let schedule = schedule.unwrap_or(CycleSchedule::Fixed(CycleKind::V));
        let accel = accel.unwrap_or(Some(KrylovAccel::always(Self::KRYLOV_RESTART)));
        let mut b = MultigridSolver::builder(self.hierarchy())
            .schedule(schedule)
            .smoother(Smoother::Jacobi { omega: 0.8 })
            .pre_sweeps(1)
            .post_sweeps(2)
            .tol(tol)
            .max_cycles(2_000);
        if let Some(accel) = accel {
            b = b.accel(accel);
        }
        b.build()
    }

    /// Solves for the stationary distribution without ever materializing
    /// the joint TPM: the fine grid stays a [`KroneckerOp`] wrapped in an
    /// [`ImplicitStochastic`] view, and only coarse levels exist as CSR.
    ///
    /// # Errors
    ///
    /// Propagates TPM validation (joint row-mass drift) and solver
    /// failures.
    pub fn solve_implicit(&self, tol: f64) -> Result<ProductSolve> {
        self.solve_implicit_with(self.solver(tol))
    }

    /// [`solve_implicit`](Self::solve_implicit) with an explicitly
    /// configured solver (see [`solver_tuned`](Self::solver_tuned)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`solve_implicit`](Self::solve_implicit).
    pub fn solve_implicit_with(&self, solver: MultigridSolver) -> Result<ProductSolve> {
        let _span = obs::span("core.product_solve");
        let tr = self.op.transposed();
        let imp = ImplicitStochastic::with_tolerance(&self.op, tr, PRODUCT_TOL)?;
        let (result, stats) = solver.solve_op_with_stats(&imp, None)?;
        self.solved_event(true, &result);
        Ok(ProductSolve {
            result,
            stats,
            implicit: true,
        })
    }

    /// Solves on the materialized joint TPM (the reference path for
    /// models small enough to afford it).
    ///
    /// # Errors
    ///
    /// Returns [`CdrError::Config`] when the soft memory budget refuses
    /// the materialization ([`KroneckerOp::try_materialize`]); use
    /// [`solve_implicit`](Self::solve_implicit) or
    /// [`solve_auto`](Self::solve_auto) instead. Propagates TPM
    /// validation and solver failures.
    pub fn solve_materialized(&self, tol: f64) -> Result<ProductSolve> {
        self.solve_materialized_with(self.solver(tol))
    }

    /// [`solve_materialized`](Self::solve_materialized) with an
    /// explicitly configured solver (see
    /// [`solver_tuned`](Self::solver_tuned)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`solve_materialized`](Self::solve_materialized).
    pub fn solve_materialized_with(&self, solver: MultigridSolver) -> Result<ProductSolve> {
        let _span = obs::span("core.product_solve");
        let csr = self.op.try_materialize().ok_or_else(|| {
            CdrError::Config(format!(
                "materializing the {}-state product TPM needs {} bytes, over the memory \
                 budget; use the implicit path",
                self.op.dim(),
                self.op.materialize_cost_bytes()
            ))
        })?;
        let tpm = StochasticMatrix::with_tolerance(csr, PRODUCT_TOL)?;
        let (result, stats) = solver.solve_with_stats(&tpm, None)?;
        self.solved_event(false, &result);
        Ok(ProductSolve {
            result,
            stats,
            implicit: false,
        })
    }

    /// Budget-driven backend selection: runs
    /// [`solve_implicit`](Self::solve_implicit) when materializing the
    /// joint TPM would cross the soft memory budget, and
    /// [`solve_materialized`](Self::solve_materialized) otherwise. With
    /// no budget set, the materialized path always wins.
    ///
    /// # Errors
    ///
    /// Same conditions as the selected backend.
    pub fn solve_auto(&self, tol: f64) -> Result<ProductSolve> {
        self.solve_auto_with(self.solver(tol))
    }

    /// [`solve_auto`](Self::solve_auto) with an explicitly configured
    /// solver (see [`solver_tuned`](Self::solver_tuned)).
    ///
    /// # Errors
    ///
    /// Same conditions as the selected backend.
    pub fn solve_auto_with(&self, solver: MultigridSolver) -> Result<ProductSolve> {
        if obs::mem::would_exceed(self.op.materialize_cost_bytes()) {
            obs::event(
                "core.product_path",
                &[
                    ("path", "implicit".into()),
                    ("states", self.op.dim().into()),
                    ("materialize_bytes", self.op.materialize_cost_bytes().into()),
                    ("budget_bytes", obs::mem::budget().unwrap_or(0).into()),
                ],
            );
            self.solve_implicit_with(solver)
        } else {
            self.solve_materialized_with(solver)
        }
    }

    fn solved_event(&self, implicit: bool, result: &StationaryResult) {
        obs::event(
            "core.product_solved",
            &[
                ("implicit", implicit.into()),
                ("states", self.op.dim().into()),
                ("lanes", self.lanes.len().into()),
                ("cycles", result.iterations().into()),
                ("residual", result.residual().into()),
            ],
        );
    }
}

/// Row-major strides for dimensions `dims` (first component slowest),
/// matching [`KroneckerOp`]'s joint-index packing.
fn row_major_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for c in (0..dims.len().saturating_sub(1)).rev() {
        strides[c] = strides[c + 1] * dims[c + 1];
    }
    strides
}

/// Builds the composed first partition when the product is large:
/// repeatedly halves lane dimensions innermost-first (each lane down to
/// 8, exactly the per-level maps `v → v/2` of [`GeometricCoarsening`]
/// composed together, i.e. `v → v >> k`) until the simulated coarse
/// product is at or under [`FIRST_LEVEL_TARGET`]. Returns the partition
/// over the fine grid plus the coarse dimensions, or `None` when the
/// product is already small enough for plain halving.
fn composed_first_partition(dims: &[usize]) -> Option<(Partition, Vec<usize>)> {
    let total: usize = dims.iter().product();
    if total <= FIRST_LEVEL_TARGET {
        return None;
    }
    let mut halvings = vec![0u32; dims.len()];
    let mut coarse = dims.to_vec();
    'halve: for c in (0..dims.len()).rev() {
        while coarse[c] > 8 {
            coarse[c] = coarse[c].div_ceil(2);
            halvings[c] += 1;
            if coarse.iter().product::<usize>() <= FIRST_LEVEL_TARGET {
                break 'halve;
            }
        }
    }
    let fine_strides = row_major_strides(dims);
    let coarse_strides = row_major_strides(&coarse);
    let mut labels = vec![0usize; total];
    for (flat, label) in labels.iter_mut().enumerate() {
        let mut l = 0usize;
        for c in 0..dims.len() {
            let v = (flat / fine_strides[c]) % dims[c];
            l += (v >> halvings[c]) * coarse_strides[c];
        }
        *label = l;
    }
    let part = Partition::from_labels(labels).expect("composed labels are contiguous");
    Some((part, coarse))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_model::DataModel;

    fn lane_config() -> CdrConfig {
        CdrConfig::builder()
            .phases(4)
            .grid_refinement(2)
            .counter_len(4)
            .data_model(DataModel::two_state(0.7, 0.8).unwrap())
            .white_sigma_ui(0.08)
            .drift(2e-2, 8e-2)
            .build()
            .unwrap()
    }

    fn lane() -> CdrChain {
        CdrModel::new(lane_config()).build_chain().unwrap()
    }

    /// A deliberately tiny lane so the double solves in these tests stay
    /// fast in debug builds.
    fn tiny_lane() -> CdrChain {
        let cfg = CdrConfig::builder()
            .phases(4)
            .grid_refinement(2)
            .counter_len(2)
            .data_model(DataModel::two_state(0.7, 0.8).unwrap())
            .white_sigma_ui(0.08)
            .drift(2e-2, 8e-2)
            .build()
            .unwrap();
        CdrModel::new(cfg).build_chain().unwrap()
    }

    #[test]
    fn implicit_and_materialized_solves_are_bitwise_identical() {
        // Pinned at 1 and 4 workers: the determinism contract says every
        // (path, thread count) pair lands on the same bits.
        let p = ProductChain::replicated(&tiny_lane(), 2).unwrap();
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            stochcdr_linalg::par::set_threads(Some(threads));
            runs.push((
                p.solve_materialized(1e-10).unwrap(),
                p.solve_implicit(1e-10).unwrap(),
            ));
        }
        stochcdr_linalg::par::set_threads(None);
        let (a, b) = &runs[0];
        assert!(!a.implicit);
        assert!(b.implicit);
        for (a, b) in &runs {
            assert_eq!(a.result.iterations(), b.result.iterations());
            assert_eq!(a.result.residual().to_bits(), b.result.residual().to_bits());
            assert_eq!(a.stats.residual_history, b.stats.residual_history);
            assert_eq!(a.stats.level_sizes, b.stats.level_sizes);
            let (da, db) = (&a.result.distribution, &b.result.distribution);
            assert_eq!(da.len(), db.len());
            for (x, y) in da.iter().zip(db) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Cross-thread-count: the 1- and 4-worker implicit vectors match.
        let (v1, v4) = (
            &runs[0].1.result.distribution,
            &runs[1].1.result.distribution,
        );
        for (x, y) in v1.iter().zip(v4) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn solve_auto_selects_by_budget() {
        // The budget is global process state; run both arms in one test
        // so no parallel test observes a half-configured budget.
        let p = ProductChain::replicated(&tiny_lane(), 2).unwrap();
        obs::mem::set_budget(Some(1)); // anything materialized exceeds this
        let implicit = p.solve_auto(1e-8);
        obs::mem::set_budget(None);
        assert!(implicit.unwrap().implicit, "tight budget must go implicit");
        let materialized = p.solve_auto(1e-8).unwrap();
        assert!(!materialized.implicit, "no budget must materialize");
    }

    #[test]
    fn cached_lanes_are_shared_across_points() {
        let cache = FactorCache::new();
        let cfgs = [lane_config(), lane_config()];
        let p = ProductChain::cached(&cfgs, &cache).unwrap();
        assert_eq!(p.lanes().len(), 2);
        let stats = cache.stats();
        assert_eq!(stats.by_kind["product.lane"].misses, 1);
        assert_eq!(stats.by_kind["product.lane"].hits, 1);
        // A second product over the same configs touches nothing new.
        let q = ProductChain::cached(&cfgs, &cache).unwrap();
        assert_eq!(cache.stats().by_kind["product.lane"].misses, 1);
        assert_eq!(q.state_count(), p.state_count());
    }

    #[test]
    fn drift_axis_rebuilds_one_lane_from_one_fresh_factor() {
        let cache = FactorCache::new();
        let base = lane_config();
        let moved = {
            let mut b = base.to_builder();
            b = b.drift(3e-2, 8e-2);
            b.build().unwrap()
        };
        ProductChain::cached(&[base.clone(), base.clone()], &cache).unwrap();
        let before = cache.stats();
        // Move lane 1's drift: lane 0 is a pure cache hit, lane 1
        // reassembles — but only the drift table is computed fresh.
        ProductChain::cached(&[base, moved], &cache).unwrap();
        let after = cache.stats();
        assert_eq!(after.by_kind["product.lane"].misses, 2);
        assert_eq!(
            after.by_kind["acc.nr"].misses,
            before.by_kind["acc.nr"].misses + 1,
            "moved drift axis must rebuild the drift factor"
        );
        for kind in [
            "data.branches",
            "pd.nw",
            "pd.decisions",
            "filter.table",
            "row.skeleton",
            "wrap.skeleton",
        ] {
            assert_eq!(
                after.by_kind[kind].misses, before.by_kind[kind].misses,
                "kind {kind} must be shared across the drift axis"
            );
        }
    }

    #[test]
    fn hierarchy_reaches_the_direct_solve_cap() {
        let p = ProductChain::replicated(&lane(), 2).unwrap();
        let parts = p.hierarchy();
        assert!(!parts.is_empty());
        assert_eq!(parts[0].n(), p.state_count());
        for w in parts.windows(2) {
            assert_eq!(w[0].block_count(), w[1].n(), "levels must chain");
            assert!(w[1].block_count() < w[0].block_count());
        }
        assert!(parts.last().unwrap().block_count() <= COARSE_CAP);
    }

    #[test]
    fn composed_first_partition_matches_geometric_halvings() {
        // Composing k halvings of one component must agree with running
        // GeometricCoarsening's per-level maps k times.
        let dims = vec![6usize, 70, 700];
        let (part, coarse) = composed_first_partition(&dims).unwrap();
        assert!(dims.iter().product::<usize>() > FIRST_LEVEL_TARGET);
        assert_eq!(part.n(), 6 * 70 * 700);
        assert_eq!(part.block_count(), coarse.iter().product::<usize>());
        let mut geo = GeometricCoarsening::new(dims.clone(), 2, coarse[2]).levels();
        assert!(!geo.is_empty());
        // Compose the geometric per-level labels into one map.
        let mut label: Vec<usize> = (0..part.n()).collect();
        for g in &geo {
            for l in label.iter_mut() {
                *l = g.block_of(*l);
            }
        }
        // Only component 2 was halved for these dims (6*70*88 < target).
        assert_eq!(coarse[..2], dims[..2]);
        for (s, &l) in label.iter().enumerate() {
            assert_eq!(part.block_of(s), l, "state {s}");
        }
        geo.clear();
    }

    #[test]
    fn degenerate_products_are_rejected() {
        assert!(ProductChain::new(Vec::new()).is_err());
        assert!(ProductChain::replicated(&lane(), 0).is_err());
    }
}
