//! Stationary densities of phase quantities — the curves the paper plots.

use stochcdr_noise::DiscreteDist;

/// A probability mass function over signed phase-grid offsets, with the
/// grid step attached so values can be read in UI.
///
/// The paper's Figures 4 and 5 plot exactly two of these per experiment:
/// the stationary density of the phase error `Φ` and of the phase-detector
/// input `Φ + n_w`.
#[derive(Debug, Clone, PartialEq)]
pub struct PhiDensity {
    delta_ui: f64,
    /// `(offset, probability)` pairs, ascending by offset.
    bins: Vec<(i32, f64)>,
}

impl PhiDensity {
    /// Builds a density from `(offset, probability)` pairs.
    ///
    /// Pairs are sorted and zero-mass entries dropped; total mass is *not*
    /// renormalized (callers pass genuine marginals that already sum to 1).
    ///
    /// # Panics
    ///
    /// Panics if `delta_ui <= 0` or any probability is negative.
    pub fn from_pairs(delta_ui: f64, pairs: impl IntoIterator<Item = (i32, f64)>) -> Self {
        assert!(delta_ui > 0.0, "grid step must be positive");
        let mut bins: Vec<(i32, f64)> = pairs
            .into_iter()
            .inspect(|&(o, p)| assert!(p >= 0.0 && p.is_finite(), "bad mass {p} at {o}"))
            .filter(|&(_, p)| p > 0.0)
            .collect();
        bins.sort_unstable_by_key(|&(o, _)| o);
        PhiDensity { delta_ui, bins }
    }

    /// Grid step in UI.
    pub fn delta_ui(&self) -> f64 {
        self.delta_ui
    }

    /// `(offset, probability)` pairs, ascending.
    pub fn bins(&self) -> &[(i32, f64)] {
        &self.bins
    }

    /// Total mass (≈ 1 for a marginal).
    pub fn total_mass(&self) -> f64 {
        self.bins.iter().map(|&(_, p)| p).sum()
    }

    /// Mean in UI.
    pub fn mean_ui(&self) -> f64 {
        self.bins
            .iter()
            .map(|&(o, p)| o as f64 * self.delta_ui * p)
            .sum()
    }

    /// Standard deviation in UI.
    pub fn std_ui(&self) -> f64 {
        let m = self.mean_ui();
        let var: f64 = self
            .bins
            .iter()
            .map(|&(o, p)| {
                let x = o as f64 * self.delta_ui;
                (x - m) * (x - m) * p
            })
            .sum();
        var.max(0.0).sqrt()
    }

    /// Probability mass strictly beyond `±threshold_ui`.
    pub fn tail_beyond_ui(&self, threshold_ui: f64) -> f64 {
        self.bins
            .iter()
            .filter(|&&(o, _)| (o as f64 * self.delta_ui).abs() > threshold_ui)
            .map(|&(_, p)| p)
            .sum()
    }

    /// Convolves with a discrete distribution on the same grid (e.g. the
    /// density of `Φ + n_w` from the marginal of `Φ`).
    pub fn convolve(&self, other: &DiscreteDist) -> PhiDensity {
        let mut acc = std::collections::BTreeMap::<i32, f64>::new();
        for &(o, p) in &self.bins {
            for (k, q) in other.iter() {
                *acc.entry(o + k).or_insert(0.0) += p * q;
            }
        }
        PhiDensity {
            delta_ui: self.delta_ui,
            bins: acc.into_iter().collect(),
        }
    }

    /// Renders the density as a fixed-height ASCII plot (log scale), the
    /// terminal stand-in for the paper's figure panels.
    ///
    /// `floor` is the smallest probability shown (e.g. `1e-15`); values at
    /// or below it map to an empty column.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`, `height == 0`, or `floor <= 0`.
    pub fn ascii_plot(&self, width: usize, height: usize, floor: f64) -> String {
        assert!(width > 0 && height > 0, "plot dimensions must be positive");
        assert!(floor > 0.0, "floor must be positive");
        if self.bins.is_empty() {
            return String::from("(empty density)");
        }
        let lo = self.bins.first().unwrap().0;
        let hi = self.bins.last().unwrap().0;
        let span = (hi - lo).max(1) as f64;
        // Aggregate bins into `width` columns (max within a column).
        let mut cols = vec![0.0f64; width];
        for &(o, p) in &self.bins {
            let x = (((o - lo) as f64 / span) * (width - 1) as f64).round() as usize;
            cols[x] = cols[x].max(p);
        }
        let top: f64 = cols.iter().fold(floor, |m, &v| m.max(v));
        let log_floor = floor.ln();
        let log_span = (top.ln() - log_floor).max(f64::MIN_POSITIVE);
        let levels: Vec<usize> = cols
            .iter()
            .map(|&p| {
                if p <= floor {
                    0
                } else {
                    (((p.ln() - log_floor) / log_span) * height as f64).ceil() as usize
                }
            })
            .collect();
        let mut out = String::new();
        for row in (1..=height).rev() {
            for &lvl in &levels {
                out.push(if lvl >= row { '#' } else { ' ' });
            }
            out.push('\n');
        }
        // Axis with UI labels at the ends.
        out.push_str(&"-".repeat(width));
        out.push('\n');
        let left = format!("{:+.3}", lo as f64 * self.delta_ui);
        let right = format!("{:+.3} UI", hi as f64 * self.delta_ui);
        let pad = width.saturating_sub(left.len() + right.len());
        out.push_str(&left);
        out.push_str(&" ".repeat(pad));
        out.push_str(&right);
        out
    }

    /// Emits the density as a `offset_ui probability` table (one line per
    /// bin), convenient for external plotting.
    pub fn to_table(&self) -> String {
        let mut out = String::with_capacity(self.bins.len() * 24);
        for &(o, p) in &self.bins {
            out.push_str(&format!("{:+.6e} {:.6e}\n", o as f64 * self.delta_ui, p));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> PhiDensity {
        PhiDensity::from_pairs(0.1, vec![(-1, 0.25), (0, 0.5), (1, 0.25)])
    }

    #[test]
    fn moments() {
        let d = tri();
        assert!((d.total_mass() - 1.0).abs() < 1e-15);
        assert!(d.mean_ui().abs() < 1e-15);
        // Var = 0.5 * (0.1)^2 = 0.005 -> std ~ 0.0707.
        assert!((d.std_ui() - (0.005f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn tails() {
        let d = tri();
        assert!((d.tail_beyond_ui(0.05) - 0.5).abs() < 1e-15);
        assert_eq!(d.tail_beyond_ui(0.15), 0.0);
    }

    #[test]
    fn convolution_spreads() {
        let d = tri();
        let nw = DiscreteDist::two_point(-1, 0.5, 1).unwrap();
        let c = d.convolve(&nw);
        assert!((c.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(c.bins().first().unwrap().0, -2);
        assert_eq!(c.bins().last().unwrap().0, 2);
        // Symmetric input stays symmetric.
        assert!(c.mean_ui().abs() < 1e-15);
    }

    #[test]
    fn zero_mass_bins_dropped() {
        let d = PhiDensity::from_pairs(1.0, vec![(0, 0.0), (1, 1.0)]);
        assert_eq!(d.bins().len(), 1);
    }

    #[test]
    fn ascii_plot_shape() {
        let d = tri();
        let plot = d.ascii_plot(30, 8, 1e-12);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 10); // 8 rows + axis + labels
        assert!(plot.contains('#'));
        assert!(plot.contains("UI"));
    }

    #[test]
    fn table_format() {
        let t = tri().to_table();
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("5.000000e-1"));
    }
}
