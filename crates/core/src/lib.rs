//! # stochcdr — stochastic performance evaluation of digital CDR circuits
//!
//! A from-scratch Rust reproduction of **Demir & Feldmann, “Stochastic
//! Modeling and Performance Evaluation for Digital Clock and Data Recovery
//! Circuits” (DATE 2000)**.
//!
//! Clock-and-data-recovery (CDR) circuits must meet bit-error-rate specs on
//! the order of 1e-10 — far beyond what transient simulation can verify.
//! The paper's method, implemented here:
//!
//! 1. model the digital phase-selection loop as a network of **finite state
//!    machines with stochastic inputs** (incoming data, eye-opening jitter
//!    `n_w`, drift jitter `n_r`),
//! 2. discretize phase error and noise onto a grid, producing one large
//!    **Markov chain** whose transition matrix is composed from the
//!    component FSMs,
//! 3. compute the **stationary distribution** with a dedicated
//!    **multigrid (aggregation/disaggregation) solver**, and
//! 4. read off performance: **BER** by integrating the tails of the
//!    stationary density of `Φ + n_w`, and the **mean time between cycle
//!    slips** by a first-passage computation.
//!
//! # Quickstart
//!
//! ```
//! use stochcdr::{CdrConfig, CdrModel, SolverChoice};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = CdrConfig::builder()
//!     .phases(16)
//!     .grid_refinement(4)
//!     .counter_len(8)
//!     .white_sigma_ui(0.02)
//!     .drift(5e-4, 8e-3)
//!     .build()?;
//! let model = CdrModel::new(config);
//! let chain = model.build_chain()?;
//! let analysis = chain.analyze(SolverChoice::Multigrid)?;
//! println!("states = {}, BER = {:.3e}", chain.state_count(), analysis.ber);
//! # Ok(())
//! # }
//! ```
//!
//! The crate layers:
//!
//! * [`CdrConfig`] — the design parameters (VCO phases, counter length,
//!   phase-detector dead zone, data statistics, jitter specs),
//! * [`CdrModel`] — builds the Markov chain, either through the generic
//!   [`stochcdr_fsm::CascadeNetwork`] (readable, mirrors the paper's
//!   Figure 2) or through an optimized direct assembler that marginalizes
//!   `n_w` analytically (identical output, asymptotically faster),
//! * [`CdrChain`] — the built chain with state-labeling accessors,
//! * [`analysis`] — stationary solve + BER + densities + cycle slips,
//! * [`monte_carlo`] — the brute-force simulator the paper argues cannot
//!   reach 1e-10, used here to cross-validate at high-BER points,
//! * [`report`] — paper-style figure annotations and ASCII density plots.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod acquisition;
pub mod analysis;
pub mod ber;
mod chain;
pub mod clock_jitter;
mod config;
pub mod cycle_slip;
pub mod data_model;
pub mod density;
mod error;
pub mod factors;
mod model;
pub mod monte_carlo;
pub mod product;
pub mod report;
mod stages;
pub mod theory;

pub use analysis::{CdrAnalysis, SolverChoice};
pub use chain::CdrChain;
pub use config::{CdrConfig, CdrConfigBuilder};
pub use data_model::DataModel;
pub use error::{CdrError, Result};
pub use factors::AssemblyFactors;
pub use model::CdrModel;
pub use product::{ProductChain, ProductSolve};
pub use stages::{DataSource, FilterKind, LoopCounter, PhaseAccumulator, PhaseDetector};
pub use stochcdr_markov::stationary::StationarySolver;
pub use stochcdr_multigrid::{
    CycleKind, CycleSchedule, KrylovAccel, MgPhases, DEFAULT_KRYLOV_RESTART, MAX_KRYLOV_WINDOW,
};
