//! Model assembly: from a [`CdrConfig`] to the joint Markov chain.

use std::time::Instant;

use stochcdr_obs as obs;

use stochcdr_fsm::{build_rows, CascadeNetwork};
use stochcdr_linalg::CsrMatrix;
use stochcdr_markov::StochasticMatrix;

use crate::factors::{AssemblyFactors, SkeletonEntry};
use crate::stages::{offset_of_bin, DataSource, LoopCounter, PhaseAccumulator, PhaseDetector};
use crate::{CdrChain, CdrConfig, Result};

/// Builds the joint Markov chain of a CDR configuration.
///
/// Two construction paths produce **bit-identical** transition matrices
/// (asserted by tests):
///
/// * [`network`](Self::network) — the generic
///   [`CascadeNetwork`] mirroring the paper's Figure 2; it enumerates every
///   joint noise outcome and is the readable reference,
/// * [`build_chain`](Self::build_chain) — a direct assembler that
///   marginalizes `n_w` analytically: the white jitter influences the next
///   state only through the ternary phase-detector decision, so its
///   (possibly hundreds of) support points collapse into three tail sums
///   per `(phase, transition)` pair. Row fan-out drops from
///   `O(|n_w| · |n_r|)` to `O(3 · |n_r|)`, which is what makes
///   million-state models buildable.
#[derive(Debug, Clone)]
pub struct CdrModel {
    config: CdrConfig,
}

impl CdrModel {
    /// Creates a model for the given configuration.
    pub fn new(config: CdrConfig) -> Self {
        CdrModel { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CdrConfig {
        &self.config
    }

    /// The Figure-2 cascade network (reference construction path).
    pub fn network(&self) -> CascadeNetwork {
        CascadeNetwork::new(vec![
            Box::new(DataSource::new(&self.config)),
            Box::new(PhaseDetector::new(&self.config)),
            Box::new(LoopCounter::new(&self.config)),
            Box::new(PhaseAccumulator::new(&self.config)),
        ])
    }

    /// Builds the chain through the generic network path.
    ///
    /// Cost is `O(states · |supp(n_w)| · |supp(n_r)|)`; use
    /// [`build_chain`](Self::build_chain) for anything large.
    ///
    /// # Errors
    ///
    /// Propagates TPM-validation errors (row mass drift).
    pub fn build_chain_via_network(&self) -> Result<CdrChain> {
        let _span = obs::span("core.build_chain");
        let start = Instant::now();
        let net = self.network();
        let tpm = net.try_build_tpm()?;
        self.finish_chain(tpm, &AssemblyFactors::compute(&self.config), start)
    }

    /// Builds the chain with analytic `n_w` marginalization (the fast
    /// path).
    ///
    /// The decision tails, data branches, filter table, and the
    /// drift-independent row skeleton are computed as [`AssemblyFactors`];
    /// sweeps reuse them across points via
    /// [`build_chain_with`](Self::build_chain_with).
    ///
    /// # Errors
    ///
    /// Propagates TPM-validation errors.
    pub fn build_chain(&self) -> Result<CdrChain> {
        self.build_chain_with(&AssemblyFactors::compute(&self.config))
    }

    /// Builds the chain from precomputed (possibly cached)
    /// [`AssemblyFactors`].
    ///
    /// The assembly emits transitions in exactly the order and with
    /// exactly the arithmetic of the monolithic fast path, so the TPM is
    /// bit-identical whether the factors came fresh or from a sweep
    /// cache.
    ///
    /// # Errors
    ///
    /// Propagates TPM-validation errors.
    ///
    /// # Panics
    ///
    /// Panics if `factors` were computed for a different configuration
    /// (skeleton row count mismatch).
    pub fn build_chain_with(&self, factors: &AssemblyFactors) -> Result<CdrChain> {
        let _span = obs::span("core.build_chain");
        let start = Instant::now();
        let cfg = &self.config;
        let m = cfg.m_bins();
        let n = cfg.state_count();
        assert_eq!(
            factors.skeleton.rows(),
            n,
            "factors built for another configuration"
        );
        let acc = PhaseAccumulator::new(cfg);
        let skeleton = &*factors.skeleton;
        let nr = &*factors.nr;

        // Each row is a pure function of its state index, so the rows are
        // assembled in parallel; `build_rows` guarantees the result is
        // byte-identical to a serial pass for any thread count.
        let tpm = build_rows(n, 1e-9, |state, em| {
            let bin = state % m;
            for &SkeletonEntry { next_base, dir, p } in skeleton.row(state) {
                for &(nr_val, p_nr) in nr {
                    let bin2 = acc.advance(bin, dir, nr_val);
                    em.emit(next_base + bin2, p * p_nr);
                }
            }
        })?;
        self.finish_chain(tpm, factors, start)
    }

    /// Restricts the assembled full-product TPM to its recurrent reachable
    /// class, as the paper prescribes ("the state set is the reachable
    /// state space of the MC, which is a subset of the Cartesian product"),
    /// and wraps everything into a [`CdrChain`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::CdrError::Config`] when the model has several
    /// disjoint recurrent classes (the stationary behavior would depend on
    /// the initial state — a sign of a degenerate configuration), and
    /// propagates TPM validation errors.
    fn finish_chain(
        &self,
        full: CsrMatrix,
        factors: &AssemblyFactors,
        start: Instant,
    ) -> Result<CdrChain> {
        let cls = stochcdr_markov::classify::classify_graph(&full);
        let wrap_full = self.wrap_probabilities(factors);
        if cls.is_irreducible() {
            let tpm = StochasticMatrix::new(full)?;
            obs::event(
                "core.chain_built",
                &[
                    ("states", tpm.n().into()),
                    ("nnz", tpm.matrix().nnz().into()),
                    ("restricted", false.into()),
                ],
            );
            return Ok(CdrChain::new(
                self.config.clone(),
                tpm,
                wrap_full,
                start.elapsed(),
            ));
        }
        let recurrent = cls.recurrent_classes();
        if recurrent.len() != 1 {
            return Err(crate::CdrError::Config(format!(
                "model has {} disjoint recurrent classes; the stationary distribution is                  ambiguous (check for degenerate noise/filter parameters)",
                recurrent.len()
            )));
        }
        let keep = cls.classes[recurrent[0]].clone(); // ascending by construction
        let restricted = full.submatrix(&keep);
        let tpm = StochasticMatrix::new(restricted)?;
        obs::event(
            "core.chain_built",
            &[
                ("states", tpm.n().into()),
                ("nnz", tpm.matrix().nnz().into()),
                ("restricted", true.into()),
            ],
        );
        let wrap = keep.iter().map(|&s| wrap_full[s]).collect();
        Ok(CdrChain::new_restricted(
            self.config.clone(),
            tpm,
            wrap,
            start.elapsed(),
            keep,
        ))
    }

    /// Per-state probability that the phase accumulator wraps across
    /// ±UI/2 in one step — the exact per-state cycle-slip rate used by
    /// [`crate::cycle_slip`].
    ///
    /// The `(dir, p_decision)` pairs come from the cached
    /// [`WrapSkeleton`](crate::factors::WrapSkeleton) in exactly the
    /// accumulation order of the pre-factoring monolithic loop, keeping
    /// the sums bit-identical.
    fn wrap_probabilities(&self, factors: &AssemblyFactors) -> Vec<f64> {
        let cfg = &self.config;
        let m = cfg.m_bins();
        let half = (m / 2) as i64;
        let step = cfg.step_bins() as i64;
        let nr = &*factors.nr;

        let mut wrap = vec![0.0f64; cfg.state_count()];
        for (state, w) in wrap.iter_mut().enumerate() {
            let o = offset_of_bin(state % m, m);
            let mut acc_p = 0.0;
            for &(dir, p_dec) in factors.wrap.row(state) {
                for &(nr_val, p_nr) in nr {
                    let unwrapped = o - dir * step + nr_val;
                    if unwrapped < -half || unwrapped >= half {
                        acc_p += p_dec * p_nr;
                    }
                }
            }
            *w = acc_p;
        }
        wrap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CdrConfig {
        CdrConfig::builder()
            .phases(4)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(0.08)
            .drift(2e-2, 8e-2)
            .build()
            .unwrap()
    }

    #[test]
    fn fast_and_network_paths_agree_exactly() {
        let model = CdrModel::new(small_config());
        let fast = model.build_chain().unwrap();
        let reference = model.build_chain_via_network().unwrap();
        assert_eq!(fast.state_count(), reference.state_count());
        let (a, b) = (fast.tpm().matrix(), reference.tpm().matrix());
        assert_eq!(a.nnz(), b.nnz(), "different sparsity patterns");
        for (r, c, v) in a.iter() {
            let w = b.get(r, c);
            assert!(
                (v - w).abs() < 1e-12,
                "mismatch at ({r}, {c}): fast {v} vs network {w}"
            );
        }
    }

    #[test]
    fn fast_path_has_smaller_fanout_budget() {
        // The fast path's worst-case emissions per row: branches(2) x
        // decisions(3) x |nr|; the network path: branches x |nw| x |nr|.
        let model = CdrModel::new(small_config());
        let pd = PhaseDetector::new(model.config());
        assert!(
            pd.nw().support_len() > 3,
            "n_w support should exceed decision count"
        );
    }

    #[test]
    fn two_state_data_model_paths_agree() {
        // The paper's Figure-2 data source (stay probabilities 0.7 / 0.8):
        // both construction paths must still match exactly.
        let config = CdrConfig::builder()
            .phases(4)
            .grid_refinement(2)
            .counter_len(4)
            .data_model(crate::data_model::DataModel::two_state(0.7, 0.8).unwrap())
            .white_sigma_ui(0.08)
            .drift(2e-2, 8e-2)
            .build()
            .unwrap();
        let model = CdrModel::new(config);
        let fast = model.build_chain().unwrap();
        let reference = model.build_chain_via_network().unwrap();
        assert_eq!(fast.state_count(), 2 * 4 * 8);
        assert_eq!(fast.tpm().nnz(), reference.tpm().nnz());
        for (r, c, v) in fast.tpm().matrix().iter() {
            assert!((v - reference.tpm().matrix().get(r, c)).abs() < 1e-12);
        }
        let cls = stochcdr_markov::classify::classify(fast.tpm());
        assert!(cls.is_irreducible());
    }

    #[test]
    fn consecutive_filter_paths_agree_and_chain_is_sound() {
        let config = CdrConfig::builder()
            .phases(4)
            .grid_refinement(2)
            .counter_len(3)
            .filter_kind(crate::stages::FilterKind::ConsecutiveDetector)
            .white_sigma_ui(0.08)
            .drift(2e-2, 8e-2)
            .build()
            .unwrap();
        let model = CdrModel::new(config);
        let fast = model.build_chain().unwrap();
        let reference = model.build_chain_via_network().unwrap();
        assert_eq!(fast.state_count(), 4 * 5 * 8); // 2*3-1 filter states
        assert_eq!(fast.tpm().nnz(), reference.tpm().nnz());
        for (r, c, v) in fast.tpm().matrix().iter() {
            assert!((v - reference.tpm().matrix().get(r, c)).abs() < 1e-12);
        }
        let cls = stochcdr_markov::classify::classify(fast.tpm());
        assert!(cls.is_irreducible());
    }

    #[test]
    fn chain_is_irreducible_and_aperiodic() {
        let model = CdrModel::new(small_config());
        let chain = model.build_chain().unwrap();
        let cls = stochcdr_markov::classify::classify(chain.tpm());
        assert!(
            cls.is_irreducible(),
            "CDR chain should be irreducible: {} classes",
            cls.class_count()
        );
        assert_eq!(stochcdr_markov::classify::period(chain.tpm()), 1);
    }

    #[test]
    fn row_sums_are_one() {
        let model = CdrModel::new(small_config());
        let chain = model.build_chain().unwrap();
        for s in chain.tpm().matrix().row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn drift_biases_the_phase() {
        // With a positive-mean n_r, the one-step expected phase motion from
        // the locked state is positive (before corrections kick in).
        let model = CdrModel::new(small_config());
        let chain = model.build_chain().unwrap();
        let locked = chain.locked_state();
        let mut drift = 0.0;
        for (next, p) in chain.tpm().matrix().row(locked) {
            drift += p * (chain.phase_offset_of(next) - chain.phase_offset_of(locked)) as f64;
        }
        assert!(drift > 0.0, "expected positive drift, got {drift}");
    }

    #[test]
    fn correction_pushes_toward_zero() {
        // From a state with large positive phase error and counter about to
        // overflow, the expected next phase should be pulled down.
        let model = CdrModel::new(small_config());
        let chain = model.build_chain().unwrap();
        let cfg = model.config();
        let high_phase = cfg.m_bins() - 2; // offset +2 of max +3 on m=8 grid
        let about_to_overflow = cfg.counter_len - 1;
        let s = chain.pack(0, about_to_overflow, high_phase);
        let mut movement = 0.0;
        for (next, p) in chain.tpm().matrix().row(s) {
            movement += p * (chain.phase_offset_of(next) - chain.phase_offset_of(s)) as f64;
        }
        assert!(movement < 0.0, "expected corrective pull, got {movement}");
    }

    #[test]
    fn form_time_recorded() {
        let model = CdrModel::new(small_config());
        let chain = model.build_chain().unwrap();
        assert!(chain.form_time().as_nanos() > 0);
    }
}
