//! Cycle-slip analysis.
//!
//! "Another measure of performance for CDR circuits is the average time
//! between cycle slips. This translates into the computation of mean
//! transition times between certain sets of MC states ... It involves
//! solving a linear system with the (modified) TPM."
//!
//! Two complementary estimators:
//!
//! * [`mean_time_between_slips`] — the exact stationary slip rate: every
//!   state's one-step phase-wrap probability is known from model assembly,
//!   so `MTBS = 1 / Σ_i η_i · P(wrap | i)` with no extra linear solve.
//! * [`mean_time_to_first_slip`] — the paper's modified-TPM computation:
//!   mean first-passage time from the locked state to the slip boundary,
//!   solved as `(I − Q) t = 1`.

use stochcdr_markov::passage::{mean_hitting_times, mean_hitting_times_direct, PassageOptions};

use crate::{CdrChain, CdrError, Result};

/// Mean time between cycle slips (in symbol intervals) under stationary
/// operation: the reciprocal of the stationary phase-wrap rate.
///
/// # Example
///
/// ```
/// use stochcdr::cycle_slip::mean_time_between_slips;
/// use stochcdr::{CdrConfig, CdrModel, SolverChoice};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = CdrConfig::builder()
///     .phases(8).grid_refinement(2).counter_len(4)
///     .white_sigma_ui(0.08).drift(1e-2, 6e-2).build()?;
/// let chain = CdrModel::new(config).build_chain()?;
/// let a = chain.analyze(SolverChoice::Multigrid)?;
/// let mtbs = mean_time_between_slips(&chain, &a.stationary)?;
/// assert!(mtbs > 1.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`CdrError::Config`] if `eta` has the wrong length, or if the
/// slip rate is exactly zero (no slip is reachable — infinite MTBS is
/// reported as an error rather than `inf` so callers must handle it).
pub fn mean_time_between_slips(chain: &CdrChain, eta: &[f64]) -> Result<f64> {
    if eta.len() != chain.state_count() {
        return Err(CdrError::Config(format!(
            "stationary vector length {} != state count {}",
            eta.len(),
            chain.state_count()
        )));
    }
    let rate: f64 = eta
        .iter()
        .zip(chain.wrap_prob())
        .map(|(&e, &w)| e * w)
        .sum();
    if rate <= 0.0 {
        return Err(CdrError::Config(
            "stationary slip rate is zero; the configured noise cannot produce slips".into(),
        ));
    }
    Ok(1.0 / rate)
}

/// The slip-boundary state set: every joint state whose phase bin lies
/// within `margin_bins` of the ±UI/2 wrap boundary.
pub fn boundary_states(chain: &CdrChain, margin_bins: usize) -> Vec<usize> {
    let m = chain.config().m_bins();
    let half = (m / 2) as i64;
    let margin = margin_bins as i64;
    (0..chain.state_count())
        .filter(|&s| {
            let o = chain.phase_offset_of(s);
            o < -half + margin || o >= half - margin
        })
        .collect()
}

/// Mean number of symbols until the phase first reaches the slip boundary,
/// starting from the locked state — the paper's "mean transition times
/// between certain sets of MC states" via the modified-TPM linear system.
///
/// `margin_bins` widens the boundary set (states within `margin` bins of
/// ±UI/2 count as slipped); 1 targets exactly the outermost bins.
///
/// Solver selection: slips are rare events, so the Gauss–Seidel iteration
/// on `(I − Q) t = 1` converges at rate `1 − 1/E[T]` — unusable once
/// `E[T]` is large. Chains with at most [`DIRECT_STATE_CAP`] states are
/// therefore solved with the exact dense LU path
/// ([`mean_hitting_times_direct`]); larger chains fall back to the
/// iterative solver, which is only adequate at *high*-noise operating
/// points where slips are frequent.
///
/// # Errors
///
/// * [`CdrError::Config`] if the margin covers the locked state,
/// * passage-solver errors (unreachable boundary, non-convergence).
pub fn mean_time_to_first_slip(chain: &CdrChain, margin_bins: usize) -> Result<f64> {
    let target = boundary_states(chain, margin_bins.max(1));
    let locked = chain.locked_state();
    if target.contains(&locked) {
        return Err(CdrError::Config(format!(
            "margin of {margin_bins} bins covers the locked state"
        )));
    }
    let times = if chain.state_count() <= DIRECT_STATE_CAP {
        mean_hitting_times_direct(chain.tpm(), &target)?
    } else {
        mean_hitting_times(chain.tpm(), &target, &PassageOptions::default())?
    };
    Ok(times[locked])
}

/// Largest chain solved with the dense direct first-passage path.
pub const DIRECT_STATE_CAP: usize = 2048;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CdrConfig, CdrModel, SolverChoice};

    fn chain(sigma: f64) -> CdrChain {
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(sigma)
            .drift(1e-2, 6e-2)
            .build()
            .unwrap();
        CdrModel::new(config).build_chain().unwrap()
    }

    #[test]
    fn mtbs_positive_and_reasonable() {
        let c = chain(0.06);
        let a = c.analyze(SolverChoice::Multigrid).unwrap();
        let mtbs = mean_time_between_slips(&c, &a.stationary).unwrap();
        assert!(mtbs > 1.0, "MTBS {mtbs}");
        assert!(mtbs.is_finite());
    }

    #[test]
    fn more_noise_slips_sooner() {
        let quiet = chain(0.04);
        let loud = chain(0.12);
        let aq = quiet.analyze(SolverChoice::Multigrid).unwrap();
        let al = loud.analyze(SolverChoice::Multigrid).unwrap();
        let mq = mean_time_between_slips(&quiet, &aq.stationary).unwrap();
        let ml = mean_time_between_slips(&loud, &al.stationary).unwrap();
        assert!(mq > ml, "quiet {mq} should out-last loud {ml}");
    }

    #[test]
    fn boundary_set_geometry() {
        let c = chain(0.06);
        let b = boundary_states(&c, 1);
        // Margin 1: offsets -4 (bin 0) and +3 (bin 7) on the m=16 grid...
        let m = c.config().m_bins();
        for &s in &b {
            let o = c.phase_offset_of(s);
            assert!(o == -(m as i64 / 2) || o == m as i64 / 2 - 1);
        }
        // Exactly 2 bins x data x counter states.
        assert_eq!(
            b.len(),
            2 * c.config().data_model.state_count() * c.config().filter_states()
        );
    }

    #[test]
    fn first_slip_time_exceeds_zero_and_margin_checked() {
        let c = chain(0.08);
        let t = mean_time_to_first_slip(&c, 1).unwrap();
        assert!(t > 1.0, "first-slip time {t}");
        // A margin covering the center is rejected.
        assert!(mean_time_to_first_slip(&c, c.config().half_ui_bins()).is_err());
    }

    #[test]
    fn estimators_are_same_order_of_magnitude() {
        // MTBS (stationary rate) and first-passage from lock measure
        // different but related quantities; for a well-locked loop they
        // agree within an order of magnitude.
        let c = chain(0.1);
        let a = c.analyze(SolverChoice::Multigrid).unwrap();
        let mtbs = mean_time_between_slips(&c, &a.stationary).unwrap();
        let first = mean_time_to_first_slip(&c, 1).unwrap();
        let ratio = mtbs / first;
        assert!(ratio > 0.05 && ratio < 20.0, "mtbs {mtbs} vs first {first}");
    }

    #[test]
    fn wrong_eta_length_rejected() {
        let c = chain(0.06);
        assert!(mean_time_between_slips(&c, &[0.5, 0.5]).is_err());
    }
}
