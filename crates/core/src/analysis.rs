//! Stationary analysis of a built CDR chain: solver dispatch, densities,
//! BER, and timing.

use std::time::Instant;

use stochcdr_markov::functional::marginal;
use stochcdr_markov::lumping::{LumpPlan, Partition};
use stochcdr_markov::stationary::{
    GaussSeidelSolver, GmresStationary, GthSolver, JacobiSolver, PowerIteration, StationarySolver,
};
use stochcdr_multigrid::{
    CycleKind, CycleSchedule, KrylovAccel, MgPhases, MultigridSolver, Smoother,
    DEFAULT_KRYLOV_RESTART,
};
use stochcdr_obs as obs;

use crate::ber::{ber_discrete, ber_symmetric_dist};
use crate::density::PhiDensity;
use crate::stages::PhaseDetector;
use crate::{CdrChain, Result};

/// Which stationary solver to run.
///
/// `Multigrid*` builds the paper's phase-pairing hierarchy from the chain's
/// `(data, counter, phase)` layout automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverChoice {
    /// Plain power iteration (baseline).
    Power,
    /// Gauss–Seidel sweeps.
    GaussSeidel,
    /// Damped Jacobi sweeps.
    Jacobi,
    /// Direct GTH elimination — `O(n³)`, only for small chains.
    Direct,
    /// Multigrid V-cycles with phase-pairing coarsening (the paper's
    /// solver).
    Multigrid,
    /// Multigrid W-cycles (more robust on very stiff operating points).
    MultigridW,
    /// Adaptive-schedule multigrid with windowed Krylov acceleration: the
    /// cycle controller escalates V→F→W on stalling reduction factors and
    /// a minimal-residual extrapolation recombines recent iterates.
    MgKrylov,
    /// Restarted GMRES on the rank-one-shifted stationarity system
    /// (standalone Krylov baseline, no multigrid preconditioning).
    Gmres,
}

impl SolverChoice {
    /// Every solver, in the canonical presentation order used by the CLI
    /// and the benchmark tables. Adding a solver here is the single
    /// registration point: `parse`, `cli_name`, the CLI `--solver` flag,
    /// and the benchmark sweeps all iterate this list.
    pub const ALL: [SolverChoice; 8] = [
        SolverChoice::Power,
        SolverChoice::GaussSeidel,
        SolverChoice::Jacobi,
        SolverChoice::Direct,
        SolverChoice::Multigrid,
        SolverChoice::MultigridW,
        SolverChoice::MgKrylov,
        SolverChoice::Gmres,
    ];

    /// The CLI spelling of this choice (`--solver` value).
    pub fn cli_name(self) -> &'static str {
        match self {
            SolverChoice::Power => "power",
            SolverChoice::GaussSeidel => "gs",
            SolverChoice::Jacobi => "jacobi",
            SolverChoice::Direct => "direct",
            SolverChoice::Multigrid => "mg",
            SolverChoice::MultigridW => "mgw",
            SolverChoice::MgKrylov => "mgk",
            SolverChoice::Gmres => "gmres",
        }
    }

    /// Whether this choice runs the multigrid machinery (and therefore
    /// needs a coarsening hierarchy and can use cached symbolic plans).
    pub fn is_multigrid(self) -> bool {
        matches!(
            self,
            SolverChoice::Multigrid | SolverChoice::MultigridW | SolverChoice::MgKrylov
        )
    }

    /// The default cycle schedule of a multigrid choice; `None` for
    /// one-level solvers. The fixed schedules are what the goldens pin:
    /// `mg` is exactly the historical V-cycle solver.
    pub fn mg_schedule(self) -> Option<CycleSchedule> {
        match self {
            SolverChoice::Multigrid => Some(CycleSchedule::Fixed(CycleKind::V)),
            SolverChoice::MultigridW => Some(CycleSchedule::Fixed(CycleKind::W)),
            SolverChoice::MgKrylov => Some(CycleSchedule::Adaptive),
            _ => None,
        }
    }

    /// Parses a CLI spelling; `None` for unknown names.
    pub fn parse(name: &str) -> Option<SolverChoice> {
        SolverChoice::ALL
            .iter()
            .copied()
            .find(|c| c.cli_name() == name)
    }

    /// All CLI spellings joined with `|` — for usage strings and error
    /// messages.
    pub fn cli_names() -> String {
        SolverChoice::ALL.map(SolverChoice::cli_name).join("|")
    }
}

/// Default residual tolerance for analyses.
pub const DEFAULT_TOL: f64 = 1e-12;

/// The complete output of one stationary analysis — everything a paper
/// figure panel reports.
#[derive(Debug, Clone)]
pub struct CdrAnalysis {
    /// Stationary distribution over joint states.
    pub stationary: Vec<f64>,
    /// Stationary marginal density of the phase error `Φ`.
    pub phi_density: PhiDensity,
    /// Stationary density of the phase-detector input `Φ + n_w`
    /// (discretized-`n_w` convolution; the paper's second curve).
    pub pd_input_density: PhiDensity,
    /// BER via the continuous Gaussian tail (production estimator).
    pub ber: f64,
    /// BER via the discretized `n_w` (matches the Monte-Carlo probability
    /// space; zero when the truncated support cannot reach ±UI/2).
    pub ber_discrete: f64,
    /// Solver iterations (cycles for multigrid).
    pub iterations: usize,
    /// Final stationary residual `||ηP − η||₁`.
    pub residual: f64,
    /// Wall-clock time of the stationary solve.
    pub solve_time: std::time::Duration,
    /// Which solver produced the result.
    pub solver_name: &'static str,
    /// Per-phase wall-time attribution for multigrid solves (`None` for
    /// other solvers, or when the stationary vector came from outside).
    pub mg_phases: Option<MgPhases>,
    /// Work-normalized multigrid cost in units of one V-cycle's
    /// fine-through-coarse sweep (`None` outside multigrid): the machine
    /// metric behind the `≤ N cycle-equivalents` acceptance gates, equal
    /// to the cycle count on an unaccelerated fixed-V solve.
    pub mg_cycle_equivalents: Option<f64>,
}

impl CdrChain {
    /// Builds the paper's coarsening hierarchy for this chain: lump pairs
    /// of adjacent phase bins until the phase grid is small, then continue
    /// through the filter and data components so the coarsest direct solve
    /// is a few dozen states (W-cycles visit it `2^levels` times, so its
    /// `O(n³)` GTH cost must be negligible).
    ///
    /// Works on reachability-pruned chains: levels are derived from the
    /// surviving states' `(data, filter, phase)` coordinates rather than
    /// the full Cartesian product.
    pub fn phase_hierarchy(&self) -> Vec<Partition> {
        let mut coords = self.hierarchy_coords();
        let mut parts = Vec::new();
        for (comp, _) in self.coarsening_plan() {
            let (part, coarse) = coarsen_step(&coords, comp);
            parts.push(part);
            coords = coarse;
        }
        parts
    }

    /// [`phase_hierarchy`](Self::phase_hierarchy) with per-level caching:
    /// each `(Partition, coarse coords)` step is fetched from `cache`
    /// under a key derived from the state layout (dimensions plus the
    /// reachability-pruning map) and the level index. Sweep points whose
    /// axes do not change the surviving state set share the entire
    /// hierarchy.
    pub fn phase_hierarchy_cached(&self, cache: &stochcdr_fsm::FactorCache) -> Vec<Partition> {
        let cfg = self.config();
        let mut base = stochcdr_fsm::KeyHasher::new();
        base.usize(cfg.data_model.state_count())
            .usize(cfg.filter_states())
            .usize(cfg.m_bins())
            .usize(self.state_count());
        if self.pruned_states() > 0 {
            for s in 0..self.state_count() {
                base.usize(self.full_index_of(s));
            }
        }
        let base = base.finish();
        let mut coords: Option<std::sync::Arc<Vec<[usize; 3]>>> = None;
        let mut parts = Vec::new();
        for (level, (comp, _)) in self.coarsening_plan().into_iter().enumerate() {
            let mut key = stochcdr_fsm::KeyHasher::new();
            key.u64(base).usize(level).usize(comp);
            let step = cache.get_or_build("mg.level", key.finish(), || {
                let fine = match &coords {
                    None => std::borrow::Cow::Owned(self.hierarchy_coords()),
                    Some(c) => std::borrow::Cow::Borrowed(&***c),
                };
                coarsen_step(&fine, comp)
            });
            parts.push(step.0.clone());
            coords = Some(std::sync::Arc::new(step.1.clone()));
        }
        parts
    }

    /// The surviving states' `(data, filter, phase)` coordinates — the
    /// finest level of the coarsening hierarchy.
    fn hierarchy_coords(&self) -> Vec<[usize; 3]> {
        (0..self.state_count())
            .map(|s| [self.data_of(s), self.counter_of(s), self.phase_bin_of(s)])
            .collect()
    }

    /// The fixed coarsening schedule as a flat list of `(component,
    /// resulting dimension)` steps: halve the phase grid to 8 bins, then
    /// the filter to 2 states, then the data component to 2.
    fn coarsening_plan(&self) -> Vec<(usize, usize)> {
        let cfg = self.config();
        let mut dims = [
            cfg.data_model.state_count(),
            cfg.filter_states(),
            cfg.m_bins(),
        ];
        let schedule = [
            (2usize, 8.min(cfg.m_bins())),
            (1, 2.min(cfg.filter_states())),
            (0, 2),
        ];
        let mut plan = Vec::new();
        for (comp, stop) in schedule {
            while dims[comp] > stop {
                dims[comp] = dims[comp].div_ceil(2);
                plan.push((comp, dims[comp]));
            }
        }
        plan
    }

    /// Builds the solver object for a [`SolverChoice`], configured for this
    /// chain's state layout.
    pub fn solver(&self, choice: SolverChoice) -> Box<dyn StationarySolver> {
        self.solver_with_tol(choice, DEFAULT_TOL)
    }

    /// [`solver`](Self::solver) with an explicit residual tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0`.
    pub fn solver_with_tol(&self, choice: SolverChoice, tol: f64) -> Box<dyn StationarySolver> {
        let parts = if choice.is_multigrid() {
            self.phase_hierarchy()
        } else {
            Vec::new()
        };
        self.solver_from_hierarchy(choice, tol, parts)
    }

    /// [`solver_with_tol`](Self::solver_with_tol) with an externally built
    /// (typically cached, see
    /// [`phase_hierarchy_cached`](Self::phase_hierarchy_cached)) coarsening
    /// hierarchy. Non-multigrid choices ignore `parts`.
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0`.
    pub fn solver_from_hierarchy(
        &self,
        choice: SolverChoice,
        tol: f64,
        parts: Vec<Partition>,
    ) -> Box<dyn StationarySolver> {
        assert!(tol > 0.0, "tolerance must be positive");
        let iters = 5_000_000;
        match choice {
            SolverChoice::Power => Box::new(PowerIteration::new(tol, iters)),
            SolverChoice::GaussSeidel => Box::new(GaussSeidelSolver::new(tol, iters)),
            SolverChoice::Jacobi => Box::new(JacobiSolver::new(tol, iters, 0.8)),
            SolverChoice::Direct => Box::new(GthSolver::new()),
            SolverChoice::Gmres => Box::new(GmresStationary::new(tol, iters.min(100_000))),
            SolverChoice::Multigrid | SolverChoice::MultigridW | SolverChoice::MgKrylov => {
                Box::new(self.multigrid_solver(choice, tol, parts, None))
            }
        }
    }

    /// The concrete multigrid solver with the project-standard
    /// configuration (Gauss–Seidel smoothing, 1 pre-/2 post-sweeps, 2000
    /// cycle budget). Unlike [`solver_from_hierarchy`](Self::solver_from_hierarchy)
    /// this keeps the concrete type, so callers reach
    /// [`MultigridSolver::solve_with_stats`] (phase attribution) and can
    /// inject cached symbolic plans (see
    /// [`mg_plans_cached`](Self::mg_plans_cached)).
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0` or `choice` is not a multigrid variant.
    pub fn multigrid_solver(
        &self,
        choice: SolverChoice,
        tol: f64,
        parts: Vec<Partition>,
        plans: Option<std::sync::Arc<Vec<LumpPlan>>>,
    ) -> MultigridSolver {
        self.multigrid_solver_tuned(choice, tol, parts, plans, None, None)
    }

    /// [`multigrid_solver`](Self::multigrid_solver) with explicit tuning
    /// overrides: `schedule` replaces the choice's default cycle schedule
    /// (the CLI `--cycle` flag) and `accel` — two-layered like
    /// [`crate::ProductChain::solver_tuned`] — replaces the Krylov window
    /// policy: outer `None` keeps the choice's default (a window for
    /// `mgk`, none otherwise), `Some(None)` forces it off, `Some(Some(a))`
    /// forces a configuration (`--accel`/`--restart`). All-`None` keeps
    /// the defaults — in particular plain `mg` stays the exact historical
    /// fixed-V solver the goldens pin.
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0` or `choice` is not a multigrid variant.
    pub fn multigrid_solver_tuned(
        &self,
        choice: SolverChoice,
        tol: f64,
        parts: Vec<Partition>,
        plans: Option<std::sync::Arc<Vec<LumpPlan>>>,
        schedule: Option<CycleSchedule>,
        accel: Option<Option<KrylovAccel>>,
    ) -> MultigridSolver {
        assert!(tol > 0.0, "tolerance must be positive");
        let default_schedule = choice
            .mg_schedule()
            .unwrap_or_else(|| panic!("multigrid_solver called with {choice:?}"));
        let schedule = schedule.unwrap_or(default_schedule);
        let accel = accel.unwrap_or(match choice {
            SolverChoice::MgKrylov => Some(KrylovAccel::always(DEFAULT_KRYLOV_RESTART)),
            _ => None,
        });
        let mut b = MultigridSolver::builder(parts)
            .schedule(schedule)
            .smoother(Smoother::GaussSeidel)
            .pre_sweeps(1)
            .post_sweeps(2)
            .tol(tol)
            .max_cycles(2_000);
        if let Some(accel) = accel {
            b = b.accel(accel);
        }
        if let Some(plans) = plans {
            b = b.plans(plans);
        }
        b.build()
    }

    /// The symbolic lumping plans for `parts` against this chain's TPM,
    /// fetched from `cache` under the `mg.plan` kind. The key hashes the
    /// TPM's sparsity *pattern* (plans are pure functions of pattern +
    /// partitions, never of transition values) plus the cycle schedule the
    /// solver will run, so sweep points that move only numeric factors
    /// share one plan stack while any pattern change — pruning, support
    /// growth — or a different cycle type forces a rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `parts` does not chain over this chain's states (the
    /// partitions must come from this chain's hierarchy builders).
    pub fn mg_plans_cached(
        &self,
        cache: &stochcdr_fsm::FactorCache,
        parts: &[Partition],
        schedule: CycleSchedule,
    ) -> std::sync::Arc<Vec<LumpPlan>> {
        let m = self.tpm().matrix();
        let mut key = stochcdr_fsm::KeyHasher::new();
        key.usize(self.state_count()).usize(m.nnz());
        for b in schedule.cli_name().bytes() {
            key.u64(b as u64);
        }
        for &p in m.indptr() {
            key.usize(p);
        }
        for &c in m.indices() {
            key.u64(c as u64);
        }
        key.usize(parts.len());
        for part in parts {
            key.usize(part.block_count());
        }
        cache.get_or_build("mg.plan", key.finish(), || {
            LumpPlan::build_stack(self.tpm(), parts)
                .expect("hierarchy partitions chain over this chain's states")
        })
    }

    /// Runs the full stationary analysis with the chosen solver.
    ///
    /// # Errors
    ///
    /// Propagates solver failures ([`stochcdr_markov::MarkovError`]).
    pub fn analyze(&self, choice: SolverChoice) -> Result<CdrAnalysis> {
        self.analyze_with_tol(choice, DEFAULT_TOL)
    }

    /// [`analyze`](Self::analyze) with an explicit residual tolerance.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn analyze_with_tol(&self, choice: SolverChoice, tol: f64) -> Result<CdrAnalysis> {
        self.analyze_tuned(choice, tol, None, None, None)
    }

    /// [`analyze_with_tol`](Self::analyze_with_tol) with solver tuning
    /// overrides: `cycle` and `accel` reconfigure multigrid choices (see
    /// [`multigrid_solver_tuned`](Self::multigrid_solver_tuned)), and
    /// `restart` overrides the standalone `gmres` solver's Arnoldi
    /// restart length. All-`None` is exactly
    /// [`analyze_with_tol`](Self::analyze_with_tol).
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn analyze_tuned(
        &self,
        choice: SolverChoice,
        tol: f64,
        cycle: Option<CycleSchedule>,
        accel: Option<Option<KrylovAccel>>,
        restart: Option<usize>,
    ) -> Result<CdrAnalysis> {
        // Multigrid keeps the concrete solver type so the analysis can
        // carry per-phase attribution; other solvers go through the trait
        // object. Same solve, same bits either way.
        enum Prepared {
            Mg(MultigridSolver),
            Other(Box<dyn StationarySolver>),
        }
        let prepared = if choice.is_multigrid() {
            Prepared::Mg(self.multigrid_solver_tuned(
                choice,
                tol,
                self.phase_hierarchy(),
                None,
                cycle,
                accel,
            ))
        } else if choice == SolverChoice::Gmres {
            let mut s = GmresStationary::new(tol, 100_000);
            if let Some(r) = restart {
                s = s.with_restart(r);
            }
            Prepared::Other(Box::new(s))
        } else {
            Prepared::Other(self.solver_with_tol(choice, tol))
        };
        let _span = obs::span("core.analyze");
        let start = Instant::now();
        let (result, solver_name, mg_phases, mg_equiv) = match &prepared {
            Prepared::Mg(s) => {
                let (result, stats) = s.solve_with_stats(self.tpm(), None)?;
                (
                    result,
                    s.name(),
                    Some(stats.phases),
                    Some(stats.cycle_equivalents),
                )
            }
            Prepared::Other(s) => (s.solve(self.tpm(), None)?, s.name(), None, None),
        };
        let solve_time = start.elapsed();
        obs::event(
            "core.stationary_solved",
            &[
                ("iterations", result.iterations().into()),
                ("residual", result.residual().into()),
                ("solve_ms", (solve_time.as_secs_f64() * 1e3).into()),
            ],
        );
        let iterations = result.iterations();
        let residual = result.residual();
        let mut a = self.analysis_from_stationary(
            result.distribution,
            iterations,
            residual,
            solve_time,
            solver_name,
        );
        a.mg_phases = mg_phases;
        a.mg_cycle_equivalents = mg_equiv;
        Ok(a)
    }

    /// Assembles the derived quantities from an externally computed
    /// stationary vector (used by benchmarks that time the solve
    /// separately).
    ///
    /// # Panics
    ///
    /// Panics if `stationary.len() != state_count()`.
    pub fn analysis_from_stationary(
        &self,
        stationary: Vec<f64>,
        iterations: usize,
        residual: f64,
        solve_time: std::time::Duration,
        solver_name: &'static str,
    ) -> CdrAnalysis {
        assert_eq!(
            stationary.len(),
            self.state_count(),
            "stationary vector length"
        );
        let cfg = self.config();
        let m = cfg.m_bins();
        let half = (m / 2) as i32;

        // Phase marginal: group by signed offset (mapping-aware).
        let pairs = marginal(&stationary, |s| self.phase_bin_of(s) as i32 - half);
        let phi_density = PhiDensity::from_pairs(cfg.delta_ui(), pairs);

        // PD input: phase ⊕ discretized n_w.
        let nw = PhaseDetector::new(cfg).nw().clone();
        let pd_input_density = phi_density.convolve(&nw);

        let ber = ber_symmetric_dist(&phi_density, &cfg.white.distribution());
        let ber_d = ber_discrete(&phi_density, &nw, half);
        CdrAnalysis {
            stationary,
            phi_density,
            pd_input_density,
            ber,
            ber_discrete: ber_d,
            iterations,
            residual,
            solve_time,
            solver_name,
            mg_phases: None,
            mg_cycle_equivalents: None,
        }
    }
}

/// One coarsening step of the phase-pairing hierarchy: halve component
/// `comp` of every coordinate, label the surviving coarse coordinates in
/// sorted order, and return the resulting [`Partition`] together with the
/// coarse coordinate list (the next level's input).
///
/// Pure function of its inputs — this is what makes per-level caching
/// across sweep points sound.
fn coarsen_step(coords: &[[usize; 3]], comp: usize) -> (Partition, Vec<[usize; 3]>) {
    let next: Vec<[usize; 3]> = coords
        .iter()
        .map(|&t| {
            let mut u = t;
            u[comp] /= 2;
            u
        })
        .collect();
    let mut uniq = next.clone();
    uniq.sort_unstable();
    uniq.dedup();
    let labels: Vec<usize> = next
        .iter()
        .map(|t| uniq.binary_search(t).expect("label present"))
        .collect();
    (
        Partition::from_labels(labels).expect("labels are contiguous"),
        uniq,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CdrConfig, CdrModel};
    use stochcdr_linalg::vecops;

    fn chain() -> CdrChain {
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(0.06)
            .drift(5e-3, 4e-2)
            .build()
            .unwrap();
        CdrModel::new(config).build_chain().unwrap()
    }

    #[test]
    fn all_solvers_agree() {
        let c = chain();
        let reference = c.analyze(SolverChoice::Direct).unwrap();
        for choice in SolverChoice::ALL {
            if choice == SolverChoice::Direct {
                continue;
            }
            let a = c.analyze_with_tol(choice, 1e-11).unwrap();
            let dist = vecops::dist1(&a.stationary, &reference.stationary);
            assert!(dist < 1e-7, "{choice:?} deviates by {dist}");
            assert!(
                (a.ber / reference.ber - 1.0).abs() < 1e-4,
                "{choice:?} BER {} vs {}",
                a.ber,
                reference.ber
            );
        }
    }

    #[test]
    fn densities_are_distributions() {
        let c = chain();
        let a = c.analyze(SolverChoice::Multigrid).unwrap();
        assert!((a.phi_density.total_mass() - 1.0).abs() < 1e-9);
        assert!((a.pd_input_density.total_mass() - 1.0).abs() < 1e-9);
        assert!((vecops::sum(&a.stationary) - 1.0).abs() < 1e-9);
        // PD input is a smeared version of the phase density.
        assert!(a.pd_input_density.std_ui() > a.phi_density.std_ui());
    }

    #[test]
    fn phase_density_is_centered_near_lock() {
        let c = chain();
        let a = c.analyze(SolverChoice::Multigrid).unwrap();
        // The loop locks: mean phase error well inside ±0.25 UI (drift
        // produces a small systematic offset).
        assert!(
            a.phi_density.mean_ui().abs() < 0.25,
            "mean {}",
            a.phi_density.mean_ui()
        );
        assert!(a.ber < 0.5);
        assert!(a.ber > 0.0);
    }

    #[test]
    fn multigrid_converges_in_few_cycles() {
        let c = chain();
        let a = c.analyze(SolverChoice::Multigrid).unwrap();
        let p = c.analyze(SolverChoice::Power).unwrap();
        assert!(
            a.iterations < p.iterations / 2,
            "multigrid {} cycles vs power {} iterations",
            a.iterations,
            p.iterations
        );
    }

    #[test]
    fn cached_hierarchy_matches_and_hits() {
        let c = chain();
        let cache = stochcdr_fsm::FactorCache::new();
        let direct = c.phase_hierarchy();
        let cached = c.phase_hierarchy_cached(&cache);
        assert_eq!(direct, cached);
        let levels = direct.len();
        assert_eq!(cache.stats().by_kind["mg.level"].misses, levels as u64);
        let again = c.phase_hierarchy_cached(&cache);
        assert_eq!(direct, again);
        let stats = cache.stats();
        assert_eq!(stats.by_kind["mg.level"].hits, levels as u64);
        // Solving from the cached hierarchy matches the stock solver.
        let solver = c.solver_from_hierarchy(SolverChoice::Multigrid, 1e-12, cached);
        let a = solver.solve(c.tpm(), None).unwrap();
        let b = c.analyze(SolverChoice::Multigrid).unwrap();
        assert_eq!(a.distribution, b.stationary);
    }

    #[test]
    fn registry_round_trips() {
        for choice in SolverChoice::ALL {
            assert_eq!(SolverChoice::parse(choice.cli_name()), Some(choice));
        }
        assert_eq!(SolverChoice::parse("nope"), None);
        assert_eq!(
            SolverChoice::cli_names(),
            "power|gs|jacobi|direct|mg|mgw|mgk|gmres"
        );
    }

    #[test]
    fn timing_recorded() {
        let c = chain();
        let a = c.analyze(SolverChoice::GaussSeidel).unwrap();
        assert!(a.solve_time.as_nanos() > 0);
        assert_eq!(a.solver_name, "gauss-seidel");
    }
}
