//! The four FSM stages of the digital phase-selection loop (paper Fig. 2).
//!
//! The network is the cascade
//!
//! ```text
//! DataSource ──transition──▶ PhaseDetector ──LAG/NULL/LEAD──▶ LoopCounter
//!                                  ▲                              │
//!                                  │ Φ (feedback)            UP/DOWN
//!                                  └──────── PhaseAccumulator ◀───┘
//!                                                  ▲
//!                                            n_r (drift)
//! ```
//!
//! with `n_w` (eye-opening jitter) injected at the phase detector and `n_r`
//! (drift) at the phase accumulator. All stages advance once per symbol
//! interval; the phase detector reads the *previous* phase error through
//! the joint-state feedback path.

use stochcdr_fsm::{Stage, StageOutput};
use stochcdr_noise::DiscreteDist;

use crate::CdrConfig;

/// Index of the phase accumulator in the joint state vector, used by the
/// phase detector's feedback read.
pub(crate) const PHASE_STAGE: usize = 3;

/// Converts a phase-bin index `0..m` to a signed offset in grid bins
/// (`-m/2 ..= m/2 - 1`).
#[inline]
pub(crate) fn offset_of_bin(bin: usize, m: usize) -> i64 {
    bin as i64 - (m / 2) as i64
}

/// Converts a signed grid offset back to a bin index, wrapping modulo one
/// UI (phase error is circular; crossing ±UI/2 is a cycle slip).
#[inline]
pub(crate) fn bin_of_offset(offset: i64, m: usize) -> usize {
    (offset + (m / 2) as i64).rem_euclid(m as i64) as usize
}

/// Stochastic data source driving the loop, wrapping any
/// [`DataModel`](crate::data_model::DataModel).
///
/// The [`Stage`] contract requires one fixed noise pmf, but branch
/// probabilities differ per state (e.g. the two-state source's 0.7 / 0.8
/// stay probabilities). The source therefore partitions the unit interval
/// at every cumulative branch probability of every state: each segment
/// lies within exactly one branch of each state, so a segment index drawn
/// with probability `hi − lo` selects the correct branch deterministically
/// per state, with exact probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSource {
    model: crate::data_model::DataModel,
    /// Unit-interval segments `(lo, hi)`, consecutive and covering `[0, 1]`.
    segments: Vec<(f64, f64)>,
}

impl DataSource {
    /// Creates the source from the configured data statistics.
    pub fn new(config: &CdrConfig) -> Self {
        Self::from_model(config.data_model.clone())
    }

    /// Creates the source from an explicit data model.
    pub fn from_model(model: crate::data_model::DataModel) -> Self {
        // Collect every cumulative branch probability as a breakpoint.
        let mut cuts = vec![0.0f64, 1.0];
        for state in 0..model.state_count() {
            let mut acc = 0.0;
            for b in model.branches(state) {
                acc += b.prob;
                if acc > 0.0 && acc < 1.0 {
                    cuts.push(acc);
                }
            }
        }
        cuts.sort_by(f64::total_cmp);
        cuts.dedup();
        let segments = cuts.windows(2).map(|w| (w[0], w[1])).collect();
        DataSource { model, segments }
    }

    /// The wrapped data model.
    pub fn model(&self) -> &crate::data_model::DataModel {
        &self.model
    }

    /// Resolves a segment to the branch it falls into for `state`.
    fn branch_for(&self, state: usize, segment: usize) -> crate::data_model::DataBranch {
        let (lo, hi) = self.segments[segment];
        let mid = 0.5 * (lo + hi);
        let mut acc = 0.0;
        let branches = self.model.branches(state);
        for b in &branches {
            acc += b.prob;
            if mid < acc {
                return *b;
            }
        }
        *branches.last().expect("data model has at least one branch")
    }
}

impl Stage for DataSource {
    fn state_count(&self) -> usize {
        self.model.state_count()
    }

    fn noise(&self) -> Vec<(i64, f64)> {
        self.segments
            .iter()
            .enumerate()
            .map(|(k, &(lo, hi))| (k as i64, hi - lo))
            .collect()
    }

    fn step(&self, state: usize, noise: i64, _upstream: i64, _joint: &[usize]) -> StageOutput {
        let b = self.branch_for(state, noise as usize);
        StageOutput {
            next_state: b.next_state,
            output: b.transition as i64,
        }
    }

    fn name(&self) -> &str {
        "data-source"
    }
}

/// Bang-bang (Alexander-style) phase detector with optional dead zone.
///
/// Stateless: on a data transition it outputs the sign of the jittered
/// phase error `Φ + n_w` (`+1` = LEAD, `-1` = LAG), `0` (NULL) inside the
/// dead zone or when the data has no transition — "the phase detector can
/// produce a phase error signal only when a transition occurs in the data
/// signal".
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDetector {
    m_bins: usize,
    dead_zone: i64,
    nw: DiscreteDist,
}

impl PhaseDetector {
    /// Creates the detector, discretizing `n_w` on the phase grid.
    pub fn new(config: &CdrConfig) -> Self {
        PhaseDetector {
            m_bins: config.m_bins(),
            dead_zone: config.dead_zone_bins as i64,
            nw: config.white.discretize(config.delta_ui()),
        }
    }

    /// The discretized `n_w` mass function (grid-bin offsets).
    pub fn nw(&self) -> &DiscreteDist {
        &self.nw
    }

    /// The ternary decision for a given phase offset and jitter draw.
    #[inline]
    pub fn decide(&self, phase_offset: i64, nw: i64) -> i64 {
        let e = phase_offset + nw;
        if e > self.dead_zone {
            1
        } else if e < -self.dead_zone {
            -1
        } else {
            0
        }
    }
}

impl Stage for PhaseDetector {
    fn state_count(&self) -> usize {
        1
    }

    fn noise(&self) -> Vec<(i64, f64)> {
        self.nw.iter().map(|(k, p)| (k as i64, p)).collect()
    }

    fn step(&self, _state: usize, noise: i64, upstream: i64, joint: &[usize]) -> StageOutput {
        if upstream == 0 {
            return StageOutput {
                next_state: 0,
                output: 0,
            };
        }
        let phi = offset_of_bin(joint[PHASE_STAGE], self.m_bins);
        StageOutput {
            next_state: 0,
            output: self.decide(phi, noise),
        }
    }

    fn name(&self) -> &str {
        "phase-detector"
    }
}

/// Which loop-filter circuit processes the phase-detector decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// Up/down counter of `len` states; overflow/underflow emits a phase
    /// step and recenters. The paper's filter (Figure 5's swept knob).
    OverflowCounter,
    /// Emits a phase step after `len` *consecutive* same-direction
    /// decisions; an opposite decision restarts the run (NULL holds).
    /// A burst-mode-style filter that rejects isolated noise decisions;
    /// `len = 1` degenerates to an unfiltered bang-bang loop.
    ConsecutiveDetector,
}

impl FilterKind {
    /// FSM state count for a filter of the given length.
    pub fn state_count(&self, len: usize) -> usize {
        match self {
            // len counter positions.
            FilterKind::OverflowCounter => len,
            // Neutral + (len−1) up-runs + (len−1) down-runs.
            FilterKind::ConsecutiveDetector => 2 * len - 1,
        }
    }
}

/// The loop filter — decision smoothing between PD and phase select.
///
/// Behavior depends on [`FilterKind`]; the filter length trades loop
/// bandwidth against drift tracking — the knob swept in the paper's
/// Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopCounter {
    kind: FilterKind,
    len: usize,
}

impl LoopCounter {
    /// Creates the filter from the configuration.
    pub fn new(config: &CdrConfig) -> Self {
        LoopCounter {
            kind: config.filter_kind,
            len: config.counter_len,
        }
    }

    /// The neutral/recentering state.
    #[inline]
    pub fn center(&self) -> usize {
        match self.kind {
            FilterKind::OverflowCounter => self.len / 2,
            FilterKind::ConsecutiveDetector => 0,
        }
    }

    /// Pure transition function: `(state, decision) -> (next, up_down)`.
    #[inline]
    pub fn advance(&self, state: usize, decision: i64) -> (usize, i64) {
        match self.kind {
            FilterKind::OverflowCounter => match decision {
                1 => {
                    if state + 1 == self.len {
                        (self.center(), 1)
                    } else {
                        (state + 1, 0)
                    }
                }
                -1 => {
                    if state == 0 {
                        (self.center(), -1)
                    } else {
                        (state - 1, 0)
                    }
                }
                _ => (state, 0),
            },
            FilterKind::ConsecutiveDetector => {
                // States: 0 neutral; 1..=len-1 → run of `state` ups;
                // len..=2len-2 → run of `state − len + 1` downs.
                let n = self.len;
                let ups = if (1..n).contains(&state) { state } else { 0 };
                let downs = if state >= n { state - n + 1 } else { 0 };
                match decision {
                    1 => {
                        let run = ups + 1; // opposite/neutral states restart at 1
                        if run == n {
                            (0, 1)
                        } else {
                            (run, 0)
                        }
                    }
                    -1 => {
                        let run = downs + 1;
                        if run == n {
                            (0, -1)
                        } else {
                            (n + run - 1, 0)
                        }
                    }
                    _ => (state, 0),
                }
            }
        }
    }
}

impl Stage for LoopCounter {
    fn state_count(&self) -> usize {
        self.kind.state_count(self.len)
    }

    fn noise(&self) -> Vec<(i64, f64)> {
        vec![(0, 1.0)]
    }

    fn step(&self, state: usize, _noise: i64, upstream: i64, _joint: &[usize]) -> StageOutput {
        let (next, out) = self.advance(state, upstream);
        StageOutput {
            next_state: next,
            output: out,
        }
    }

    fn name(&self) -> &str {
        "loop-counter"
    }
}

/// Phase-error accumulator with drift injection.
///
/// State = discretized phase error (one bin per `UI/m_bins`). Each symbol
/// it applies the counter's phase-select command (`∓G`, one VCO phase
/// step) and adds the drift draw `n_r`; the phase wraps modulo one UI
/// (wrap events are cycle slips).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseAccumulator {
    m_bins: usize,
    step_bins: i64,
    nr: DiscreteDist,
}

impl PhaseAccumulator {
    /// Creates the accumulator, discretizing `n_r` on the phase grid.
    pub fn new(config: &CdrConfig) -> Self {
        PhaseAccumulator {
            m_bins: config.m_bins(),
            step_bins: config.step_bins() as i64,
            nr: config.drift.discretize(config.delta_ui()),
        }
    }

    /// The discretized `n_r` mass function (grid-bin offsets).
    pub fn nr(&self) -> &DiscreteDist {
        &self.nr
    }

    /// Pure transition: `(bin, up_down, n_r draw) -> next bin`.
    #[inline]
    pub fn advance(&self, bin: usize, up_down: i64, nr: i64) -> usize {
        let o = offset_of_bin(bin, self.m_bins);
        bin_of_offset(o - up_down * self.step_bins + nr, self.m_bins)
    }
}

impl Stage for PhaseAccumulator {
    fn state_count(&self) -> usize {
        self.m_bins
    }

    fn noise(&self) -> Vec<(i64, f64)> {
        self.nr.iter().map(|(k, p)| (k as i64, p)).collect()
    }

    fn step(&self, state: usize, noise: i64, upstream: i64, _joint: &[usize]) -> StageOutput {
        StageOutput {
            next_state: self.advance(state, upstream, noise),
            output: 0,
        }
    }

    fn name(&self) -> &str {
        "phase-accumulator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CdrConfig {
        CdrConfig::builder()
            .phases(8)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(0.05)
            .drift(1e-2, 5e-2)
            .build()
            .unwrap()
    }

    #[test]
    fn offset_bin_round_trip() {
        let m = 16;
        for bin in 0..m {
            assert_eq!(bin_of_offset(offset_of_bin(bin, m), m), bin);
        }
        assert_eq!(offset_of_bin(0, 16), -8);
        assert_eq!(offset_of_bin(8, 16), 0);
        // Wrapping: one past the top edge comes back at the bottom.
        assert_eq!(bin_of_offset(8, 16), 0);
        assert_eq!(bin_of_offset(-9, 16), 15);
    }

    #[test]
    fn data_source_forces_transition_at_bound() {
        let c = config();
        let d = DataSource::new(&c);
        assert_eq!(d.state_count(), 4);
        // Segments for p_t = 0.5: [0, 0.5) -> transition branch,
        // [0.5, 1) -> run-extension branch.
        let pmf = Stage::noise(&d);
        assert_eq!(pmf.len(), 2);
        // At the run bound, every segment forces a transition.
        for seg in 0..pmf.len() as i64 {
            let out = d.step(3, seg, 0, &[]);
            assert_eq!(out.output, 1);
            assert_eq!(out.next_state, 0);
        }
        // Below the bound, the first segment transitions, the second
        // extends the run.
        let out = d.step(1, 0, 0, &[]);
        assert_eq!(out.output, 1);
        assert_eq!(out.next_state, 0);
        let out = d.step(1, 1, 0, &[]);
        assert_eq!(out.output, 0);
        assert_eq!(out.next_state, 2);
    }

    #[test]
    fn data_source_two_state_segments_are_exact() {
        // Figure-2 probabilities: stay 0.7 / 0.8. Segments cut at 0.7, 0.8.
        let model = crate::data_model::DataModel::two_state(0.7, 0.8).unwrap();
        let d = DataSource::from_model(model);
        let pmf = Stage::noise(&d);
        assert_eq!(pmf.len(), 3); // [0,.7), [.7,.8), [.8,1)
                                  // State 0 stays for segments below 0.7.
        assert_eq!(d.step(0, 0, 0, &[]).output, 0);
        assert_eq!(d.step(0, 1, 0, &[]).output, 1); // [.7,.8) flips state 0
        assert_eq!(d.step(0, 2, 0, &[]).output, 1);
        // State 1 stays for segments below 0.8.
        assert_eq!(d.step(1, 0, 0, &[]).output, 0);
        assert_eq!(d.step(1, 1, 0, &[]).output, 0);
        assert_eq!(d.step(1, 2, 0, &[]).output, 1);
        // Probability masses: per-state transition probability is exact.
        let p_flip0: f64 = pmf
            .iter()
            .filter(|&&(k, _)| d.step(0, k, 0, &[]).output == 1)
            .map(|&(_, p)| p)
            .sum();
        assert!((p_flip0 - 0.3).abs() < 1e-12);
    }

    #[test]
    fn phase_detector_decisions() {
        let c = config();
        let pd = PhaseDetector::new(&c);
        assert_eq!(pd.decide(3, 0), 1);
        assert_eq!(pd.decide(-3, 0), -1);
        assert_eq!(pd.decide(0, 0), 0);
        assert_eq!(pd.decide(2, -5), -1); // jitter flips the decision
    }

    #[test]
    fn phase_detector_needs_transition() {
        let c = config();
        let pd = PhaseDetector::new(&c);
        let joint = [0usize, 0, 0, 12]; // phase bin 12 -> offset +4
        let out = pd.step(0, 0, 0, &joint);
        assert_eq!(out.output, 0, "no transition, no decision");
        let out = pd.step(0, 0, 1, &joint);
        assert_eq!(out.output, 1);
    }

    #[test]
    fn dead_zone_suppresses_small_errors() {
        let c = CdrConfig::builder()
            .phases(8)
            .grid_refinement(2)
            .dead_zone_bins(2)
            .drift(1e-2, 5e-2)
            .build()
            .unwrap();
        let pd = PhaseDetector::new(&c);
        assert_eq!(pd.decide(2, 0), 0);
        assert_eq!(pd.decide(3, 0), 1);
        assert_eq!(pd.decide(-2, 0), 0);
        assert_eq!(pd.decide(-3, 0), -1);
    }

    #[test]
    fn counter_overflow_and_recenter() {
        let c = config();
        let k = LoopCounter::new(&c); // 4 states, center 2
        assert_eq!(k.advance(2, 1), (3, 0));
        assert_eq!(k.advance(3, 1), (2, 1)); // overflow -> UP, recenter
        assert_eq!(k.advance(1, -1), (0, 0));
        assert_eq!(k.advance(0, -1), (2, -1)); // underflow -> DOWN, recenter
        assert_eq!(k.advance(1, 0), (1, 0)); // NULL holds
    }

    #[test]
    fn consecutive_filter_dynamics() {
        // len = 3: states 0 neutral, 1-2 up runs, 3-4 down runs.
        let k = LoopCounter {
            kind: FilterKind::ConsecutiveDetector,
            len: 3,
        };
        assert_eq!(k.center(), 0);
        assert_eq!(FilterKind::ConsecutiveDetector.state_count(3), 5);
        // Three consecutive ups emit.
        assert_eq!(k.advance(0, 1), (1, 0));
        assert_eq!(k.advance(1, 1), (2, 0));
        assert_eq!(k.advance(2, 1), (0, 1));
        // Opposite decision restarts the run in the other direction.
        assert_eq!(k.advance(2, -1), (3, 0));
        assert_eq!(k.advance(3, -1), (4, 0));
        assert_eq!(k.advance(4, -1), (0, -1));
        assert_eq!(k.advance(4, 1), (1, 0));
        // NULL holds.
        assert_eq!(k.advance(2, 0), (2, 0));
        assert_eq!(k.advance(4, 0), (4, 0));
    }

    #[test]
    fn consecutive_filter_len_one_is_unfiltered() {
        let k = LoopCounter {
            kind: FilterKind::ConsecutiveDetector,
            len: 1,
        };
        assert_eq!(FilterKind::ConsecutiveDetector.state_count(1), 1);
        assert_eq!(k.advance(0, 1), (0, 1));
        assert_eq!(k.advance(0, -1), (0, -1));
        assert_eq!(k.advance(0, 0), (0, 0));
    }

    #[test]
    fn accumulator_applies_correction_and_drift() {
        let c = config();
        let acc = PhaseAccumulator::new(&c); // m=16, step=2
        let center = 8; // offset 0
        assert_eq!(acc.advance(center, 1, 0), 6); // UP -> -G
        assert_eq!(acc.advance(center, -1, 0), 10); // DOWN -> +G
        assert_eq!(acc.advance(center, 0, 3), 11); // drift only
    }

    #[test]
    fn accumulator_wraps_at_half_ui() {
        let c = config();
        let acc = PhaseAccumulator::new(&c); // m=16
                                             // bin 15 = offset +7; +2 more wraps to offset -7 = bin 1.
        assert_eq!(acc.advance(15, -1, 0), 1);
    }

    #[test]
    fn noise_pmfs_are_valid() {
        let c = config();
        for pmf in [
            Stage::noise(&DataSource::new(&c)),
            Stage::noise(&PhaseDetector::new(&c)),
            Stage::noise(&LoopCounter::new(&c)),
            Stage::noise(&PhaseAccumulator::new(&c)),
        ] {
            let total: f64 = pmf.iter().map(|&(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(pmf.iter().all(|&(_, p)| p > 0.0));
        }
    }
}
