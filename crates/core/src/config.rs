//! CDR design configuration.

use stochcdr_noise::jitter::{DriftJitterSpec, DriftShape, WhiteJitterSpec};
use stochcdr_noise::sonet::DataSpec;

use crate::data_model::DataModel;
use crate::stages::FilterKind;
use crate::{CdrError, Result};

/// The design parameters of the phase-picking CDR loop (the paper's
/// Figure 1, digital phase-selection loop) plus the stochastic environment.
///
/// Geometry:
///
/// * the multi-phase VCO provides `phases` equally spaced clock phases, so
///   one phase-select step moves the sampling instant by `G = UI / phases`;
/// * the phase error is discretized on a grid of
///   `m_bins = phases × grid_refinement` bins per UI
///   (`delta = UI / m_bins`), fine enough to resolve the small `n_r` jumps
///   (the paper: "the granularity of the discretization ... is dictated by
///   the number of clock phases and the magnitude of the noise source
///   n_r");
/// * the loop filter is an up/down counter with `counter_len` states that
///   emits a phase step on overflow and recenters.
///
/// Construct via [`CdrConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct CdrConfig {
    /// Number of VCO clock phases `N` (one step = `UI/N`).
    pub phases: usize,
    /// Phase-error grid bins per VCO phase step.
    pub grid_refinement: usize,
    /// Length parameter of the loop filter: state count for the overflow
    /// counter, required run length for the consecutive detector.
    pub counter_len: usize,
    /// Which loop-filter circuit the length parameterizes.
    pub filter_kind: FilterKind,
    /// Phase-detector dead zone, in grid bins (0 = pure bang-bang).
    pub dead_zone_bins: usize,
    /// Incoming data statistics.
    pub data_model: DataModel,
    /// Eye-opening white jitter `n_w`.
    pub white: WhiteJitterSpec,
    /// Drift jitter `n_r`.
    pub drift: DriftJitterSpec,
}

impl CdrConfig {
    /// Starts a builder with the documented defaults.
    pub fn builder() -> CdrConfigBuilder {
        CdrConfigBuilder::default()
    }

    /// Total phase-error grid bins per UI: `phases × grid_refinement`.
    pub fn m_bins(&self) -> usize {
        self.phases * self.grid_refinement
    }

    /// Grid step in UI.
    pub fn delta_ui(&self) -> f64 {
        1.0 / self.m_bins() as f64
    }

    /// One phase-select step in grid bins (`= grid_refinement`).
    pub fn step_bins(&self) -> usize {
        self.grid_refinement
    }

    /// Half a UI in grid bins — the bit-error / cycle-slip boundary.
    pub fn half_ui_bins(&self) -> usize {
        self.m_bins() / 2
    }

    /// Number of loop-filter FSM states (depends on the filter kind).
    pub fn filter_states(&self) -> usize {
        self.filter_kind.state_count(self.counter_len)
    }

    /// Joint state-space dimensions `[data, filter, phase]`, phase
    /// fastest-varying (the layout the multigrid coarsening relies on).
    pub fn dims(&self) -> Vec<usize> {
        vec![
            self.data_model.state_count(),
            self.filter_states(),
            self.m_bins(),
        ]
    }

    /// Total joint states.
    pub fn state_count(&self) -> usize {
        self.dims().iter().product()
    }

    /// A builder pre-loaded with this configuration's values — the way a
    /// parameter sweep derives neighboring configurations (each derived
    /// point re-runs the full [`CdrConfigBuilder::build`] validation).
    pub fn to_builder(&self) -> CdrConfigBuilder {
        CdrConfigBuilder {
            phases: self.phases,
            grid_refinement: self.grid_refinement,
            counter_len: self.counter_len,
            filter_kind: self.filter_kind,
            dead_zone_bins: self.dead_zone_bins,
            data_model: Some(self.data_model.clone()),
            white: Some(self.white),
            drift: Some(self.drift),
        }
    }
}

/// Builder for [`CdrConfig`].
///
/// Defaults: 16 phases, refinement 4 (64 bins/UI), counter length 8, no
/// dead zone, scrambled data with transition density ½ and run bound 4,
/// `σ(n_w) = 0.02 UI`, drift mean `5e-4 UI` with `8e-3 UI` triangular
/// deviation.
#[derive(Debug, Clone)]
pub struct CdrConfigBuilder {
    phases: usize,
    grid_refinement: usize,
    counter_len: usize,
    filter_kind: FilterKind,
    dead_zone_bins: usize,
    data_model: Option<DataModel>,
    white: Option<WhiteJitterSpec>,
    drift: Option<DriftJitterSpec>,
}

impl Default for CdrConfigBuilder {
    fn default() -> Self {
        CdrConfigBuilder {
            phases: 16,
            grid_refinement: 4,
            counter_len: 8,
            filter_kind: FilterKind::OverflowCounter,
            dead_zone_bins: 0,
            data_model: None,
            white: None,
            drift: None,
        }
    }
}

impl CdrConfigBuilder {
    /// Number of VCO phases (default 16).
    pub fn phases(mut self, n: usize) -> Self {
        self.phases = n;
        self
    }

    /// Grid bins per phase step (default 4).
    pub fn grid_refinement(mut self, r: usize) -> Self {
        self.grid_refinement = r;
        self
    }

    /// Counter length (default 8).
    pub fn counter_len(mut self, c: usize) -> Self {
        self.counter_len = c;
        self
    }

    /// Loop-filter circuit (default: overflow counter).
    pub fn filter_kind(mut self, kind: FilterKind) -> Self {
        self.filter_kind = kind;
        self
    }

    /// Phase-detector dead zone in grid bins (default 0).
    pub fn dead_zone_bins(mut self, d: usize) -> Self {
        self.dead_zone_bins = d;
        self
    }

    /// Data statistics from a run-length spec (default: density ½, run
    /// bound 4).
    pub fn data(mut self, spec: DataSpec) -> Self {
        self.data_model = Some(DataModel::from(spec));
        self
    }

    /// Data statistics from an arbitrary [`DataModel`] (e.g. the paper's
    /// two-state Markov source).
    pub fn data_model(mut self, model: DataModel) -> Self {
        self.data_model = Some(model);
        self
    }

    /// White jitter from an explicit σ in UI.
    pub fn white_sigma_ui(mut self, sigma: f64) -> Self {
        self.white = Some(WhiteJitterSpec::from_sigma(sigma));
        self
    }

    /// White jitter spec.
    pub fn white(mut self, spec: WhiteJitterSpec) -> Self {
        self.white = Some(spec);
        self
    }

    /// Drift jitter: per-symbol mean and max deviation (UI), triangular
    /// shape.
    pub fn drift(mut self, mean_ui: f64, max_dev_ui: f64) -> Self {
        self.drift = Some(DriftJitterSpec::new(
            mean_ui,
            max_dev_ui,
            DriftShape::Triangular,
        ));
        self
    }

    /// Drift jitter spec.
    pub fn drift_spec(mut self, spec: DriftJitterSpec) -> Self {
        self.drift = Some(spec);
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CdrError::Config`] when:
    ///
    /// * `phases < 2`, `grid_refinement < 1`, or `counter_len < 2`,
    /// * `m_bins` is odd (the ±UI/2 boundary must fall between bins),
    /// * the dead zone swallows the whole half-UI range,
    /// * the drift source does not resolve the grid (`n_r` would be
    ///   quantized to zero, silently removing the drift the loop must
    ///   track),
    /// * the default data spec fails to construct.
    pub fn build(self) -> Result<CdrConfig> {
        if self.phases < 2 {
            return Err(CdrError::Config("need at least 2 VCO phases".into()));
        }
        if self.grid_refinement < 1 {
            return Err(CdrError::Config("grid refinement must be >= 1".into()));
        }
        let min_len = match self.filter_kind {
            FilterKind::OverflowCounter => 2,
            FilterKind::ConsecutiveDetector => 1,
        };
        if self.counter_len < min_len {
            return Err(CdrError::Config(format!(
                "filter length must be >= {min_len} for {:?}",
                self.filter_kind
            )));
        }
        let data_model = self.data_model.unwrap_or_default();
        let white = self
            .white
            .unwrap_or_else(|| WhiteJitterSpec::from_sigma(0.02));
        let drift = self
            .drift
            .unwrap_or_else(|| DriftJitterSpec::new(5e-4, 8e-3, DriftShape::Triangular));

        let config = CdrConfig {
            phases: self.phases,
            grid_refinement: self.grid_refinement,
            counter_len: self.counter_len,
            filter_kind: self.filter_kind,
            dead_zone_bins: self.dead_zone_bins,
            data_model,
            white,
            drift,
        };
        if !config.m_bins().is_multiple_of(2) {
            return Err(CdrError::Config(format!(
                "phase grid must have an even number of bins, got {}",
                config.m_bins()
            )));
        }
        if config.dead_zone_bins >= config.half_ui_bins() {
            return Err(CdrError::Config(format!(
                "dead zone of {} bins covers the whole half-UI range ({} bins)",
                config.dead_zone_bins,
                config.half_ui_bins()
            )));
        }
        if !config.drift.resolves_grid(config.delta_ui()) {
            return Err(CdrError::Config(format!(
                "drift source (max |n_r| = {:.3e} UI) does not resolve the grid step \
                 {:.3e} UI; increase grid_refinement or the drift magnitude",
                config.drift.max_abs_ui(),
                config.delta_ui()
            )));
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let c = CdrConfig::builder().build().unwrap();
        assert_eq!(c.m_bins(), 64);
        assert_eq!(c.half_ui_bins(), 32);
        assert_eq!(c.step_bins(), 4);
        assert!((c.delta_ui() - 1.0 / 64.0).abs() < 1e-15);
        assert_eq!(c.dims(), vec![4, 8, 64]);
        assert_eq!(c.filter_states(), 8);
        assert_eq!(c.state_count(), 4 * 8 * 64);
    }

    #[test]
    fn geometry_validation() {
        assert!(CdrConfig::builder().phases(1).build().is_err());
        assert!(CdrConfig::builder().counter_len(1).build().is_err());
        assert!(CdrConfig::builder().grid_refinement(0).build().is_err());
    }

    #[test]
    fn dead_zone_validation() {
        assert!(CdrConfig::builder().dead_zone_bins(32).build().is_err());
        assert!(CdrConfig::builder().dead_zone_bins(2).build().is_ok());
    }

    #[test]
    fn drift_resolution_validation() {
        // Tiny drift on a coarse grid: rejected with a helpful message.
        let err = CdrConfig::builder()
            .grid_refinement(1)
            .drift(1e-5, 1e-4)
            .build()
            .unwrap_err();
        match err {
            CdrError::Config(msg) => assert!(msg.contains("resolve")),
            other => panic!("unexpected error {other:?}"),
        }
        // The same drift resolves a much finer grid.
        assert!(CdrConfig::builder()
            .phases(64)
            .grid_refinement(64)
            .drift(1e-5, 3e-4)
            .build()
            .is_ok());
    }

    #[test]
    fn custom_specs_pass_through() {
        let c = CdrConfig::builder()
            .white_sigma_ui(0.05)
            .drift(1e-3, 9e-3)
            .counter_len(16)
            .build()
            .unwrap();
        assert_eq!(c.white.sigma_ui, 0.05);
        assert_eq!(c.counter_len, 16);
        assert!((c.drift.mean_ui - 1e-3).abs() < 1e-15);
    }
}
