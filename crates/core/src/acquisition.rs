//! Lock-acquisition (pull-in) analysis.
//!
//! Before steady-state BER matters, the loop must *acquire* lock from an
//! arbitrary initial phase. The Markov model answers acquisition questions
//! exactly, through transient evolution and first-passage solves on the
//! same TPM — no lengthy transient simulation needed:
//!
//! * [`lock_probability_curve`] — `P(locked by symbol k)` from a start
//!   state, via distribution evolution with the lock region absorbing,
//! * [`mean_lock_time`] — expected symbols to first enter the lock region
//!   (a modified-TPM linear solve, like the paper's cycle-slip times).

use stochcdr_linalg::GmresOptions;
use stochcdr_markov::passage::{mean_hitting_times_direct, mean_hitting_times_gmres};

use crate::{CdrChain, CdrError, Result};

/// The lock region: every joint state whose phase error is within
/// `radius_bins` grid bins of zero.
pub fn lock_states(chain: &CdrChain, radius_bins: usize) -> Vec<usize> {
    let r = radius_bins as i64;
    (0..chain.state_count())
        .filter(|&s| chain.phase_offset_of(s).abs() <= r)
        .collect()
}

/// The worst-case acquisition start: half a UI of phase error (sampling at
/// the data transitions), centered counter, fresh data run.
pub fn worst_case_start(chain: &CdrChain) -> usize {
    chain.pack(
        0,
        crate::stages::LoopCounter::new(chain.config()).center(),
        0,
    )
}

/// Cumulative lock probability `P(locked by symbol k)` for
/// `k = 0..=horizon`, starting from `start`.
///
/// Computed by evolving the distribution with the lock region made
/// absorbing: each step, mass entering the region is harvested.
///
/// # Errors
///
/// Returns [`CdrError::Config`] for an out-of-range start state, an empty
/// lock region, or a lock region that already contains `start`
/// (acquisition is trivially instantaneous — flagged as a likely caller
/// error).
pub fn lock_probability_curve(
    chain: &CdrChain,
    start: usize,
    radius_bins: usize,
    horizon: usize,
) -> Result<Vec<f64>> {
    let n = chain.state_count();
    if start >= n {
        return Err(CdrError::Config(format!(
            "start state {start} out of range"
        )));
    }
    let lock = lock_states(chain, radius_bins);
    if lock.is_empty() {
        return Err(CdrError::Config("empty lock region".into()));
    }
    let mut in_lock = vec![false; n];
    for &s in &lock {
        in_lock[s] = true;
    }
    if in_lock[start] {
        return Err(CdrError::Config(
            "start state already inside the lock region".into(),
        ));
    }

    let tpm = chain.tpm().matrix();
    let mut x = vec![0.0f64; n];
    x[start] = 1.0;
    let mut next = vec![0.0f64; n];
    let mut locked_mass = 0.0f64;
    let mut curve = Vec::with_capacity(horizon + 1);
    curve.push(0.0);
    for _ in 0..horizon {
        tpm.mul_left_into(&x, &mut next);
        // Harvest mass entering the lock region (absorbing boundary).
        for (&absorbed, v) in in_lock.iter().zip(next.iter_mut()) {
            if absorbed {
                locked_mass += *v;
                *v = 0.0;
            }
        }
        std::mem::swap(&mut x, &mut next);
        curve.push(locked_mass.min(1.0));
    }
    Ok(curve)
}

/// Expected symbols to first enter the lock region, from every state
/// (entries inside the region are zero).
///
/// Uses the dense direct path for chains up to
/// [`crate::cycle_slip::DIRECT_STATE_CAP`] states and sparse GMRES beyond
/// (acquisition times are short, so Krylov converges quickly).
///
/// # Errors
///
/// Returns [`CdrError::Config`] for an empty lock region, and propagates
/// passage-solver errors.
pub fn mean_lock_times(chain: &CdrChain, radius_bins: usize) -> Result<Vec<f64>> {
    let lock = lock_states(chain, radius_bins);
    if lock.is_empty() {
        return Err(CdrError::Config("empty lock region".into()));
    }
    let times = if chain.state_count() <= crate::cycle_slip::DIRECT_STATE_CAP {
        mean_hitting_times_direct(chain.tpm(), &lock)?
    } else {
        mean_hitting_times_gmres(chain.tpm(), &lock, &GmresOptions::default())?
    };
    Ok(times)
}

/// Expected symbols to lock from the worst-case start.
///
/// # Errors
///
/// Same as [`mean_lock_times`].
pub fn mean_lock_time(chain: &CdrChain, radius_bins: usize) -> Result<f64> {
    let times = mean_lock_times(chain, radius_bins)?;
    Ok(times[worst_case_start(chain)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CdrConfig, CdrModel};

    fn chain() -> CdrChain {
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(0.06)
            .drift(5e-3, 4e-2)
            .build()
            .unwrap();
        CdrModel::new(config).build_chain().unwrap()
    }

    #[test]
    fn lock_region_geometry() {
        let c = chain();
        let lock = lock_states(&c, 1);
        // Offsets -1, 0, +1 across all data x counter states.
        assert_eq!(lock.len(), 3 * 4 * 4);
        for &s in &lock {
            assert!(c.phase_offset_of(s).abs() <= 1);
        }
    }

    #[test]
    fn lock_curve_is_monotone_cdf() {
        let c = chain();
        let start = worst_case_start(&c);
        let curve = lock_probability_curve(&c, start, 1, 300).unwrap();
        assert_eq!(curve[0], 0.0);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "curve must be monotone");
        }
        let last = *curve.last().unwrap();
        assert!(last > 0.99, "should lock within the horizon: {last}");
    }

    #[test]
    fn curve_median_is_consistent_with_mean() {
        let c = chain();
        let start = worst_case_start(&c);
        let mean = mean_lock_times(&c, 1).unwrap()[start];
        let curve = lock_probability_curve(&c, start, 1, 2000).unwrap();
        // P(locked by ~3*mean) should be essentially 1 and the mean of the
        // curve-implied distribution should match the first-passage mean.
        let k3 = (3.0 * mean) as usize;
        assert!(curve[k3.min(curve.len() - 1)] > 0.9);
        // E[T] = Σ_k (1 − F(k)); truncate at the horizon.
        let mean_from_curve: f64 = curve.iter().map(|&f| 1.0 - f).sum();
        assert!(
            (mean_from_curve / mean - 1.0).abs() < 0.05,
            "curve mean {mean_from_curve} vs passage mean {mean}"
        );
    }

    #[test]
    fn worst_case_start_is_far_from_lock() {
        let c = chain();
        let start = worst_case_start(&c);
        assert_eq!(c.phase_offset_of(start), -(c.config().m_bins() as i64) / 2);
    }

    #[test]
    fn argument_validation() {
        let c = chain();
        assert!(lock_probability_curve(&c, usize::MAX, 1, 10).is_err());
        // Start inside the lock region.
        assert!(lock_probability_curve(&c, c.locked_state(), 1, 10).is_err());
    }

    #[test]
    fn tighter_lock_radius_takes_longer() {
        let c = chain();
        let loose = mean_lock_time(&c, 3).unwrap();
        let tight = mean_lock_time(&c, 1).unwrap();
        assert!(tight > loose, "tight {tight} vs loose {loose}");
        assert!(tight > 1.0);
    }
}
