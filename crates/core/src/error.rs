//! Unified error type for the `stochcdr` crate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CdrError>;

/// Error raised during CDR model construction or analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CdrError {
    /// A configuration parameter was invalid or inconsistent.
    Config(String),
    /// The noise layer rejected a specification.
    Noise(stochcdr_noise::NoiseError),
    /// FSM-network assembly failed.
    Fsm(stochcdr_fsm::FsmError),
    /// Markov-chain analysis failed.
    Markov(stochcdr_markov::MarkovError),
}

impl fmt::Display for CdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdrError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            CdrError::Noise(e) => write!(f, "noise model error: {e}"),
            CdrError::Fsm(e) => write!(f, "FSM network error: {e}"),
            CdrError::Markov(e) => write!(f, "Markov analysis error: {e}"),
        }
    }
}

impl std::error::Error for CdrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CdrError::Config(_) => None,
            CdrError::Noise(e) => Some(e),
            CdrError::Fsm(e) => Some(e),
            CdrError::Markov(e) => Some(e),
        }
    }
}

impl From<stochcdr_noise::NoiseError> for CdrError {
    fn from(e: stochcdr_noise::NoiseError) -> Self {
        CdrError::Noise(e)
    }
}

impl From<stochcdr_fsm::FsmError> for CdrError {
    fn from(e: stochcdr_fsm::FsmError) -> Self {
        CdrError::Fsm(e)
    }
}

impl From<stochcdr_markov::MarkovError> for CdrError {
    fn from(e: stochcdr_markov::MarkovError) -> Self {
        CdrError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CdrError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let e: CdrError = stochcdr_noise::NoiseError::InvalidParameter("x".into()).into();
        assert!(e.source().is_some());
    }
}
