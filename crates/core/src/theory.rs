//! First-order bang-bang loop theory — closed-form sanity checks.
//!
//! The Markov analysis is exact; these closed forms are the designer's
//! back-of-envelope companions (in the spirit of the sign-dependent
//! random-walk literature on bang-bang PLLs). They are used in tests as
//! *independent* predictions the chain must reproduce: the slope-overload
//! drift threshold locates the cycle-slip cliff, and the correction-rate
//! formula bounds acquisition speed.

use crate::CdrConfig;

/// Maximum sustained phase-correction rate of the loop, UI per symbol.
///
/// Each data transition advances the counter by at most one; an overflow
/// takes `counter_len / 2` aligned decisions from the recentered state and
/// moves the phase by `G = UI / phases`. With stationary transition
/// density `p_t`, the loop can therefore cancel at most
///
/// ```text
/// rate_max = G · p_t / (counter_len / 2)   [UI / symbol]
/// ```
pub fn max_correction_rate_ui(config: &CdrConfig) -> f64 {
    let g = 1.0 / config.phases as f64;
    let p_t = config.data_model.stationary_transition_density();
    g * p_t / (config.counter_len as f64 / 2.0)
}

/// Slope-overload threshold: the largest deterministic drift `|mean(n_r)|`
/// the loop can track without continuous cycle slipping. Equal to
/// [`max_correction_rate_ui`]; drift beyond it slips at rate
/// `|mean(n_r)| − rate_max` UI per symbol.
pub fn max_trackable_drift_ui(config: &CdrConfig) -> f64 {
    max_correction_rate_ui(config)
}

/// The same threshold expressed as a frequency offset in ppm.
pub fn max_trackable_offset_ppm(config: &CdrConfig) -> f64 {
    max_trackable_drift_ui(config) * 1e6
}

/// Expected symbols between counter overflows when every decision is
/// aligned (the fastest the loop ever corrects): `counter_len / (2 p_t)`.
pub fn min_overflow_period_symbols(config: &CdrConfig) -> f64 {
    let p_t = config.data_model.stationary_transition_density();
    config.counter_len as f64 / (2.0 * p_t)
}

/// Residual slip rate (slips per symbol) predicted by slope overload for a
/// drift beyond the threshold; `0` below it.
///
/// One slip = one UI of accumulated untracked phase.
pub fn overload_slip_rate(config: &CdrConfig) -> f64 {
    let excess = config.drift.mean_ui.abs() - max_trackable_drift_ui(config);
    excess.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_slip::mean_time_between_slips;
    use crate::{CdrConfig, CdrModel, SolverChoice};
    use stochcdr_noise::jitter::{DriftJitterSpec, DriftShape};

    fn config_with_drift(mean_ui: f64) -> CdrConfig {
        CdrConfig::builder()
            .phases(8)
            .grid_refinement(4)
            .counter_len(8)
            .white_sigma_ui(0.05)
            .drift_spec(DriftJitterSpec::new(
                mean_ui,
                1.6e-2,
                DriftShape::Triangular,
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn closed_forms() {
        let c = config_with_drift(1e-3);
        // G = 1/8, p_t for run-length(0.5, 4) slightly above 0.5, C = 8.
        let p_t = c.data_model.stationary_transition_density();
        assert!((max_correction_rate_ui(&c) - 0.125 * p_t / 4.0).abs() < 1e-12);
        assert!((min_overflow_period_symbols(&c) - 8.0 / (2.0 * p_t)).abs() < 1e-12);
        assert!(max_trackable_offset_ppm(&c) > 10_000.0);
        assert_eq!(overload_slip_rate(&c), 0.0);
        let hot = config_with_drift(0.05);
        assert!(overload_slip_rate(&hot) > 0.0);
    }

    #[test]
    fn slip_cliff_sits_at_the_predicted_threshold() {
        // MTBS far above threshold drift: short; far below: astronomically
        // long — the chain must reproduce the slope-overload cliff.
        let c = config_with_drift(0.0);
        let threshold = max_trackable_drift_ui(&c);

        let mtbs_at = |mean_ui: f64| {
            let cfg = config_with_drift(mean_ui);
            let chain = CdrModel::new(cfg).build_chain().unwrap();
            let a = chain
                .analyze_with_tol(SolverChoice::Multigrid, 1e-11)
                .unwrap();
            mean_time_between_slips(&chain, &a.stationary).unwrap()
        };

        let below = mtbs_at(0.4 * threshold);
        let above = mtbs_at(1.5 * threshold);
        assert!(
            below > above * 1e4,
            "cliff missing: below {below:.2e}, above {above:.2e}, threshold {threshold:.3e}"
        );
        // Above overload the observed slip rate approaches the predicted
        // residual rate (within a factor ~3: the bounded random part and
        // occasional counter misfires blur the deterministic bound).
        let hot = config_with_drift(1.5 * threshold);
        let predicted = overload_slip_rate(&hot);
        let observed = 1.0 / above;
        assert!(
            observed / predicted < 3.0 && predicted / observed < 3.0,
            "observed slip rate {observed:.3e} vs predicted {predicted:.3e}"
        );
    }

    #[test]
    fn acquisition_respects_the_correction_rate_bound() {
        // Locking from half a UI cannot be faster than the max correction
        // rate allows: t_min = 0.5 / rate_max.
        let cfg = config_with_drift(0.0);
        let chain = CdrModel::new(cfg.clone()).build_chain().unwrap();
        let t_min = 0.5 / max_correction_rate_ui(&cfg);
        let mean_lock = crate::acquisition::mean_lock_time(&chain, cfg.step_bins()).unwrap();
        assert!(
            mean_lock > 0.5 * t_min,
            "mean lock {mean_lock:.1} violates the rate bound {t_min:.1}"
        );
    }
}
