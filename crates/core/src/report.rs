//! Paper-style reporting: figure annotation lines and density panels.
//!
//! Each panel of the paper's Figures 4 and 5 is annotated with two lines:
//!
//! ```text
//! COUNTER: 8  STDnw: 2.0e-2  MAXnr: 8.5e-3  BER: 1.2e-9
//! Size: 2048  Iter: 12  Matrixformtime: 0.01 mins  Solvetime: 0.05 mins
//! ```
//!
//! (counter length, σ of `n_w`, max `|n_r|`, computed BER; state-space
//! size, solver iterations, matrix-form CPU time, solve CPU time). This
//! module reproduces those annotations plus ASCII versions of the density
//! panels, so the benchmark binaries print self-contained figure
//! equivalents.

use crate::{CdrAnalysis, CdrChain};
use stochcdr_multigrid::MgPhases;

/// The paper's upper annotation line: design and noise parameters + BER.
pub fn annotation_line(chain: &CdrChain, analysis: &CdrAnalysis) -> String {
    let cfg = chain.config();
    format!(
        "COUNTER: {}  STDnw: {:.2e}  MAXnr: {:.2e}  BER: {:.2e}",
        cfg.counter_len,
        cfg.white.sigma_ui,
        cfg.drift.max_abs_ui(),
        analysis.ber
    )
}

/// The paper's lower annotation line: problem size and CPU times.
pub fn size_line(chain: &CdrChain, analysis: &CdrAnalysis) -> String {
    format!(
        "Size: {}  Iter: {}  Matrixformtime: {:.2} mins  Solvetime: {:.2} mins",
        chain.state_count(),
        analysis.iterations,
        chain.form_time().as_secs_f64() / 60.0,
        analysis.solve_time.as_secs_f64() / 60.0
    )
}

/// A complete figure panel: both annotation lines and the two stationary
/// density plots (`Φ` and `Φ + n_w`), as the paper's panels show.
pub fn figure_panel(chain: &CdrChain, analysis: &CdrAnalysis) -> String {
    let mut out = String::new();
    out.push_str(&annotation_line(chain, analysis));
    out.push('\n');
    out.push_str(&size_line(chain, analysis));
    out.push('\n');
    out.push_str("stationary density of phase error Phi (log scale):\n");
    out.push_str(&analysis.phi_density.ascii_plot(72, 10, 1e-16));
    out.push('\n');
    out.push_str("stationary density of PD input Phi + n_w (log scale):\n");
    out.push_str(&analysis.pd_input_density.ascii_plot(72, 10, 1e-16));
    out.push('\n');
    out
}

/// One row of a solver-comparison table, including the TPM nonzero
/// count captured during chain assembly (the same figure the
/// `stochcdr-obs` layer reports as `fsm.tpm_assembled`/`core.chain_built`).
///
/// When the solve was multigrid, `phases` carries the per-phase time
/// accounting from [`MgPhases`] and the last three columns show how the
/// solve time splits between coarse-operator refresh (aggregation),
/// smoothing, and the coarsest-level direct solve. One-level solvers
/// pass `None` and print `-`.
pub fn solver_row(
    name: &str,
    states: usize,
    nnz: usize,
    iterations: usize,
    residual: f64,
    seconds: f64,
    phases: Option<&MgPhases>,
) -> String {
    let share = |phase_secs: f64| {
        if seconds > 0.0 {
            format!("{:.1}%", 100.0 * phase_secs / seconds)
        } else {
            "-".to_string()
        }
    };
    let (agg, smooth, coarse) = match phases {
        Some(ph) => (
            share(ph.aggregate_secs),
            share(ph.smooth_secs),
            share(ph.coarse_solve_secs),
        ),
        None => ("-".to_string(), "-".to_string(), "-".to_string()),
    };
    format!(
        "{name:<14} {states:>10} {nnz:>12} {iterations:>10} {residual:>12.2e} {seconds:>10.3}s \
         {agg:>7} {smooth:>7} {coarse:>7}"
    )
}

/// Header matching [`solver_row`].
pub fn solver_header() -> String {
    format!(
        "{:<14} {:>10} {:>12} {:>10} {:>12} {:>11} {:>7} {:>7} {:>7}",
        "solver", "states", "nnz", "iters", "residual", "time", "agg", "smooth", "coarse"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CdrConfig, CdrModel, SolverChoice};

    fn setup() -> (CdrChain, CdrAnalysis) {
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(0.08)
            .drift(1e-2, 6e-2)
            .build()
            .unwrap();
        let chain = CdrModel::new(config).build_chain().unwrap();
        let analysis = chain.analyze(SolverChoice::Multigrid).unwrap();
        (chain, analysis)
    }

    #[test]
    fn annotation_contains_parameters() {
        let (chain, analysis) = setup();
        let line = annotation_line(&chain, &analysis);
        assert!(line.contains("COUNTER: 4"));
        assert!(line.contains("STDnw: 8.00e-2"));
        assert!(line.contains("BER:"));
    }

    #[test]
    fn size_line_contains_size_and_iters() {
        let (chain, analysis) = setup();
        let line = size_line(&chain, &analysis);
        assert!(line.contains(&format!("Size: {}", chain.state_count())));
        assert!(line.contains("Iter:"));
        assert!(line.contains("mins"));
    }

    #[test]
    fn figure_panel_is_complete() {
        let (chain, analysis) = setup();
        let panel = figure_panel(&chain, &analysis);
        assert!(panel.contains("COUNTER"));
        assert!(panel.contains("phase error Phi"));
        assert!(panel.contains("Phi + n_w"));
        assert!(panel.contains('#'));
    }

    #[test]
    fn table_rows_align() {
        let h = solver_header();
        let r = solver_row("multigrid", 2048, 10240, 12, 1e-13, 0.5, None);
        assert_eq!(h.len(), r.len());
        let phases = MgPhases {
            aggregate_secs: 0.2,
            smooth_secs: 0.25,
            coarse_solve_secs: 0.05,
            ..MgPhases::default()
        };
        let p = solver_row("multigrid", 2048, 10240, 12, 1e-13, 0.5, Some(&phases));
        assert_eq!(h.len(), p.len());
        assert!(p.contains("40.0%"));
        assert!(p.contains("50.0%"));
        assert!(p.contains("10.0%"));
    }
}
