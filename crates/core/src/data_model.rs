//! Stochastic models of the incoming data stream.
//!
//! The phase detector only acts when the data has a transition, so the
//! data statistics shape the whole loop. Two models are provided:
//!
//! * [`DataModel::RunLength`] — i.i.d. transitions with density `p_t`,
//!   with a *forced* transition at the maximum run length (the paper: "the
//!   input data stream is usually specified in terms of the longest
//!   possible bit sequence with no transitions"),
//! * [`DataModel::TwoState`] — the paper's Figure-2 data FSM: a two-state
//!   Markov bit source (`Data` / `Prev Data` with stay probabilities such
//!   as the 0.7 / 0.8 shown in the figure), which produces *correlated*
//!   transitions.

use stochcdr_noise::sonet::DataSpec;

use crate::{CdrError, Result};

/// One stochastic branch of the data source: did a transition occur, which
/// state follows, with what probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataBranch {
    /// `true` if the data toggled this symbol.
    pub transition: bool,
    /// Next data-source state.
    pub next_state: usize,
    /// Branch probability (branches of a state sum to one).
    pub prob: f64,
}

/// A finite-state stochastic model of the incoming data.
#[derive(Debug, Clone, PartialEq)]
pub enum DataModel {
    /// Run-length-limited i.i.d. transitions.
    RunLength(DataSpec),
    /// Two-state Markov bit source: `p_stay0` = P(next bit 0 | bit 0),
    /// `p_stay1` = P(next bit 1 | bit 1).
    TwoState {
        /// Probability of repeating a `0`.
        p_stay0: f64,
        /// Probability of repeating a `1`.
        p_stay1: f64,
    },
}

impl DataModel {
    /// Run-length model from a [`DataSpec`].
    pub fn run_length(spec: DataSpec) -> Self {
        DataModel::RunLength(spec)
    }

    /// Two-state Markov source.
    ///
    /// # Errors
    ///
    /// Returns [`CdrError::Config`] unless both stay probabilities are in
    /// `(0, 1)` (degenerate sources either never transition or are
    /// deterministic clock patterns; both break the loop model).
    pub fn two_state(p_stay0: f64, p_stay1: f64) -> Result<Self> {
        for p in [p_stay0, p_stay1] {
            if !(p > 0.0 && p < 1.0) {
                return Err(CdrError::Config(format!(
                    "stay probability {p} must be in (0, 1)"
                )));
            }
        }
        Ok(DataModel::TwoState { p_stay0, p_stay1 })
    }

    /// Number of data-source FSM states.
    pub fn state_count(&self) -> usize {
        match self {
            DataModel::RunLength(spec) => spec.max_run_length,
            DataModel::TwoState { .. } => 2,
        }
    }

    /// The stochastic branches out of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state >= state_count()`.
    pub fn branches(&self, state: usize) -> Vec<DataBranch> {
        assert!(state < self.state_count(), "data state out of range");
        match *self {
            DataModel::RunLength(spec) => {
                let p_t = spec.transition_density;
                if state == spec.max_run_length - 1 {
                    vec![DataBranch {
                        transition: true,
                        next_state: 0,
                        prob: 1.0,
                    }]
                } else {
                    vec![
                        DataBranch {
                            transition: true,
                            next_state: 0,
                            prob: p_t,
                        },
                        DataBranch {
                            transition: false,
                            next_state: state + 1,
                            prob: 1.0 - p_t,
                        },
                    ]
                }
            }
            DataModel::TwoState { p_stay0, p_stay1 } => {
                let stay = if state == 0 { p_stay0 } else { p_stay1 };
                vec![
                    DataBranch {
                        transition: false,
                        next_state: state,
                        prob: stay,
                    },
                    DataBranch {
                        transition: true,
                        next_state: 1 - state,
                        prob: 1.0 - stay,
                    },
                ]
            }
        }
    }

    /// Stationary transition density of the source (probability that a
    /// random symbol carries a transition under the source's own
    /// stationary law).
    pub fn stationary_transition_density(&self) -> f64 {
        match *self {
            DataModel::RunLength(spec) => spec.effective_transition_density(),
            DataModel::TwoState { p_stay0, p_stay1 } => {
                // Stationary bit distribution: pi0 ∝ (1 - p_stay1), pi1 ∝ (1 - p_stay0).
                let (q0, q1) = (1.0 - p_stay0, 1.0 - p_stay1);
                let pi0 = q1 / (q0 + q1);
                pi0 * q0 + (1.0 - pi0) * q1
            }
        }
    }

    /// Short human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DataModel::RunLength(_) => "run-length",
            DataModel::TwoState { .. } => "two-state",
        }
    }
}

impl Default for DataModel {
    /// Scrambled data, density ½, run bound 4.
    fn default() -> Self {
        DataModel::RunLength(DataSpec::new(0.5, 4).expect("default data spec is valid"))
    }
}

impl From<DataSpec> for DataModel {
    fn from(spec: DataSpec) -> Self {
        DataModel::RunLength(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_length_branches() {
        let m = DataModel::run_length(DataSpec::new(0.3, 3).unwrap());
        assert_eq!(m.state_count(), 3);
        let b = m.branches(0);
        assert_eq!(b.len(), 2);
        assert!((b.iter().map(|b| b.prob).sum::<f64>() - 1.0).abs() < 1e-15);
        // Forced transition at the bound.
        let b = m.branches(2);
        assert_eq!(b.len(), 1);
        assert!(b[0].transition);
        assert_eq!(b[0].next_state, 0);
    }

    #[test]
    fn two_state_branches() {
        let m = DataModel::two_state(0.7, 0.8).unwrap();
        assert_eq!(m.state_count(), 2);
        let b = m.branches(0);
        assert!((b[0].prob - 0.7).abs() < 1e-15);
        assert!(!b[0].transition);
        assert_eq!(b[1].next_state, 1);
        assert!(b[1].transition);
        let b = m.branches(1);
        assert!((b[0].prob - 0.8).abs() < 1e-15);
    }

    #[test]
    fn two_state_validation() {
        assert!(DataModel::two_state(0.0, 0.5).is_err());
        assert!(DataModel::two_state(0.5, 1.0).is_err());
        assert!(DataModel::two_state(0.5, 0.5).is_ok());
    }

    #[test]
    fn stationary_density_two_state() {
        // Symmetric source: density = 1 - stay.
        let m = DataModel::two_state(0.7, 0.7).unwrap();
        assert!((m.stationary_transition_density() - 0.3).abs() < 1e-12);
        // Figure-2 probabilities.
        let m = DataModel::two_state(0.7, 0.8).unwrap();
        // pi0 = 0.2/(0.3+0.2) = 0.4; density = 0.4*0.3 + 0.6*0.2 = 0.24.
        assert!((m.stationary_transition_density() - 0.24).abs() < 1e-12);
    }

    #[test]
    fn branch_probabilities_always_sum_to_one() {
        for model in [
            DataModel::run_length(DataSpec::new(0.4, 5).unwrap()),
            DataModel::two_state(0.6, 0.9).unwrap(),
        ] {
            for s in 0..model.state_count() {
                let total: f64 = model.branches(s).iter().map(|b| b.prob).sum();
                assert!((total - 1.0).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn default_is_scrambled() {
        let m = DataModel::default();
        assert_eq!(m.state_count(), 4);
        assert_eq!(m.name(), "run-length");
    }
}
