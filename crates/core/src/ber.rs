//! Bit-error-rate computation from stationary densities.
//!
//! "Whenever the phase error plus the data jitter, i.e. `Φ_k + n_w(k)`,
//! becomes larger/smaller than half a clock cycle, the system might
//! potentially produce bit errors ... This probability can be directly
//! obtained from the steady-state probability distribution of reachable
//! states" — the BER is the stationary tail mass of `Φ + n_w` beyond
//! ±UI/2.
//!
//! Two estimators are provided:
//!
//! * [`ber_continuous`] — convolves the stationary phase marginal with the
//!   *continuous* Gaussian `n_w` tail (`Q`-function). Exact in the `n_w`
//!   dimension; this is the production estimator because the far tails
//!   (1e-10 and below) fall outside any reasonable discretized support.
//! * [`ber_discrete`] — uses the same discretized `n_w` the chain itself
//!   saw. It matches the Monte-Carlo simulator exactly (same probability
//!   space) and quantifies the discretization error of the tails.

use stochcdr_noise::dist::Distribution;
use stochcdr_noise::special::normal_sf;
use stochcdr_noise::DiscreteDist;

use crate::density::PhiDensity;

/// BER with the continuous Gaussian tail of `n_w`:
///
/// ```text
/// BER = Σ_o π(o) · [ Q((½ − oδ)/σ) + Q((½ + oδ)/σ) ]
/// ```
///
/// # Panics
///
/// Panics if `sigma_w_ui <= 0`.
pub fn ber_continuous(phi: &PhiDensity, sigma_w_ui: f64) -> f64 {
    assert!(sigma_w_ui > 0.0, "sigma must be positive");
    let delta = phi.delta_ui();
    phi.bins()
        .iter()
        .map(|&(o, p)| {
            let x = o as f64 * delta;
            p * (normal_sf((0.5 - x) / sigma_w_ui) + normal_sf((0.5 + x) / sigma_w_ui))
        })
        .sum()
}

/// BER with an arbitrary **zero-mean symmetric** continuous `n_w`
/// distribution (e.g. the dual-Dirac DJ⊕RJ model):
///
/// ```text
/// BER = Σ_o π(o) · [ sf(½ − oδ) + sf(½ + oδ) ]
/// ```
///
/// Symmetry is required because the lower tail is evaluated through the
/// survival function (`P(n_w < −t) = sf(t)`), which implementations keep
/// accurate in a *relative* sense far into the tail — the CDF itself
/// cannot resolve 1e-12 masses.
pub fn ber_symmetric_dist(phi: &PhiDensity, nw: &dyn Distribution) -> f64 {
    debug_assert!(nw.mean().abs() < 1e-12, "n_w must be zero-mean");
    let delta = phi.delta_ui();
    phi.bins()
        .iter()
        .map(|&(o, p)| {
            let x = o as f64 * delta;
            p * (nw.sf(0.5 - x) + nw.sf(0.5 + x))
        })
        .sum()
}

/// BER with the discretized `n_w` mass function (grid-offset support):
/// `Σ_o π(o) · P(|o + n_w| > half_bins)`.
///
/// Because the discretized `n_w` is truncated (typically at 8σ), this
/// estimator reports exactly zero when the truncated support cannot reach
/// the boundary — the regime where only [`ber_continuous`] resolves the
/// tail.
pub fn ber_discrete(phi: &PhiDensity, nw: &DiscreteDist, half_bins: i32) -> f64 {
    phi.bins()
        .iter()
        .map(|&(o, p)| p * (nw.prob_gt(half_bins - o) + nw.prob_lt(-half_bins - o)))
        .sum()
}

/// One point of a BER bathtub curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BathtubPoint {
    /// Static sampling-phase offset from the loop's own sampling instant,
    /// in UI.
    pub offset_ui: f64,
    /// BER when sampling at that offset.
    pub ber: f64,
}

/// Computes the BER *bathtub curve*: the BER as a function of a static
/// sampling-phase offset added to the recovered clock.
///
/// This is the standard scope/BERT artifact for timing budgets: the curve
/// floor is the loop's own BER; the walls show how much static skew the
/// link can absorb. Computed exactly from the stationary phase density —
/// every point of the curve, down to arbitrarily low BER, costs one pass
/// over the density.
///
/// `n_points` samples the offset range `[-0.5, 0.5]` UI inclusive.
///
/// # Panics
///
/// Panics if `sigma_w_ui <= 0` or `n_points < 2`.
pub fn bathtub(phi: &PhiDensity, sigma_w_ui: f64, n_points: usize) -> Vec<BathtubPoint> {
    assert!(sigma_w_ui > 0.0, "sigma must be positive");
    assert!(n_points >= 2, "need at least two samples");
    let delta = phi.delta_ui();
    (0..n_points)
        .map(|k| {
            let offset = -0.5 + k as f64 / (n_points - 1) as f64;
            let ber = phi
                .bins()
                .iter()
                .map(|&(o, p)| {
                    let x = o as f64 * delta + offset;
                    p * (normal_sf((0.5 - x) / sigma_w_ui) + normal_sf((0.5 + x) / sigma_w_ui))
                })
                .sum();
            BathtubPoint {
                offset_ui: offset,
                ber,
            }
        })
        .collect()
}

/// The horizontal eye opening at a BER target: the width of the offset
/// interval where the bathtub stays below `ber_target`.
///
/// Returns `0.0` when even the centered sampling point exceeds the target.
///
/// # Panics
///
/// Same conditions as [`bathtub`].
pub fn eye_opening_at_ber(phi: &PhiDensity, sigma_w_ui: f64, ber_target: f64) -> f64 {
    let curve = bathtub(phi, sigma_w_ui, 401);
    let step = 1.0 / 400.0;
    curve.iter().filter(|p| p.ber < ber_target).count() as f64 * step
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochcdr_noise::special::normal_sf;

    #[test]
    fn point_phase_matches_q_function() {
        // All mass at zero phase error: BER = 2 Q(0.5/sigma).
        let phi = PhiDensity::from_pairs(1.0 / 64.0, vec![(0, 1.0)]);
        let sigma = 0.1;
        let ber = ber_continuous(&phi, sigma);
        let expect = 2.0 * normal_sf(0.5 / sigma);
        assert!((ber / expect - 1.0).abs() < 1e-12);
    }

    #[test]
    fn offset_phase_increases_ber() {
        let delta = 1.0 / 64.0;
        let centered = PhiDensity::from_pairs(delta, vec![(0, 1.0)]);
        let offset = PhiDensity::from_pairs(delta, vec![(16, 1.0)]); // +0.25 UI
        let sigma = 0.08;
        assert!(ber_continuous(&offset, sigma) > ber_continuous(&centered, sigma) * 10.0);
    }

    #[test]
    fn wider_phase_density_increases_ber() {
        let delta = 1.0 / 64.0;
        let narrow = PhiDensity::from_pairs(delta, vec![(0, 1.0)]);
        let wide = PhiDensity::from_pairs(delta, vec![(-20, 0.25), (0, 0.5), (20, 0.25)]);
        let sigma = 0.05;
        assert!(ber_continuous(&wide, sigma) > ber_continuous(&narrow, sigma));
    }

    #[test]
    fn discrete_matches_continuous_at_high_ber() {
        // With sigma large relative to the half UI, the discretized tail is
        // well inside the truncation and the two estimators agree closely.
        let delta = 1.0 / 64.0;
        let phi = PhiDensity::from_pairs(delta, vec![(-2, 0.3), (0, 0.4), (2, 0.3)]);
        let sigma = 0.2;
        let spec = stochcdr_noise::jitter::WhiteJitterSpec::from_sigma(sigma);
        let nw = spec.discretize(delta);
        let d = ber_discrete(&phi, &nw, 32);
        let c = ber_continuous(&phi, sigma);
        assert!(d > 0.0);
        // The discrete estimator carries a half-bin quantization bias at
        // the ±UI/2 boundary, so agreement is O(delta) at this grid.
        assert!(
            (d / c - 1.0).abs() < 0.2,
            "discrete {d:.3e} vs continuous {c:.3e}"
        );
    }

    #[test]
    fn discrete_converges_to_continuous_with_grid_refinement() {
        let sigma = 0.2;
        let mut errors = Vec::new();
        for bins in [64usize, 256, 1024] {
            let delta = 1.0 / bins as f64;
            let phi = PhiDensity::from_pairs(delta, vec![(0, 1.0)]);
            let spec = stochcdr_noise::jitter::WhiteJitterSpec::from_sigma(sigma);
            let nw = spec.discretize(delta);
            let d = ber_discrete(&phi, &nw, bins as i32 / 2);
            let c = ber_continuous(&phi, sigma);
            errors.push((d / c - 1.0).abs());
        }
        assert!(errors[2] < errors[0] / 3.0, "no convergence: {errors:?}");
        assert!(errors[2] < 0.02, "fine-grid error too large: {errors:?}");
    }

    #[test]
    fn discrete_truncation_reports_zero_in_far_tail() {
        let delta = 1.0 / 64.0;
        let phi = PhiDensity::from_pairs(delta, vec![(0, 1.0)]);
        // Sigma chosen so the continuous tail (erfc at ~23.6 sigma) is tiny
        // but still above f64 underflow, while the 8-sigma truncated
        // discrete support cannot reach the boundary at all.
        let spec = stochcdr_noise::jitter::WhiteJitterSpec::from_sigma(0.015);
        let nw = spec.discretize(delta); // truncated at 8 sigma = 0.12 UI
        assert_eq!(ber_discrete(&phi, &nw, 32), 0.0);
        assert!(ber_continuous(&phi, 0.015) > 0.0);
    }

    #[test]
    fn symmetric_dist_estimator_matches_gaussian_path() {
        use stochcdr_noise::dist::DualDirac;
        let phi = PhiDensity::from_pairs(1.0 / 64.0, vec![(-3, 0.2), (0, 0.6), (3, 0.2)]);
        let sigma = 0.06;
        // DJ = 0 dual-Dirac is the Gaussian.
        let g = DualDirac::new(0.0, sigma);
        let a = ber_symmetric_dist(&phi, &g);
        let b = ber_continuous(&phi, sigma);
        assert!((a / b - 1.0).abs() < 1e-6, "{a:.3e} vs {b:.3e}");
        // Adding DJ strictly raises the BER.
        let dd = DualDirac::new(0.1, sigma);
        assert!(ber_symmetric_dist(&phi, &dd) > a);
    }

    #[test]
    fn bathtub_floor_is_centered_ber() {
        let phi = PhiDensity::from_pairs(1.0 / 64.0, vec![(0, 1.0)]);
        let sigma = 0.05;
        let curve = bathtub(&phi, sigma, 101);
        assert_eq!(curve.len(), 101);
        // The floor (offset 0) equals the plain BER.
        let center = &curve[50];
        assert!((center.offset_ui).abs() < 1e-12);
        assert!((center.ber - ber_continuous(&phi, sigma)).abs() < 1e-15);
        // Walls rise monotonically away from the center for a symmetric
        // density.
        for k in 50..100 {
            assert!(curve[k + 1].ber >= curve[k].ber - 1e-18);
        }
        // At the UI edge the sampling instant sits on a transition: BER 1/2.
        assert!(
            (curve[100].ber - 0.5).abs() < 0.01,
            "edge BER {}",
            curve[100].ber
        );
    }

    #[test]
    fn eye_opening_shrinks_with_noise_and_target() {
        let phi = PhiDensity::from_pairs(1.0 / 64.0, vec![(0, 1.0)]);
        let wide = eye_opening_at_ber(&phi, 0.02, 1e-12);
        let narrow = eye_opening_at_ber(&phi, 0.05, 1e-12);
        assert!(wide > narrow, "{wide} vs {narrow}");
        let strict = eye_opening_at_ber(&phi, 0.05, 1e-15);
        assert!(strict <= narrow);
        assert!(wide > 0.2 && wide < 1.0);
    }

    #[test]
    fn closed_eye_reports_zero() {
        let phi = PhiDensity::from_pairs(1.0 / 64.0, vec![(0, 1.0)]);
        assert_eq!(eye_opening_at_ber(&phi, 0.4, 1e-12), 0.0);
    }

    #[test]
    fn ber_is_monotone_in_sigma() {
        let phi = PhiDensity::from_pairs(1.0 / 64.0, vec![(0, 0.8), (4, 0.2)]);
        let mut prev = 0.0;
        for sigma in [0.02, 0.05, 0.1, 0.2] {
            let b = ber_continuous(&phi, sigma);
            assert!(b > prev, "BER must grow with sigma");
            prev = b;
        }
    }
}
