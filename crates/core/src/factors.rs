//! Sweep-invariant assembly factors of the joint chain, with caching.
//!
//! [`CdrModel::build_chain`](crate::CdrModel::build_chain) composes a
//! handful of intermediate tables — data-source branches, the discretized
//! `n_w` pmf and its per-bin decision tails, the loop-filter transition
//! table, the discretized `n_r` pmf, and (the expensive one) the
//! drift-independent *row skeleton* of the TPM. Each table depends on only
//! a subset of the configuration, so a parameter sweep that perturbs one
//! knob can reuse every factor the knob does not touch.
//!
//! [`AssemblyFactors`] bundles the tables; [`AssemblyFactors::cached`]
//! fetches each one through a [`FactorCache`] under a key derived from
//! exactly the parameters it depends on. The factored assembly path
//! ([`crate::CdrModel::build_chain_with`]) emits transitions in **exactly
//! the same order with exactly the same arithmetic** as the monolithic
//! fast path, so the resulting TPM is bit-identical — asserted by tests
//! here and by the network-equivalence tests in `model.rs`.

use std::sync::Arc;

use stochcdr_fsm::{FactorCache, KeyHasher};
use stochcdr_noise::DiscreteDist;

use crate::data_model::{DataBranch, DataModel};
use crate::stages::{offset_of_bin, LoopCounter, PhaseDetector};
use crate::CdrConfig;

/// One pre-resolved `(branch, decision)` emission of a TPM row, missing
/// only the drift draw: the final successor is `next_base + bin2` where
/// `bin2` follows from the row's phase bin, `dir`, and `n_r`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkeletonEntry {
    /// `(d2 · c_len + c2) · m` — the successor index before the phase bin.
    pub next_base: usize,
    /// Phase-select command of this decision (`+1`, `0`, `-1`).
    pub dir: i64,
    /// `p_branch · p_decision` — the transition mass before the `n_r` pmf.
    pub p: f64,
}

/// The drift-independent skeleton of every TPM row, in the exact emission
/// order of the monolithic assembler (branch-major, then decision).
#[derive(Debug, Clone, PartialEq)]
pub struct RowSkeleton {
    offsets: Vec<usize>,
    entries: Vec<SkeletonEntry>,
}

impl RowSkeleton {
    /// The skeleton entries of row `state`.
    #[inline]
    pub fn row(&self, state: usize) -> &[SkeletonEntry] {
        &self.entries[self.offsets[state]..self.offsets[state + 1]]
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total skeleton entries across all rows.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    fn build(
        cfg: &CdrConfig,
        branches: &[Vec<DataBranch>],
        decision_probs: &[[f64; 3]],
        filter: &FilterTable,
    ) -> Self {
        let (c_len, m) = (cfg.filter_states(), cfg.m_bins());
        let n = cfg.state_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut entries = Vec::new();
        for state in 0..n {
            let bin = state % m;
            let c = (state / m) % c_len;
            let d = state / (m * c_len);
            for &DataBranch {
                transition,
                next_state: d2,
                prob: p_branch,
            } in &branches[d]
            {
                if p_branch == 0.0 {
                    continue;
                }
                let decisions: [(i64, f64); 3] = if transition {
                    let dp = &decision_probs[bin];
                    [(1, dp[0]), (0, dp[1]), (-1, dp[2])]
                } else {
                    [(0, 1.0), (1, 0.0), (-1, 0.0)]
                };
                for (decision, p_dec) in decisions {
                    if p_dec == 0.0 {
                        continue;
                    }
                    let (c2, dir) = filter.advance(c, decision);
                    entries.push(SkeletonEntry {
                        next_base: (d2 * c_len + c2) * m,
                        dir,
                        p: p_branch * p_dec,
                    });
                }
            }
            offsets.push(entries.len());
        }
        RowSkeleton { offsets, entries }
    }
}

/// Per-state `(dir, p_decision)` pairs for the wrap-probability sum, in
/// the exact accumulation order of the monolithic
/// `wrap_probabilities` loop (`+1`, `−1`, `0`, zero-mass entries
/// skipped).
#[derive(Debug, Clone, PartialEq)]
pub struct WrapSkeleton {
    offsets: Vec<usize>,
    entries: Vec<(i64, f64)>,
}

impl WrapSkeleton {
    /// The `(dir, p_decision)` pairs of `state`.
    #[inline]
    pub fn row(&self, state: usize) -> &[(i64, f64)] {
        &self.entries[self.offsets[state]..self.offsets[state + 1]]
    }

    fn build(
        cfg: &CdrConfig,
        branches: &[Vec<DataBranch>],
        decision_probs: &[[f64; 3]],
        filter: &FilterTable,
    ) -> Self {
        let (l, c_len, m) = (
            cfg.data_model.state_count(),
            cfg.filter_states(),
            cfg.m_bins(),
        );
        let mut offsets = Vec::with_capacity(cfg.state_count() + 1);
        offsets.push(0);
        let mut entries = Vec::new();
        for data_branches in branches.iter().take(l) {
            let p_trans: f64 = data_branches
                .iter()
                .filter(|b| b.transition)
                .map(|b| b.prob)
                .sum();
            for c in 0..c_len {
                for probs in decision_probs.iter().take(m) {
                    let p_plus = probs[0];
                    let p_minus = probs[2];
                    let decisions = [
                        (1i64, p_trans * p_plus),
                        (-1, p_trans * p_minus),
                        (0, 1.0 - p_trans * (p_plus + p_minus)),
                    ];
                    for (decision, p_dec) in decisions {
                        if p_dec <= 0.0 {
                            continue;
                        }
                        let (_, dir) = filter.advance(c, decision);
                        entries.push((dir, p_dec));
                    }
                    offsets.push(entries.len());
                }
            }
        }
        WrapSkeleton { offsets, entries }
    }
}

/// Precomputed loop-filter transitions: `(next, up_down)` for every
/// `(state, decision)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterTable {
    /// `[c][k]` for decisions `k = 0,1,2` ↔ `+1, 0, −1`.
    table: Vec<[(usize, i64); 3]>,
}

impl FilterTable {
    fn build(cfg: &CdrConfig) -> Self {
        let counter = LoopCounter::new(cfg);
        let table = (0..cfg.filter_states())
            .map(|c| {
                [
                    counter.advance(c, 1),
                    counter.advance(c, 0),
                    counter.advance(c, -1),
                ]
            })
            .collect();
        FilterTable { table }
    }

    /// `(next state, up_down)` for a ternary decision.
    #[inline]
    pub fn advance(&self, state: usize, decision: i64) -> (usize, i64) {
        // Decisions are +1 / 0 / −1; map to the table column.
        self.table[state][(1 - decision) as usize]
    }
}

/// The complete set of assembly factors for one configuration.
///
/// All members are `Arc`-shared so cached instances cost one pointer copy
/// per sweep point.
#[derive(Debug, Clone)]
pub struct AssemblyFactors {
    /// Data-source branches per data state.
    pub branches: Arc<Vec<Vec<DataBranch>>>,
    /// Discretized `n_w` pmf (grid-bin offsets).
    pub nw: Arc<DiscreteDist>,
    /// Per-phase-bin decision tails `[P(+1), P(0), P(−1)]`.
    pub decision_probs: Arc<Vec<[f64; 3]>>,
    /// Loop-filter transition table.
    pub filter: Arc<FilterTable>,
    /// Discretized `n_r` pmf as `(offset, mass)` pairs.
    pub nr: Arc<Vec<(i64, f64)>>,
    /// Drift-independent TPM row skeleton.
    pub skeleton: Arc<RowSkeleton>,
    /// Drift-independent wrap-probability skeleton.
    pub wrap: Arc<WrapSkeleton>,
}

fn hash_data(h: &mut KeyHasher, model: &DataModel) {
    match model {
        DataModel::RunLength(spec) => {
            h.str("run-length")
                .f64(spec.transition_density)
                .usize(spec.max_run_length);
        }
        DataModel::TwoState { p_stay0, p_stay1 } => {
            h.str("two-state").f64(*p_stay0).f64(*p_stay1);
        }
    }
}

fn hash_white(h: &mut KeyHasher, cfg: &CdrConfig) {
    h.f64(cfg.white.sigma_ui)
        .f64(cfg.white.dj_ui)
        .f64(cfg.white.n_sigma)
        .f64(cfg.delta_ui());
}

fn hash_drift(h: &mut KeyHasher, cfg: &CdrConfig) {
    let shape = match cfg.drift.shape {
        stochcdr_noise::jitter::DriftShape::Uniform => 0u64,
        stochcdr_noise::jitter::DriftShape::Triangular => 1,
        stochcdr_noise::jitter::DriftShape::Sinusoidal => 2,
    };
    h.f64(cfg.drift.mean_ui)
        .f64(cfg.drift.max_dev_ui)
        .u64(shape)
        .f64(cfg.delta_ui());
}

fn hash_filter(h: &mut KeyHasher, cfg: &CdrConfig) {
    let kind = match cfg.filter_kind {
        crate::stages::FilterKind::OverflowCounter => 0u64,
        crate::stages::FilterKind::ConsecutiveDetector => 1,
    };
    h.u64(kind).usize(cfg.counter_len);
}

/// Geometry shared by the skeletons: everything except the drift spec.
fn hash_skeleton(h: &mut KeyHasher, cfg: &CdrConfig) {
    h.usize(cfg.phases)
        .usize(cfg.grid_refinement)
        .usize(cfg.dead_zone_bins);
    hash_filter(h, cfg);
    hash_data(h, &cfg.data_model);
    hash_white(h, cfg);
}

fn key(f: impl FnOnce(&mut KeyHasher)) -> u64 {
    let mut h = KeyHasher::new();
    f(&mut h);
    h.finish()
}

/// Cache key covering every parameter the assembled chain depends on:
/// the skeleton geometry (phases, refinement, dead zone, filter, data,
/// white jitter) plus the drift spec — together these determine the TPM
/// bit-for-bit. The `product.lane` cache kind uses this so multi-lane
/// products rebuild only the lane a sweep axis actually moved.
pub(crate) fn chain_key(cfg: &CdrConfig) -> u64 {
    key(|h| {
        hash_skeleton(h, cfg);
        hash_drift(h, cfg);
    })
}

impl AssemblyFactors {
    /// Computes every factor from scratch (no cache).
    pub fn compute(cfg: &CdrConfig) -> Self {
        let cache = FactorCache::new();
        Self::cached(cfg, &cache)
    }

    /// Computes the factors, fetching each through `cache` under a key
    /// derived from the parameters it depends on. A sweep axis that only
    /// perturbs (say) the drift spec misses only on `acc.nr`; the
    /// skeletons and every other table are shared.
    pub fn cached(cfg: &CdrConfig, cache: &FactorCache) -> Self {
        let branches = cache.get_or_build(
            "data.branches",
            key(|h| hash_data(h, &cfg.data_model)),
            || {
                (0..cfg.data_model.state_count())
                    .map(|d| cfg.data_model.branches(d))
                    .collect::<Vec<_>>()
            },
        );
        let nw = cache.get_or_build("pd.nw", key(|h| hash_white(h, cfg)), || {
            PhaseDetector::new(cfg).nw().clone()
        });
        let decision_probs = cache.get_or_build(
            "pd.decisions",
            key(|h| {
                hash_white(h, cfg);
                h.usize(cfg.m_bins()).usize(cfg.dead_zone_bins);
            }),
            || {
                let m = cfg.m_bins();
                let dead = cfg.dead_zone_bins as i64;
                (0..m)
                    .map(|bin| {
                        let o = offset_of_bin(bin, m);
                        let p_plus = nw.prob_gt((dead - o) as i32);
                        let p_minus = nw.prob_lt((-dead - o) as i32);
                        [p_plus, (1.0 - p_plus - p_minus).max(0.0), p_minus]
                    })
                    .collect::<Vec<_>>()
            },
        );
        let filter = cache.get_or_build("filter.table", key(|h| hash_filter(h, cfg)), || {
            FilterTable::build(cfg)
        });
        let nr = cache.get_or_build("acc.nr", key(|h| hash_drift(h, cfg)), || {
            cfg.drift
                .discretize(cfg.delta_ui())
                .iter()
                .map(|(k, p)| (k as i64, p))
                .collect::<Vec<_>>()
        });
        let skeleton = cache.get_or_build("row.skeleton", key(|h| hash_skeleton(h, cfg)), || {
            RowSkeleton::build(cfg, &branches, &decision_probs, &filter)
        });
        let wrap = cache.get_or_build("wrap.skeleton", key(|h| hash_skeleton(h, cfg)), || {
            WrapSkeleton::build(cfg, &branches, &decision_probs, &filter)
        });
        AssemblyFactors {
            branches,
            nw,
            decision_probs,
            filter,
            nr,
            skeleton,
            wrap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(drift_mean: f64) -> CdrConfig {
        CdrConfig::builder()
            .phases(4)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(0.08)
            .drift(drift_mean, 8e-2)
            .build()
            .unwrap()
    }

    #[test]
    fn cached_factors_match_fresh_compute() {
        let cfg = config(2e-2);
        let cache = FactorCache::new();
        let fresh = AssemblyFactors::compute(&cfg);
        let cached = AssemblyFactors::cached(&cfg, &cache);
        assert_eq!(*fresh.skeleton, *cached.skeleton);
        assert_eq!(*fresh.wrap, *cached.wrap);
        assert_eq!(*fresh.nr, *cached.nr);
        assert_eq!(*fresh.decision_probs, *cached.decision_probs);
    }

    #[test]
    fn drift_change_misses_only_nr() {
        let cache = FactorCache::new();
        let _ = AssemblyFactors::cached(&config(2e-2), &cache);
        let cold = cache.stats();
        assert_eq!(cold.misses, 7, "seven factor kinds built cold");
        let _ = AssemblyFactors::cached(&config(3e-2), &cache);
        let warm = cache.stats();
        assert_eq!(warm.misses - cold.misses, 1, "only acc.nr rebuilt");
        assert_eq!(warm.by_kind["acc.nr"].misses, 2);
        assert_eq!(warm.by_kind["row.skeleton"].misses, 1);
        assert_eq!(warm.by_kind["row.skeleton"].hits, 1);
    }

    #[test]
    fn sigma_change_keeps_data_filter_and_nr() {
        let cache = FactorCache::new();
        let _ = AssemblyFactors::cached(&config(2e-2), &cache);
        let other = CdrConfig::builder()
            .phases(4)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(0.1)
            .drift(2e-2, 8e-2)
            .build()
            .unwrap();
        let _ = AssemblyFactors::cached(&other, &cache);
        let stats = cache.stats();
        for kind in ["data.branches", "filter.table", "acc.nr"] {
            assert_eq!(stats.by_kind[kind].hits, 1, "{kind} should be shared");
        }
        for kind in ["pd.nw", "pd.decisions", "row.skeleton", "wrap.skeleton"] {
            assert_eq!(stats.by_kind[kind].misses, 2, "{kind} should rebuild");
        }
    }

    #[test]
    fn filter_table_matches_loop_counter() {
        let cfg = config(2e-2);
        let table = FilterTable::build(&cfg);
        let counter = LoopCounter::new(&cfg);
        for c in 0..cfg.filter_states() {
            for decision in [-1i64, 0, 1] {
                assert_eq!(table.advance(c, decision), counter.advance(c, decision));
            }
        }
    }
}
