//! Brute-force Monte-Carlo simulation — the baseline the paper argues
//! against.
//!
//! "Such specifications are practically impossible to verify through
//! straightforward simulation because of the extremely long sequence that
//! would need to be simulated in order to get meaningful error statistics."
//! The simulator here runs the *same discretized probability space* as the
//! Markov chain (same `n_w`/`n_r` mass functions, same FSMs), so at
//! operating points where it can collect statistics its estimates must
//! agree with the chain analysis — that cross-check is the validation
//! harness for the whole model — and at 1e-10 BER it demonstrably cannot.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stochcdr_linalg::par;
use stochcdr_noise::sampling::DiscreteSampler;
use stochcdr_obs as obs;

use crate::stages::{bin_of_offset, offset_of_bin, LoopCounter, PhaseAccumulator, PhaseDetector};
use crate::{CdrChain, CdrConfig};

/// Result of a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct McResult {
    /// Symbols simulated.
    pub symbols: u64,
    /// Symbols whose jittered sampling instant fell outside ±UI/2.
    pub bit_errors: u64,
    /// Phase-wrap (cycle-slip) events.
    pub cycle_slips: u64,
    /// Point BER estimate (`bit_errors / symbols`).
    pub ber: f64,
    /// Half-width of the 95 % confidence interval on the BER (normal
    /// approximation).
    pub ber_ci95: f64,
    /// Histogram of visited phase bins (length `m_bins`).
    pub phase_histogram: Vec<u64>,
}

impl McResult {
    /// Symbols needed for a relative-precision-`rel` estimate of a BER of
    /// `ber` at 95 % confidence — the paper's infeasibility argument in one
    /// number (`ber = 1e-10, rel = 0.1` → ~4e13 symbols).
    pub fn required_symbols(ber: f64, rel: f64) -> f64 {
        assert!(ber > 0.0 && rel > 0.0, "ber and rel must be positive");
        // CI half-width ≈ 1.96 sqrt(ber/n) ⇒ n = (1.96/rel)^2 / ber.
        (1.96 / rel).powi(2) / ber
    }
}

/// Monte-Carlo simulator of the discretized CDR loop.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    config: CdrConfig,
    nw: DiscreteSampler,
    nr: DiscreteSampler,
    counter: LoopCounter,
    acc: PhaseAccumulator,
    dead: i64,
}

impl MonteCarlo {
    /// Creates a simulator for the given configuration.
    pub fn new(config: CdrConfig) -> Self {
        let pd = PhaseDetector::new(&config);
        let acc = PhaseAccumulator::new(&config);
        MonteCarlo {
            nw: DiscreteSampler::new(pd.nw()),
            nr: DiscreteSampler::new(acc.nr()),
            counter: LoopCounter::new(&config),
            acc,
            dead: config.dead_zone_bins as i64,
            config,
        }
    }

    /// Runs `symbols` symbol intervals with the given RNG seed, starting
    /// from the locked state.
    pub fn run(&self, symbols: u64, seed: u64) -> McResult {
        let _span = obs::span("core.monte_carlo");
        let wall = std::time::Instant::now();
        let (bit_errors, slips, hist) = self.simulate(symbols, seed);
        self.finish(symbols, bit_errors, slips, hist, wall)
    }

    /// Runs `symbols` symbol intervals split over `shards` independent
    /// streams, simulated in parallel and merged in shard order.
    ///
    /// Each shard starts from the locked state with its own RNG stream
    /// derived from `seed` by a SplitMix64-style mix, and simulates
    /// `symbols / shards` (±1) intervals. The shard decomposition and seed
    /// derivation depend only on `(symbols, seed, shards)` — never on the
    /// thread count — and the per-shard counters are merged in ascending
    /// shard order with exact integer addition, so the result is identical
    /// for any `STOCHCDR_THREADS` setting.
    ///
    /// Restarting every shard at lock is the standard embarrassingly-
    /// parallel MC decomposition; it differs from one long serial run by
    /// `O(shards · t_mix)` relaxation symbols, negligible against the shard
    /// length for the locked operating points simulated here.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn run_sharded(&self, symbols: u64, seed: u64, shards: u64) -> McResult {
        assert!(shards > 0, "need at least one shard");
        let _span = obs::span("core.monte_carlo");
        let wall = std::time::Instant::now();
        let base = symbols / shards;
        let rem = symbols % shards;
        // Shared heartbeat (default off): one completed-shard tick per
        // worker, one progress emission per configured interval.
        let heartbeat = obs::Heartbeat::new("monte-carlo");
        let parts = par::map_tasks(shards as usize, |k| {
            let k = k as u64;
            let quota = base + u64::from(k < rem);
            let shard_t0 = obs::enabled().then(std::time::Instant::now);
            let out = self.simulate(quota, shard_seed(seed, k));
            if let Some(t0) = shard_t0 {
                let secs = t0.elapsed().as_secs_f64();
                obs::histogram("core.mc.shard.ns", secs * 1e9);
                if secs > 0.0 {
                    obs::histogram("core.mc.shard.symbols_per_sec", quota as f64 / secs);
                }
            }
            heartbeat.tick_unit(shards);
            out
        });
        let m = self.config.m_bins();
        let mut bit_errors = 0u64;
        let mut slips = 0u64;
        let mut hist = vec![0u64; m];
        for (e, s, h) in parts {
            bit_errors += e;
            slips += s;
            for (acc, v) in hist.iter_mut().zip(&h) {
                *acc += v;
            }
        }
        obs::counter("core.mc.shards", shards);
        self.finish(symbols, bit_errors, slips, hist, wall)
    }

    /// The raw simulation loop: `symbols` intervals from the locked state,
    /// returning `(bit_errors, cycle_slips, phase_histogram)` with no
    /// instrumentation (so shards can run it concurrently at zero cost).
    fn simulate(&self, symbols: u64, seed: u64) -> (u64, u64, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = &self.config;
        let m = cfg.m_bins();
        let half = (m / 2) as i64;
        let step = cfg.step_bins() as i64;
        let model = &cfg.data_model;

        let mut data_run = 0usize;
        let mut counter = self.counter.center();
        let mut bin = m / 2; // zero phase error

        let mut bit_errors = 0u64;
        let mut slips = 0u64;
        let mut hist = vec![0u64; m];

        for _ in 0..symbols {
            hist[bin] += 1;
            let o = offset_of_bin(bin, m);

            // Data source: sample a branch of the data model.
            let u: f64 = rng.gen();
            let mut acc_p = 0.0;
            let mut transition = false;
            for b in model.branches(data_run) {
                acc_p += b.prob;
                if u < acc_p {
                    transition = b.transition;
                    data_run = b.next_state;
                    break;
                }
            }

            // Eye-opening jitter and bit-error check (every symbol is
            // sampled; the PD only *acts* on transitions).
            // Error iff |Φ + n_w| > UI/2, strictly — the same convention as
            // `ber::ber_discrete`, so the two live on identical probability
            // spaces and must agree to sampling error.
            let nw = self.nw.sample(&mut rng) as i64;
            if o + nw < -half || o + nw > half {
                bit_errors += 1;
            }

            // Phase detector decision.
            let decision = if transition {
                let e = o + nw;
                if e > self.dead {
                    1
                } else if e < -self.dead {
                    -1
                } else {
                    0
                }
            } else {
                0
            };

            // Loop filter.
            let (c2, dir) = self.counter.advance(counter, decision);
            counter = c2;

            // Phase update with drift; count wraps.
            let nr = self.nr.sample(&mut rng) as i64;
            let unwrapped = o - dir * step + nr;
            if unwrapped < -half || unwrapped >= half {
                slips += 1;
            }
            bin = bin_of_offset(unwrapped, m);
            debug_assert_eq!(bin, self.acc.advance(bin_of_offset(o, m), dir, nr));
        }
        (bit_errors, slips, hist)
    }

    /// Derives the [`McResult`] and emits the run telemetry.
    fn finish(
        &self,
        symbols: u64,
        bit_errors: u64,
        slips: u64,
        hist: Vec<u64>,
        wall: std::time::Instant,
    ) -> McResult {
        let ber = bit_errors as f64 / symbols as f64;
        let ci = 1.96 * (ber.max(1e-300) * (1.0 - ber) / symbols as f64).sqrt();
        obs::counter("core.mc.symbols", symbols);
        obs::counter("core.mc.bit_errors", bit_errors);
        obs::counter("core.mc.cycle_slips", slips);
        obs::gauge(
            "core.mc.symbols_per_sec",
            symbols as f64 / wall.elapsed().as_secs_f64().max(1e-12),
        );
        obs::event(
            "core.mc.run",
            &[
                ("symbols", symbols.into()),
                ("bit_errors", bit_errors.into()),
                ("cycle_slips", slips.into()),
                ("ber", ber.into()),
            ],
        );
        McResult {
            symbols,
            bit_errors,
            cycle_slips: slips,
            ber,
            ber_ci95: ci,
            phase_histogram: hist,
        }
    }

    /// Runs the simulator and compares its phase histogram with a chain
    /// analysis, returning the total-variation distance between the
    /// empirical and stationary phase marginals.
    ///
    /// # Panics
    ///
    /// Panics if `chain` was built from a different configuration
    /// (different grid size).
    pub fn validate_against(&self, chain: &CdrChain, eta: &[f64], symbols: u64, seed: u64) -> f64 {
        let m = self.config.m_bins();
        assert_eq!(m, chain.config().m_bins(), "configurations differ");
        let result = self.run(symbols, seed);
        // Empirical phase marginal.
        let total: u64 = result.phase_histogram.iter().sum();
        let mut tv = 0.0;
        for bin in 0..m {
            let emp = result.phase_histogram[bin] as f64 / total as f64;
            let exact: f64 = (0..chain.state_count())
                .filter(|&s| chain.phase_bin_of(s) == bin)
                .map(|s| eta[s])
                .sum();
            tv += (emp - exact).abs();
        }
        tv / 2.0
    }
}

/// Derives the RNG seed for shard `k` from the run seed with a
/// SplitMix64-style finalizer, so shard streams are decorrelated even for
/// adjacent seeds and the derivation is a pure function of `(seed, k)`.
fn shard_seed(seed: u64, k: u64) -> u64 {
    let mut z = seed.wrapping_add((k + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CdrConfig, CdrModel, SolverChoice};

    fn config() -> CdrConfig {
        CdrConfig::builder()
            .phases(8)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(0.08)
            .drift(1e-2, 6e-2)
            .build()
            .unwrap()
    }

    #[test]
    fn histogram_matches_stationary_distribution() {
        let cfg = config();
        let chain = CdrModel::new(cfg.clone()).build_chain().unwrap();
        let a = chain.analyze(SolverChoice::Multigrid).unwrap();
        let mc = MonteCarlo::new(cfg);
        let tv = mc.validate_against(&chain, &a.stationary, 200_000, 42);
        assert!(
            tv < 0.02,
            "TV distance {tv} too large — model/simulator disagree"
        );
    }

    #[test]
    fn ber_estimate_matches_discrete_analysis() {
        // High-noise operating point so MC can see errors.
        let cfg = CdrConfig::builder()
            .phases(8)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(0.2)
            .drift(1e-2, 6e-2)
            .build()
            .unwrap();
        let chain = CdrModel::new(cfg.clone()).build_chain().unwrap();
        let a = chain.analyze(SolverChoice::Multigrid).unwrap();
        let mc = MonteCarlo::new(cfg);
        let r = mc.run(300_000, 7);
        assert!(r.bit_errors > 100, "need errors for the comparison");
        // MC uses the discretized n_w, so compare with the discrete BER.
        assert!(
            (r.ber - a.ber_discrete).abs() < 4.0 * r.ber_ci95 + 0.05 * a.ber_discrete,
            "MC {} ± {} vs analysis {}",
            r.ber,
            r.ber_ci95,
            a.ber_discrete
        );
    }

    #[test]
    fn reproducible_with_same_seed() {
        let mc = MonteCarlo::new(config());
        let a = mc.run(10_000, 123);
        let b = mc.run(10_000, 123);
        assert_eq!(a, b);
        let c = mc.run(10_000, 124);
        assert_ne!(a.phase_histogram, c.phase_histogram);
    }

    #[test]
    fn slips_observed_under_heavy_drift() {
        let cfg = CdrConfig::builder()
            .phases(4)
            .grid_refinement(2)
            .counter_len(8)
            .white_sigma_ui(0.15)
            .drift(8e-2, 2e-1)
            .build()
            .unwrap();
        let mc = MonteCarlo::new(cfg);
        let r = mc.run(100_000, 9);
        assert!(r.cycle_slips > 0, "expected slips under heavy drift");
    }

    #[test]
    fn required_symbols_shows_infeasibility() {
        // The paper's argument: 1e-10 BER at 10% precision needs ~4e12
        // symbols.
        let n = McResult::required_symbols(1e-10, 0.1);
        assert!(n > 1e12);
        // While 1e-3 at 10% is easy.
        assert!(McResult::required_symbols(1e-3, 0.1) < 1e6);
    }

    #[test]
    fn counts_are_consistent() {
        let mc = MonteCarlo::new(config());
        let r = mc.run(50_000, 5);
        assert_eq!(r.symbols, 50_000);
        let hist_total: u64 = r.phase_histogram.iter().sum();
        assert_eq!(hist_total, r.symbols);
        assert!(r.bit_errors <= r.symbols);
        assert!((r.ber - r.bit_errors as f64 / r.symbols as f64).abs() < 1e-15);
    }

    #[test]
    fn sharded_run_is_reproducible_and_consistent() {
        let mc = MonteCarlo::new(config());
        let a = mc.run_sharded(50_000, 11, 4);
        let b = mc.run_sharded(50_000, 11, 4);
        assert_eq!(
            a, b,
            "sharded run must be a pure function of (symbols, seed, shards)"
        );
        assert_eq!(a.symbols, 50_000);
        let hist_total: u64 = a.phase_histogram.iter().sum();
        assert_eq!(hist_total, a.symbols);
        assert!(a.bit_errors <= a.symbols);
        // One shard degenerates to the serial run.
        assert_eq!(
            mc.run_sharded(20_000, 3, 1),
            mc.run(20_000, shard_seed(3, 0))
        );
    }

    #[test]
    fn shard_quota_covers_non_divisible_totals() {
        let mc = MonteCarlo::new(config());
        // 10_003 symbols over 4 shards: quotas 2501/2501/2501/2500.
        let r = mc.run_sharded(10_003, 21, 4);
        let hist_total: u64 = r.phase_histogram.iter().sum();
        assert_eq!(hist_total, 10_003);
    }
}
