//! Row-oriented transition-probability-matrix builder.

use stochcdr_linalg::{par, CooMatrix, CsrMatrix};
use stochcdr_obs as obs;

use crate::{FsmError, Result};

/// Rows per parallel assembly chunk in [`build_rows`]. A pure constant —
/// never derived from the thread count — so the chunk decomposition, and
/// with it the assembled matrix, is identical for any `STOCHCDR_THREADS`.
const ROW_CHUNK: usize = 256;

/// Accumulates the transition probability matrix of a stochastic FSM one
/// state (row) at a time, merging duplicate successor states.
///
/// Duplicate merging is the workhorse of the paper's model construction:
/// many different noise outcomes map to the *same* successor state (e.g.
/// every `n_w` value that leaves the phase-detector decision unchanged), so
/// accumulating `(successor, probability)` pairs and summing duplicates
/// keeps the stored fan-out equal to the number of *distinct* successors.
///
/// # Example
///
/// ```
/// use stochcdr_fsm::TpmBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TpmBuilder::new(2);
/// b.begin_row(0);
/// b.emit(1, 0.25);
/// b.emit(1, 0.25); // merged with the previous emit
/// b.emit(0, 0.5);
/// b.end_row()?;
/// b.begin_row(1);
/// b.emit(0, 1.0);
/// b.end_row()?;
/// let tpm = b.finish()?;
/// assert_eq!(tpm.get(0, 1), 0.5);
/// assert_eq!(tpm.nnz(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TpmBuilder {
    n: usize,
    coo: CooMatrix,
    /// Scratch for the current row: (successor, probability).
    row: Vec<(usize, f64)>,
    current_row: Option<usize>,
    rows_done: Vec<bool>,
    /// Row-sum tolerance.
    tol: f64,
}

impl TpmBuilder {
    /// Creates a builder for an `n`-state chain.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "chain must have at least one state");
        TpmBuilder {
            n,
            coo: CooMatrix::new(n, n),
            row: Vec::new(),
            current_row: None,
            rows_done: vec![false; n],
            tol: 1e-9,
        }
    }

    /// Overrides the row-sum tolerance (default `1e-9`).
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0`.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        assert!(tol > 0.0, "tolerance must be positive");
        self.tol = tol;
        self
    }

    /// Number of states.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Starts accumulating transitions out of `state`.
    ///
    /// # Panics
    ///
    /// Panics if another row is open or the row was already finished.
    pub fn begin_row(&mut self, state: usize) {
        assert!(self.current_row.is_none(), "previous row not ended");
        assert!(state < self.n, "state {state} out of range");
        assert!(!self.rows_done[state], "row {state} already built");
        self.current_row = Some(state);
        self.row.clear();
    }

    /// Emits one transition of the open row.
    ///
    /// Zero-probability emissions are ignored.
    ///
    /// # Panics
    ///
    /// Panics if no row is open, `next` is out of range, or `prob` is
    /// negative/non-finite.
    pub fn emit(&mut self, next: usize, prob: f64) {
        assert!(self.current_row.is_some(), "no open row");
        assert!(next < self.n, "successor {next} out of range");
        assert!(
            prob.is_finite() && prob >= 0.0,
            "invalid probability {prob}"
        );
        if prob > 0.0 {
            self.row.push((next, prob));
        }
    }

    /// Ends the open row, merging duplicates and validating the row sum.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::InvalidProbability`] if the accumulated mass is
    /// not within tolerance of one.
    pub fn end_row(&mut self) -> Result<()> {
        let state = self.current_row.take().expect("no open row");
        self.row.sort_unstable_by_key(|&(next, _)| next);
        let mut total = 0.0;
        let mut i = 0;
        while i < self.row.len() {
            let next = self.row[i].0;
            let mut p = 0.0;
            while i < self.row.len() && self.row[i].0 == next {
                p += self.row[i].1;
                i += 1;
            }
            total += p;
            self.coo.push(state, next, p);
        }
        if (total - 1.0).abs() > self.tol {
            return Err(FsmError::InvalidProbability(format!(
                "row {state} sums to {total}, expected 1"
            )));
        }
        self.rows_done[state] = true;
        Ok(())
    }

    /// Finishes the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::InvalidProbability`] if any row was never built
    /// (its sum would be zero).
    pub fn finish(self) -> Result<CsrMatrix> {
        assert!(self.current_row.is_none(), "row still open");
        if let Some(missing) = self.rows_done.iter().position(|&d| !d) {
            return Err(FsmError::InvalidProbability(format!(
                "row {missing} was never built"
            )));
        }
        let _span = obs::span("fsm.tpm_finish");
        let csr = self.coo.to_csr();
        obs::event(
            "fsm.tpm_assembled",
            &[("rows", csr.rows().into()), ("nnz", csr.nnz().into())],
        );
        Ok(csr)
    }
}

/// Per-row emission scratch handed to the closure of [`build_rows`].
///
/// Mirrors [`TpmBuilder::emit`]: duplicate successors are merged and
/// zero-probability emissions dropped when the row is finalized.
#[derive(Debug)]
pub struct RowEmitter {
    n: usize,
    row: Vec<(usize, f64)>,
}

impl RowEmitter {
    /// Emits one transition of the current row.
    ///
    /// # Panics
    ///
    /// Panics if `next` is out of range or `prob` is negative/non-finite.
    pub fn emit(&mut self, next: usize, prob: f64) {
        assert!(next < self.n, "successor {next} out of range");
        assert!(
            prob.is_finite() && prob >= 0.0,
            "invalid probability {prob}"
        );
        if prob > 0.0 {
            self.row.push((next, prob));
        }
    }
}

/// Assembles an `n`-state TPM by calling `row_fn(state, emitter)` for every
/// row, in parallel.
///
/// The row closure must be a pure function of the state index: rows are
/// assembled in fixed chunks of [`ROW_CHUNK`] states distributed over the
/// worker pool, then concatenated in state order, so the resulting matrix
/// is byte-identical to a serial [`TpmBuilder`] pass for any thread count.
/// Duplicate successors are merged and row sums validated against `tol`,
/// exactly as [`TpmBuilder::end_row`] does.
///
/// # Errors
///
/// Returns [`FsmError::InvalidProbability`] for the lowest-indexed row
/// whose accumulated mass is not within `tol` of one.
///
/// # Panics
///
/// Panics if `n == 0`, `tol <= 0`, or the closure emits an invalid
/// transition.
pub fn build_rows<F>(n: usize, tol: f64, row_fn: F) -> Result<CsrMatrix>
where
    F: Fn(usize, &mut RowEmitter) + Sync,
{
    assert!(n > 0, "chain must have at least one state");
    assert!(tol > 0.0, "tolerance must be positive");
    let _span = obs::span("fsm.tpm_build_rows");
    let chunks = par::map_chunks(n, ROW_CHUNK, |range| {
        let chunk_t0 = obs::enabled().then(std::time::Instant::now);
        let mut indices: Vec<u32> = Vec::new();
        let mut data: Vec<f64> = Vec::new();
        let mut lens: Vec<usize> = Vec::with_capacity(range.len());
        let mut em = RowEmitter { n, row: Vec::new() };
        for state in range {
            em.row.clear();
            row_fn(state, &mut em);
            em.row.sort_unstable_by_key(|&(next, _)| next);
            let before = indices.len();
            let mut total = 0.0;
            let mut i = 0;
            while i < em.row.len() {
                let next = em.row[i].0;
                let mut p = 0.0;
                while i < em.row.len() && em.row[i].0 == next {
                    p += em.row[i].1;
                    i += 1;
                }
                total += p;
                indices.push(next as u32);
                data.push(p);
            }
            if (total - 1.0).abs() > tol {
                return Err(FsmError::InvalidProbability(format!(
                    "row {state} sums to {total}, expected 1"
                )));
            }
            lens.push(indices.len() - before);
        }
        if let Some(t0) = chunk_t0 {
            obs::histogram("fsm.tpm_row_chunk.ns", t0.elapsed().as_nanos() as f64);
        }
        Ok((indices, data, lens))
    });

    // Chunks arrive in ascending state order, so the first error seen is
    // the lowest-indexed failing row; concatenation preserves row order.
    let mut indptr = Vec::with_capacity(n + 1);
    indptr.push(0usize);
    let mut indices: Vec<u32> = Vec::new();
    let mut data: Vec<f64> = Vec::new();
    for chunk in chunks {
        let (ci, cd, lens) = chunk?;
        for len in lens {
            indptr.push(indptr.last().expect("non-empty") + len);
        }
        indices.extend_from_slice(&ci);
        data.extend_from_slice(&cd);
    }
    let csr = CsrMatrix::from_sorted_parts(n, n, indptr, indices, data)
        .map_err(|e| FsmError::InvalidProbability(format!("assembled TPM malformed: {e}")))?;
    obs::event(
        "fsm.tpm_assembled",
        &[("rows", csr.rows().into()), ("nnz", csr.nnz().into())],
    );
    Ok(csr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_merges() {
        let mut b = TpmBuilder::new(2);
        b.begin_row(0);
        b.emit(0, 0.1);
        b.emit(1, 0.4);
        b.emit(1, 0.5);
        b.end_row().unwrap();
        b.begin_row(1);
        b.emit(0, 1.0);
        b.end_row().unwrap();
        let m = b.finish().unwrap();
        assert_eq!(m.nnz(), 3);
        assert!((m.get(0, 1) - 0.9).abs() < 1e-15);
    }

    #[test]
    fn bad_row_sum_rejected() {
        let mut b = TpmBuilder::new(1);
        b.begin_row(0);
        b.emit(0, 0.5);
        assert!(matches!(b.end_row(), Err(FsmError::InvalidProbability(_))));
    }

    #[test]
    fn missing_row_rejected() {
        let mut b = TpmBuilder::new(2);
        b.begin_row(0);
        b.emit(0, 1.0);
        b.end_row().unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn zero_probability_ignored() {
        let mut b = TpmBuilder::new(1);
        b.begin_row(0);
        b.emit(0, 0.0);
        b.emit(0, 1.0);
        b.end_row().unwrap();
        let m = b.finish().unwrap();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "already built")]
    fn duplicate_row_panics() {
        let mut b = TpmBuilder::new(1);
        b.begin_row(0);
        b.emit(0, 1.0);
        b.end_row().unwrap();
        b.begin_row(0);
    }

    #[test]
    #[should_panic(expected = "not ended")]
    fn nested_rows_panic() {
        let mut b = TpmBuilder::new(2);
        b.begin_row(0);
        b.begin_row(1);
    }

    #[test]
    fn build_rows_matches_serial_builder() {
        // A ring chain with duplicate emissions, crossing the chunk size so
        // several parallel chunks participate.
        let n = 600;
        let row = |state: usize, em: &mut RowEmitter| {
            em.emit((state + 1) % n, 0.3);
            em.emit((state + 1) % n, 0.3); // merged
            em.emit(state, 0.15);
            em.emit((state + n - 1) % n, 0.25);
        };
        let par = build_rows(n, 1e-9, row).unwrap();
        let mut b = TpmBuilder::new(n);
        for s in 0..n {
            b.begin_row(s);
            let mut em = RowEmitter { n, row: Vec::new() };
            row(s, &mut em);
            for &(next, p) in &em.row {
                b.emit(next, p);
            }
            b.end_row().unwrap();
        }
        let serial = b.finish().unwrap();
        assert_eq!(par, serial);
    }

    #[test]
    fn build_rows_reports_lowest_bad_row() {
        let err = build_rows(500, 1e-9, |state, em| {
            // Rows 123 and 321 are short of probability mass.
            let p = if state == 123 || state == 321 {
                0.5
            } else {
                1.0
            };
            em.emit(state, p);
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("row 123"), "{msg}");
    }

    #[test]
    fn build_rows_merges_duplicates() {
        let m = build_rows(2, 1e-9, |s, em| {
            em.emit(1 - s, 0.25);
            em.emit(1 - s, 0.25);
            em.emit(s, 0.5);
        })
        .unwrap();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 1), 0.5);
    }

    #[test]
    fn rows_in_any_order() {
        let mut b = TpmBuilder::new(2);
        b.begin_row(1);
        b.emit(0, 1.0);
        b.end_row().unwrap();
        b.begin_row(0);
        b.emit(1, 1.0);
        b.end_row().unwrap();
        let m = b.finish().unwrap();
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(0, 1), 1.0);
    }
}
