//! Row-oriented transition-probability-matrix builder.

use stochcdr_linalg::{CooMatrix, CsrMatrix};
use stochcdr_obs as obs;

use crate::{FsmError, Result};

/// Accumulates the transition probability matrix of a stochastic FSM one
/// state (row) at a time, merging duplicate successor states.
///
/// Duplicate merging is the workhorse of the paper's model construction:
/// many different noise outcomes map to the *same* successor state (e.g.
/// every `n_w` value that leaves the phase-detector decision unchanged), so
/// accumulating `(successor, probability)` pairs and summing duplicates
/// keeps the stored fan-out equal to the number of *distinct* successors.
///
/// # Example
///
/// ```
/// use stochcdr_fsm::TpmBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TpmBuilder::new(2);
/// b.begin_row(0);
/// b.emit(1, 0.25);
/// b.emit(1, 0.25); // merged with the previous emit
/// b.emit(0, 0.5);
/// b.end_row()?;
/// b.begin_row(1);
/// b.emit(0, 1.0);
/// b.end_row()?;
/// let tpm = b.finish()?;
/// assert_eq!(tpm.get(0, 1), 0.5);
/// assert_eq!(tpm.nnz(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TpmBuilder {
    n: usize,
    coo: CooMatrix,
    /// Scratch for the current row: (successor, probability).
    row: Vec<(usize, f64)>,
    current_row: Option<usize>,
    rows_done: Vec<bool>,
    /// Row-sum tolerance.
    tol: f64,
}

impl TpmBuilder {
    /// Creates a builder for an `n`-state chain.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "chain must have at least one state");
        TpmBuilder {
            n,
            coo: CooMatrix::new(n, n),
            row: Vec::new(),
            current_row: None,
            rows_done: vec![false; n],
            tol: 1e-9,
        }
    }

    /// Overrides the row-sum tolerance (default `1e-9`).
    ///
    /// # Panics
    ///
    /// Panics if `tol <= 0`.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        assert!(tol > 0.0, "tolerance must be positive");
        self.tol = tol;
        self
    }

    /// Number of states.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Starts accumulating transitions out of `state`.
    ///
    /// # Panics
    ///
    /// Panics if another row is open or the row was already finished.
    pub fn begin_row(&mut self, state: usize) {
        assert!(self.current_row.is_none(), "previous row not ended");
        assert!(state < self.n, "state {state} out of range");
        assert!(!self.rows_done[state], "row {state} already built");
        self.current_row = Some(state);
        self.row.clear();
    }

    /// Emits one transition of the open row.
    ///
    /// Zero-probability emissions are ignored.
    ///
    /// # Panics
    ///
    /// Panics if no row is open, `next` is out of range, or `prob` is
    /// negative/non-finite.
    pub fn emit(&mut self, next: usize, prob: f64) {
        assert!(self.current_row.is_some(), "no open row");
        assert!(next < self.n, "successor {next} out of range");
        assert!(prob.is_finite() && prob >= 0.0, "invalid probability {prob}");
        if prob > 0.0 {
            self.row.push((next, prob));
        }
    }

    /// Ends the open row, merging duplicates and validating the row sum.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::InvalidProbability`] if the accumulated mass is
    /// not within tolerance of one.
    pub fn end_row(&mut self) -> Result<()> {
        let state = self.current_row.take().expect("no open row");
        self.row.sort_unstable_by_key(|&(next, _)| next);
        let mut total = 0.0;
        let mut i = 0;
        while i < self.row.len() {
            let next = self.row[i].0;
            let mut p = 0.0;
            while i < self.row.len() && self.row[i].0 == next {
                p += self.row[i].1;
                i += 1;
            }
            total += p;
            self.coo.push(state, next, p);
        }
        if (total - 1.0).abs() > self.tol {
            return Err(FsmError::InvalidProbability(format!(
                "row {state} sums to {total}, expected 1"
            )));
        }
        self.rows_done[state] = true;
        Ok(())
    }

    /// Finishes the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::InvalidProbability`] if any row was never built
    /// (its sum would be zero).
    pub fn finish(self) -> Result<CsrMatrix> {
        assert!(self.current_row.is_none(), "row still open");
        if let Some(missing) = self.rows_done.iter().position(|&d| !d) {
            return Err(FsmError::InvalidProbability(format!(
                "row {missing} was never built"
            )));
        }
        let _span = obs::span("fsm.tpm_finish");
        let csr = self.coo.to_csr();
        obs::event(
            "fsm.tpm_assembled",
            &[("rows", csr.rows().into()), ("nnz", csr.nnz().into())],
        );
        Ok(csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_merges() {
        let mut b = TpmBuilder::new(2);
        b.begin_row(0);
        b.emit(0, 0.1);
        b.emit(1, 0.4);
        b.emit(1, 0.5);
        b.end_row().unwrap();
        b.begin_row(1);
        b.emit(0, 1.0);
        b.end_row().unwrap();
        let m = b.finish().unwrap();
        assert_eq!(m.nnz(), 3);
        assert!((m.get(0, 1) - 0.9).abs() < 1e-15);
    }

    #[test]
    fn bad_row_sum_rejected() {
        let mut b = TpmBuilder::new(1);
        b.begin_row(0);
        b.emit(0, 0.5);
        assert!(matches!(b.end_row(), Err(FsmError::InvalidProbability(_))));
    }

    #[test]
    fn missing_row_rejected() {
        let mut b = TpmBuilder::new(2);
        b.begin_row(0);
        b.emit(0, 1.0);
        b.end_row().unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn zero_probability_ignored() {
        let mut b = TpmBuilder::new(1);
        b.begin_row(0);
        b.emit(0, 0.0);
        b.emit(0, 1.0);
        b.end_row().unwrap();
        let m = b.finish().unwrap();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "already built")]
    fn duplicate_row_panics() {
        let mut b = TpmBuilder::new(1);
        b.begin_row(0);
        b.emit(0, 1.0);
        b.end_row().unwrap();
        b.begin_row(0);
    }

    #[test]
    #[should_panic(expected = "not ended")]
    fn nested_rows_panic() {
        let mut b = TpmBuilder::new(2);
        b.begin_row(0);
        b.begin_row(1);
    }

    #[test]
    fn rows_in_any_order() {
        let mut b = TpmBuilder::new(2);
        b.begin_row(1);
        b.emit(0, 1.0);
        b.end_row().unwrap();
        b.begin_row(0);
        b.emit(1, 1.0);
        b.end_row().unwrap();
        let m = b.finish().unwrap();
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(0, 1), 1.0);
    }
}
