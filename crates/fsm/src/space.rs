//! Mixed-radix indexing of joint component state spaces.

/// A mixed-radix product space: joint states of `k` components with
/// dimensions `dims[0] .. dims[k-1]` are packed into a flat index with the
/// **first component varying slowest** (row-major), matching the Kronecker
/// product convention of `stochcdr_linalg::kron`.
///
/// # Example
///
/// ```
/// use stochcdr_fsm::ProductSpace;
///
/// let space = ProductSpace::new(vec![3, 4]);
/// assert_eq!(space.len(), 12);
/// let flat = space.pack(&[2, 1]);
/// assert_eq!(flat, 2 * 4 + 1);
/// assert_eq!(space.unpack(flat), vec![2, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductSpace {
    dims: Vec<usize>,
    /// Stride of each component in the flat index.
    strides: Vec<usize>,
    len: usize,
}

impl ProductSpace {
    /// Creates a product space from per-component dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, any dimension is zero, or the product
    /// overflows `usize`.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(
            !dims.is_empty(),
            "product space needs at least one component"
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "all dimensions must be positive"
        );
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len() - 1).rev() {
            strides[i] = strides[i + 1]
                .checked_mul(dims[i + 1])
                .expect("state space size overflows usize");
        }
        let len = strides[0]
            .checked_mul(dims[0])
            .expect("state space size overflows usize");
        ProductSpace { dims, strides, len }
    }

    /// Total number of joint states.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` only for the degenerate one-state space.
    pub fn is_empty(&self) -> bool {
        false // by construction len >= 1
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.dims.len()
    }

    /// Per-component dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Packs per-component states into a flat index.
    ///
    /// # Panics
    ///
    /// Panics if `parts.len()` differs from the component count or any part
    /// exceeds its dimension.
    pub fn pack(&self, parts: &[usize]) -> usize {
        assert_eq!(
            parts.len(),
            self.dims.len(),
            "one part per component required"
        );
        let mut flat = 0;
        for ((&p, &d), &s) in parts.iter().zip(&self.dims).zip(&self.strides) {
            assert!(p < d, "component state {p} out of range 0..{d}");
            flat += p * s;
        }
        flat
    }

    /// Unpacks a flat index into per-component states.
    ///
    /// # Panics
    ///
    /// Panics if `flat >= len()`.
    pub fn unpack(&self, flat: usize) -> Vec<usize> {
        let mut parts = vec![0usize; self.dims.len()];
        self.unpack_into(flat, &mut parts);
        parts
    }

    /// Allocation-free unpack.
    ///
    /// # Panics
    ///
    /// Panics if `flat >= len()` or `parts.len()` mismatches.
    pub fn unpack_into(&self, flat: usize, parts: &mut [usize]) {
        assert!(
            flat < self.len,
            "flat index {flat} out of range 0..{}",
            self.len
        );
        assert_eq!(
            parts.len(),
            self.dims.len(),
            "one slot per component required"
        );
        let mut rem = flat;
        for (i, &s) in self.strides.iter().enumerate() {
            parts[i] = rem / s;
            rem %= s;
        }
    }

    /// Extracts one component's state from a flat index without a full
    /// unpack.
    ///
    /// # Panics
    ///
    /// Panics if `component` or `flat` is out of range.
    pub fn component(&self, flat: usize, component: usize) -> usize {
        assert!(flat < self.len, "flat index out of range");
        (flat / self.strides[component]) % self.dims[component]
    }

    /// Returns the flat index with one component replaced.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn with_component(&self, flat: usize, component: usize, value: usize) -> usize {
        assert!(value < self.dims[component], "component value out of range");
        let old = self.component(flat, component);
        let delta = (value as isize - old as isize) * self.strides[component] as isize;
        (flat as isize + delta) as usize
    }

    /// Iterates over all flat indices.
    pub fn iter(&self) -> std::ops::Range<usize> {
        0..self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let s = ProductSpace::new(vec![2, 3, 5]);
        assert_eq!(s.len(), 30);
        for flat in s.iter() {
            let parts = s.unpack(flat);
            assert_eq!(s.pack(&parts), flat);
        }
    }

    #[test]
    fn row_major_ordering() {
        let s = ProductSpace::new(vec![2, 3]);
        assert_eq!(s.pack(&[0, 0]), 0);
        assert_eq!(s.pack(&[0, 2]), 2);
        assert_eq!(s.pack(&[1, 0]), 3);
    }

    #[test]
    fn component_extraction() {
        let s = ProductSpace::new(vec![4, 7, 3]);
        let flat = s.pack(&[2, 5, 1]);
        assert_eq!(s.component(flat, 0), 2);
        assert_eq!(s.component(flat, 1), 5);
        assert_eq!(s.component(flat, 2), 1);
    }

    #[test]
    fn with_component_replaces() {
        let s = ProductSpace::new(vec![4, 7, 3]);
        let flat = s.pack(&[2, 5, 1]);
        let flat2 = s.with_component(flat, 1, 0);
        assert_eq!(s.unpack(flat2), vec![2, 0, 1]);
    }

    #[test]
    fn singleton_space() {
        let s = ProductSpace::new(vec![1]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.pack(&[0]), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pack_rejects_overflowing_part() {
        let s = ProductSpace::new(vec![2, 2]);
        s.pack(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = ProductSpace::new(vec![2, 0]);
    }
}
