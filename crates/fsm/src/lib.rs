//! Finite state machines with stochastic inputs — the paper's modeling
//! formalism.
//!
//! Demir & Feldmann model a CDR circuit as a *network of FSMs whose inputs
//! are functions on Markov-chain state spaces*: "the analyzed circuit is
//! modeled as finite state machines with inputs described as functions on a
//! Markov chain state-space ... the entire system can be modeled by a
//! larger resulting Markov chain". This crate implements that construction:
//!
//! * [`ProductSpace`] — mixed-radix indexing of joint component states,
//! * [`TpmBuilder`] — accumulates per-state transition distributions into a
//!   sparse TPM, merging duplicate successors (the marginalization that
//!   keeps row fan-out small); [`build_rows`] is its parallel counterpart
//!   for row generators that are pure functions of the state index,
//! * [`Stage`] / [`CascadeNetwork`] — a feed-forward network of FSM stages
//!   with private stochastic inputs and full-state feedback (the paper's
//!   Figure 2 topology: data source → phase detector → counter → phase
//!   accumulator, with the phase state fed back to the detector),
//! * [`reach`] — reachable-state-space exploration ("the state set is the
//!   reachable state space of the MC, which is a subset of the Cartesian
//!   product"),
//! * [`KroneckerOp`] — matrix-free product-form representation for
//!   independent components (the "hierarchical Kronecker algebra"
//!   alternative the paper cites via Plateau/Buchholz),
//! * [`TableFsm`] — a small table-driven Mealy machine for tests and ad-hoc
//!   components.
//!
//! # Example: a two-stage network
//!
//! ```
//! use stochcdr_fsm::{CascadeNetwork, Stage, StageOutput};
//!
//! /// A fair coin: emits 0/1 with probability one half; stateless.
//! struct Coin;
//! impl Stage for Coin {
//!     fn state_count(&self) -> usize { 1 }
//!     fn noise(&self) -> Vec<(i64, f64)> { vec![(0, 0.5), (1, 0.5)] }
//!     fn step(&self, _s: usize, noise: i64, _up: i64, _joint: &[usize]) -> StageOutput {
//!         StageOutput { next_state: 0, output: noise }
//!     }
//! }
//!
//! /// Parity accumulator driven by the coin.
//! struct Parity;
//! impl Stage for Parity {
//!     fn state_count(&self) -> usize { 2 }
//!     fn noise(&self) -> Vec<(i64, f64)> { vec![(0, 1.0)] }
//!     fn step(&self, s: usize, _n: i64, up: i64, _joint: &[usize]) -> StageOutput {
//!         StageOutput { next_state: (s + up as usize) % 2, output: 0 }
//!     }
//! }
//!
//! let net = CascadeNetwork::new(vec![Box::new(Coin), Box::new(Parity)]);
//! let tpm = net.build_tpm();
//! assert_eq!(tpm.rows(), 2);
//! assert_eq!(tpm.get(0, 1), 0.5); // parity flips with probability 1/2
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
pub mod cache;
pub mod dot;
mod error;
mod kron_op;
mod mealy;
pub mod reach;
mod space;
mod stage;

pub use builder::{build_rows, RowEmitter, TpmBuilder};
pub use cache::{CacheStats, FactorCache, KeyHasher, KindStats};
pub use error::{FsmError, Result};
pub use kron_op::KroneckerOp;
pub use mealy::TableFsm;
pub use space::ProductSpace;
pub use stage::{CascadeNetwork, Stage, StageOutput};
