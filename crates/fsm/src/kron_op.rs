//! Matrix-free Kronecker-product operator.
//!
//! For *independent* components with transition matrices `A_1 … A_k`, the
//! joint TPM is `A_1 ⊗ … ⊗ A_k`. Materializing it costs `Π nnz(A_i)`
//! storage; applying it as a sequence of per-mode products costs only
//! `Σ_i nnz(A_i) · (states / n_i)` work and no extra storage. This is the
//! representation the paper points to for "solving more complex models"
//! ("hierarchical generalized Kronecker-algebra" — Plateau, Buchholz).

use stochcdr_linalg::{kron, CsrMatrix};
use stochcdr_obs as obs;

/// A lazily-applied Kronecker product of square sparse factors.
///
/// # Example
///
/// ```
/// use stochcdr_fsm::KroneckerOp;
/// use stochcdr_linalg::{CooMatrix, CsrMatrix};
///
/// let mut a = CooMatrix::new(2, 2);
/// a.push(0, 1, 1.0);
/// a.push(1, 0, 1.0);
/// let toggle = a.to_csr();
/// let op = KroneckerOp::new(vec![toggle.clone(), CsrMatrix::identity(3)]);
/// assert_eq!(op.dim(), 6);
/// let y = op.mul_left(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
/// assert_eq!(y[3], 1.0); // (0,0) -> (1,0)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KroneckerOp {
    factors: Vec<CsrMatrix>,
    dim: usize,
}

impl KroneckerOp {
    /// Creates the operator `factors[0] ⊗ factors[1] ⊗ …`.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty or any factor is not square.
    pub fn new(factors: Vec<CsrMatrix>) -> Self {
        assert!(!factors.is_empty(), "need at least one factor");
        let mut dim = 1usize;
        for f in &factors {
            assert_eq!(f.rows(), f.cols(), "factors must be square");
            dim = dim.checked_mul(f.rows()).expect("joint dimension overflows usize");
        }
        KroneckerOp { factors, dim }
    }

    /// Joint dimension (product of factor dimensions).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The factors, outermost (slowest-varying) first.
    pub fn factors(&self) -> &[CsrMatrix] {
        &self.factors
    }

    /// Total stored entries across factors (the compact representation
    /// size; compare with `nnz` of [`materialize`](Self::materialize)).
    pub fn compact_nnz(&self) -> usize {
        self.factors.iter().map(CsrMatrix::nnz).sum()
    }

    /// Computes `y = x (A_1 ⊗ … ⊗ A_k)` without materializing the product.
    ///
    /// Works mode by mode: viewing `x` as a `k`-dimensional tensor, applies
    /// each factor along its own mode.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn mul_left(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "vector length must match joint dimension");
        let mut cur = x.to_vec();
        let mut next = vec![0.0f64; self.dim];
        // outer = product of dims before the mode; inner = after.
        let mut outer = 1usize;
        let mut inner = self.dim;
        for f in &self.factors {
            let n = f.rows();
            inner /= n;
            next.iter_mut().for_each(|v| *v = 0.0);
            // Tensor layout: index = (o * n + i) * inner + r.
            for o in 0..outer {
                let base = o * n * inner;
                for i in 0..n {
                    let row_base = base + i * inner;
                    for (j, a) in f.row(i) {
                        let dst_base = base + j * inner;
                        for r in 0..inner {
                            let v = cur[row_base + r];
                            if v != 0.0 {
                                next[dst_base + r] += v * a;
                            }
                        }
                    }
                }
            }
            std::mem::swap(&mut cur, &mut next);
            outer *= n;
        }
        cur
    }

    /// Materializes the full Kronecker product (for tests and small
    /// systems).
    pub fn materialize(&self) -> CsrMatrix {
        let _span = obs::span("fsm.kron_materialize");
        let m = kron::kron_all(self.factors.iter());
        obs::event(
            "fsm.kron_materialized",
            &[
                ("factors", self.factors.len().into()),
                ("dim", self.dim.into()),
                ("compact_nnz", self.compact_nnz().into()),
                ("nnz", m.nnz().into()),
            ],
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochcdr_linalg::CooMatrix;

    fn stochastic2(a: f64) -> CsrMatrix {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0 - a);
        coo.push(0, 1, a);
        coo.push(1, 0, a);
        coo.push(1, 1, 1.0 - a);
        coo.to_csr()
    }

    fn stochastic3() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 0.5);
        coo.push(1, 0, 0.5);
        coo.push(2, 2, 1.0);
        coo.to_csr()
    }

    #[test]
    fn matches_materialized_product() {
        let op = KroneckerOp::new(vec![stochastic2(0.3), stochastic3(), stochastic2(0.1)]);
        let dense = op.materialize();
        assert_eq!(op.dim(), 12);
        // Compare on a deterministic pseudo-random vector.
        let x: Vec<f64> = (0..12).map(|i| ((i * 37 + 11) % 17) as f64 / 17.0).collect();
        let y1 = op.mul_left(&x);
        let y2 = dense.mul_left(&x);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12, "{y1:?} vs {y2:?}");
        }
    }

    #[test]
    fn single_factor_is_plain_product() {
        let m = stochastic3();
        let op = KroneckerOp::new(vec![m.clone()]);
        let x = [0.2, 0.3, 0.5];
        assert_eq!(op.mul_left(&x), m.mul_left(&x));
    }

    #[test]
    fn compact_representation_is_smaller() {
        let op = KroneckerOp::new(vec![stochastic2(0.3); 10]);
        assert_eq!(op.dim(), 1024);
        assert_eq!(op.compact_nnz(), 40);
        assert_eq!(op.materialize().nnz(), 4usize.pow(10));
    }

    #[test]
    fn stochasticity_preserved() {
        let op = KroneckerOp::new(vec![stochastic2(0.25), stochastic3()]);
        let x = vec![1.0 / 6.0; 6];
        let y = op.mul_left(&x);
        let total: f64 = y.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(y.iter().all(|&v| v >= 0.0));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_factor_rejected() {
        let coo = CooMatrix::new(2, 3);
        let _ = KroneckerOp::new(vec![coo.to_csr()]);
    }
}
