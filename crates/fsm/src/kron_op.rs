//! Matrix-free Kronecker-product operator.
//!
//! For *independent* components with transition matrices `A_1 … A_k`, the
//! joint TPM is `A_1 ⊗ … ⊗ A_k`. Materializing it costs `Π nnz(A_i)`
//! storage; applying it as a sequence of per-mode products costs only
//! `Σ_i nnz(A_i) · (states / n_i)` work and no extra storage. This is the
//! representation the paper points to for "solving more complex models"
//! ("hierarchical generalized Kronecker-algebra" — Plateau, Buchholz).
//!
//! [`KroneckerOp`] implements [`TransitionOp`], so every
//! `StationarySolver` that stays matrix-free in the products (power
//! iteration, weighted Jacobi) runs on it directly — no TPM is ever
//! formed. Row access and the diagonal are served from the factors, so
//! even Jacobi's diagonal extraction stays compact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use stochcdr_linalg::{kron, par, CsrMatrix, TransitionOp};
use stochcdr_obs as obs;

/// A lazily-applied Kronecker product of square sparse factors.
///
/// # Example
///
/// ```
/// use stochcdr_fsm::KroneckerOp;
/// use stochcdr_linalg::{CooMatrix, CsrMatrix};
///
/// let mut a = CooMatrix::new(2, 2);
/// a.push(0, 1, 1.0);
/// a.push(1, 0, 1.0);
/// let toggle = a.to_csr();
/// let op = KroneckerOp::new(vec![toggle.clone(), CsrMatrix::identity(3)]);
/// assert_eq!(op.dim(), 6);
/// let y = op.mul_left(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
/// assert_eq!(y[3], 1.0); // (0,0) -> (1,0)
/// ```
#[derive(Debug)]
pub struct KroneckerOp {
    factors: Vec<CsrMatrix>,
    dim: usize,
    /// `tail[l]` = product of the dimensions of factors after `l`, so the
    /// level-`l` digit of row `r` is `(r / tail[l]) % n_l` — row
    /// enumeration decomposes indices without a per-call digit buffer.
    tail: Vec<usize>,
    /// Transposed-factor twin, built on first use ((A⊗B)ᵀ = Aᵀ⊗Bᵀ).
    transposed: OnceLock<Box<KroneckerOp>>,
    /// Whether this op already emitted a `mem.budget_exceeded` event —
    /// sweep loops retry [`try_materialize`](Self::try_materialize) per
    /// axis point and must not bloat JSONL artifacts with repeats.
    budget_reported: AtomicBool,
    /// Reusable ping-pong buffers for the mode-by-mode apply, so warm
    /// multigrid cycles against the implicit fine grid allocate nothing.
    /// `try_lock` keeps concurrent callers correct: a contended call
    /// falls back to fresh temporaries instead of blocking.
    scratch: Mutex<ApplyScratch>,
}

/// The two `dim`-length work vectors [`KroneckerOp::mul_left_into`] and
/// [`KroneckerOp::mul_right_into`] ping-pong between mode applications.
#[derive(Debug, Default)]
struct ApplyScratch {
    cur: Vec<f64>,
    next: Vec<f64>,
}

impl Clone for KroneckerOp {
    /// Clones factors only; the transpose cache and the budget-report
    /// latch start fresh on the copy.
    fn clone(&self) -> Self {
        KroneckerOp::new(self.factors.clone())
    }
}

impl PartialEq for KroneckerOp {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.factors == other.factors
    }
}

impl KroneckerOp {
    /// Creates the operator `factors[0] ⊗ factors[1] ⊗ …`.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty or any factor is not square.
    pub fn new(factors: Vec<CsrMatrix>) -> Self {
        assert!(!factors.is_empty(), "need at least one factor");
        let mut dim = 1usize;
        for f in &factors {
            assert_eq!(f.rows(), f.cols(), "factors must be square");
            dim = dim
                .checked_mul(f.rows())
                .expect("joint dimension overflows usize");
        }
        let mut tail = vec![1usize; factors.len()];
        for i in (0..factors.len() - 1).rev() {
            tail[i] = tail[i + 1] * factors[i + 1].rows();
        }
        KroneckerOp {
            factors,
            dim,
            tail,
            transposed: OnceLock::new(),
            budget_reported: AtomicBool::new(false),
            scratch: Mutex::new(ApplyScratch::default()),
        }
    }

    /// The shared mode-by-mode apply loop behind both product directions,
    /// with caller-owned ping-pong buffers (grown on first use, reused
    /// thereafter). The arithmetic is identical whichever buffers arrive,
    /// so scratch reuse never changes a bit of the output.
    fn apply_modes(
        &self,
        mode: fn(&CsrMatrix, usize, &[f64], &mut [f64]),
        x: &[f64],
        y: &mut [f64],
        ws: &mut ApplyScratch,
    ) {
        ws.cur.clear();
        ws.cur.extend_from_slice(x);
        ws.next.clear();
        ws.next.resize(self.dim, 0.0);
        let mut inner = self.dim;
        for f in &self.factors {
            inner /= f.rows();
            mode(f, inner, &ws.cur, &mut ws.next);
            std::mem::swap(&mut ws.cur, &mut ws.next);
        }
        y.copy_from_slice(&ws.cur);
    }

    /// Runs `apply_modes` against the op's own scratch when it is free,
    /// or fresh temporaries when another thread holds it.
    fn apply_with_scratch(
        &self,
        mode: fn(&CsrMatrix, usize, &[f64], &mut [f64]),
        x: &[f64],
        y: &mut [f64],
    ) {
        match self.scratch.try_lock() {
            Ok(mut ws) => self.apply_modes(mode, x, y, &mut ws),
            Err(_) => self.apply_modes(mode, x, y, &mut ApplyScratch::default()),
        }
    }

    /// The transposed operator `A_1ᵀ ⊗ … ⊗ A_kᵀ`, built from per-factor
    /// [`CsrMatrix::transpose`] on first use and cached for the lifetime
    /// of this op. Because the CSR transpose is a pure permutation of the
    /// stored values and `(A ⊗ B)ᵀ = Aᵀ ⊗ Bᵀ`, every row of the returned
    /// op multiplies exactly the same scalars in the same order as a
    /// materialize-then-transpose would — bit-identical, at compact cost.
    pub fn transposed(&self) -> &KroneckerOp {
        self.transposed.get_or_init(|| {
            Box::new(KroneckerOp::new(
                self.factors.iter().map(CsrMatrix::transpose).collect(),
            ))
        })
    }

    /// Joint dimension (product of factor dimensions).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The factors, outermost (slowest-varying) first.
    pub fn factors(&self) -> &[CsrMatrix] {
        &self.factors
    }

    /// Total stored entries across factors (the compact representation
    /// size; compare with `nnz` of [`materialize`](Self::materialize)).
    pub fn compact_nnz(&self) -> usize {
        self.factors.iter().map(CsrMatrix::nnz).sum()
    }

    /// Returns a copy of this operator with factor `idx` swapped for
    /// `factor`, sharing nothing else — the cheap way for a parameter
    /// sweep to perturb one component while every other factor (and the
    /// joint dimension) is reused.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range, `factor` is not square, or its
    /// dimension differs from the factor it replaces (the joint space
    /// must not change shape under a sweep).
    pub fn with_factor(&self, idx: usize, factor: CsrMatrix) -> Self {
        assert!(idx < self.factors.len(), "factor index out of range");
        assert_eq!(factor.rows(), factor.cols(), "factors must be square");
        assert_eq!(
            factor.rows(),
            self.factors[idx].rows(),
            "replacement factor must keep the mode dimension"
        );
        let mut factors = self.factors.clone();
        factors[idx] = factor;
        KroneckerOp::new(factors)
    }

    /// Computes `y = x (A_1 ⊗ … ⊗ A_k)` without materializing the product.
    ///
    /// Works mode by mode: viewing `x` as a `k`-dimensional tensor, applies
    /// each factor along its own mode. Each mode application parallelizes
    /// over the outer tensor blocks (the scatter of a factor row stays
    /// inside its own block), with chunk boundaries aligned to blocks so
    /// every output element is accumulated by exactly one worker in serial
    /// order — results are bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn mul_left(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0f64; self.dim];
        TransitionOp::mul_left_into(self, x, &mut y);
        y
    }

    /// Exact nonzero count of the materialized product, `Π nnz(A_i)`
    /// (saturating — a saturated value is far past any budget anyway).
    pub fn materialized_nnz(&self) -> usize {
        self.factors
            .iter()
            .fold(1usize, |acc, f| acc.saturating_mul(f.nnz()))
    }

    /// Estimated heap cost of [`materialize`](Self::materialize) in
    /// bytes: CSR stores one `f64` value and one `usize` column index per
    /// nonzero plus a `dim + 1` row-pointer array.
    pub fn materialize_cost_bytes(&self) -> u64 {
        let per_nnz = (size_of::<f64>() + size_of::<usize>()) as u64;
        let nnz = self.materialized_nnz() as u64;
        nnz.saturating_mul(per_nnz)
            .saturating_add(((self.dim as u64) + 1) * size_of::<usize>() as u64)
    }

    /// Budget-aware [`materialize`](Self::materialize): refuses (returns
    /// `None`) when the estimated product size would push the live heap
    /// past the soft memory budget ([`stochcdr_obs::mem::set_budget`],
    /// `--mem-budget` on the CLI). The first refusal emits a
    /// `mem.budget_exceeded` event; repeat refusals on the same op (sweep
    /// loops retry per axis point) stay silent so artifacts record one
    /// line per op, not one per retry. With no budget set this always
    /// materializes.
    pub fn try_materialize(&self) -> Option<CsrMatrix> {
        let bytes = self.materialize_cost_bytes();
        if self.budget_reported.load(Ordering::Relaxed) {
            // Already reported for this op: check silently.
            if obs::mem::would_exceed(bytes) {
                return None;
            }
        } else if !obs::mem::check_budget("fsm.kron_materialize", bytes) {
            self.budget_reported.store(true, Ordering::Relaxed);
            return None;
        }
        Some(self.materialize())
    }

    /// Materializes the full Kronecker product (for tests and small
    /// systems).
    pub fn materialize(&self) -> CsrMatrix {
        let _span = obs::span("fsm.kron_materialize");
        let m = kron::kron_all(self.factors.iter());
        obs::event(
            "fsm.kron_materialized",
            &[
                ("factors", self.factors.len().into()),
                ("dim", self.dim.into()),
                ("compact_nnz", self.compact_nnz().into()),
                ("nnz", m.nnz().into()),
            ],
        );
        m
    }
}

/// One left-product mode application: `next[(o,·,r)] = cur[(o,·,r)] · f`
/// for every outer index `o` and trailing index `r < inner`.
///
/// Parallel over blocks of `n · inner` elements (one block per outer
/// index); the scatter of each factor row lands inside its own block, so
/// the block partition makes every output element single-writer while
/// preserving the serial accumulation order exactly. Every block performs
/// the identical factor traversal, so the even, block-aligned split is
/// already perfectly balanced — the nnz-weighted `RowPartition` the CSR
/// kernels use would add bookkeeping without moving any work. Dispatches
/// go to the persistent `linalg::par` pool, so a mode product costs a
/// park/unpark hand-off, not a thread spawn.
fn apply_mode_left(f: &CsrMatrix, inner: usize, cur: &[f64], next: &mut [f64]) {
    let n = f.rows();
    let block = n * inner;
    par::for_each_chunk_aligned_mut(next, block, |start, chunk| {
        for (b, out) in chunk.chunks_mut(block).enumerate() {
            let base = start + b * block;
            out.iter_mut().for_each(|v| *v = 0.0);
            for i in 0..n {
                let row_base = base + i * inner;
                for (j, a) in f.row(i) {
                    let dst = j * inner;
                    for r in 0..inner {
                        let v = cur[row_base + r];
                        if v != 0.0 {
                            out[dst + r] += v * a;
                        }
                    }
                }
            }
        }
    });
}

/// One right-product mode application: `next[(o,i,r)] = Σ_j f_ij cur[(o,j,r)]`.
///
/// Pure gather per output block — same block-aligned parallel partition as
/// [`apply_mode_left`].
fn apply_mode_right(f: &CsrMatrix, inner: usize, cur: &[f64], next: &mut [f64]) {
    let n = f.rows();
    let block = n * inner;
    par::for_each_chunk_aligned_mut(next, block, |start, chunk| {
        for (b, out) in chunk.chunks_mut(block).enumerate() {
            let base = start + b * block;
            out.iter_mut().for_each(|v| *v = 0.0);
            for i in 0..n {
                let dst = i * inner;
                for (j, a) in f.row(i) {
                    let src = base + j * inner;
                    for r in 0..inner {
                        let v = cur[src + r];
                        if v != 0.0 {
                            out[dst + r] += a * v;
                        }
                    }
                }
            }
        }
    });
}

/// Enumerates the row entries of the Kronecker product in ascending column
/// order: lexicographic recursion over factor-row entries, outermost
/// factor slowest-varying. The level-`l` row digit is recovered from
/// `row` and the precomputed trailing strides, so the walk is
/// allocation-free (warm implicit multigrid cycles gather through here).
fn row_product(
    factors: &[CsrMatrix],
    tail: &[usize],
    row: usize,
    level: usize,
    col: usize,
    val: f64,
    f: &mut dyn FnMut(usize, f64),
) {
    if level == factors.len() {
        f(col, val);
        return;
    }
    let fac = &factors[level];
    let digit = (row / tail[level]) % fac.rows();
    for (j, a) in fac.row(digit) {
        if a != 0.0 {
            row_product(
                factors,
                tail,
                row,
                level + 1,
                col * fac.cols() + j,
                val * a,
                f,
            );
        }
    }
}

impl TransitionOp for KroneckerOp {
    fn rows(&self) -> usize {
        self.dim
    }

    fn cols(&self) -> usize {
        self.dim
    }

    /// The compact representation size `Σ nnz(A_i)`, not the nnz of the
    /// materialized product.
    fn nnz(&self) -> usize {
        self.compact_nnz()
    }

    /// The mode-by-mode apply touches factor `k` once per fiber — `dim /
    /// n_k` independent length-`n_k` products of `nnz_k` multiply-adds
    /// each — so the real work is `Σ_k (dim / n_k) · nnz_k`, far above
    /// the compact `Σ_k nnz_k` that [`nnz`](TransitionOp::nnz) reports.
    fn apply_cost(&self) -> usize {
        self.factors
            .iter()
            .map(|f| (self.dim / f.rows()) * f.nnz())
            .sum()
    }

    fn mul_left_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            x.len(),
            self.dim,
            "vector length must match joint dimension"
        );
        assert_eq!(
            y.len(),
            self.dim,
            "output length must match joint dimension"
        );
        let _span = obs::enabled().then(|| obs::span("kron.apply"));
        self.apply_with_scratch(apply_mode_left, x, y);
    }

    fn mul_right_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            x.len(),
            self.dim,
            "vector length must match joint dimension"
        );
        assert_eq!(
            y.len(),
            self.dim,
            "output length must match joint dimension"
        );
        let _span = obs::enabled().then(|| obs::span("kron.apply"));
        self.apply_with_scratch(apply_mode_right, x, y);
    }

    fn for_each_in_row(&self, row: usize, f: &mut dyn FnMut(usize, f64)) {
        assert!(row < self.dim, "row {row} out of range");
        row_product(&self.factors, &self.tail, row, 0, 0, 1.0, f);
    }

    /// Diagonal of the product written straight into `out`: successive
    /// outer products of the factor diagonals, expanded in place from the
    /// back of the buffer — `O(dim)` output, no `O(dim)` temporaries,
    /// never touches off-diagonal entries. (The write index `i·m + j` is
    /// always ≥ the read index `i`, so sources survive until consumed.)
    fn diagonal_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "diagonal buffer length must match");
        out[0] = 1.0;
        let mut len = 1usize;
        for f in &self.factors {
            let fd = f.diagonal();
            let m = fd.len();
            for i in (0..len).rev() {
                let a = out[i];
                for (j, &b) in fd.iter().enumerate().rev() {
                    out[i * m + j] = a * b;
                }
            }
            len *= m;
        }
    }

    /// The cached transposed-factor twin (see
    /// [`KroneckerOp::transposed`]) — lets transpose-based smoothers run
    /// on the implicit path without materializing anything.
    fn transpose_op(&self) -> Option<&dyn TransitionOp> {
        Some(self.transposed())
    }

    fn materialize_csr(&self) -> CsrMatrix {
        self.materialize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochcdr_linalg::CooMatrix;

    fn stochastic2(a: f64) -> CsrMatrix {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0 - a);
        coo.push(0, 1, a);
        coo.push(1, 0, a);
        coo.push(1, 1, 1.0 - a);
        coo.to_csr()
    }

    fn stochastic3() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 0.5);
        coo.push(1, 0, 0.5);
        coo.push(2, 2, 1.0);
        coo.to_csr()
    }

    #[test]
    fn with_factor_swaps_one_mode() {
        let op = KroneckerOp::new(vec![stochastic2(0.3), stochastic3(), stochastic2(0.1)]);
        let swapped = op.with_factor(2, stochastic2(0.4));
        let direct = KroneckerOp::new(vec![stochastic2(0.3), stochastic3(), stochastic2(0.4)]);
        assert_eq!(swapped.dim(), op.dim());
        let x: Vec<f64> = (0..12).map(|i| ((i * 31 + 5) % 13) as f64 / 13.0).collect();
        assert_eq!(swapped.mul_left(&x), direct.mul_left(&x));
        // Untouched factors are reused verbatim.
        assert_eq!(swapped.factors()[0].nnz(), op.factors()[0].nnz());
    }

    #[test]
    #[should_panic(expected = "mode dimension")]
    fn with_factor_rejects_dimension_change() {
        let op = KroneckerOp::new(vec![stochastic2(0.3), stochastic3()]);
        let _ = op.with_factor(0, stochastic3());
    }

    #[test]
    fn matches_materialized_product() {
        let op = KroneckerOp::new(vec![stochastic2(0.3), stochastic3(), stochastic2(0.1)]);
        let dense = op.materialize();
        assert_eq!(op.dim(), 12);
        // Compare on a deterministic pseudo-random vector.
        let x: Vec<f64> = (0..12)
            .map(|i| ((i * 37 + 11) % 17) as f64 / 17.0)
            .collect();
        let y1 = op.mul_left(&x);
        let y2 = dense.mul_left(&x);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12, "{y1:?} vs {y2:?}");
        }
    }

    #[test]
    fn right_product_matches_materialized() {
        let op = KroneckerOp::new(vec![stochastic2(0.3), stochastic3(), stochastic2(0.1)]);
        let m = op.materialize();
        let x: Vec<f64> = (0..12).map(|i| ((i * 53 + 7) % 19) as f64 / 19.0).collect();
        let y1 = op.mul_right(&x);
        let y2 = m.mul_right(&x);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12, "{y1:?} vs {y2:?}");
        }
    }

    #[test]
    fn row_access_matches_materialized() {
        let op = KroneckerOp::new(vec![stochastic2(0.25), stochastic3()]);
        let m = op.materialize();
        for row in 0..op.dim() {
            let mut got: Vec<(usize, f64)> = Vec::new();
            op.for_each_in_row(row, &mut |c, v| got.push((c, v)));
            let want: Vec<(usize, f64)> = m.row(row).collect();
            assert_eq!(got.len(), want.len(), "row {row}");
            for ((gc, gv), (wc, wv)) in got.iter().zip(&want) {
                assert_eq!(gc, wc, "row {row}");
                assert!((gv - wv).abs() < 1e-15, "row {row}");
            }
            // Ascending column order is part of the TransitionOp contract.
            assert!(
                got.windows(2).all(|w| w[0].0 < w[1].0),
                "row {row} unsorted"
            );
        }
    }

    #[test]
    fn diagonal_matches_materialized() {
        let op = KroneckerOp::new(vec![stochastic2(0.25), stochastic3(), stochastic2(0.4)]);
        assert_eq!(TransitionOp::diagonal(&op), op.materialize().diagonal());
    }

    #[test]
    fn diagonal_into_is_bitwise_in_place() {
        let op = KroneckerOp::new(vec![stochastic2(0.25), stochastic3(), stochastic2(0.4)]);
        let mut buf = vec![f64::NAN; op.dim()];
        op.diagonal_into(&mut buf);
        let want = op.materialize().diagonal();
        assert_eq!(buf.len(), want.len());
        for (a, b) in buf.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn transposed_twin_is_bitwise_the_transpose() {
        let op = KroneckerOp::new(vec![stochastic2(0.3), stochastic3(), stochastic2(0.1)]);
        let tr = op.transposed();
        let want = op.materialize().transpose();
        for row in 0..op.dim() {
            let mut got: Vec<(usize, f64)> = Vec::new();
            tr.for_each_in_row(row, &mut |c, v| got.push((c, v)));
            let want_row: Vec<(usize, f64)> = want.row(row).collect();
            assert_eq!(got.len(), want_row.len(), "row {row}");
            for ((gc, gv), (wc, wv)) in got.iter().zip(&want_row) {
                assert_eq!(gc, wc, "row {row}");
                assert_eq!(gv.to_bits(), wv.to_bits(), "row {row}");
            }
        }
        // Cached: the same allocation is returned on repeat calls, and
        // the TransitionOp hook serves it.
        assert!(std::ptr::eq(tr, op.transposed()));
        assert!(TransitionOp::transpose_op(&op).is_some());
    }

    #[test]
    fn single_factor_is_plain_product() {
        let m = stochastic3();
        let op = KroneckerOp::new(vec![m.clone()]);
        let x = [0.2, 0.3, 0.5];
        assert_eq!(op.mul_left(&x), m.mul_left(&x));
    }

    #[test]
    fn compact_representation_is_smaller() {
        let op = KroneckerOp::new(vec![stochastic2(0.3); 10]);
        assert_eq!(op.dim(), 1024);
        assert_eq!(op.compact_nnz(), 40);
        assert_eq!(op.materialize().nnz(), 4usize.pow(10));
    }

    #[test]
    fn stochasticity_preserved() {
        let op = KroneckerOp::new(vec![stochastic2(0.25), stochastic3()]);
        let x = vec![1.0 / 6.0; 6];
        let y = op.mul_left(&x);
        let total: f64 = y.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(y.iter().all(|&v| v >= 0.0));
    }

    /// Serializes tests that mutate the process-global soft budget or
    /// install an obs sink.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn try_materialize_honors_the_soft_budget() {
        use stochcdr_obs::mem;
        let _g = OBS_LOCK.lock().unwrap();
        let op = KroneckerOp::new(vec![stochastic2(0.3); 10]);
        assert_eq!(op.materialized_nnz(), 4usize.pow(10));
        assert!(op.materialize_cost_bytes() > 4u64.pow(10) * 16);

        // ~16 MiB estimated; a 1 MiB budget must refuse it, no budget
        // (or a generous one) must not.
        mem::set_budget(Some(1 << 20));
        assert!(op.try_materialize().is_none(), "oversized product built");
        mem::set_budget(None);
        let m = op.try_materialize().expect("no budget, must materialize");
        assert_eq!(m.nnz(), op.materialized_nnz());
    }

    #[test]
    fn budget_refusal_reports_once_per_op() {
        use stochcdr_obs as obs;
        use stochcdr_obs::mem;
        let _g = OBS_LOCK.lock().unwrap();
        let _ = obs::uninstall();
        let (sink, buf) = obs::JsonLinesSink::to_shared_buffer();
        obs::install(Box::new(sink));
        mem::set_budget(Some(1 << 20));
        let op = KroneckerOp::new(vec![stochastic2(0.3); 10]);
        // A sweep loop retries per axis point; only the first refusal may
        // emit the event.
        for _ in 0..5 {
            assert!(op.try_materialize().is_none());
        }
        // A fresh clone is a fresh op: it reports once more.
        let clone = op.clone();
        assert!(clone.try_materialize().is_none());
        mem::set_budget(None);
        obs::uninstall();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let hits = text
            .lines()
            .filter(|l| l.contains("mem.budget_exceeded"))
            .count();
        assert_eq!(hits, 2, "one event per op, got:\n{text}");
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_factor_rejected() {
        let coo = CooMatrix::new(2, 3);
        let _ = KroneckerOp::new(vec![coo.to_csr()]);
    }
}
