//! Graphviz (dot) export of FSMs and chain structure.
//!
//! Renders [`TableFsm`] machines and small transition matrices as `dot`
//! digraphs for documentation and design review — the textual counterpart
//! of the paper's Figure 2 block diagram.

use std::fmt::Write as _;

use stochcdr_linalg::CsrMatrix;

use crate::TableFsm;

/// Renders a [`TableFsm`] as a Graphviz digraph.
///
/// Each edge is labeled `input/output`. Parallel edges between the same
/// state pair are merged into one multi-label edge to keep diagrams
/// readable.
pub fn table_fsm_to_dot(fsm: &TableFsm, name: &str) -> String {
    let mut edges: std::collections::BTreeMap<(usize, usize), Vec<String>> =
        std::collections::BTreeMap::new();
    for state in 0..fsm.state_count() {
        for input in 0..fsm.input_count() {
            let next = fsm.next(state, input);
            let label = format!("{input}/{}", fsm.output(state, input));
            edges.entry((state, next)).or_default().push(label);
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    for s in 0..fsm.state_count() {
        let _ = writeln!(out, "  s{s} [label=\"{s}\"];");
    }
    for ((from, to), labels) in edges {
        let _ = writeln!(
            out,
            "  s{from} -> s{to} [label=\"{}\"];",
            labels.join("\\n")
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a (small) transition matrix as a weighted digraph; edge labels
/// are probabilities with `digits` decimals. Intended for chains of at
/// most a few dozen states.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn chain_to_dot(p: &CsrMatrix, name: &str, digits: usize) -> String {
    assert_eq!(
        p.rows(),
        p.cols(),
        "chain rendering requires a square matrix"
    );
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  node [shape=circle];");
    for (r, c, v) in p.iter() {
        let _ = writeln!(out, "  s{r} -> s{c} [label=\"{v:.digits$}\"];");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Keeps only identifier-safe characters for the graph name.
fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g{cleaned}")
    } else if cleaned.is_empty() {
        "g".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochcdr_linalg::CooMatrix;

    #[test]
    fn table_fsm_renders_all_edges() {
        let fsm = TableFsm::new(2, 2, vec![0, 1, 1, 0], vec![0, 0, 1, 1]).unwrap();
        let dot = table_fsm_to_dot(&fsm, "toggle");
        assert!(dot.starts_with("digraph toggle {"));
        assert!(dot.contains("s0 -> s1"));
        assert!(dot.contains("s1 -> s0"));
        // Self-loops from input 0.
        assert!(dot.contains("s0 -> s0"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn parallel_edges_are_merged() {
        // Both inputs lead 0 -> 0: one edge with two labels.
        let fsm = TableFsm::new(1, 2, vec![0, 0], vec![5, 7]).unwrap();
        let dot = table_fsm_to_dot(&fsm, "loop");
        assert_eq!(dot.matches("s0 -> s0").count(), 1);
        assert!(dot.contains("0/5"));
        assert!(dot.contains("1/7"));
    }

    #[test]
    fn chain_renders_probabilities() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 0.25);
        coo.push(1, 0, 1.0);
        coo.push(1, 1, 0.0); // dropped
        let dot = chain_to_dot(&coo.to_csr(), "walk", 2);
        assert!(dot.contains("s0 -> s1 [label=\"0.25\"]"));
        assert!(dot.contains("s1 -> s0 [label=\"1.00\"]"));
    }

    #[test]
    fn names_are_sanitized() {
        let fsm = TableFsm::new(1, 1, vec![0], vec![0]).unwrap();
        assert!(table_fsm_to_dot(&fsm, "my fsm!").starts_with("digraph my_fsm_ {"));
        assert!(table_fsm_to_dot(&fsm, "2fast").starts_with("digraph g2fast {"));
        assert!(table_fsm_to_dot(&fsm, "").starts_with("digraph g {"));
    }
}
