//! Keyed cache of sweep-invariant assembly factors.
//!
//! Parameter sweeps perturb one knob at a time, but most of the work of
//! building a CDR chain — data-source branches, the discretized `n_w`
//! decision tails, the drift distribution, the row skeleton of the TPM —
//! depends on only a *subset* of the configuration. A [`FactorCache`]
//! memoizes those factors across sweep points: each factor kind is stored
//! under an explicit 64-bit key derived (via [`KeyHasher`]) from exactly
//! the parameters it depends on, so a sweep axis that only perturbs one
//! factor leaves every other entry warm.
//!
//! Entries are built **under the cache lock**: a factor is computed at
//! most once per key, and the hit/miss statistics are deterministic
//! regardless of how many sweep workers race on the cache. Factor builds
//! are cheap relative to stationary solves, so the serialization is
//! harmless — and it is what makes the cache-invalidation tests exact.
//!
//! Every access increments the `fsm.factor_cache.hit` /
//! `fsm.factor_cache.miss` observability counters (plus a per-kind
//! variant when a sink is installed), and [`FactorCache::stats`] exposes
//! the same numbers programmatically.

use std::any::{Any, TypeId};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use stochcdr_obs as obs;

/// FNV-1a 64-bit streaming hasher for cache keys.
///
/// Zero-dependency and stable across runs and platforms (unlike
/// `DefaultHasher`, whose output is randomized per process), which keeps
/// cache behavior — and the determinism tests built on it — reproducible.
#[derive(Debug, Clone, Copy)]
pub struct KeyHasher(u64);

impl KeyHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Self {
        KeyHasher(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Absorbs an unsigned integer.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs a `usize` (widened to 64 bits).
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Absorbs a signed integer.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.u64(v as u64)
    }

    /// Absorbs a float by its exact bit pattern (no tolerance: two
    /// configs hash equal iff the parameter bits are equal).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Absorbs a boolean.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u64(u64::from(v))
    }

    /// Absorbs a string (length-prefixed, so `("ab","c")` and
    /// `("a","bc")` hash differently).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.usize(s.len()).bytes(s.as_bytes())
    }

    /// The accumulated 64-bit key.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher::new()
    }
}

/// Hit/miss counts for one factor kind.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KindStats {
    /// Accesses served from the cache.
    pub hits: u64,
    /// Accesses that had to build the factor.
    pub misses: u64,
}

impl KindStats {
    /// Total accesses for this kind.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A snapshot of cache effectiveness, overall and per factor kind.
#[derive(Debug, Default, Clone)]
pub struct CacheStats {
    /// Total cache hits.
    pub hits: u64,
    /// Total cache misses (= factor builds).
    pub misses: u64,
    /// Live entries currently stored.
    pub entries: usize,
    /// Per-kind breakdown, keyed by the `kind` string passed to
    /// [`FactorCache::get_or_build`].
    pub by_kind: BTreeMap<String, KindStats>,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of accesses served from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type Entry = Arc<dyn Any + Send + Sync>;

#[derive(Default)]
struct Inner {
    map: HashMap<(&'static str, TypeId, u64), Entry>,
    by_kind: BTreeMap<&'static str, KindStats>,
}

/// A concurrent, typed, keyed store of immutable factors.
///
/// Keys are `(kind, value type, 64-bit parameter hash)`; the stored
/// value is shared out as an `Arc<T>`. See the module docs for the
/// build-under-lock determinism rationale.
#[derive(Default)]
pub struct FactorCache {
    inner: Mutex<Inner>,
}

impl FactorCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        FactorCache::default()
    }

    /// Returns the cached factor for `(kind, key)`, building it with
    /// `build` on the first access.
    ///
    /// `kind` names the factor family (e.g. `"acc.nr"`) and scopes both
    /// the statistics and the key space; `key` must encode every
    /// parameter the factor depends on (use [`KeyHasher`]).
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking builder.
    pub fn get_or_build<T, F>(&self, kind: &'static str, key: u64, build: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let mut inner = self.inner.lock().expect("factor cache poisoned");
        let full_key = (kind, TypeId::of::<T>(), key);
        if let Some(entry) = inner.map.get(&full_key) {
            let arc = Arc::clone(entry)
                .downcast::<T>()
                .expect("type-indexed entry");
            inner.by_kind.entry(kind).or_default().hits += 1;
            obs::counter("fsm.factor_cache.hit", 1);
            if obs::enabled() {
                obs::counter(&format!("fsm.factor_cache.hit.{kind}"), 1);
            }
            return arc;
        }
        let value: Arc<T> = Arc::new(build());
        inner.map.insert(full_key, value.clone() as Entry);
        inner.by_kind.entry(kind).or_default().misses += 1;
        obs::counter("fsm.factor_cache.miss", 1);
        if obs::enabled() {
            obs::counter(&format!("fsm.factor_cache.miss.{kind}"), 1);
        }
        value
    }

    /// Snapshots the hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("factor cache poisoned");
        let mut stats = CacheStats {
            entries: inner.map.len(),
            ..CacheStats::default()
        };
        for (&kind, &ks) in &inner.by_kind {
            stats.hits += ks.hits;
            stats.misses += ks.misses;
            stats.by_kind.insert(kind.to_string(), ks);
        }
        stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("factor cache poisoned").map.len()
    }

    /// True when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry and resets the statistics.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("factor cache poisoned");
        inner.map.clear();
        inner.by_kind.clear();
    }
}

impl std::fmt::Debug for FactorCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("FactorCache")
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn builds_once_per_key() {
        let cache = FactorCache::new();
        let builds = AtomicU64::new(0);
        for _ in 0..3 {
            let v = cache.get_or_build("k", 7, || {
                builds.fetch_add(1, Ordering::Relaxed);
                vec![1.0f64, 2.0]
            });
            assert_eq!(*v, vec![1.0, 2.0]);
        }
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
        assert_eq!(stats.by_kind["k"], KindStats { hits: 2, misses: 1 });
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn distinct_keys_kinds_and_types_do_not_collide() {
        let cache = FactorCache::new();
        let a = cache.get_or_build("k", 1, || 10u64);
        let b = cache.get_or_build("k", 2, || 20u64);
        let c = cache.get_or_build("other", 1, || 30u64);
        let d = cache.get_or_build::<i64, _>("k", 1, || -1);
        assert_eq!((*a, *b, *c, *d), (10, 20, 30, -1));
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = FactorCache::new();
        let _ = cache.get_or_build("k", 1, || 1u32);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().accesses(), 0);
    }

    #[test]
    fn key_hasher_is_stable_and_injective_enough() {
        let mut h = KeyHasher::new();
        h.u64(1).f64(0.5).str("abc").bool(true).i64(-3);
        let k1 = h.finish();
        let mut h = KeyHasher::new();
        h.u64(1).f64(0.5).str("abc").bool(true).i64(-3);
        assert_eq!(k1, h.finish(), "same input, same key");
        let mut h = KeyHasher::new();
        h.u64(1).f64(0.5).str("ab").str("c").bool(true).i64(-3);
        assert_ne!(k1, h.finish(), "length-prefixed strings");
        // FNV of the empty input is the offset basis.
        assert_eq!(KeyHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn shared_across_threads() {
        let cache = std::sync::Arc::new(FactorCache::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || *cache.get_or_build("t", 9, || 42u64))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "built exactly once");
        assert_eq!(stats.hits, 3);
    }
}
