//! Error type for FSM-network construction.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, FsmError>;

/// Error raised while assembling an FSM network or its Markov chain.
#[derive(Debug, Clone, PartialEq)]
pub enum FsmError {
    /// A component declared an empty state space or empty noise support.
    EmptyComponent(String),
    /// A probability was negative, non-finite, or a pmf did not sum to one.
    InvalidProbability(String),
    /// A transition referenced a state outside the declared space.
    StateOutOfRange {
        /// The offending state index.
        state: usize,
        /// The declared state count.
        count: usize,
    },
    /// The reachable state space was empty (no initial states given).
    NoInitialStates,
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::EmptyComponent(msg) => write!(f, "empty component: {msg}"),
            FsmError::InvalidProbability(msg) => write!(f, "invalid probability: {msg}"),
            FsmError::StateOutOfRange { state, count } => {
                write!(f, "state {state} out of range for {count}-state machine")
            }
            FsmError::NoInitialStates => write!(f, "no initial states given"),
        }
    }
}

impl std::error::Error for FsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FsmError::StateOutOfRange { state: 9, count: 4 };
        assert!(e.to_string().contains('9'));
    }
}
