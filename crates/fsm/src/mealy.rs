//! Table-driven Mealy machines.

use crate::{FsmError, Result};

/// A deterministic Mealy machine defined by explicit transition and output
/// tables over a finite input alphabet.
///
/// Hardware phase detectors and loop filters are "relatively simple state
/// machines" (they run at full line rate); a transition table is often the
/// most faithful way to capture a gate-level implementation. `TableFsm`
/// implements [`crate::Stage`]-compatible stepping and is convenient for
/// tests and custom components.
///
/// # Example
///
/// ```
/// use stochcdr_fsm::TableFsm;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 2-state toggle: input 1 flips the state, output = old state.
/// let fsm = TableFsm::new(
///     2,
///     2,
///     vec![0, 1, 1, 0],  // next[state * inputs + input]
///     vec![0, 0, 1, 1],  // out[state * inputs + input]
/// )?;
/// assert_eq!(fsm.next(0, 1), 1);
/// assert_eq!(fsm.output(1, 0), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableFsm {
    states: usize,
    inputs: usize,
    next: Vec<usize>,
    out: Vec<i64>,
}

impl TableFsm {
    /// Creates a machine from row-major tables indexed by
    /// `state * inputs + input`.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::EmptyComponent`] for zero states/inputs, or
    /// [`FsmError::StateOutOfRange`] if a next-state entry is invalid.
    pub fn new(states: usize, inputs: usize, next: Vec<usize>, out: Vec<i64>) -> Result<Self> {
        if states == 0 || inputs == 0 {
            return Err(FsmError::EmptyComponent(format!(
                "{states} states x {inputs} inputs"
            )));
        }
        if next.len() != states * inputs || out.len() != states * inputs {
            return Err(FsmError::EmptyComponent(format!(
                "table sizes {} / {} != {}",
                next.len(),
                out.len(),
                states * inputs
            )));
        }
        if let Some(&bad) = next.iter().find(|&&s| s >= states) {
            return Err(FsmError::StateOutOfRange {
                state: bad,
                count: states,
            });
        }
        Ok(TableFsm {
            states,
            inputs,
            next,
            out,
        })
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states
    }

    /// Size of the input alphabet.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// Next state for `(state, input)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `input` is out of range.
    pub fn next(&self, state: usize, input: usize) -> usize {
        assert!(
            state < self.states && input < self.inputs,
            "index out of range"
        );
        self.next[state * self.inputs + input]
    }

    /// Output symbol for `(state, input)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `input` is out of range.
    pub fn output(&self, state: usize, input: usize) -> i64 {
        assert!(
            state < self.states && input < self.inputs,
            "index out of range"
        );
        self.out[state * self.inputs + input]
    }

    /// Runs the machine over an input sequence from `start`, returning the
    /// final state and the emitted outputs.
    ///
    /// # Panics
    ///
    /// Panics if `start` or any input is out of range.
    pub fn run(&self, start: usize, inputs: impl IntoIterator<Item = usize>) -> (usize, Vec<i64>) {
        let mut state = start;
        let mut outs = Vec::new();
        for i in inputs {
            outs.push(self.output(state, i));
            state = self.next(state, i);
        }
        (state, outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle() -> TableFsm {
        TableFsm::new(2, 2, vec![0, 1, 1, 0], vec![0, 0, 1, 1]).unwrap()
    }

    #[test]
    fn construction_validated() {
        assert!(TableFsm::new(0, 1, vec![], vec![]).is_err());
        assert!(TableFsm::new(1, 1, vec![0, 0], vec![0]).is_err());
        assert!(matches!(
            TableFsm::new(2, 1, vec![0, 5], vec![0, 0]),
            Err(FsmError::StateOutOfRange { state: 5, .. })
        ));
    }

    #[test]
    fn stepping() {
        let f = toggle();
        assert_eq!(f.next(0, 0), 0);
        assert_eq!(f.next(0, 1), 1);
        assert_eq!(f.next(1, 1), 0);
        assert_eq!(f.output(1, 1), 1);
    }

    #[test]
    fn run_sequence() {
        let f = toggle();
        // Trace: (0,1)→out 0, state 1; (1,1)→out 1, state 0;
        //        (0,0)→out 0, state 0; (0,1)→out 0, state 1.
        let (end, outs) = f.run(0, [1, 1, 0, 1]);
        assert_eq!(end, 1);
        assert_eq!(outs, vec![0, 1, 0, 0]);
    }
}
