//! Feed-forward FSM networks with stochastic inputs and state feedback.
//!
//! This is the paper's Figure-2 topology as a reusable abstraction: a
//! cascade of FSM stages where each stage sees (a) its own state, (b) a
//! private stochastic input, (c) the output of the upstream stage, and
//! (d) the *previous* joint state of the whole network (for feedback loops
//! such as the phase error feeding the phase detector).

use stochcdr_linalg::CsrMatrix;

use crate::{ProductSpace, Result, TpmBuilder};

/// The result of advancing one stage for one symbol interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageOutput {
    /// The stage's next state.
    pub next_state: usize,
    /// The value presented to the next stage downstream.
    pub output: i64,
}

/// One FSM stage of a [`CascadeNetwork`].
///
/// Stages advance synchronously, once per symbol interval. A stage's
/// transition may depend on the previous joint state of every stage (via
/// `joint`), which is how feedback loops are expressed without breaking the
/// forward evaluation order.
pub trait Stage {
    /// Number of states of this stage's FSM.
    fn state_count(&self) -> usize;

    /// Probability mass function of this stage's private stochastic input.
    ///
    /// Return `vec![(0, 1.0)]` for a deterministic stage. Probabilities
    /// must be positive and sum to one.
    fn noise(&self) -> Vec<(i64, f64)>;

    /// Advances the stage: current own `state`, drawn `noise` value, the
    /// upstream stage's `upstream` output (0 for the first stage), and the
    /// previous joint state of all stages.
    fn step(&self, state: usize, noise: i64, upstream: i64, joint: &[usize]) -> StageOutput;

    /// Human-readable stage name for diagnostics.
    fn name(&self) -> &str {
        "stage"
    }
}

/// A synchronous cascade of FSM [`Stage`]s, convertible into the transition
/// probability matrix of the joint Markov chain.
///
/// Per symbol interval the network draws every stage's private noise
/// independently, then evaluates stages in order, feeding each stage's
/// output downstream. The joint state is the tuple of stage states, packed
/// by [`ProductSpace`] (first stage varies slowest).
pub struct CascadeNetwork {
    stages: Vec<Box<dyn Stage>>,
    space: ProductSpace,
}

impl std::fmt::Debug for CascadeNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CascadeNetwork")
            .field(
                "stages",
                &self
                    .stages
                    .iter()
                    .map(|s| s.name().to_owned())
                    .collect::<Vec<_>>(),
            )
            .field("joint_states", &self.space.len())
            .finish()
    }
}

impl CascadeNetwork {
    /// Builds a network from its stages, in upstream-to-downstream order.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty, any stage has zero states, or a stage's
    /// noise pmf is invalid (empty, negative mass, or sum ≠ 1 within 1e-9).
    pub fn new(stages: Vec<Box<dyn Stage>>) -> Self {
        assert!(!stages.is_empty(), "network needs at least one stage");
        for s in &stages {
            assert!(s.state_count() > 0, "stage '{}' has no states", s.name());
            let pmf = s.noise();
            assert!(!pmf.is_empty(), "stage '{}' has empty noise pmf", s.name());
            let total: f64 = pmf.iter().map(|&(_, p)| p).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "stage '{}' noise pmf sums to {total}",
                s.name()
            );
            assert!(
                pmf.iter().all(|&(_, p)| p > 0.0 && p.is_finite()),
                "stage '{}' noise pmf has non-positive mass",
                s.name()
            );
        }
        let space = ProductSpace::new(stages.iter().map(|s| s.state_count()).collect());
        CascadeNetwork { stages, space }
    }

    /// The joint state space.
    pub fn space(&self) -> &ProductSpace {
        &self.space
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Enumerates the joint successors of `joint` (per-stage states) with
    /// their probabilities, invoking `emit(next_parts, prob)` once per
    /// noise combination. Duplicate successors are *not* merged here —
    /// that is [`TpmBuilder`]'s job.
    pub fn successors(&self, joint: &[usize], mut emit: impl FnMut(&[usize], f64)) {
        let pmfs: Vec<Vec<(i64, f64)>> = self.stages.iter().map(|s| s.noise()).collect();
        let k = self.stages.len();
        let mut choice = vec![0usize; k];
        let mut next = vec![0usize; k];
        loop {
            // Evaluate the cascade for this noise combination.
            let mut prob = 1.0;
            let mut upstream = 0i64;
            for (i, stage) in self.stages.iter().enumerate() {
                let (nval, nprob) = pmfs[i][choice[i]];
                prob *= nprob;
                let out = stage.step(joint[i], nval, upstream, joint);
                debug_assert!(
                    out.next_state < stage.state_count(),
                    "stage '{}' returned state {} of {}",
                    stage.name(),
                    out.next_state,
                    stage.state_count()
                );
                next[i] = out.next_state;
                upstream = out.output;
            }
            emit(&next, prob);
            // Advance the mixed-radix noise choice.
            let mut i = k;
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                choice[i] += 1;
                if choice[i] < pmfs[i].len() {
                    break;
                }
                choice[i] = 0;
            }
        }
    }

    /// Builds the full joint transition probability matrix over the entire
    /// Cartesian product space.
    ///
    /// For models with unreachable joint states, prefer
    /// [`crate::reach::explore`] which builds the TPM over the reachable
    /// subset only (as the paper does).
    ///
    /// # Panics
    ///
    /// Panics if a stage emits an inconsistent probability mass (network
    /// construction already validates pmfs, so row sums are one by
    /// construction).
    pub fn build_tpm(&self) -> CsrMatrix {
        let mut builder = TpmBuilder::new(self.space.len());
        let mut parts = vec![0usize; self.stages.len()];
        for flat in self.space.iter() {
            self.space.unpack_into(flat, &mut parts);
            builder.begin_row(flat);
            let space = &self.space;
            let b = &mut builder;
            self.successors(&parts, |next, prob| {
                b.emit(space.pack(next), prob);
            });
            builder
                .end_row()
                .expect("stage pmfs validated at construction");
        }
        builder.finish().expect("every row visited")
    }

    /// Builds the TPM and returns it with the result wrapper for callers
    /// that want row-sum diagnostics instead of panics.
    ///
    /// # Errors
    ///
    /// Returns the underlying builder error if a row's mass drifts beyond
    /// tolerance (can only happen with badly conditioned stage pmfs).
    pub fn try_build_tpm(&self) -> Result<CsrMatrix> {
        let mut builder = TpmBuilder::new(self.space.len());
        let mut parts = vec![0usize; self.stages.len()];
        for flat in self.space.iter() {
            self.space.unpack_into(flat, &mut parts);
            builder.begin_row(flat);
            let space = &self.space;
            let b = &mut builder;
            self.successors(&parts, |next, prob| {
                b.emit(space.pack(next), prob);
            });
            builder.end_row()?;
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Random bit source: output = noise bit, no state.
    struct Bit(f64);
    impl Stage for Bit {
        fn state_count(&self) -> usize {
            1
        }
        fn noise(&self) -> Vec<(i64, f64)> {
            vec![(0, 1.0 - self.0), (1, self.0)]
        }
        fn step(&self, _s: usize, n: i64, _u: i64, _j: &[usize]) -> StageOutput {
            StageOutput {
                next_state: 0,
                output: n,
            }
        }
        fn name(&self) -> &str {
            "bit"
        }
    }

    /// Saturating counter of upstream ones.
    struct Counter(usize);
    impl Stage for Counter {
        fn state_count(&self) -> usize {
            self.0
        }
        fn noise(&self) -> Vec<(i64, f64)> {
            vec![(0, 1.0)]
        }
        fn step(&self, s: usize, _n: i64, up: i64, _j: &[usize]) -> StageOutput {
            let next = if up > 0 { (s + 1).min(self.0 - 1) } else { 0 };
            StageOutput {
                next_state: next,
                output: (next == self.0 - 1) as i64,
            }
        }
        fn name(&self) -> &str {
            "counter"
        }
    }

    /// Stage that reads another stage's state through the joint vector
    /// (feedback test): toggles only when stage 1 (the counter) saturated.
    struct Follower;
    impl Stage for Follower {
        fn state_count(&self) -> usize {
            2
        }
        fn noise(&self) -> Vec<(i64, f64)> {
            vec![(0, 1.0)]
        }
        fn step(&self, s: usize, _n: i64, _up: i64, j: &[usize]) -> StageOutput {
            let toggle = j[1] == 2; // counter state (previous cycle) saturated
            StageOutput {
                next_state: if toggle { 1 - s } else { s },
                output: 0,
            }
        }
    }

    fn network() -> CascadeNetwork {
        CascadeNetwork::new(vec![
            Box::new(Bit(0.5)),
            Box::new(Counter(3)),
            Box::new(Follower),
        ])
    }

    #[test]
    fn dimensions() {
        let net = network();
        assert_eq!(net.space().len(), 3 * 2);
        assert_eq!(net.stage_count(), 3);
    }

    #[test]
    fn tpm_is_stochastic() {
        let tpm = network().build_tpm();
        for s in tpm.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn counter_dynamics_encoded() {
        let net = network();
        let tpm = net.build_tpm();
        // From (bit=_, counter=0, follower=0): with p=.5 counter goes to 1,
        // with p=.5 stays 0 (upstream zero resets).
        let from = net.space().pack(&[0, 0, 0]);
        let to_inc = net.space().pack(&[0, 1, 0]);
        let to_rst = net.space().pack(&[0, 0, 0]);
        assert!((tpm.get(from, to_inc) - 0.5).abs() < 1e-12);
        assert!((tpm.get(from, to_rst) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn feedback_sees_previous_joint_state() {
        let net = network();
        let tpm = net.build_tpm();
        // From counter saturated (state 2), the follower must toggle
        // regardless of the new counter value.
        let from = net.space().pack(&[0, 2, 0]);
        for (col, _) in tpm.row(from) {
            let parts = net.space().unpack(col);
            assert_eq!(parts[2], 1, "follower should have toggled");
        }
    }

    #[test]
    fn successor_probabilities_sum_to_one() {
        let net = network();
        let mut total = 0.0;
        net.successors(&[0, 1, 1], |_, p| total += p);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "noise pmf sums")]
    fn invalid_noise_pmf_rejected() {
        struct Bad;
        impl Stage for Bad {
            fn state_count(&self) -> usize {
                1
            }
            fn noise(&self) -> Vec<(i64, f64)> {
                vec![(0, 0.7)]
            }
            fn step(&self, _: usize, _: i64, _: i64, _: &[usize]) -> StageOutput {
                StageOutput {
                    next_state: 0,
                    output: 0,
                }
            }
        }
        let _ = CascadeNetwork::new(vec![Box::new(Bad)]);
    }

    #[test]
    fn doc_example_parity() {
        struct Coin;
        impl Stage for Coin {
            fn state_count(&self) -> usize {
                1
            }
            fn noise(&self) -> Vec<(i64, f64)> {
                vec![(0, 0.5), (1, 0.5)]
            }
            fn step(&self, _s: usize, noise: i64, _up: i64, _j: &[usize]) -> StageOutput {
                StageOutput {
                    next_state: 0,
                    output: noise,
                }
            }
        }
        struct Parity;
        impl Stage for Parity {
            fn state_count(&self) -> usize {
                2
            }
            fn noise(&self) -> Vec<(i64, f64)> {
                vec![(0, 1.0)]
            }
            fn step(&self, s: usize, _n: i64, up: i64, _j: &[usize]) -> StageOutput {
                StageOutput {
                    next_state: (s + up as usize) % 2,
                    output: 0,
                }
            }
        }
        let net = CascadeNetwork::new(vec![Box::new(Coin), Box::new(Parity)]);
        let tpm = net.build_tpm();
        assert_eq!(tpm.get(0, 0), 0.5);
        assert_eq!(tpm.get(0, 1), 0.5);
        assert_eq!(tpm.get(1, 0), 0.5);
        assert_eq!(tpm.get(1, 1), 0.5);
    }
}
