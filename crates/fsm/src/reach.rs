//! Reachable-state-space exploration.
//!
//! "The state set `{x_1, ..., x_L}` is the **reachable** state space of the
//! MC, which is a subset of the Cartesian product of the discretized phase
//! values and the state set of the phase detector/filter FSM." Building the
//! TPM only over reachable states both shrinks the linear systems and
//! guarantees the chain has no structurally-dead rows.

use std::collections::VecDeque;

use stochcdr_linalg::CsrMatrix;

use crate::{CascadeNetwork, FsmError, Result, TpmBuilder};

/// A reachable subset of a larger state space, with the dense re-indexing
/// used by the TPM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachableSpace {
    /// `original[i]` — the flat index (in the full product space) of dense
    /// state `i`. Sorted ascending.
    original: Vec<usize>,
    /// Sparse map full-index → dense index (`usize::MAX` = unreachable).
    dense_of: Vec<usize>,
}

impl ReachableSpace {
    /// Number of reachable states.
    pub fn len(&self) -> usize {
        self.original.len()
    }

    /// `true` if no state is reachable (cannot happen for valid input).
    pub fn is_empty(&self) -> bool {
        self.original.is_empty()
    }

    /// The full-space flat index of dense state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn original_index(&self, i: usize) -> usize {
        self.original[i]
    }

    /// The dense index of a full-space state, if reachable.
    pub fn dense_index(&self, full: usize) -> Option<usize> {
        match self.dense_of.get(full) {
            Some(&d) if d != usize::MAX => Some(d),
            _ => None,
        }
    }

    /// Iterates over `(dense, original)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.original.iter().copied().enumerate()
    }
}

/// Result of [`explore`]: the reachable space and the TPM restricted to it.
#[derive(Debug, Clone)]
pub struct ExploredChain {
    /// Mapping between full and dense state indices.
    pub space: ReachableSpace,
    /// Transition matrix over the dense (reachable) states.
    pub tpm: CsrMatrix,
}

/// Explores the reachable state space of a transition function by BFS from
/// `initial` and builds the TPM over the reachable subset.
///
/// `total_states` is the size of the full (Cartesian-product) space;
/// `transitions(state, emit)` must call `emit(next, prob)` for every
/// successor with positive probability, with probabilities summing to one.
///
/// # Example
///
/// ```
/// use stochcdr_fsm::reach::explore;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // States {0, 1} toggle; {2, 3} are never reached from 0.
/// let result = explore(4, &[0], |s, emit| emit(1 - s, 1.0))?;
/// assert_eq!(result.space.len(), 2);
/// assert_eq!(result.tpm.get(0, 1), 1.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`FsmError::NoInitialStates`] if `initial` is empty,
/// * [`FsmError::StateOutOfRange`] if any state index is out of range,
/// * [`FsmError::InvalidProbability`] if some reachable row's mass is not
///   one within `1e-9`.
pub fn explore(
    total_states: usize,
    initial: &[usize],
    mut transitions: impl FnMut(usize, &mut dyn FnMut(usize, f64)),
) -> Result<ExploredChain> {
    if initial.is_empty() {
        return Err(FsmError::NoInitialStates);
    }
    let mut dense_of = vec![usize::MAX; total_states];
    let mut original = Vec::new();
    let mut queue = VecDeque::new();
    for &s in initial {
        if s >= total_states {
            return Err(FsmError::StateOutOfRange {
                state: s,
                count: total_states,
            });
        }
        if dense_of[s] == usize::MAX {
            dense_of[s] = 0; // placeholder, fixed after sort
            original.push(s);
            queue.push_back(s);
        }
    }
    // BFS collecting edges as (from_full, to_full, prob).
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut oob: Option<usize> = None;
    while let Some(s) = queue.pop_front() {
        let from = s;
        let start = edges.len();
        transitions(s, &mut |next, prob| {
            if next >= total_states {
                oob.get_or_insert(next);
                return;
            }
            if prob > 0.0 {
                edges.push((from, next, prob));
            }
        });
        if let Some(bad) = oob {
            return Err(FsmError::StateOutOfRange {
                state: bad,
                count: total_states,
            });
        }
        for &(_, next, _) in &edges[start..] {
            if dense_of[next] == usize::MAX {
                dense_of[next] = 0;
                original.push(next);
                queue.push_back(next);
            }
        }
    }
    // Dense indices in ascending original order keep the TPM's block
    // structure legible (the paper's Figure 3 relies on this ordering).
    original.sort_unstable();
    for (dense, &full) in original.iter().enumerate() {
        dense_of[full] = dense;
    }

    // Assemble rows.
    let n = original.len();
    let mut builder = TpmBuilder::new(n);
    // Group edges by source.
    edges.sort_unstable_by_key(|&(f, _, _)| f);
    let mut i = 0;
    let mut rows_built = 0;
    while i < edges.len() {
        let from = edges[i].0;
        builder.begin_row(dense_of[from]);
        while i < edges.len() && edges[i].0 == from {
            builder.emit(dense_of[edges[i].1], edges[i].2);
            i += 1;
        }
        builder.end_row()?;
        rows_built += 1;
    }
    if rows_built != n {
        return Err(FsmError::InvalidProbability(
            "some reachable state produced no transitions".into(),
        ));
    }
    let tpm = builder.finish()?;
    Ok(ExploredChain {
        space: ReachableSpace { original, dense_of },
        tpm,
    })
}

/// Convenience wrapper: explores a [`CascadeNetwork`] from the given initial
/// joint states (full-space flat indices).
///
/// # Errors
///
/// Same as [`explore`].
pub fn explore_network(net: &CascadeNetwork, initial: &[usize]) -> Result<ExploredChain> {
    let space = net.space().clone();
    let mut parts = vec![0usize; space.component_count()];
    explore(space.len(), initial, move |flat, emit| {
        space.unpack_into(flat, &mut parts);
        net.successors(&parts, |next, prob| emit(space.pack(next), prob));
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy transition function: even states split to s/2 and s+2 (mod 8);
    /// odd states are never entered from even starts.
    fn toy(state: usize, emit: &mut dyn FnMut(usize, f64)) {
        emit(state / 2, 0.5);
        emit((state + 2) % 8, 0.5);
    }

    #[test]
    fn unreachable_states_pruned() {
        let result = explore(8, &[0], toy).unwrap();
        // From 0: {0, 2} -> {1,...}? 2/2=1 is odd. So odd states reachable
        // via halving: 0 -> {0, 2}; 2 -> {1, 4}; 1 -> {0(1/2=0), 3}; ...
        // The point of this test is just consistency:
        let n = result.space.len();
        assert!(n <= 8);
        for s in result.tpm.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Every dense state maps back consistently.
        for (dense, full) in result.space.iter() {
            assert_eq!(result.space.dense_index(full), Some(dense));
        }
    }

    #[test]
    fn closed_subset_stays_closed() {
        // States {0,1} toggle; {2,3} unreachable from 0.
        let result = explore(4, &[0], |s, emit| emit(1 - s, 1.0)).unwrap();
        assert_eq!(result.space.len(), 2);
        assert_eq!(result.space.original_index(0), 0);
        assert_eq!(result.space.original_index(1), 1);
        assert_eq!(result.space.dense_index(3), None);
        assert_eq!(result.tpm.get(0, 1), 1.0);
        assert_eq!(result.tpm.get(1, 0), 1.0);
    }

    #[test]
    fn multiple_initial_states() {
        let result = explore(4, &[0, 2], |s, emit| emit(s, 1.0)).unwrap();
        assert_eq!(result.space.len(), 2);
        assert_eq!(result.space.original_index(1), 2);
    }

    #[test]
    fn errors_reported() {
        assert!(matches!(
            explore(4, &[], toy),
            Err(FsmError::NoInitialStates)
        ));
        assert!(matches!(
            explore(4, &[9], toy),
            Err(FsmError::StateOutOfRange { state: 9, .. })
        ));
        // Transition emitting out of range.
        assert!(explore(2, &[0], |_, emit| emit(5, 1.0)).is_err());
        // Row mass short.
        assert!(explore(2, &[0], |s, emit| emit(s, 0.5)).is_err());
    }

    #[test]
    fn dense_ordering_is_ascending() {
        let result = explore(8, &[6], toy).unwrap();
        let originals: Vec<usize> = result.space.iter().map(|(_, f)| f).collect();
        let mut sorted = originals.clone();
        sorted.sort_unstable();
        assert_eq!(originals, sorted);
    }
}
