//! Proof of the zero-overhead claim: with no sink installed, the
//! instrumentation entry points perform **no heap allocation**.
//!
//! A counting wrapper around the system allocator (installed as this test
//! binary's `#[global_allocator]`) tallies every allocation; the disabled
//! obs calls must leave the tally untouched. No external sanitizer needed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use stochcdr_obs as obs;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Smallest allocation delta observed across `attempts` runs of `f`.
///
/// The counter is process-global, so the libtest harness (which runs the
/// sibling test on another thread) can allocate inside a measurement
/// window. A genuine allocation in the code under test repeats on every
/// attempt; harness noise does not, so the minimum is the honest figure.
fn min_delta<F: FnMut()>(mut f: F, attempts: usize) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..attempts {
        let before = alloc_count();
        f();
        let delta = alloc_count() - before;
        best = best.min(delta);
        if best == 0 {
            break;
        }
    }
    best
}

#[test]
fn disabled_instrumentation_does_not_allocate() {
    let _ = obs::uninstall();
    assert!(!obs::enabled());

    // Warm up any lazily-initialized runtime state outside the window.
    let _g = obs::span("warmup");
    obs::counter("warmup", 1);
    obs::gauge("warmup", 0.0);
    obs::histogram("warmup", 1.0);
    obs::event("warmup", &[("k", 1u64.into())]);

    let residual = 3.5e-13_f64;
    let allocated = min_delta(
        || {
            for i in 0..10_000u64 {
                let _span = obs::span("multigrid.solve");
                let _inner = obs::span("cycle");
                obs::counter("multigrid.smooth_sweeps", 3);
                obs::gauge("residual", residual);
                obs::histogram("multigrid.residual_reduction", residual);
                obs::event(
                    "multigrid.cycle",
                    &[("cycle", i.into()), ("residual", residual.into())],
                );
            }
        },
        5,
    );
    assert_eq!(
        allocated, 0,
        "disabled obs calls allocated {allocated} times"
    );
}

/// The multigrid hot loop allocates exactly as much with disabled
/// instrumentation compiled in as the instrumentation-free arithmetic it
/// wraps: the obs calls add zero allocations per cycle.
#[test]
fn disabled_obs_adds_no_allocations_to_a_hot_loop() {
    let _ = obs::uninstall();

    // A stand-in for the smoothing/residual kernel: pure arithmetic over
    // preallocated buffers, exactly like the solver's inner loop.
    fn sweep(x: &mut [f64], y: &mut [f64]) -> f64 {
        let n = x.len();
        for i in 0..n {
            y[i] = 0.5 * x[i] + 0.25 * x[(i + 1) % n] + 0.25 * x[(i + n - 1) % n];
        }
        let mut res = 0.0;
        for i in 0..n {
            res += (y[i] - x[i]).abs();
            x[i] = y[i];
        }
        res
    }

    let mut x = vec![1.0 / 64.0; 64];
    let mut y = vec![0.0; 64];

    let mut acc = 0.0;

    // Baseline: the bare kernel.
    let bare = min_delta(
        || {
            for _ in 0..1_000 {
                acc += sweep(&mut x, &mut y);
            }
        },
        5,
    );

    // Same kernel with the full instrumentation pattern around it.
    let instrumented = min_delta(
        || {
            for cycle in 0..1_000u64 {
                let _span = obs::span("cycle");
                let res = sweep(&mut x, &mut y);
                acc += res;
                obs::counter("sweeps", 1);
                obs::histogram("sweep.residual", res);
                obs::event(
                    "cycle",
                    &[("cycle", cycle.into()), ("residual", res.into())],
                );
            }
        },
        5,
    );

    assert!(acc.is_finite());
    assert_eq!(
        instrumented, bare,
        "instrumented loop allocated {instrumented} vs bare {bare}"
    );
}
