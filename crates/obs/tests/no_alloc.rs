//! Proof of the zero-overhead claim: with no sink installed, the
//! instrumentation entry points perform **no heap allocation** — plus
//! integration coverage for the tracking allocator itself ([`obs::mem`]),
//! which this binary installs as its `#[global_allocator]`.
//!
//! The workspace-wide allocation-assertion mechanism is
//! [`obs::mem::TrackingAlloc`] + [`obs::mem::min_alloc_delta`]; the old
//! per-test counting allocators were folded into it.

use stochcdr_obs as obs;
use stochcdr_obs::mem;

#[global_allocator]
static GLOBAL: mem::TrackingAlloc = mem::TrackingAlloc::new();

/// Shared-mechanism shorthand; see [`mem::min_alloc_delta`].
fn min_delta<F: FnMut()>(f: F, attempts: usize) -> u64 {
    mem::min_alloc_delta(f, attempts)
}

#[test]
fn disabled_instrumentation_does_not_allocate() {
    let _ = obs::uninstall();
    assert!(!obs::enabled());
    assert!(mem::tracking_active(), "tracking allocator not installed");

    // Warm up any lazily-initialized runtime state outside the window.
    let _g = obs::span("warmup");
    obs::counter("warmup", 1);
    obs::gauge("warmup", 0.0);
    obs::histogram("warmup", 1.0);
    obs::event("warmup", &[("k", 1u64.into())]);

    let residual = 3.5e-13_f64;
    let allocated = min_delta(
        || {
            for i in 0..10_000u64 {
                let _span = obs::span("multigrid.solve");
                let _inner = obs::span("cycle");
                obs::counter("multigrid.smooth_sweeps", 3);
                obs::gauge("residual", residual);
                obs::histogram("multigrid.residual_reduction", residual);
                obs::event(
                    "multigrid.cycle",
                    &[("cycle", i.into()), ("residual", residual.into())],
                );
            }
        },
        5,
    );
    assert_eq!(
        allocated, 0,
        "disabled obs calls allocated {allocated} times"
    );
}

/// The multigrid hot loop allocates exactly as much with disabled
/// instrumentation compiled in as the instrumentation-free arithmetic it
/// wraps: the obs calls add zero allocations per cycle.
#[test]
fn disabled_obs_adds_no_allocations_to_a_hot_loop() {
    let _ = obs::uninstall();

    // A stand-in for the smoothing/residual kernel: pure arithmetic over
    // preallocated buffers, exactly like the solver's inner loop.
    fn sweep(x: &mut [f64], y: &mut [f64]) -> f64 {
        let n = x.len();
        for i in 0..n {
            y[i] = 0.5 * x[i] + 0.25 * x[(i + 1) % n] + 0.25 * x[(i + n - 1) % n];
        }
        let mut res = 0.0;
        for i in 0..n {
            res += (y[i] - x[i]).abs();
            x[i] = y[i];
        }
        res
    }

    let mut x = vec![1.0 / 64.0; 64];
    let mut y = vec![0.0; 64];

    let mut acc = 0.0;

    // Baseline: the bare kernel.
    let bare = min_delta(
        || {
            for _ in 0..1_000 {
                acc += sweep(&mut x, &mut y);
            }
        },
        5,
    );

    // Same kernel with the full instrumentation pattern around it.
    let instrumented = min_delta(
        || {
            for cycle in 0..1_000u64 {
                let _span = obs::span("cycle");
                let res = sweep(&mut x, &mut y);
                acc += res;
                obs::counter("sweeps", 1);
                obs::histogram("sweep.residual", res);
                obs::event(
                    "cycle",
                    &[("cycle", cycle.into()), ("residual", res.into())],
                );
            }
        },
        5,
    );

    assert!(acc.is_finite());
    assert_eq!(
        instrumented, bare,
        "instrumented loop allocated {instrumented} vs bare {bare}"
    );
}

/// The tracking allocator's process totals move with real allocations,
/// and a span charged with a known allocation reports it in its record.
#[test]
fn tracking_allocator_attributes_bytes_to_spans() {
    use std::sync::{Arc, Mutex};
    use stochcdr_obs::{Record, Sink};

    let _ = obs::uninstall();

    // Process totals move with a real allocation.
    let count0 = mem::alloc_count();
    let bytes0 = mem::total_bytes();
    let buf = vec![7u8; 1 << 16];
    assert!(mem::alloc_count() > count0, "alloc count did not move");
    assert!(
        mem::total_bytes() >= bytes0 + (1 << 16),
        "total bytes did not cover the allocation"
    );
    assert!(mem::live_bytes() > 0);
    assert!(mem::peak_bytes() >= mem::live_bytes());
    drop(buf);

    // Span attribution: a span that allocates 64 KiB on its own thread
    // reports at least that much in its completed record.
    #[derive(Default)]
    struct Captured {
        spans: Vec<(String, u64, u64)>,
    }
    struct CaptureSink(Arc<Mutex<Captured>>);
    impl Sink for CaptureSink {
        fn record(&mut self, _at: u64, record: &Record<'_>) {
            if let Record::Span {
                path,
                alloc_bytes,
                allocs,
                ..
            } = record
            {
                self.0
                    .lock()
                    .unwrap()
                    .spans
                    .push(((*path).to_string(), *alloc_bytes, *allocs));
            }
        }
    }

    let shared = Arc::new(Mutex::new(Captured::default()));
    obs::install(Box::new(CaptureSink(Arc::clone(&shared))));
    {
        let _span = obs::span("mem.victim");
        let big = vec![1u8; 1 << 16];
        std::hint::black_box(&big);
    }
    {
        let _span = obs::span("mem.idle");
    }
    obs::uninstall();

    let cap = shared.lock().unwrap();
    let victim = cap
        .spans
        .iter()
        .find(|(p, _, _)| p == "mem.victim")
        .expect("victim span recorded");
    assert!(
        victim.1 >= 1 << 16,
        "span charged {} bytes, expected >= 64 KiB",
        victim.1
    );
    assert!(victim.2 >= 1, "span charged no allocations");

    // The idle span may still be charged the sink's own bookkeeping,
    // but nothing near the victim's 64 KiB.
    let idle = cap
        .spans
        .iter()
        .find(|(p, _, _)| p == "mem.idle")
        .expect("idle span recorded");
    assert!(
        idle.1 < 1 << 14,
        "idle span charged {} bytes — attribution leaked across spans",
        idle.1
    );
}

/// Peak-tracking and reset: the high-water mark ratchets over a large
/// transient allocation and resets back down to the live size.
#[test]
fn peak_tracking_ratchets_and_resets() {
    mem::reset_peak();
    let before = mem::peak_bytes();
    {
        let big = vec![0u8; 1 << 20];
        std::hint::black_box(&big);
        assert!(
            mem::peak_bytes() >= before + (1 << 20),
            "peak did not ratchet over a 1 MiB transient"
        );
    }
    mem::reset_peak();
    assert!(
        mem::peak_bytes() < before + (1 << 20),
        "reset_peak left the old high-water mark"
    );
}
