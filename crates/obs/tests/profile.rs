//! Integration tests for the sampling profiler and the heartbeat:
//! open-span snapshots, sampler capture, folded export, and the
//! `solve.progress` event round-trip.
//!
//! The recorder, sampler, and heartbeat configuration are process-wide
//! singletons, so everything runs inside one `#[test]`, sequenced.

use std::time::Duration;

use stochcdr_obs as obs;
use stochcdr_obs::artifact::Artifact;

#[test]
fn profiler_end_to_end() {
    open_span_stacks_reports_the_innermost_span_per_lane();
    sampler_captures_a_held_span_and_exports_folded_stacks();
    heartbeat_round_trips_through_the_artifact();
}

fn open_span_stacks_reports_the_innermost_span_per_lane() {
    let _ = obs::uninstall();
    assert!(
        obs::open_span_stacks().is_empty(),
        "no session → no open spans"
    );
    obs::install(Box::new(obs::NullSink));
    {
        let _a = obs::span("outer");
        let _b = obs::span("inner");
        let parent = obs::current_span_id();
        let main_lane = obs::thread_id();
        let snapshot = obs::open_span_stacks();
        assert_eq!(
            snapshot,
            vec![(main_lane, "outer/inner".to_string())],
            "innermost open span, full path"
        );
        // A worker holding a cross-thread child shows up under its own
        // lane, with the dispatching span's path prefix.
        std::thread::scope(|s| {
            s.spawn(|| {
                let _lane = obs::lane(7);
                let _w = obs::span_child_of("worker", parent);
                let snapshot = obs::open_span_stacks();
                assert!(
                    snapshot.contains(&(7, "outer/inner/worker".to_string())),
                    "{snapshot:?}"
                );
                assert!(
                    snapshot.contains(&(main_lane, "outer/inner".to_string())),
                    "{snapshot:?}"
                );
            });
        });
    }
    assert!(
        obs::open_span_stacks().is_empty(),
        "all spans closed → empty snapshot"
    );
    obs::uninstall();
}

fn sampler_captures_a_held_span_and_exports_folded_stacks() {
    let _ = obs::uninstall();
    let (sink, buf) = obs::JsonLinesSink::to_shared_buffer();
    obs::install(Box::new(sink));
    assert!(obs::profile::start(Duration::from_micros(100)));
    {
        let _outer = obs::span("solve");
        let _inner = obs::span("cycle");
        // Hold the stack open long enough for many sampling intervals.
        std::thread::sleep(Duration::from_millis(30));
    }
    let profile = obs::profile::stop().expect("sampler was running");
    assert!(profile.ticks > 0, "sampler never woke");
    assert!(
        profile.samples.contains_key("solve;cycle"),
        "held stack must be sampled: {:?}",
        profile.samples
    );
    let folded = profile.folded();
    assert!(folded.contains("solve;cycle "), "{folded}");
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        assert!(count.parse::<u64>().is_ok(), "{line}");
    }

    // Publishing flushes the aggregate into the artifact's profile
    // section, where every frame is a registered span name.
    profile.publish();
    obs::uninstall();
    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let art = Artifact::load_jsonl(&text).expect("valid artifact");
    assert_eq!(art.schema, obs::SCHEMA_VERSION);
    assert!(!art.profile.is_empty());
    let known: std::collections::BTreeSet<&str> =
        art.spans.keys().flat_map(|p| p.split('/')).collect();
    for stack in art.profile.keys() {
        for frame in stack.split(';') {
            assert!(
                known.contains(frame),
                "frame {frame:?} not a recorded span name (stack {stack:?})"
            );
        }
    }
    assert!(art.counters.contains_key("profile.ticks"));
    assert!(art.counters.contains_key("profile.samples"));
}

fn heartbeat_round_trips_through_the_artifact() {
    let _ = obs::uninstall();
    let (sink, buf) = obs::JsonLinesSink::to_shared_buffer();
    obs::install(Box::new(sink));
    obs::heartbeat::configure(Some(Duration::from_millis(1)), false);
    let hb = obs::Heartbeat::new("test-solve");
    obs::heartbeat::configure(None, false);
    assert!(hb.active());
    for it in 1..=200u64 {
        hb.tick_solve(it, 1.0 / it as f64, Some(0.5), 1e-12);
        if hb.emitted() >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    assert!(hb.emitted() >= 1, "heartbeat never became due");
    obs::uninstall();
    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let art = Artifact::load_jsonl(&text).expect("valid artifact");
    assert_eq!(
        art.events.get("solve.progress").copied(),
        Some(hb.emitted()),
        "every emission lands as one solve.progress event"
    );

    // A disarmed heartbeat (the default) must leave no trace at all.
    let (sink, buf) = obs::JsonLinesSink::to_shared_buffer();
    obs::install(Box::new(sink));
    let quiet = obs::Heartbeat::new("quiet");
    for it in 1..=100u64 {
        quiet.tick_solve(it, 1.0, Some(0.5), 1e-12);
        quiet.tick_unit(100);
    }
    obs::uninstall();
    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let art = Artifact::load_jsonl(&text).expect("valid artifact");
    assert!(art.events.is_empty(), "{:?}", art.events);
}
